//! A single force-sensitive element: membrane capacitor plus force scaling.
//!
//! The paper calls each array cell a "square-shaped force-sensitive
//! element". Tissue contact exerts a *force* on the protruding membrane;
//! per unit membrane area that is the net *pressure* the plate model takes.

use crate::capacitor::{ElectrodeGeometry, MembraneCapacitor};
use crate::plate::SquarePlate;
use crate::units::{Farads, Newtons, Pascals};
use crate::MemsError;

/// One force-sensitive membrane element of the tactile array.
#[derive(Debug, Clone, PartialEq)]
pub struct ForceSensorElement {
    capacitor: MembraneCapacitor,
}

impl ForceSensorElement {
    /// Wraps a membrane capacitor as an array element.
    pub fn new(capacitor: MembraneCapacitor) -> Self {
        ForceSensorElement { capacitor }
    }

    /// The paper's element (100 µm membrane, default electrode geometry).
    pub fn paper_default() -> Self {
        ForceSensorElement::new(MembraneCapacitor::paper_default())
    }

    /// Builds an element from explicit plate and electrode geometry.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation from [`MembraneCapacitor::new`].
    pub fn from_parts(plate: SquarePlate, geometry: ElectrodeGeometry) -> Result<Self, MemsError> {
        Ok(ForceSensorElement::new(MembraneCapacitor::new(
            plate, geometry,
        )?))
    }

    /// The underlying membrane capacitor.
    pub fn capacitor(&self) -> &MembraneCapacitor {
        &self.capacitor
    }

    /// Overrides the capacitance-integration grid (see
    /// [`MembraneCapacitor::with_grid`]).
    ///
    /// # Panics
    ///
    /// Panics if `grid` is odd or zero.
    pub fn with_grid(self, grid: usize) -> Self {
        ForceSensorElement {
            capacitor: self.capacitor.with_grid(grid),
        }
    }

    /// Membrane area in m² (force-to-pressure conversion denominator).
    pub fn membrane_area(&self) -> f64 {
        let a = self.capacitor.plate().side().value();
        a * a
    }

    /// Element capacitance under a net pressure load.
    ///
    /// # Errors
    ///
    /// Propagates collapse/solver errors from the capacitor model.
    pub fn capacitance(&self, pressure: Pascals) -> Result<Farads, MemsError> {
        self.capacitor.capacitance(pressure)
    }

    /// Element capacitance under a concentrated normal force, treated as
    /// an equivalent uniform pressure `F / A_membrane`.
    ///
    /// # Errors
    ///
    /// Propagates collapse/solver errors from the capacitor model.
    pub fn capacitance_for_force(&self, force: Newtons) -> Result<Farads, MemsError> {
        let p = Pascals(force.value() / self.membrane_area());
        self.capacitance(p)
    }

    /// Capacitance at rest.
    pub fn rest_capacitance(&self) -> Farads {
        self.capacitor.rest_capacitance()
    }

    /// Small-signal pressure sensitivity `dC/dp` at a bias point (F/Pa).
    ///
    /// # Errors
    ///
    /// Propagates capacitance-evaluation errors at the probe points.
    pub fn pressure_sensitivity(&self, bias: Pascals) -> Result<f64, MemsError> {
        self.capacitor.pressure_sensitivity(bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Meters, MillimetersHg};

    #[test]
    fn force_and_pressure_paths_agree() {
        let e = ForceSensorElement::paper_default();
        let p = Pascals::from_mmhg(MillimetersHg(80.0));
        let f = Newtons(p.value() * e.membrane_area());
        let via_p = e.capacitance(p).unwrap();
        let via_f = e.capacitance_for_force(f).unwrap();
        assert!((via_p.value() - via_f.value()).abs() < 1e-24);
    }

    #[test]
    fn membrane_area_matches_paper_geometry() {
        let e = ForceSensorElement::paper_default();
        let a = e.membrane_area();
        assert!((a - 100e-6 * 100e-6).abs() < 1e-15);
    }

    #[test]
    fn micro_newton_forces_are_resolvable() {
        // The tactile application works at micronewton-scale contact
        // forces: 1 µN over the membrane = 100 Pa ≈ 0.75 mmHg.
        let e = ForceSensorElement::paper_default();
        let rest = e.rest_capacitance();
        let c = e.capacitance_for_force(Newtons(1e-6)).unwrap();
        assert!(c > rest);
    }

    #[test]
    fn from_parts_validates_geometry() {
        let mut geom = ElectrodeGeometry::paper_default();
        geom.electrode_side = Meters::from_microns(200.0);
        assert!(ForceSensorElement::from_parts(SquarePlate::paper_default(), geom).is_err());
    }

    #[test]
    fn sensitivity_passthrough_is_consistent() {
        let e = ForceSensorElement::paper_default();
        let s_elem = e.pressure_sensitivity(Pascals(0.0)).unwrap();
        let s_cap = e.capacitor().pressure_sensitivity(Pascals(0.0)).unwrap();
        assert_eq!(s_elem, s_cap);
    }
}

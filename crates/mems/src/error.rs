//! Error type for the MEMS substrate.

use std::error::Error;
use std::fmt;

use crate::units::{Meters, Pascals};

/// Errors produced by the membrane / capacitance models.
#[derive(Debug, Clone, PartialEq)]
pub enum MemsError {
    /// The membrane deflection reached (or exceeded) the electrode gap:
    /// the structure would be in touch-mode / collapsed, which the paper's
    /// device does not operate in. Carries the offending deflection and
    /// the available gap.
    MembraneCollapse {
        /// Peak deflection that was requested.
        deflection: Meters,
        /// Structural air gap available before touch.
        gap: Meters,
        /// Applied net pressure that caused the collapse.
        pressure: Pascals,
    },
    /// A geometric or material parameter was non-physical (non-positive
    /// side length, thickness, gap, modulus, …).
    InvalidGeometry(String),
    /// An element index outside the array was addressed.
    ElementOutOfRange {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Array rows.
        rows: usize,
        /// Array columns.
        cols: usize,
    },
    /// The nonlinear load-deflection solve failed to converge.
    SolveDiverged {
        /// Pressure the solver was inverting.
        pressure: Pascals,
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for MemsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemsError::MembraneCollapse {
                deflection,
                gap,
                pressure,
            } => write!(
                f,
                "membrane collapse: deflection {:.3} um exceeds gap {:.3} um at {:.1} Pa",
                deflection.to_microns(),
                gap.to_microns(),
                pressure.value()
            ),
            MemsError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            MemsError::ElementOutOfRange {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "element ({row}, {col}) out of range for {rows}x{cols} array"
            ),
            MemsError::SolveDiverged {
                pressure,
                iterations,
            } => write!(
                f,
                "load-deflection solve diverged at {:.1} Pa after {} iterations",
                pressure.value(),
                iterations
            ),
        }
    }
}

impl Error for MemsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MemsError::MembraneCollapse {
            deflection: Meters::from_microns(1.2),
            gap: Meters::from_microns(1.0),
            pressure: Pascals(5000.0),
        };
        let msg = e.to_string();
        assert!(msg.contains("collapse"));
        assert!(msg.contains("1.200"));

        let e = MemsError::ElementOutOfRange {
            row: 2,
            col: 0,
            rows: 2,
            cols: 2,
        };
        assert!(e.to_string().contains("(2, 0)"));

        let e = MemsError::InvalidGeometry("side length must be positive".into());
        assert!(e.to_string().contains("side length"));

        let e = MemsError::SolveDiverged {
            pressure: Pascals(1.0),
            iterations: 64,
        };
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemsError>();
    }
}

//! Newtype quantities used throughout the sensor stack.
//!
//! All wrappers hold SI `f64` values (pascals, meters, farads, volts,
//! newtons). The one deliberate exception is [`MillimetersHg`], the clinical
//! blood-pressure unit, which converts to and from [`Pascals`] explicitly so
//! physiological and mechanical code cannot be mixed up silently
//! (C-NEWTYPE: static distinction between interpretations of `f64`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Conversion factor: one millimeter of mercury in pascals.
pub const PASCALS_PER_MMHG: f64 = 133.322_387_415;

/// Implements arithmetic, `Display`, and accessors for a unit newtype.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $symbol:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw `f64` value in the unit's SI base.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` when the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $symbol)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Pressure in pascals (SI).
    Pascals,
    "Pa"
);
quantity!(
    /// Length in meters (SI).
    Meters,
    "m"
);
quantity!(
    /// Capacitance in farads (SI).
    Farads,
    "F"
);
quantity!(
    /// Electric potential in volts (SI).
    Volts,
    "V"
);
quantity!(
    /// Force in newtons (SI).
    Newtons,
    "N"
);
quantity!(
    /// Mechanical stress in pascals (SI). Distinct from [`Pascals`]
    /// (an applied load) to keep residual film stress and external
    /// pressure from being confused.
    StressPa,
    "Pa (stress)"
);
quantity!(
    /// Blood pressure in clinical millimeters of mercury.
    MillimetersHg,
    "mmHg"
);

impl Meters {
    /// Constructs a length from micrometers (the natural unit of the
    /// paper's geometry: 100 µm membranes on a 150 µm pitch).
    #[inline]
    pub fn from_microns(um: f64) -> Self {
        Meters(um * 1e-6)
    }

    /// Returns the length expressed in micrometers.
    #[inline]
    pub fn to_microns(self) -> f64 {
        self.0 * 1e6
    }

    /// Constructs a length from nanometers.
    #[inline]
    pub fn from_nanometers(nm: f64) -> Self {
        Meters(nm * 1e-9)
    }

    /// Returns the length expressed in nanometers.
    #[inline]
    pub fn to_nanometers(self) -> f64 {
        self.0 * 1e9
    }
}

impl Farads {
    /// Constructs a capacitance from femtofarads (the scale of a single
    /// membrane element, tens of fF).
    #[inline]
    pub fn from_femtofarads(ff: f64) -> Self {
        Farads(ff * 1e-15)
    }

    /// Returns the capacitance expressed in femtofarads.
    #[inline]
    pub fn to_femtofarads(self) -> f64 {
        self.0 * 1e15
    }

    /// Constructs a capacitance from picofarads.
    #[inline]
    pub fn from_picofarads(pf: f64) -> Self {
        Farads(pf * 1e-12)
    }

    /// Returns the capacitance expressed in picofarads.
    #[inline]
    pub fn to_picofarads(self) -> f64 {
        self.0 * 1e12
    }
}

impl Pascals {
    /// Converts a clinical blood-pressure value into an SI pressure.
    #[inline]
    pub fn from_mmhg(p: MillimetersHg) -> Self {
        Pascals(p.0 * PASCALS_PER_MMHG)
    }

    /// Converts the pressure to clinical millimeters of mercury.
    #[inline]
    pub fn to_mmhg(self) -> MillimetersHg {
        MillimetersHg(self.0 / PASCALS_PER_MMHG)
    }

    /// Constructs a pressure from kilopascals.
    #[inline]
    pub fn from_kilopascals(kpa: f64) -> Self {
        Pascals(kpa * 1e3)
    }
}

impl MillimetersHg {
    /// Converts the clinical value to an SI pressure.
    #[inline]
    pub fn to_pascals(self) -> Pascals {
        Pascals::from_mmhg(self)
    }
}

impl From<MillimetersHg> for Pascals {
    fn from(p: MillimetersHg) -> Self {
        p.to_pascals()
    }
}

impl From<Pascals> for MillimetersHg {
    fn from(p: Pascals) -> Self {
        p.to_mmhg()
    }
}

/// Vacuum permittivity in F/m.
pub const EPSILON_0: f64 = 8.854_187_812_8e-12;

/// Boltzmann constant in J/K, used for kT/C noise modeling downstream.
pub const BOLTZMANN: f64 = 1.380_649e-23;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmhg_round_trips_through_pascals() {
        let bp = MillimetersHg(120.0);
        let pa = bp.to_pascals();
        assert!((pa.value() - 15_998.7).abs() < 0.5, "got {pa}");
        let back = pa.to_mmhg();
        assert!((back.value() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn micron_conversions_are_exact_enough() {
        let side = Meters::from_microns(100.0);
        assert!((side.value() - 100e-6).abs() < 1e-18);
        assert!((side.to_microns() - 100.0).abs() < 1e-9);
        let nm = Meters::from_nanometers(250.0);
        assert!((nm.to_nanometers() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn femtofarad_conversions() {
        let c = Farads::from_femtofarads(47.0);
        assert!((c.to_femtofarads() - 47.0).abs() < 1e-9);
        assert!((c.to_picofarads() - 0.047).abs() < 1e-12);
        let c2 = Farads::from_picofarads(1.5);
        assert!((c2.to_femtofarads() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Pascals(100.0);
        let b = Pascals(40.0);
        assert_eq!((a + b).value(), 140.0);
        assert_eq!((a - b).value(), 60.0);
        assert_eq!((a * 2.0).value(), 200.0);
        assert_eq!((2.0 * a).value(), 200.0);
        assert_eq!((a / 4.0).value(), 25.0);
        assert_eq!(a / b, 2.5);
        assert_eq!((-a).value(), -100.0);
        let mut c = a;
        c += b;
        assert_eq!(c.value(), 140.0);
        c -= b;
        assert_eq!(c.value(), 100.0);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Farads = [1.0, 2.0, 3.0].iter().map(|&v| Farads(v)).sum();
        assert_eq!(total.value(), 6.0);
    }

    #[test]
    fn display_includes_symbol() {
        assert_eq!(format!("{}", Volts(5.0)), "5 V");
        assert_eq!(format!("{}", MillimetersHg(80.0)), "80 mmHg");
    }

    #[test]
    fn from_impls_match_explicit_conversions() {
        let p: Pascals = MillimetersHg(100.0).into();
        assert!((p.value() - 13_332.2).abs() < 0.1);
        let m: MillimetersHg = Pascals(PASCALS_PER_MMHG).into();
        assert!((m.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abs_and_is_finite() {
        assert_eq!(Pascals(-3.0).abs().value(), 3.0);
        assert!(Pascals(1.0).is_finite());
        assert!(!Pascals(f64::NAN).is_finite());
    }
}

//! Viscoelastic creep of the PDMS contact coat.
//!
//! The second slow drift source of a strapped-on tactile sensor (after
//! [`crate::thermal`]): the PDMS layer between chip and skin is
//! viscoelastic, so under the constant strap load it keeps deforming
//! after application — the transmitted hold-down pressure *relaxes* over
//! minutes. A session calibrated at strap-on therefore reads
//! progressively low until the coat settles.
//!
//! Model: a standard-linear-solid (Zener) relaxation with one dominant
//! time constant,
//!
//! ```text
//! p(t) = p∞ + (p0 − p∞) · e^{−t/τ},   p∞ = (1 − r) · p0
//! ```
//!
//! where `r` is the relaxing fraction of the initial contact pressure
//! and `τ` the relaxation time (minutes for Sylgard-class PDMS at
//! percent-level strains).

use crate::units::Pascals;
use crate::MemsError;

/// PDMS stress-relaxation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CreepModel {
    /// Fraction of the initial contact pressure that relaxes away
    /// (0..1).
    relaxing_fraction: f64,
    /// Relaxation time constant in seconds.
    tau_s: f64,
}

impl CreepModel {
    /// Creates a creep model.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] for a fraction outside
    /// `[0, 1)` or a non-positive time constant.
    pub fn new(relaxing_fraction: f64, tau_s: f64) -> Result<Self, MemsError> {
        if !(0.0..1.0).contains(&relaxing_fraction) {
            return Err(MemsError::InvalidGeometry(format!(
                "relaxing fraction {relaxing_fraction} must be in [0, 1)"
            )));
        }
        if !(tau_s > 0.0) {
            return Err(MemsError::InvalidGeometry(
                "relaxation time constant must be positive".into(),
            ));
        }
        Ok(CreepModel {
            relaxing_fraction,
            tau_s,
        })
    }

    /// Sylgard-184-class coat under strap load: ~8 % of the hold-down
    /// pressure relaxes with a 3-minute time constant.
    pub fn pdms_strap() -> Self {
        CreepModel::new(0.08, 180.0).expect("preset is valid")
    }

    /// No creep (rigid coat).
    pub fn none() -> Self {
        CreepModel {
            relaxing_fraction: 0.0,
            tau_s: 1.0,
        }
    }

    /// The relaxing fraction.
    pub fn relaxing_fraction(&self) -> f64 {
        self.relaxing_fraction
    }

    /// The relaxation time constant in seconds.
    pub fn tau_s(&self) -> f64 {
        self.tau_s
    }

    /// Remaining transmitted fraction of the initial contact pressure at
    /// time `t` after strap-on: `1 − r·(1 − e^{−t/τ})`, clamped for
    /// negative times.
    pub fn transmitted_fraction(&self, t_s: f64) -> f64 {
        if t_s <= 0.0 {
            return 1.0;
        }
        1.0 - self.relaxing_fraction * (1.0 - (-t_s / self.tau_s).exp())
    }

    /// The *pressure error* introduced at time `t` for a contact bias
    /// pressure: the (negative) drift a session calibrated at `t = 0`
    /// accumulates.
    pub fn pressure_drift(&self, bias: Pascals, t_s: f64) -> Pascals {
        bias * (self.transmitted_fraction(t_s) - 1.0)
    }

    /// Time (seconds) until the remaining relaxation is below a fraction
    /// `epsilon` of the initial pressure — how long to wait after
    /// strap-on before calibrating, if one calibration must last.
    ///
    /// Returns 0 when the model never exceeds `epsilon`.
    pub fn settle_time(&self, epsilon: f64) -> f64 {
        if self.relaxing_fraction <= epsilon {
            return 0.0;
        }
        // r·e^{−t/τ} = ε  →  t = τ·ln(r/ε)
        self.tau_s * (self.relaxing_fraction / epsilon).ln()
    }
}

impl Default for CreepModel {
    fn default() -> Self {
        CreepModel::pdms_strap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MillimetersHg;

    #[test]
    fn transmission_starts_full_and_relaxes_monotonically() {
        let c = CreepModel::pdms_strap();
        assert_eq!(c.transmitted_fraction(0.0), 1.0);
        assert_eq!(c.transmitted_fraction(-5.0), 1.0);
        let mut last = 1.0;
        for t in [10.0, 60.0, 180.0, 600.0, 3600.0] {
            let f = c.transmitted_fraction(t);
            assert!(f < last, "not monotone at {t}");
            last = f;
        }
        // Asymptote: 1 − r.
        let f_inf = c.transmitted_fraction(1e6);
        assert!((f_inf - 0.92).abs() < 1e-9);
    }

    #[test]
    fn drift_magnitude_is_clinically_relevant() {
        // 40 mmHg hold-down with 8 % relaxation → ~3 mmHg long-run error:
        // the reason to wait (or recalibrate) after strapping on.
        let c = CreepModel::pdms_strap();
        let bias = Pascals::from_mmhg(MillimetersHg(40.0));
        let drift = c.pressure_drift(bias, 1e6).to_mmhg().value();
        assert!((-4.0..-2.0).contains(&drift), "long-run drift {drift} mmHg");
        // Within the first 10 s the drift is still small.
        let early = c.pressure_drift(bias, 10.0).to_mmhg().value();
        assert!(early.abs() < 0.3, "early drift {early}");
    }

    #[test]
    fn settle_time_matches_the_exponential() {
        let c = CreepModel::pdms_strap();
        let t = c.settle_time(0.01);
        // After t, remaining relaxation is exactly epsilon.
        let remaining = c.relaxing_fraction() * (-(t / c.tau_s())).exp();
        assert!((remaining - 0.01).abs() < 1e-12);
        // A rigid coat needs no settling.
        assert_eq!(CreepModel::none().settle_time(0.01), 0.0);
    }

    #[test]
    fn none_model_is_identity() {
        let c = CreepModel::none();
        for t in [0.0, 100.0, 1e5] {
            assert_eq!(c.transmitted_fraction(t), 1.0);
            assert_eq!(c.pressure_drift(Pascals(5000.0), t).value(), 0.0);
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(CreepModel::new(1.0, 100.0).is_err());
        assert!(CreepModel::new(-0.1, 100.0).is_err());
        assert!(CreepModel::new(0.1, 0.0).is_err());
    }
}

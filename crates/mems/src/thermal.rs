//! Temperature dependence of the membrane transducer.
//!
//! The paper's outlook calls for field tests of "reliability and
//! stability" — and the dominant slow instability of a capacitive CMOS
//! membrane is *thermal*: the aluminum layer's large thermal-expansion
//! mismatch against the silicon substrate re-biases the laminate's
//! residual stress with temperature, shifting the membrane's stiffness
//! and therefore its deflection under bias. A skin-contact sensor swings
//! over roughly 25–37 °C between bench and body.
//!
//! Model (first-order, per layer `i`):
//!
//! * stress: `σᵢ(T) = σᵢ(T₀) + E'ᵢ·(α_substrate − αᵢ)·ΔT` — the biaxial
//!   thermal-mismatch stress of a film on a thick substrate;
//! * modulus: `Eᵢ(T) = Eᵢ(T₀)·(1 + κ·ΔT)` with the typical
//!   `κ = −60 ppm/K` softening.
//!
//! The resulting capacitance drift is converted to an *equivalent input
//! pressure* so the system experiments can report it in mmHg — the unit
//! in which a monitoring session would mis-read after a temperature
//! step, and the direct motivation for the periodic cuff recalibration
//! implemented in `tonos-core`.

use crate::capacitor::{ElectrodeGeometry, MembraneCapacitor};
use crate::material::{Laminate, Layer};
use crate::plate::SquarePlate;
use crate::units::{Farads, Meters, Pascals, StressPa};
use crate::MemsError;

/// CTE of the (thick) silicon substrate, 1/K.
pub const SILICON_CTE: f64 = 2.6e-6;

/// Typical Young's-modulus temperature coefficient, 1/K.
pub const MODULUS_TEMPCO: f64 = -60e-6;

/// Temperature-dependent membrane model.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalModel {
    layers: Vec<Layer>,
    side: Meters,
    geometry: ElectrodeGeometry,
    /// Temperature at which the nominal laminate properties hold, °C.
    reference_temp_c: f64,
}

impl ThermalModel {
    /// Builds a thermal model around a nominal stack.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] when the nominal stack or
    /// geometry is invalid at the reference temperature.
    pub fn new(
        layers: Vec<Layer>,
        side: Meters,
        geometry: ElectrodeGeometry,
        reference_temp_c: f64,
    ) -> Result<Self, MemsError> {
        // Validate eagerly at the reference point.
        let laminate = Laminate::new(layers.clone())?;
        let plate = SquarePlate::new(side, laminate)?;
        MembraneCapacitor::new(plate, geometry)?;
        Ok(ThermalModel {
            layers,
            side,
            geometry,
            reference_temp_c,
        })
    }

    /// The paper's membrane, referenced to a 25 °C lab bench.
    pub fn paper_default() -> Self {
        ThermalModel::new(
            Laminate::cmos_membrane().layers().to_vec(),
            Meters::from_microns(100.0),
            ElectrodeGeometry::paper_default(),
            25.0,
        )
        .expect("paper stack is valid")
    }

    /// Reference temperature in °C.
    pub fn reference_temp_c(&self) -> f64 {
        self.reference_temp_c
    }

    /// The membrane capacitor at a given temperature.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] if the temperature shift
    /// buckles the membrane (extreme, non-physical inputs only).
    pub fn capacitor_at(&self, temp_c: f64) -> Result<MembraneCapacitor, MemsError> {
        let dt = temp_c - self.reference_temp_c;
        let shifted: Vec<Layer> = self
            .layers
            .iter()
            .map(|layer| {
                let mut material = layer.material;
                let mismatch_stress = material.plane_strain_modulus()
                    * (SILICON_CTE - material.thermal_expansion)
                    * dt;
                material.residual_stress =
                    StressPa(material.residual_stress.value() + mismatch_stress);
                material.youngs_modulus *= 1.0 + MODULUS_TEMPCO * dt;
                Layer::new(material, layer.thickness)
            })
            .collect();
        let laminate = Laminate::new(shifted)?;
        let plate = SquarePlate::new(self.side, laminate)?;
        MembraneCapacitor::new(plate, self.geometry)
    }

    /// Capacitance change versus the reference temperature, at a bias
    /// pressure.
    ///
    /// # Errors
    ///
    /// Propagates capacitance-evaluation failures.
    pub fn baseline_shift(&self, temp_c: f64, bias: Pascals) -> Result<Farads, MemsError> {
        let hot = self.capacitor_at(temp_c)?.capacitance(bias)?;
        let nominal = self
            .capacitor_at(self.reference_temp_c)?
            .capacitance(bias)?;
        Ok(Farads(hot.value() - nominal.value()))
    }

    /// Local capacitance temperature coefficient at a bias, in F/K
    /// (finite difference over ±1 K).
    ///
    /// # Errors
    ///
    /// Propagates capacitance-evaluation failures.
    pub fn capacitance_tempco(&self, temp_c: f64, bias: Pascals) -> Result<f64, MemsError> {
        let hi = self.capacitor_at(temp_c + 1.0)?.capacitance(bias)?;
        let lo = self.capacitor_at(temp_c - 1.0)?.capacitance(bias)?;
        Ok((hi.value() - lo.value()) / 2.0)
    }

    /// The input-referred pressure error a temperature change produces:
    /// the capacitance shift divided by the pressure sensitivity at the
    /// bias point. This is what a calibrated blood-pressure reading
    /// drifts by when the die temperature moves.
    ///
    /// # Errors
    ///
    /// Propagates capacitance-evaluation failures.
    pub fn equivalent_pressure_drift(
        &self,
        temp_c: f64,
        bias: Pascals,
    ) -> Result<Pascals, MemsError> {
        let shift = self.baseline_shift(temp_c, bias)?;
        let sensitivity = self
            .capacitor_at(self.reference_temp_c)?
            .pressure_sensitivity(bias)?;
        Ok(Pascals(shift.value() / sensitivity))
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MillimetersHg;

    fn bias() -> Pascals {
        // The wrist operating point (≈ 230 mmHg membrane load).
        Pascals::from_mmhg(MillimetersHg(230.0))
    }

    #[test]
    fn reference_temperature_shows_zero_shift() {
        let t = ThermalModel::paper_default();
        let shift = t.baseline_shift(25.0, bias()).unwrap();
        assert_eq!(shift.value(), 0.0);
    }

    #[test]
    fn heating_softens_the_membrane() {
        // Aluminum expands far more than silicon, so heating makes the
        // net film stress more compressive → softer membrane → larger
        // deflection under the same bias → more capacitance.
        let t = ThermalModel::paper_default();
        let c25 = t.capacitor_at(25.0).unwrap();
        let c37 = t.capacitor_at(37.0).unwrap();
        assert!(
            c37.plate().linear_stiffness() < c25.plate().linear_stiffness(),
            "body heat must soften the stack"
        );
        let shift = t.baseline_shift(37.0, bias()).unwrap();
        assert!(shift.value() > 0.0, "capacitance rises with temperature");
    }

    #[test]
    fn bench_to_body_drift_is_millimeters_of_mercury() {
        // 25 °C → 37 °C: the equivalent pressure drift should be in the
        // single-mmHg band — small, but clinically relevant for a
        // calibrated reading, motivating periodic recalibration.
        let t = ThermalModel::paper_default();
        let drift = t.equivalent_pressure_drift(37.0, bias()).unwrap();
        let mmhg = drift.to_mmhg().value();
        assert!(
            (0.2..30.0).contains(&mmhg),
            "25→37 °C drift {mmhg:.2} mmHg out of plausible band"
        );
    }

    #[test]
    fn drift_is_monotone_and_roughly_linear_in_temperature() {
        let t = ThermalModel::paper_default();
        let d5 = t.equivalent_pressure_drift(30.0, bias()).unwrap().value();
        let d10 = t.equivalent_pressure_drift(35.0, bias()).unwrap().value();
        let d15 = t.equivalent_pressure_drift(40.0, bias()).unwrap().value();
        assert!(d5 < d10 && d10 < d15, "monotone heating drift");
        // Linearity within 20 %.
        assert!(
            (d10 - 2.0 * d5).abs() < 0.2 * d10.abs(),
            "drift strongly nonlinear: {d5} {d10}"
        );
        let _ = d15;
    }

    #[test]
    fn cooling_has_the_opposite_sign() {
        let t = ThermalModel::paper_default();
        let hot = t.baseline_shift(40.0, bias()).unwrap();
        let cold = t.baseline_shift(10.0, bias()).unwrap();
        assert!(hot.value() > 0.0);
        assert!(cold.value() < 0.0);
    }

    #[test]
    fn tempco_matches_shift_slope() {
        let t = ThermalModel::paper_default();
        let tc = t.capacitance_tempco(31.0, bias()).unwrap();
        let shift = t.baseline_shift(37.0, bias()).unwrap().value()
            - t.baseline_shift(25.0, bias()).unwrap().value();
        let slope = shift / 12.0;
        assert!(
            (tc - slope).abs() < 0.25 * slope.abs(),
            "tempco {tc:.3e} vs secant {slope:.3e}"
        );
    }

    #[test]
    fn extreme_temperatures_buckle_loudly() {
        // Hundreds of kelvin of heating eventually drive the net stress
        // compressive enough to buckle — which must be a typed error.
        let t = ThermalModel::paper_default();
        let mut failed = false;
        for temp in (100..3000).step_by(100) {
            if t.capacitor_at(temp as f64).is_err() {
                failed = true;
                break;
            }
        }
        assert!(
            failed,
            "the model must refuse a buckled membrane eventually"
        );
    }
}

//! Tissue contact coupling: PDMS layer, hold-down pressure, backpressure.
//!
//! The assembled sensor (paper Fig. 8) is pressed against the skin with a
//! hold-down pressure; a pressure tube on the back of the die applies a
//! *backpressure* that bows the membranes outward "so that they stick out
//! and touch the surface of the measured object" (§3.2). The chip surface
//! is coated with PDMS surrounded by glob-top epoxy (§2.1).
//!
//! Because the pressurized membranes protrude above the chip surface, the
//! contact force concentrates on them instead of being shared with the
//! stiff surround; [`ContactInterface::force_concentration`] captures that
//! geometric gain. The PDMS coat slightly attenuates and low-pass-filters
//! the transmitted pressure; we model the static attenuation here (temporal
//! filtering is negligible far below the PDMS mechanical resonance).

use crate::array::SensorArray;
use crate::units::Pascals;
use crate::MemsError;

/// A spatial pressure field on the skin/sensor interface, in chip
/// coordinates (meters, origin at the array centroid).
///
/// Implemented by tissue models (see `tonos-physio`) and by the simple
/// fields in this module. Object-safe so heterogeneous sources can be
/// mixed in tests.
pub trait PressureField {
    /// Contact pressure at position `(x, y)` on the interface.
    fn pressure_at(&self, x: f64, y: f64) -> Pascals;
}

/// A spatially uniform pressure field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformPressure(pub Pascals);

impl PressureField for UniformPressure {
    fn pressure_at(&self, _x: f64, _y: f64) -> Pascals {
        self.0
    }
}

/// Adapter turning a closure `(x, y) -> Pascals` into a [`PressureField`].
pub struct FnPressureField<F>(pub F)
where
    F: Fn(f64, f64) -> Pascals;

impl<F> PressureField for FnPressureField<F>
where
    F: Fn(f64, f64) -> Pascals,
{
    fn pressure_at(&self, x: f64, y: f64) -> Pascals {
        (self.0)(x, y)
    }
}

impl<T: PressureField + ?Sized> PressureField for &T {
    fn pressure_at(&self, x: f64, y: f64) -> Pascals {
        (**self).pressure_at(x, y)
    }
}

/// Static model of the sensor–tissue interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactInterface {
    /// Constant pressure with which the device is strapped/held against
    /// the skin. Adds to the external field at every element.
    pub hold_down: Pascals,
    /// Backside tube pressure bowing the membranes outward (reduces the
    /// net downward load).
    pub backpressure: Pascals,
    /// Geometric force-concentration factor of the protruding membranes
    /// (≥ 1): contact force gathered from the surrounding pitch area is
    /// carried by the membrane alone.
    pub force_concentration: f64,
    /// Static transmission factor of the PDMS coat, in (0, 1].
    pub pdms_transmission: f64,
}

impl ContactInterface {
    /// Wrist-measurement defaults: 40 mmHg hold-down, 30 mmHg backpressure,
    /// 4× concentration (pitch²/membrane² ≈ 2.25 plus PDMS funneling), 90 %
    /// PDMS transmission.
    pub fn wrist_default() -> Self {
        ContactInterface {
            hold_down: Pascals::from_mmhg(crate::units::MillimetersHg(40.0)),
            backpressure: Pascals::from_mmhg(crate::units::MillimetersHg(30.0)),
            force_concentration: 4.0,
            pdms_transmission: 0.9,
        }
    }

    /// A pass-through interface: no hold-down, no backpressure, no
    /// concentration, lossless coat. Useful for analytic tests.
    pub fn transparent() -> Self {
        ContactInterface {
            hold_down: Pascals(0.0),
            backpressure: Pascals(0.0),
            force_concentration: 1.0,
            pdms_transmission: 1.0,
        }
    }

    /// Validates the interface parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] when the concentration factor
    /// is below 1 or the PDMS transmission is outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), MemsError> {
        if self.force_concentration < 1.0 || !self.force_concentration.is_finite() {
            return Err(MemsError::InvalidGeometry(format!(
                "force concentration {} must be >= 1",
                self.force_concentration
            )));
        }
        if !(self.pdms_transmission > 0.0 && self.pdms_transmission <= 1.0) {
            return Err(MemsError::InvalidGeometry(format!(
                "PDMS transmission {} must be in (0, 1]",
                self.pdms_transmission
            )));
        }
        Ok(())
    }

    /// Net membrane load for a given external contact pressure:
    ///
    /// ```text
    /// p_net = concentration · transmission · (p_ext + hold_down) − backpressure
    /// ```
    pub fn net_element_pressure(&self, external: Pascals) -> Pascals {
        Pascals(
            self.force_concentration
                * self.pdms_transmission
                * (external.value() + self.hold_down.value())
                - self.backpressure.value(),
        )
    }

    /// Samples a pressure field at every element position of an array and
    /// returns the net per-element membrane loads (row-major).
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] for invalid interface
    /// parameters (see [`ContactInterface::validate`]).
    pub fn element_pressures<F: PressureField + ?Sized>(
        &self,
        array: &SensorArray,
        field: &F,
    ) -> Result<Vec<Pascals>, MemsError> {
        self.validate()?;
        let layout = array.layout();
        let mut out = Vec::with_capacity(layout.len());
        for row in 0..layout.rows {
            for col in 0..layout.cols {
                let (x, y) = layout.position(row, col);
                out.push(self.net_element_pressure(field.pressure_at(x, y)));
            }
        }
        Ok(out)
    }
}

impl Default for ContactInterface {
    fn default() -> Self {
        ContactInterface::wrist_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MillimetersHg;

    #[test]
    fn transparent_interface_is_identity() {
        let iface = ContactInterface::transparent();
        let p = Pascals(1234.5);
        assert_eq!(iface.net_element_pressure(p), p);
    }

    #[test]
    fn hold_down_and_backpressure_shift_the_operating_point() {
        let iface = ContactInterface {
            hold_down: Pascals(1000.0),
            backpressure: Pascals(400.0),
            force_concentration: 1.0,
            pdms_transmission: 1.0,
        };
        let net = iface.net_element_pressure(Pascals(0.0));
        assert!((net.value() - 600.0).abs() < 1e-12);
    }

    #[test]
    fn concentration_amplifies_the_signal_not_the_backpressure() {
        let iface = ContactInterface {
            hold_down: Pascals(0.0),
            backpressure: Pascals(100.0),
            force_concentration: 4.0,
            pdms_transmission: 1.0,
        };
        let a = iface.net_element_pressure(Pascals(0.0)).value();
        let b = iface.net_element_pressure(Pascals(50.0)).value();
        assert!((b - a - 200.0).abs() < 1e-12, "external delta gained 4x");
        assert!((a + 100.0).abs() < 1e-12, "backpressure applied unscaled");
    }

    #[test]
    fn pdms_attenuates_transmission() {
        let lossy = ContactInterface {
            pdms_transmission: 0.5,
            ..ContactInterface::transparent()
        };
        let net = lossy.net_element_pressure(Pascals(1000.0));
        assert!((net.value() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn element_pressures_sample_field_at_positions() {
        let array = SensorArray::paper_ideal();
        let iface = ContactInterface::transparent();
        // A field that encodes position: p = x * 1e9 + y * 1e6.
        let field = FnPressureField(|x: f64, y: f64| Pascals(x * 1e9 + y * 1e6));
        let loads = iface.element_pressures(&array, &field).unwrap();
        assert_eq!(loads.len(), 4);
        let layout = array.layout();
        for (i, (row, col)) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)]
            .into_iter()
            .enumerate()
        {
            let (x, y) = layout.position(row, col);
            assert!((loads[i].value() - (x * 1e9 + y * 1e6)).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_interface_parameters_are_rejected() {
        let array = SensorArray::paper_ideal();
        let field = UniformPressure(Pascals(0.0));
        let bad = ContactInterface {
            force_concentration: 0.5,
            ..ContactInterface::transparent()
        };
        assert!(bad.element_pressures(&array, &field).is_err());
        let bad = ContactInterface {
            pdms_transmission: 0.0,
            ..ContactInterface::transparent()
        };
        assert!(bad.element_pressures(&array, &field).is_err());
        let bad = ContactInterface {
            pdms_transmission: 1.5,
            ..ContactInterface::transparent()
        };
        assert!(bad.element_pressures(&array, &field).is_err());
    }

    #[test]
    fn wrist_default_keeps_membranes_protruding_at_rest() {
        // With no external pulse, the wrist setup's backpressure must not
        // be fully cancelled: the net load should stay moderate (membranes
        // operating near their protruding bias, not collapsed).
        let iface = ContactInterface::wrist_default();
        iface.validate().unwrap();
        let net = iface.net_element_pressure(Pascals(0.0));
        let mmhg = net.to_mmhg().value();
        assert!(
            (50.0..200.0).contains(&mmhg),
            "rest operating point {mmhg} mmHg out of band"
        );
        // And a physiological pulse modulates around that point.
        let pulse = iface.net_element_pressure(Pascals::from_mmhg(MillimetersHg(40.0)));
        assert!(pulse > net);
    }

    #[test]
    fn pressure_field_is_object_safe() {
        let boxed: Box<dyn PressureField> = Box::new(UniformPressure(Pascals(10.0)));
        assert_eq!(boxed.pressure_at(0.0, 0.0).value(), 10.0);
        // Reference passthrough impl.
        let by_ref: &dyn PressureField = &UniformPressure(Pascals(3.0));
        assert_eq!((&by_ref).pressure_at(1.0, 1.0).value(), 3.0);
    }
}

//! The tactile sensor array and its on-chip reference structure.
//!
//! The paper's chip carries a 2×2 array of membrane elements on a 150 µm
//! pitch plus a *reference structure* — a nominally identical but
//! non-released (pressure-insensitive) capacitor. The ΣΔ front end
//! integrates the **difference** between the selected sensing element and
//! the reference (paper Fig. 6), cancelling the large static baseline.
//!
//! Fabrication mismatch is modeled by perturbing each element's air gap
//! and parasitic capacitance with a seeded RNG, so arrays are reproducible
//! for tests while still exhibiting realistic fF-scale element offsets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::capacitor::ElectrodeGeometry;
use crate::element::ForceSensorElement;
use crate::plate::SquarePlate;
use crate::units::{Farads, Meters, Pascals};
use crate::MemsError;

/// Grid dimensions and pitch of the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayLayout {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Center-to-center element pitch.
    pub pitch: Meters,
}

impl ArrayLayout {
    /// The paper's layout: 2×2 elements on a 150 µm pitch (§2.1).
    pub fn paper_default() -> Self {
        ArrayLayout {
            rows: 2,
            cols: 2,
            pitch: Meters::from_microns(150.0),
        }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the layout holds no elements (never for valid layouts).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical center position of element `(row, col)` relative to the
    /// array centroid, in meters: `(x, y)` with x along columns and y along
    /// rows.
    pub fn position(&self, row: usize, col: usize) -> (f64, f64) {
        let x = (col as f64 - (self.cols as f64 - 1.0) / 2.0) * self.pitch.value();
        let y = (row as f64 - (self.rows as f64 - 1.0) / 2.0) * self.pitch.value();
        (x, y)
    }
}

impl Default for ArrayLayout {
    fn default() -> Self {
        ArrayLayout::paper_default()
    }
}

/// Relative 1-sigma mismatch magnitudes for array fabrication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MismatchModel {
    /// Relative air-gap variation (e.g. 0.01 = 1 %).
    pub gap_sigma: f64,
    /// Absolute parasitic-capacitance variation in farads.
    pub parasitic_sigma: Farads,
}

impl MismatchModel {
    /// Typical 0.8 µm-process numbers: 1 % gap spread, 0.5 fF parasitic
    /// spread.
    pub fn typical() -> Self {
        MismatchModel {
            gap_sigma: 0.01,
            parasitic_sigma: Farads::from_femtofarads(0.5),
        }
    }

    /// A perfectly matched array (useful for analytic tests).
    pub fn none() -> Self {
        MismatchModel {
            gap_sigma: 0.0,
            parasitic_sigma: Farads(0.0),
        }
    }
}

/// The sensor array: elements, layout, and the reference capacitor.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorArray {
    layout: ArrayLayout,
    elements: Vec<ForceSensorElement>,
    reference: Farads,
}

impl SensorArray {
    /// Builds a perfectly matched array from a prototype element.
    ///
    /// The reference structure is set to the prototype's rest capacitance,
    /// the design intent of the paper's reference (same stack, not
    /// released).
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] for an empty layout.
    pub fn uniform(layout: ArrayLayout, prototype: ForceSensorElement) -> Result<Self, MemsError> {
        if layout.is_empty() {
            return Err(MemsError::InvalidGeometry(
                "array layout must contain at least one element".into(),
            ));
        }
        let reference = prototype.rest_capacitance();
        let elements = vec![prototype; layout.len()];
        Ok(SensorArray {
            layout,
            elements,
            reference,
        })
    }

    /// Builds an array with seeded fabrication mismatch applied to every
    /// element (and to the reference structure's parasitic).
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] for an empty layout or when
    /// a perturbed geometry becomes invalid (pathological sigma values).
    pub fn with_mismatch(
        layout: ArrayLayout,
        base_geometry: ElectrodeGeometry,
        mismatch: MismatchModel,
        seed: u64,
    ) -> Result<Self, MemsError> {
        if layout.is_empty() {
            return Err(MemsError::InvalidGeometry(
                "array layout must contain at least one element".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut elements = Vec::with_capacity(layout.len());
        for _ in 0..layout.len() {
            let mut geom = base_geometry;
            let gap_factor = 1.0 + mismatch.gap_sigma * gaussian(&mut rng);
            geom.air_gap = Meters(base_geometry.air_gap.value() * gap_factor);
            geom.parasitic = Farads(
                base_geometry.parasitic.value()
                    + mismatch.parasitic_sigma.value() * gaussian(&mut rng),
            );
            if geom.parasitic.value() < 0.0 {
                geom.parasitic = Farads(0.0);
            }
            elements.push(ForceSensorElement::from_parts(
                SquarePlate::paper_default(),
                geom,
            )?);
        }
        // Reference structure: nominal rest capacitance of the unperturbed
        // geometry plus its own parasitic mismatch.
        let nominal = ForceSensorElement::from_parts(SquarePlate::paper_default(), base_geometry)?
            .rest_capacitance();
        let reference =
            Farads(nominal.value() + mismatch.parasitic_sigma.value() * gaussian(&mut rng));
        Ok(SensorArray {
            layout,
            elements,
            reference,
        })
    }

    /// The paper's 2×2 array with typical fabrication mismatch
    /// (deterministic for a given seed).
    pub fn paper_default(seed: u64) -> Self {
        SensorArray::with_mismatch(
            ArrayLayout::paper_default(),
            ElectrodeGeometry::paper_default(),
            MismatchModel::typical(),
            seed,
        )
        .expect("paper array is valid")
    }

    /// An ideal, perfectly matched paper array (for analytic tests).
    pub fn paper_ideal() -> Self {
        SensorArray::uniform(
            ArrayLayout::paper_default(),
            ForceSensorElement::paper_default(),
        )
        .expect("paper array is valid")
    }

    /// Array layout.
    pub fn layout(&self) -> ArrayLayout {
        self.layout
    }

    /// Overrides every element's capacitance-integration grid (speed /
    /// accuracy trade-off for systems evaluating capacitance at high
    /// rates).
    ///
    /// # Panics
    ///
    /// Panics if `grid` is odd or zero.
    pub fn with_grid(self, grid: usize) -> Self {
        SensorArray {
            layout: self.layout,
            elements: self
                .elements
                .into_iter()
                .map(|e| e.with_grid(grid))
                .collect(),
            reference: self.reference,
        }
    }

    /// Borrow the element at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::ElementOutOfRange`] for indices outside the
    /// layout.
    pub fn element(&self, row: usize, col: usize) -> Result<&ForceSensorElement, MemsError> {
        if row >= self.layout.rows || col >= self.layout.cols {
            return Err(MemsError::ElementOutOfRange {
                row,
                col,
                rows: self.layout.rows,
                cols: self.layout.cols,
            });
        }
        Ok(&self.elements[row * self.layout.cols + col])
    }

    /// Iterates over `((row, col), element)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), &ForceSensorElement)> {
        let cols = self.layout.cols;
        self.elements
            .iter()
            .enumerate()
            .map(move |(i, e)| ((i / cols, i % cols), e))
    }

    /// The fixed reference capacitance the modulator compares against.
    pub fn reference_capacitance(&self) -> Farads {
        self.reference
    }

    /// Evaluates every element's capacitance for a per-element pressure
    /// slice (row-major order, length = element count).
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] on a length mismatch and
    /// propagates per-element capacitance errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use tonos_mems::array::SensorArray;
    /// use tonos_mems::units::Pascals;
    ///
    /// # fn main() -> Result<(), tonos_mems::MemsError> {
    /// let array = SensorArray::paper_ideal();
    /// let caps = array.capacitances(&[Pascals(0.0); 4])?;
    /// assert_eq!(caps.len(), 4);
    /// # Ok(())
    /// # }
    /// ```
    pub fn capacitances(&self, pressures: &[Pascals]) -> Result<Vec<Farads>, MemsError> {
        if pressures.len() != self.elements.len() {
            return Err(MemsError::InvalidGeometry(format!(
                "expected {} pressures, got {}",
                self.elements.len(),
                pressures.len()
            )));
        }
        self.elements
            .iter()
            .zip(pressures)
            .map(|(e, &p)| e.capacitance(p))
            .collect()
    }
}

/// Standard-normal sample via Box–Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MillimetersHg;

    #[test]
    fn layout_positions_are_centered() {
        let layout = ArrayLayout::paper_default();
        let (x00, y00) = layout.position(0, 0);
        let (x11, y11) = layout.position(1, 1);
        assert!((x00 + 75e-6).abs() < 1e-12);
        assert!((y00 + 75e-6).abs() < 1e-12);
        assert!((x11 - 75e-6).abs() < 1e-12);
        assert!((y11 - 75e-6).abs() < 1e-12);
        // Centroid of all positions is the origin.
        let mut cx = 0.0;
        let mut cy = 0.0;
        for r in 0..layout.rows {
            for c in 0..layout.cols {
                let (x, y) = layout.position(r, c);
                cx += x;
                cy += y;
            }
        }
        assert!(cx.abs() < 1e-18 && cy.abs() < 1e-18);
    }

    #[test]
    fn ideal_array_has_zero_differential_offset() {
        let array = SensorArray::paper_ideal();
        let caps = array.capacitances(&[Pascals(0.0); 4]).unwrap();
        for c in caps {
            assert!((c.value() - array.reference_capacitance().value()).abs() < 1e-24);
        }
    }

    #[test]
    fn mismatch_is_deterministic_per_seed() {
        let a = SensorArray::paper_default(7);
        let b = SensorArray::paper_default(7);
        let c = SensorArray::paper_default(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mismatch_offsets_are_femtofarad_scale() {
        let array = SensorArray::paper_default(42);
        let caps = array.capacitances(&[Pascals(0.0); 4]).unwrap();
        let reference = array.reference_capacitance();
        let mut max_offset = 0.0_f64;
        for c in caps {
            let off = (c.to_femtofarads() - reference.to_femtofarads()).abs();
            max_offset = max_offset.max(off);
        }
        assert!(
            max_offset > 0.001 && max_offset < 10.0,
            "offset {max_offset} fF implausible for 1% gap mismatch"
        );
    }

    #[test]
    fn element_indexing_and_bounds() {
        let array = SensorArray::paper_ideal();
        assert!(array.element(0, 0).is_ok());
        assert!(array.element(1, 1).is_ok());
        let err = array.element(2, 0).unwrap_err();
        assert!(matches!(err, MemsError::ElementOutOfRange { .. }));
        let err = array.element(0, 2).unwrap_err();
        assert!(matches!(err, MemsError::ElementOutOfRange { .. }));
    }

    #[test]
    fn iter_visits_all_elements_in_row_major_order() {
        let array = SensorArray::paper_ideal();
        let indices: Vec<_> = array.iter().map(|(rc, _)| rc).collect();
        assert_eq!(indices, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn capacitances_rejects_wrong_slice_length() {
        let array = SensorArray::paper_ideal();
        let err = array.capacitances(&[Pascals(0.0); 3]).unwrap_err();
        assert!(matches!(err, MemsError::InvalidGeometry(_)));
    }

    #[test]
    fn loaded_element_rises_above_reference() {
        let array = SensorArray::paper_ideal();
        let p = Pascals::from_mmhg(MillimetersHg(120.0));
        let caps = array
            .capacitances(&[p, Pascals(0.0), Pascals(0.0), Pascals(0.0)])
            .unwrap();
        assert!(caps[0] > array.reference_capacitance());
        assert!((caps[1].value() - array.reference_capacitance().value()).abs() < 1e-24);
    }

    #[test]
    fn empty_layout_is_rejected() {
        let layout = ArrayLayout {
            rows: 0,
            cols: 2,
            pitch: Meters::from_microns(150.0),
        };
        assert!(SensorArray::uniform(layout, ForceSensorElement::paper_default()).is_err());
        assert!(SensorArray::with_mismatch(
            layout,
            ElectrodeGeometry::paper_default(),
            MismatchModel::none(),
            0,
        )
        .is_err());
    }

    #[test]
    fn larger_layouts_are_supported() {
        // The paper notes the mux design "can be easily extended to larger
        // array sizes"; the model must scale too.
        let layout = ArrayLayout {
            rows: 4,
            cols: 4,
            pitch: Meters::from_microns(150.0),
        };
        let array = SensorArray::with_mismatch(
            layout,
            ElectrodeGeometry::paper_default(),
            MismatchModel::typical(),
            3,
        )
        .unwrap();
        assert_eq!(array.layout().len(), 16);
        assert!(array.element(3, 3).is_ok());
    }

    #[test]
    fn zero_sigma_mismatch_matches_ideal() {
        let array = SensorArray::with_mismatch(
            ArrayLayout::paper_default(),
            ElectrodeGeometry::paper_default(),
            MismatchModel::none(),
            99,
        )
        .unwrap();
        let ideal = SensorArray::paper_ideal();
        let a = array.capacitances(&[Pascals(0.0); 4]).unwrap();
        let b = ideal.capacitances(&[Pascals(0.0); 4]).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x.value() - y.value()).abs() < 1e-24);
        }
    }
}

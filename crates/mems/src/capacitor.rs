//! Deflection-dependent capacitance of one membrane element.
//!
//! The transducer capacitance is formed between the membrane's second-metal
//! top electrode and the polysilicon bottom electrode on the substrate
//! (paper Fig. 2). As the membrane deflects toward the substrate the local
//! gap shrinks and the capacitance rises; the readout ΣΔ-modulator converts
//! the difference against an on-chip reference capacitor.
//!
//! The capacitance is evaluated by numerically integrating the
//! parallel-plate density over the deflected profile,
//!
//! ```text
//! C(w0) = C_par + ε0 ∬_electrode dA / (g_eff − w(x, y)),
//! ```
//!
//! where `g_eff` is the structural air gap plus the dielectric stack's
//! equivalent series gap (`t_diel / εr`) and `w(x,y)` the clamped-plate
//! profile from [`crate::plate`]. Touch-mode operation (deflection reaching
//! the air gap) is rejected with [`MemsError::MembraneCollapse`]: the
//! paper's device never operates collapsed.

use crate::plate::SquarePlate;
use crate::units::{Farads, Meters, Pascals, EPSILON_0};
use crate::MemsError;

/// Electrode and gap geometry of a membrane capacitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectrodeGeometry {
    /// Side length of the (square, centered) top electrode. Must not exceed
    /// the membrane side.
    pub electrode_side: Meters,
    /// Structural air gap between the membrane underside and the dielectric
    /// covering the bottom electrode; the deflection budget before touch.
    pub air_gap: Meters,
    /// Equivalent series gap of the dielectric layers between the
    /// electrodes (`t_diel / εr`); it never closes, so the capacitance
    /// stays finite even near touch.
    pub dielectric_gap: Meters,
    /// Deflection-independent parasitic (interconnect, fringe) capacitance.
    pub parasitic: Farads,
}

impl ElectrodeGeometry {
    /// Geometry matching the paper's 0.8 µm CMOS process: an 80 µm square
    /// metal-2 electrode inside the 100 µm membrane, a 1 µm sacrificial
    /// metal-1 air gap, a 0.25 µm equivalent dielectric gap, and 20 fF of
    /// parasitics.
    pub fn paper_default() -> Self {
        ElectrodeGeometry {
            electrode_side: Meters::from_microns(80.0),
            air_gap: Meters::from_microns(1.0),
            dielectric_gap: Meters::from_microns(0.25),
            parasitic: Farads::from_femtofarads(20.0),
        }
    }
}

impl Default for ElectrodeGeometry {
    fn default() -> Self {
        ElectrodeGeometry::paper_default()
    }
}

/// A single membrane capacitor: plate mechanics plus electrode geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct MembraneCapacitor {
    plate: SquarePlate,
    geometry: ElectrodeGeometry,
    /// Simpson integration intervals per axis (even, ≥ 2).
    grid: usize,
}

/// Default Simpson grid (intervals per axis).
const DEFAULT_GRID: usize = 32;

impl MembraneCapacitor {
    /// Combines plate mechanics and electrode geometry.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] when the electrode is larger
    /// than the membrane or any gap is non-positive.
    pub fn new(plate: SquarePlate, geometry: ElectrodeGeometry) -> Result<Self, MemsError> {
        if geometry.electrode_side.value() <= 0.0 {
            return Err(MemsError::InvalidGeometry(
                "electrode side must be positive".into(),
            ));
        }
        if geometry.electrode_side.value() > plate.side().value() {
            return Err(MemsError::InvalidGeometry(format!(
                "electrode side {:.1} um exceeds membrane side {:.1} um",
                geometry.electrode_side.to_microns(),
                plate.side().to_microns()
            )));
        }
        if geometry.air_gap.value() <= 0.0 || geometry.dielectric_gap.value() <= 0.0 {
            return Err(MemsError::InvalidGeometry(
                "air gap and dielectric gap must be positive".into(),
            ));
        }
        if geometry.parasitic.value() < 0.0 {
            return Err(MemsError::InvalidGeometry(
                "parasitic capacitance cannot be negative".into(),
            ));
        }
        Ok(MembraneCapacitor {
            plate,
            geometry,
            grid: DEFAULT_GRID,
        })
    }

    /// The paper's element: 100 µm CMOS membrane with the default
    /// electrode geometry.
    pub fn paper_default() -> Self {
        MembraneCapacitor::new(
            SquarePlate::paper_default(),
            ElectrodeGeometry::paper_default(),
        )
        .expect("paper geometry is valid")
    }

    /// Overrides the Simpson integration grid (intervals per axis).
    ///
    /// # Panics
    ///
    /// Panics if `grid` is odd or zero (Simpson's rule needs an even,
    /// positive interval count).
    pub fn with_grid(mut self, grid: usize) -> Self {
        assert!(
            grid >= 2 && grid.is_multiple_of(2),
            "Simpson grid must be even and >= 2"
        );
        self.grid = grid;
        self
    }

    /// The mechanical plate model.
    pub fn plate(&self) -> &SquarePlate {
        &self.plate
    }

    /// The electrode geometry.
    pub fn geometry(&self) -> &ElectrodeGeometry {
        &self.geometry
    }

    /// Capacitance with the membrane held at a given center deflection.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::MembraneCollapse`] when the deflection reaches
    /// the air gap (touch mode).
    pub fn capacitance_at_deflection(&self, w0: Meters) -> Result<Farads, MemsError> {
        if w0.value() >= self.geometry.air_gap.value() {
            return Err(MemsError::MembraneCollapse {
                deflection: w0,
                gap: self.geometry.air_gap,
                pressure: self.plate.pressure_for_deflection(w0),
            });
        }
        let g_eff = self.geometry.air_gap.value() + self.geometry.dielectric_gap.value();
        let half = self.geometry.electrode_side.value() / 2.0;
        let n = self.grid;
        let h = self.geometry.electrode_side.value() / n as f64;

        // Separable Simpson weights over the square electrode.
        let weight = |i: usize| -> f64 {
            if i == 0 || i == n {
                1.0
            } else if i % 2 == 1 {
                4.0
            } else {
                2.0
            }
        };

        let mut integral = 0.0;
        for i in 0..=n {
            let x = -half + i as f64 * h;
            let wx = weight(i);
            for j in 0..=n {
                let y = -half + j as f64 * h;
                let w = self.plate.deflection_at(w0, x, y).value();
                integral += wx * weight(j) / (g_eff - w);
            }
        }
        integral *= (h / 3.0) * (h / 3.0);
        Ok(Farads(EPSILON_0 * integral) + self.geometry.parasitic)
    }

    /// Capacitance under a net applied pressure (positive toward the
    /// bottom electrode).
    ///
    /// # Errors
    ///
    /// Propagates [`MemsError::MembraneCollapse`] for loads that close the
    /// air gap and [`MemsError::SolveDiverged`] for non-finite pressure.
    pub fn capacitance(&self, pressure: Pascals) -> Result<Farads, MemsError> {
        let w0 = self.plate.center_deflection(pressure)?;
        self.capacitance_at_deflection(w0).map_err(|e| match e {
            // Attach the actual pressure to the collapse report.
            MemsError::MembraneCollapse {
                deflection, gap, ..
            } => MemsError::MembraneCollapse {
                deflection,
                gap,
                pressure,
            },
            other => other,
        })
    }

    /// Capacitance at rest (zero net pressure).
    pub fn rest_capacitance(&self) -> Farads {
        self.capacitance(Pascals(0.0))
            .expect("zero load cannot collapse the membrane")
    }

    /// Small-signal pressure sensitivity `dC/dp` (F/Pa) at a bias pressure,
    /// via a symmetric finite difference sized to the physiological scale
    /// (±10 Pa ≈ ±0.075 mmHg).
    ///
    /// # Errors
    ///
    /// Propagates capacitance-evaluation errors at the probe points.
    pub fn pressure_sensitivity(&self, bias: Pascals) -> Result<f64, MemsError> {
        let dp = 10.0;
        let hi = self.capacitance(Pascals(bias.value() + dp))?;
        let lo = self.capacitance(Pascals(bias.value() - dp))?;
        Ok((hi.value() - lo.value()) / (2.0 * dp))
    }

    /// The net pressure at which the membrane would touch the bottom of
    /// the cavity (collapse load), from the forward load–deflection
    /// relation evaluated at the air gap.
    pub fn collapse_pressure(&self) -> Pascals {
        self.plate.pressure_for_deflection(self.geometry.air_gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MillimetersHg;

    fn cap() -> MembraneCapacitor {
        MembraneCapacitor::paper_default()
    }

    #[test]
    fn rest_capacitance_matches_parallel_plate_estimate() {
        let c = cap();
        let g = c.geometry();
        let a = g.electrode_side.value();
        let ideal = EPSILON_0 * a * a / (g.air_gap.value() + g.dielectric_gap.value());
        let measured = c.rest_capacitance().value() - g.parasitic.value();
        let rel = (measured - ideal).abs() / ideal;
        assert!(
            rel < 1e-6,
            "flat membrane must match the analytic plate: {rel}"
        );
    }

    #[test]
    fn rest_capacitance_is_tens_of_femtofarads() {
        let c = cap().rest_capacitance().to_femtofarads();
        assert!((30.0..120.0).contains(&c), "rest C {c} fF implausible");
    }

    #[test]
    fn capacitance_increases_with_downward_pressure() {
        let c = cap();
        let rest = c.rest_capacitance();
        let loaded = c
            .capacitance(Pascals::from_mmhg(MillimetersHg(100.0)))
            .unwrap();
        assert!(loaded > rest);
    }

    #[test]
    fn capacitance_decreases_with_backpressure() {
        let c = cap();
        let rest = c.rest_capacitance();
        let bowed = c
            .capacitance(Pascals::from_mmhg(MillimetersHg(-100.0)))
            .unwrap();
        assert!(bowed < rest);
    }

    #[test]
    fn capacitance_is_monotone_over_the_clinical_range() {
        let c = cap();
        let mut last = f64::MIN;
        for mmhg in (-200..=300).step_by(20) {
            let v = c
                .capacitance(Pascals::from_mmhg(MillimetersHg(mmhg as f64)))
                .unwrap()
                .value();
            assert!(v > last, "not monotone at {mmhg} mmHg");
            last = v;
        }
    }

    #[test]
    fn near_touch_deflection_collapses() {
        let c = cap();
        let gap = c.geometry().air_gap;
        let err = c.capacitance_at_deflection(gap).unwrap_err();
        assert!(matches!(err, MemsError::MembraneCollapse { .. }));
        // Just below the gap is fine (dielectric gap keeps C finite).
        let ok = c.capacitance_at_deflection(gap * 0.999).unwrap();
        assert!(ok.is_finite());
        assert!(ok > c.rest_capacitance());
    }

    #[test]
    fn collapse_pressure_is_far_above_clinical_range() {
        let c = cap();
        let collapse = c.collapse_pressure().to_mmhg().value();
        assert!(
            collapse > 1_000.0,
            "collapse at {collapse} mmHg would break clinical operation"
        );
        // And loading beyond it errors out.
        let err = c.capacitance(Pascals::from_mmhg(MillimetersHg(collapse * 1.2)));
        assert!(matches!(err, Err(MemsError::MembraneCollapse { .. })));
    }

    #[test]
    fn grid_refinement_converges() {
        let coarse = cap().with_grid(8);
        let fine = cap().with_grid(64);
        let p = Pascals::from_mmhg(MillimetersHg(150.0));
        let cc = coarse.capacitance(p).unwrap().value();
        let cf = fine.capacitance(p).unwrap().value();
        let rel = (cc - cf).abs() / cf;
        assert!(rel < 1e-6, "Simpson refinement moved the answer by {rel}");
    }

    #[test]
    fn sensitivity_is_positive_and_grows_with_bias() {
        let c = cap();
        let s0 = c.pressure_sensitivity(Pascals(0.0)).unwrap();
        let s1 = c
            .pressure_sensitivity(Pascals::from_mmhg(MillimetersHg(200.0)))
            .unwrap();
        assert!(s0 > 0.0);
        assert!(
            s1 > s0,
            "gap shrinks under bias, so sensitivity must grow: {s1} !> {s0}"
        );
    }

    #[test]
    fn parasitic_is_additive() {
        let base = cap();
        let mut geom = *base.geometry();
        geom.parasitic = Farads::from_femtofarads(geom.parasitic.to_femtofarads() + 10.0);
        let bumped = MembraneCapacitor::new(SquarePlate::paper_default(), geom).unwrap();
        let d =
            bumped.rest_capacitance().to_femtofarads() - base.rest_capacitance().to_femtofarads();
        assert!((d - 10.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_electrode_is_rejected() {
        let mut geom = ElectrodeGeometry::paper_default();
        geom.electrode_side = Meters::from_microns(120.0);
        let err = MembraneCapacitor::new(SquarePlate::paper_default(), geom).unwrap_err();
        assert!(matches!(err, MemsError::InvalidGeometry(_)));
    }

    #[test]
    fn non_positive_gaps_are_rejected() {
        let mut geom = ElectrodeGeometry::paper_default();
        geom.air_gap = Meters(0.0);
        assert!(MembraneCapacitor::new(SquarePlate::paper_default(), geom).is_err());
        let mut geom = ElectrodeGeometry::paper_default();
        geom.dielectric_gap = Meters(-1e-9);
        assert!(MembraneCapacitor::new(SquarePlate::paper_default(), geom).is_err());
        let mut geom = ElectrodeGeometry::paper_default();
        geom.parasitic = Farads(-1e-15);
        assert!(MembraneCapacitor::new(SquarePlate::paper_default(), geom).is_err());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_grid_panics() {
        let _ = cap().with_grid(9);
    }

    #[test]
    fn deflection_nonlinearity_beats_flat_plate_average() {
        // Integrating 1/(g - w) over the bowed profile must give *more*
        // capacitance than a flat plate displaced by the mean deflection
        // (Jensen's inequality for the convex 1/x map).
        let c = cap();
        let w0 = Meters::from_microns(0.5);
        let bowed = c.capacitance_at_deflection(w0).unwrap().value();
        // Mean deflection over the electrode area.
        let half = c.geometry().electrode_side.value() / 2.0;
        let n = 64;
        let h = 2.0 * half / n as f64;
        let mut mean = 0.0;
        for i in 0..n {
            for j in 0..n {
                let x = -half + (i as f64 + 0.5) * h;
                let y = -half + (j as f64 + 0.5) * h;
                mean += c.plate().deflection_at(w0, x, y).value();
            }
        }
        mean /= (n * n) as f64;
        let g_eff = c.geometry().air_gap.value() + c.geometry().dielectric_gap.value();
        let a = c.geometry().electrode_side.value();
        let flat = EPSILON_0 * a * a / (g_eff - mean) + c.geometry().parasitic.value();
        assert!(bowed > flat, "{bowed} !> {flat}");
    }
}

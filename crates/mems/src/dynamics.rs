//! Membrane dynamics: resonance, squeeze-film damping, and the
//! quasi-static justification.
//!
//! The whole readout chain treats the membrane as *quasi-static*: the
//! pressure frame is held constant over a 1 ms output period and the
//! capacitance follows instantaneously. That is only valid because the
//! membrane's fundamental resonance sits orders of magnitude above the
//! 500 Hz signal band — this module computes the numbers that prove it.
//!
//! Single-mode (energy-method) model on the clamped mode shape
//! `w(x,y,t) = w0(t)·φ(x)·φ(y)`:
//!
//! * modal stiffness from the plate's linear load–deflection relation,
//!   `U = ½·(k·a²/4)·w0²` (work of the uniform pressure over the swept
//!   volume);
//! * modal mass from the kinetic energy of the mode shape,
//!   `T = ½·ρ_A·(9a²/64)·ẇ0²` (since `∫φ² = 3a/8` per axis);
//! * squeeze-film damping of the thin air gap under the membrane with
//!   the standard incompressible-film coefficient `c ≈ 0.42·μ·a⁴/g³`.

use crate::plate::SquarePlate;
use crate::units::Meters;
use crate::MemsError;

/// Dynamic viscosity of air at room temperature, Pa·s.
pub const AIR_VISCOSITY: f64 = 1.85e-5;

/// Squeeze-film coefficient for a square plate (incompressible regime).
const SQUEEZE_COEFF: f64 = 0.42;

/// Single-mode dynamic model of a membrane over its air gap.
#[derive(Debug, Clone, PartialEq)]
pub struct MembraneDynamics {
    /// Modal stiffness in N/m (referred to center deflection).
    modal_stiffness: f64,
    /// Modal mass in kg.
    modal_mass: f64,
    /// Squeeze-film damping coefficient in N·s/m.
    damping: f64,
}

impl MembraneDynamics {
    /// Builds the dynamic model from the plate and its air gap.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] for a non-positive gap.
    pub fn new(plate: &SquarePlate, air_gap: Meters) -> Result<Self, MemsError> {
        if !(air_gap.value() > 0.0) {
            return Err(MemsError::InvalidGeometry(
                "air gap must be positive".into(),
            ));
        }
        let a = plate.side().value();
        let k_lin = plate.linear_stiffness(); // Pa per meter of deflection
                                              // Work of a uniform pressure p over the swept volume V = w0·a²/4
                                              // with p = k·w0 gives U = (k·a²/8)·w0² → modal stiffness k·a²/4.
        let modal_stiffness = k_lin * a * a / 4.0;
        // Kinetic energy of the separable mode shape: ∫∫φ² = (3a/8)².
        let rho_a = plate.laminate().areal_density();
        let modal_mass = rho_a * (3.0 * a / 8.0) * (3.0 * a / 8.0);
        // Squeeze film of the backside air gap.
        let g = air_gap.value();
        let damping = SQUEEZE_COEFF * AIR_VISCOSITY * a.powi(4) / (g * g * g);
        Ok(MembraneDynamics {
            modal_stiffness,
            modal_mass,
            damping,
        })
    }

    /// The paper's membrane over its 1 µm gap.
    pub fn paper_default() -> Self {
        MembraneDynamics::new(&SquarePlate::paper_default(), Meters::from_microns(1.0))
            .expect("paper geometry is valid")
    }

    /// Undamped natural frequency in Hz.
    pub fn natural_frequency_hz(&self) -> f64 {
        (self.modal_stiffness / self.modal_mass).sqrt() / (2.0 * std::f64::consts::PI)
    }

    /// Quality factor `Q = √(k·m) / c` of the squeeze-film-damped mode.
    pub fn quality_factor(&self) -> f64 {
        (self.modal_stiffness * self.modal_mass).sqrt() / self.damping
    }

    /// Mechanical response time constant: for the overdamped squeeze-film
    /// regime (`Q < ½`) the slow pole `c/k`; otherwise the ring-down
    /// envelope `2m/c`.
    pub fn response_time_s(&self) -> f64 {
        if self.quality_factor() < 0.5 {
            self.damping / self.modal_stiffness
        } else {
            2.0 * self.modal_mass / self.damping
        }
    }

    /// Magnitude of the normalized force-to-deflection transfer at a
    /// frequency (1.0 at DC): `|H(f)| = 1/√((1−r²)² + (r/Q)²)`,
    /// `r = f/f0`.
    pub fn response_magnitude(&self, freq_hz: f64) -> f64 {
        let r = freq_hz / self.natural_frequency_hz();
        let q = self.quality_factor();
        1.0 / ((1.0 - r * r).powi(2) + (r / q).powi(2)).sqrt()
    }

    /// True when the membrane may be treated as quasi-static over a
    /// signal bandwidth: the response at the band edge deviates from DC
    /// by less than 0.1 % *and* the response time is much shorter than a
    /// sample period.
    pub fn is_quasi_static_for(&self, bandwidth_hz: f64, sample_period_s: f64) -> bool {
        (self.response_magnitude(bandwidth_hz) - 1.0).abs() < 1e-3
            && self.response_time_s() < sample_period_s / 10.0
    }

    /// Modal stiffness in N/m.
    pub fn modal_stiffness(&self) -> f64 {
        self.modal_stiffness
    }

    /// Modal mass in kg.
    pub fn modal_mass(&self) -> f64 {
        self.modal_mass
    }

    /// Squeeze-film damping coefficient in N·s/m.
    pub fn damping_coefficient(&self) -> f64 {
        self.damping
    }
}

impl Default for MembraneDynamics {
    fn default() -> Self {
        MembraneDynamics::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resonance_is_in_the_megahertz_range() {
        let dyn_model = MembraneDynamics::paper_default();
        let f0 = dyn_model.natural_frequency_hz();
        assert!(
            (0.5e6..20e6).contains(&f0),
            "a 100 um / 3 um CMOS membrane resonates in the MHz band, got {f0:.3e} Hz"
        );
    }

    #[test]
    fn quasi_static_over_the_signal_band() {
        let dyn_model = MembraneDynamics::paper_default();
        // 500 Hz band, 1 ms output period (the paper's numbers).
        assert!(dyn_model.is_quasi_static_for(500.0, 1e-3));
        // And even over the full modulator rate.
        assert!((dyn_model.response_magnitude(64_000.0) - 1.0).abs() < 0.01);
    }

    #[test]
    fn dc_response_is_unity_and_resonance_peaks() {
        let d = MembraneDynamics::paper_default();
        assert!((d.response_magnitude(0.0) - 1.0).abs() < 1e-12);
        let f0 = d.natural_frequency_hz();
        if d.quality_factor() > 1.0 {
            assert!(d.response_magnitude(f0) > 1.0);
        }
        // Far above resonance the response rolls off.
        assert!(d.response_magnitude(100.0 * f0) < 1e-3);
    }

    #[test]
    fn squeeze_film_damping_scales_inversely_with_gap_cubed() {
        let plate = SquarePlate::paper_default();
        let tight = MembraneDynamics::new(&plate, Meters::from_microns(0.5)).unwrap();
        let loose = MembraneDynamics::new(&plate, Meters::from_microns(1.0)).unwrap();
        let ratio = tight.damping_coefficient() / loose.damping_coefficient();
        assert!((ratio - 8.0).abs() < 1e-9, "c ~ 1/g^3, got ratio {ratio}");
        // Tighter gap, more damping, lower Q.
        assert!(tight.quality_factor() < loose.quality_factor());
    }

    #[test]
    fn response_time_is_sub_microsecond_scale() {
        let d = MembraneDynamics::paper_default();
        assert!(
            d.response_time_s() < 1e-4,
            "response time {:.3e} s too slow for 1 kS/s frames",
            d.response_time_s()
        );
    }

    #[test]
    fn invalid_gap_is_rejected() {
        let plate = SquarePlate::paper_default();
        assert!(MembraneDynamics::new(&plate, Meters(0.0)).is_err());
    }

    #[test]
    fn modal_quantities_are_physical() {
        let d = MembraneDynamics::paper_default();
        assert!(d.modal_mass() > 0.0);
        assert!(d.modal_stiffness() > 0.0);
        assert!(d.damping_coefficient() > 0.0);
        // Modal mass should be a fraction of the total membrane mass.
        let plate = SquarePlate::paper_default();
        let total_mass =
            plate.laminate().areal_density() * plate.side().value() * plate.side().value();
        assert!(d.modal_mass() < total_mass);
        assert!(d.modal_mass() > 0.05 * total_mass);
    }
}

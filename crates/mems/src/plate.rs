//! Clamped square-plate mechanics of a single released membrane.
//!
//! The paper's force-sensitive element is a square membrane (side 100 µm,
//! thickness 3 µm) clamped on all four edges by the surrounding substrate
//! after the KOH back-etch release. Pressure applied from the top (tissue
//! contact) deflects the composite plate toward the poly bottom electrode;
//! backpressure through the PCB tube (paper Fig. 8) bows it the other way.
//!
//! We use the standard energy-method load–deflection relation for a
//! composite square diaphragm, combining
//!
//! * linear **bending** stiffness of the laminate (clamped-plate
//!   coefficient `w0 = 0.00126 · p·a⁴ / D`),
//! * linear **residual-tension** stiffness (`p = 3.393 · N0 · w0 / (a/2)²`),
//! * the cubic **stretching** term that limits large deflections
//!   (`p = 1.978/(1−0.295ν) · E·t · w0³ / (a/2)⁴`, Maier-Schneider
//!   coefficients for square membranes).
//!
//! The deflection *profile* uses the classic clamped mode shape
//! `w(x,y) = w0 · φ(x)·φ(y)` with `φ(u) = (1 + cos 2πu/a)/2`, which has zero
//! displacement and zero slope at the clamped edges.

use crate::material::Laminate;
use crate::units::{Meters, Pascals};
use crate::MemsError;

/// Clamped-square-plate center-deflection coefficient: `w0 = ALPHA p a^4 / D`.
const ALPHA_BENDING: f64 = 0.001_26;
/// Square-membrane residual-tension coefficient (half-side convention).
const C_TENSION: f64 = 3.393;
/// Square-membrane cubic stretching coefficient (half-side convention).
const C_STRETCH: f64 = 1.978;
/// Poisson correction factor of the stretching term.
const C_STRETCH_POISSON: f64 = 0.295;

/// Maximum Newton iterations for the load–deflection inversion.
const MAX_SOLVE_ITERATIONS: usize = 80;

/// A clamped square composite membrane.
///
/// Construct with [`SquarePlate::new`] or [`SquarePlate::paper_default`]
/// (the paper's 100 µm × 3 µm CMOS stack).
#[derive(Debug, Clone, PartialEq)]
pub struct SquarePlate {
    side: Meters,
    laminate: Laminate,
    /// Linear stiffness `dp/dw0` at zero deflection, Pa/m.
    k_linear: f64,
    /// Cubic stiffness coefficient, Pa/m³.
    k_cubic: f64,
}

impl SquarePlate {
    /// Builds a plate from its side length and laminate stack and
    /// precomputes the load–deflection stiffness coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] if the side length is not
    /// positive, or if a net-compressive stack makes the linearized
    /// stiffness non-positive (a buckled membrane, which the model does
    /// not support).
    pub fn new(side: Meters, laminate: Laminate) -> Result<Self, MemsError> {
        if side.value() <= 0.0 || !side.is_finite() {
            return Err(MemsError::InvalidGeometry(
                "plate side length must be positive and finite".into(),
            ));
        }
        let a = side.value();
        let half = a / 2.0;
        let d = laminate.flexural_rigidity();
        let n0 = laminate.membrane_tension();
        let t = laminate.total_thickness().value();

        let k_bend = d / (ALPHA_BENDING * a.powi(4));
        // Compressive prestress (n0 < 0) softens the plate; we allow it as
        // long as the net linear stiffness stays positive.
        let k_tension = C_TENSION * n0 / (half * half);
        let k_linear = k_bend + k_tension;
        if k_linear <= 0.0 {
            return Err(MemsError::InvalidGeometry(format!(
                "membrane is buckled: net linear stiffness {k_linear:.3e} Pa/m <= 0 \
                 (compressive prestress exceeds bending stiffness)"
            )));
        }

        let nu = laminate.effective_poisson();
        let e = laminate.effective_modulus();
        let k_cubic = C_STRETCH / (1.0 - C_STRETCH_POISSON * nu) * e * t / half.powi(4);

        Ok(SquarePlate {
            side,
            laminate,
            k_linear,
            k_cubic,
        })
    }

    /// The paper's membrane: 100 µm side, 3 µm CMOS oxide/metal/nitride
    /// stack (§2.1).
    pub fn paper_default() -> Self {
        SquarePlate::new(Meters::from_microns(100.0), Laminate::cmos_membrane())
            .expect("paper geometry is valid")
    }

    /// Side length of the square membrane.
    pub fn side(&self) -> Meters {
        self.side
    }

    /// The laminate stack.
    pub fn laminate(&self) -> &Laminate {
        &self.laminate
    }

    /// Linearized stiffness `dp/dw0` at zero deflection, in Pa/m.
    pub fn linear_stiffness(&self) -> f64 {
        self.k_linear
    }

    /// Cubic stretching stiffness, in Pa/m³.
    pub fn cubic_stiffness(&self) -> f64 {
        self.k_cubic
    }

    /// Small-signal compliance `dw0/dp` at zero deflection, in m/Pa.
    /// This is the mechanical sensitivity the readout chain sees for the
    /// millimeter-of-mercury–scale pressure pulses of the application.
    pub fn linear_compliance(&self) -> f64 {
        1.0 / self.k_linear
    }

    /// Pressure required to hold a given center deflection (exact forward
    /// relation `p = k1·w0 + k3·w0³`). Positive deflection is *toward the
    /// bottom electrode* (pressure applied from the top).
    pub fn pressure_for_deflection(&self, w0: Meters) -> Pascals {
        let w = w0.value();
        Pascals(self.k_linear * w + self.k_cubic * w * w * w)
    }

    /// Center deflection under a uniform net pressure, inverting the cubic
    /// load–deflection relation with a safeguarded Newton iteration.
    ///
    /// Positive pressure means a net load pushing the membrane toward the
    /// bottom electrode; negative pressure (backside pressurization) bows
    /// it away.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::SolveDiverged`] if the iteration fails (only
    /// possible for non-finite inputs).
    pub fn center_deflection(&self, pressure: Pascals) -> Result<Meters, MemsError> {
        let p = pressure.value();
        if !p.is_finite() {
            return Err(MemsError::SolveDiverged {
                pressure,
                iterations: 0,
            });
        }
        if p == 0.0 {
            return Ok(Meters(0.0));
        }
        // The cubic is odd and strictly monotone (k1, k3 > 0), so a unique
        // real root exists. Newton from the linear estimate converges
        // quadratically; fall back to bisection brackets for safety.
        let mut w = p / self.k_linear;
        let mut lo = 0.0_f64.min(w * 2.0);
        let mut hi = 0.0_f64.max(w * 2.0);
        // Ensure the bracket contains the root.
        while self.residual(hi) < p {
            hi = (hi * 2.0).max(1e-12);
        }
        while self.residual(lo) > p {
            lo = (lo * 2.0).min(-1e-12);
        }
        for iter in 0..MAX_SOLVE_ITERATIONS {
            let f = self.residual(w) - p;
            if f.abs() <= p.abs() * 1e-13 + 1e-30 {
                return Ok(Meters(w));
            }
            let df = self.k_linear + 3.0 * self.k_cubic * w * w;
            let mut next = w - f / df;
            if !(lo..=hi).contains(&next) {
                next = 0.5 * (lo + hi);
            }
            if self.residual(next) > p {
                hi = next;
            } else {
                lo = next;
            }
            if (next - w).abs() <= w.abs() * 1e-15 + 1e-24 {
                return Ok(Meters(next));
            }
            w = next;
            let _ = iter;
        }
        // Newton on a monotone cubic with a maintained bracket always makes
        // progress; reaching here means pathological input.
        Err(MemsError::SolveDiverged {
            pressure,
            iterations: MAX_SOLVE_ITERATIONS,
        })
    }

    #[inline]
    fn residual(&self, w: f64) -> f64 {
        self.k_linear * w + self.k_cubic * w * w * w
    }

    /// Normalized clamped mode shape `φ(u) = (1 + cos 2πu/a)/2` for
    /// `u ∈ [-a/2, a/2]`; zero displacement and slope at the edges,
    /// unity at the center. Returns 0 outside the membrane.
    #[inline]
    pub fn mode_shape(&self, u: f64) -> f64 {
        let a = self.side.value();
        if u.abs() > a / 2.0 {
            return 0.0;
        }
        0.5 * (1.0 + (2.0 * std::f64::consts::PI * u / a).cos())
    }

    /// Deflection at membrane coordinates `(x, y)` (origin at the center)
    /// for a given center deflection: `w(x,y) = w0 φ(x) φ(y)`.
    #[inline]
    pub fn deflection_at(&self, w0: Meters, x: f64, y: f64) -> Meters {
        Meters(w0.value() * self.mode_shape(x) * self.mode_shape(y))
    }

    /// Volume swept by the deflected membrane, `w0 · a²/4` (the separable
    /// mode shape integrates to `a/2` per axis). Useful for squeeze-film
    /// and backside-cavity reasoning.
    pub fn swept_volume(&self, w0: Meters) -> f64 {
        let a = self.side.value();
        w0.value() * a * a / 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::{Layer, Material};

    fn paper_plate() -> SquarePlate {
        SquarePlate::paper_default()
    }

    #[test]
    fn small_load_matches_linear_theory() {
        let plate = paper_plate();
        let p = Pascals(10.0); // tiny load, cubic term negligible
        let w = plate.center_deflection(p).unwrap();
        let linear = p.value() / plate.linear_stiffness();
        let rel = (w.value() - linear).abs() / linear;
        assert!(rel < 1e-6, "relative deviation from linear theory {rel}");
    }

    #[test]
    fn forward_and_inverse_round_trip() {
        let plate = paper_plate();
        for &w0_um in &[-0.5, -0.05, 0.01, 0.1, 0.4, 0.9] {
            let w0 = Meters::from_microns(w0_um);
            let p = plate.pressure_for_deflection(w0);
            let w_back = plate.center_deflection(p).unwrap();
            let rel = (w_back.value() - w0.value()).abs() / w0.value().abs();
            assert!(rel < 1e-9, "round trip failed at {w0_um} um: rel {rel}");
        }
    }

    #[test]
    fn deflection_is_odd_in_pressure() {
        let plate = paper_plate();
        let wp = plate.center_deflection(Pascals(5_000.0)).unwrap();
        let wn = plate.center_deflection(Pascals(-5_000.0)).unwrap();
        assert!((wp.value() + wn.value()).abs() < 1e-18);
    }

    #[test]
    fn deflection_is_monotone_in_pressure() {
        let plate = paper_plate();
        let mut last = f64::NEG_INFINITY;
        for i in -20..=20 {
            let p = Pascals(i as f64 * 1_000.0);
            let w = plate.center_deflection(p).unwrap().value();
            assert!(w > last, "not monotone at {p}");
            last = w;
        }
    }

    #[test]
    fn stretching_hardens_the_response() {
        let plate = paper_plate();
        // At large deflection the secant stiffness must exceed the tangent
        // stiffness at zero: w(2p) < 2 w(p).
        let p = plate.pressure_for_deflection(Meters::from_microns(0.8));
        let w1 = plate.center_deflection(p).unwrap().value();
        let w2 = plate.center_deflection(p * 2.0).unwrap().value();
        assert!(
            w2 < 2.0 * w1,
            "cubic hardening missing: {w2} !< {}",
            2.0 * w1
        );
    }

    #[test]
    fn physiological_pressures_give_sub_gap_deflections() {
        // A 100 mmHg contact pressure must deflect the membrane well below
        // the ~1 µm structural gap, otherwise the paper's device could not
        // operate linearly over the blood-pressure range.
        let plate = paper_plate();
        let p = Pascals::from_mmhg(crate::units::MillimetersHg(100.0));
        let w = plate.center_deflection(p).unwrap();
        assert!(
            w.to_microns() > 0.0005 && w.to_microns() < 0.9,
            "100 mmHg deflection {} um outside plausible band",
            w.to_microns()
        );
    }

    #[test]
    fn mode_shape_satisfies_clamped_boundary() {
        let plate = paper_plate();
        let a = plate.side().value();
        assert!((plate.mode_shape(0.0) - 1.0).abs() < 1e-15);
        assert!(plate.mode_shape(a / 2.0).abs() < 1e-15);
        assert!(plate.mode_shape(-a / 2.0).abs() < 1e-15);
        assert_eq!(plate.mode_shape(a), 0.0, "outside the membrane");
        // Zero slope at the edge: the finite-difference slope must be tiny
        // compared to the peak interior slope pi/a (~3e4 1/m here). The
        // backward difference picks up the curvature term O(phi'' * h), so
        // compare against the interior scale rather than zero.
        let h = a * 1e-7;
        let slope = (plate.mode_shape(a / 2.0) - plate.mode_shape(a / 2.0 - h)) / h;
        let peak_slope = std::f64::consts::PI / a;
        assert!(
            slope.abs() < peak_slope * 1e-3,
            "edge slope {slope} vs peak {peak_slope}"
        );
    }

    #[test]
    fn deflection_profile_is_separable_and_peaks_at_center() {
        let plate = paper_plate();
        let w0 = Meters::from_microns(0.3);
        let center = plate.deflection_at(w0, 0.0, 0.0);
        assert!((center.value() - w0.value()).abs() < 1e-20);
        let off = plate.deflection_at(w0, 20e-6, -15e-6);
        assert!(off.value() < center.value());
        assert!(off.value() > 0.0);
    }

    #[test]
    fn swept_volume_matches_analytic_integral() {
        let plate = paper_plate();
        let w0 = Meters::from_microns(0.5);
        // Numerical double integral of the mode shape.
        let a = plate.side().value();
        let n = 200;
        let h = a / n as f64;
        let mut vol = 0.0;
        for i in 0..n {
            for j in 0..n {
                let x = -a / 2.0 + (i as f64 + 0.5) * h;
                let y = -a / 2.0 + (j as f64 + 0.5) * h;
                vol += plate.deflection_at(w0, x, y).value() * h * h;
            }
        }
        let analytic = plate.swept_volume(w0);
        let rel = (vol - analytic).abs() / analytic;
        assert!(rel < 1e-3, "relative error {rel}");
    }

    #[test]
    fn tensile_stress_stiffens_the_plate() {
        let side = Meters::from_microns(100.0);
        let relaxed = Laminate::new(vec![Layer::new(
            Material {
                residual_stress: crate::units::StressPa(0.0),
                ..Material::silicon_nitride()
            },
            Meters::from_microns(3.0),
        )])
        .unwrap();
        let tensioned = Laminate::new(vec![Layer::new(
            Material::silicon_nitride(),
            Meters::from_microns(3.0),
        )])
        .unwrap();
        let k_relaxed = SquarePlate::new(side, relaxed).unwrap().linear_stiffness();
        let k_tense = SquarePlate::new(side, tensioned)
            .unwrap()
            .linear_stiffness();
        assert!(k_tense > k_relaxed);
    }

    #[test]
    fn buckled_membrane_is_rejected() {
        // A thin, strongly compressive film cannot be modeled.
        let mut m = Material::silicon_dioxide();
        m.residual_stress = crate::units::StressPa(-2e9);
        let lam = Laminate::new(vec![Layer::new(m, Meters::from_nanometers(100.0))]).unwrap();
        let err = SquarePlate::new(Meters::from_microns(100.0), lam).unwrap_err();
        assert!(matches!(err, MemsError::InvalidGeometry(_)));
    }

    #[test]
    fn invalid_side_is_rejected() {
        let err = SquarePlate::new(Meters(0.0), Laminate::cmos_membrane()).unwrap_err();
        assert!(matches!(err, MemsError::InvalidGeometry(_)));
        let err = SquarePlate::new(Meters(f64::NAN), Laminate::cmos_membrane()).unwrap_err();
        assert!(matches!(err, MemsError::InvalidGeometry(_)));
    }

    #[test]
    fn non_finite_pressure_is_an_error() {
        let plate = paper_plate();
        assert!(matches!(
            plate.center_deflection(Pascals(f64::INFINITY)),
            Err(MemsError::SolveDiverged { .. })
        ));
    }

    #[test]
    fn bigger_membrane_is_softer() {
        let small =
            SquarePlate::new(Meters::from_microns(80.0), Laminate::cmos_membrane()).unwrap();
        let large =
            SquarePlate::new(Meters::from_microns(140.0), Laminate::cmos_membrane()).unwrap();
        assert!(large.linear_compliance() > small.linear_compliance());
    }
}

//! Thin-film material properties and the CMOS membrane laminate.
//!
//! The paper's membrane is "made of CMOS dielectric layers (silicon oxide /
//! nitride) and metallization (aluminum)" with the poly bottom electrode
//! left on the substrate (paper Fig. 2). The composite stack's bending
//! stiffness and net residual tension determine the pressure → deflection
//! transfer, so we model the laminate explicitly with classical lamination
//! theory: a common neutral axis, plane-strain moduli, and per-layer
//! residual stresses.

use crate::units::{Meters, StressPa};
use crate::MemsError;

/// Isotropic thin-film material.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Human-readable name (e.g. `"SiO2"`).
    pub name: &'static str,
    /// Young's modulus in Pa.
    pub youngs_modulus: f64,
    /// Poisson ratio (dimensionless).
    pub poisson_ratio: f64,
    /// As-deposited residual stress in Pa; positive = tensile.
    pub residual_stress: StressPa,
    /// Mass density in kg/m³ (membrane dynamics).
    pub density: f64,
    /// Linear coefficient of thermal expansion in 1/K (thermal drift).
    pub thermal_expansion: f64,
}

impl Material {
    /// Plane-strain (biaxial bending) modulus `E / (1 - nu^2)` used in
    /// plate theory.
    #[inline]
    pub fn plane_strain_modulus(&self) -> f64 {
        self.youngs_modulus / (1.0 - self.poisson_ratio * self.poisson_ratio)
    }

    /// Thermally grown / deposited silicon dioxide. Compressive residual
    /// stress is typical for thermal oxide.
    pub const fn silicon_dioxide() -> Self {
        Material {
            name: "SiO2",
            youngs_modulus: 70e9,
            poisson_ratio: 0.17,
            residual_stress: StressPa(-250e6),
            density: 2_200.0,
            thermal_expansion: 0.5e-6,
        }
    }

    /// LPCVD/PECVD silicon nitride passivation; strongly tensile, which is
    /// what keeps the mixed-stack membranes flat after release.
    pub const fn silicon_nitride() -> Self {
        Material {
            name: "Si3N4",
            youngs_modulus: 250e9,
            poisson_ratio: 0.23,
            residual_stress: StressPa(900e6),
            density: 3_100.0,
            thermal_expansion: 3.3e-6,
        }
    }

    /// Sputtered aluminum interconnect metal (the membrane's top electrode
    /// is the second metal layer).
    pub const fn aluminum() -> Self {
        Material {
            name: "Al",
            youngs_modulus: 70e9,
            poisson_ratio: 0.35,
            residual_stress: StressPa(50e6),
            density: 2_700.0,
            thermal_expansion: 23.1e-6,
        }
    }

    /// Doped polysilicon (bottom electrode; not part of the moving stack
    /// but listed for completeness).
    pub const fn polysilicon() -> Self {
        Material {
            name: "poly-Si",
            youngs_modulus: 160e9,
            poisson_ratio: 0.22,
            residual_stress: StressPa(-20e6),
            density: 2_320.0,
            thermal_expansion: 2.6e-6,
        }
    }

    /// PDMS encapsulation used to couple the chip surface to tissue.
    pub const fn pdms() -> Self {
        Material {
            name: "PDMS",
            youngs_modulus: 1.5e6,
            poisson_ratio: 0.49,
            residual_stress: StressPa(0.0),
            density: 965.0,
            thermal_expansion: 310e-6,
        }
    }
}

/// One layer of the laminate: a material and its thickness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Layer {
    /// Layer material.
    pub material: Material,
    /// Layer thickness.
    pub thickness: Meters,
}

impl Layer {
    /// Creates a layer, without validation (validated by [`Laminate::new`]).
    pub const fn new(material: Material, thickness: Meters) -> Self {
        Layer {
            material,
            thickness,
        }
    }
}

/// A laminated membrane stack with derived composite properties.
///
/// Layers are ordered bottom (substrate side) to top (contact side).
#[derive(Debug, Clone, PartialEq)]
pub struct Laminate {
    layers: Vec<Layer>,
    total_thickness: Meters,
    flexural_rigidity: f64,
    membrane_tension: f64,
    effective_modulus: f64,
    effective_poisson: f64,
}

impl Laminate {
    /// Builds a laminate from a bottom-to-top layer list and derives the
    /// composite bending and stress properties.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::InvalidGeometry`] when the list is empty or any
    /// layer has a non-positive thickness or non-physical material numbers.
    pub fn new(layers: Vec<Layer>) -> Result<Self, MemsError> {
        if layers.is_empty() {
            return Err(MemsError::InvalidGeometry(
                "laminate needs at least one layer".into(),
            ));
        }
        for layer in &layers {
            if layer.thickness.value() <= 0.0 {
                return Err(MemsError::InvalidGeometry(format!(
                    "layer {} has non-positive thickness",
                    layer.material.name
                )));
            }
            if layer.material.youngs_modulus <= 0.0 {
                return Err(MemsError::InvalidGeometry(format!(
                    "layer {} has non-positive Young's modulus",
                    layer.material.name
                )));
            }
            if !(0.0..0.5).contains(&layer.material.poisson_ratio) {
                return Err(MemsError::InvalidGeometry(format!(
                    "layer {} has Poisson ratio outside [0, 0.5)",
                    layer.material.name
                )));
            }
        }

        let total_thickness: f64 = layers.iter().map(|l| l.thickness.value()).sum();

        // Neutral axis: z_bar = sum(E'_i t_i z_i) / sum(E'_i t_i), measured
        // from the bottom of the stack, with z_i the layer mid-plane.
        let mut e_t = 0.0;
        let mut e_t_z = 0.0;
        let mut z_lo = 0.0;
        for layer in &layers {
            let e = layer.material.plane_strain_modulus();
            let t = layer.thickness.value();
            let z_mid = z_lo + t / 2.0;
            e_t += e * t;
            e_t_z += e * t * z_mid;
            z_lo += t;
        }
        let z_bar = e_t_z / e_t;

        // Flexural rigidity about the neutral axis:
        // D = sum E'_i [ (z_top^3 - z_bot^3) / 3 ] with z measured from z_bar.
        let mut rigidity = 0.0;
        let mut z_lo = 0.0;
        for layer in &layers {
            let e = layer.material.plane_strain_modulus();
            let t = layer.thickness.value();
            let zb = z_lo - z_bar;
            let zt = z_lo + t - z_bar;
            rigidity += e * (zt.powi(3) - zb.powi(3)) / 3.0;
            z_lo += t;
        }

        // Net in-plane tension per unit width: N0 = sum sigma_i t_i (N/m).
        let membrane_tension: f64 = layers
            .iter()
            .map(|l| l.material.residual_stress.value() * l.thickness.value())
            .sum();

        // Thickness-weighted effective modulus / Poisson ratio for the cubic
        // (stretching) term of the load-deflection relation.
        let effective_modulus = layers
            .iter()
            .map(|l| l.material.youngs_modulus * l.thickness.value())
            .sum::<f64>()
            / total_thickness;
        let effective_poisson = layers
            .iter()
            .map(|l| l.material.poisson_ratio * l.thickness.value())
            .sum::<f64>()
            / total_thickness;

        Ok(Laminate {
            layers,
            total_thickness: Meters(total_thickness),
            flexural_rigidity: rigidity,
            membrane_tension,
            effective_modulus,
            effective_poisson,
        })
    }

    /// The default 3 µm CMOS membrane stack of the paper: field oxide +
    /// inter-metal oxide, nitride passivation, and the aluminum top
    /// electrode (paper §2.1 / Fig. 2). Thicknesses sum to 3.0 µm.
    pub fn cmos_membrane() -> Self {
        Laminate::new(vec![
            Layer::new(Material::silicon_dioxide(), Meters::from_microns(1.2)),
            Layer::new(Material::aluminum(), Meters::from_microns(0.9)),
            Layer::new(Material::silicon_dioxide(), Meters::from_microns(0.3)),
            Layer::new(Material::silicon_nitride(), Meters::from_microns(0.6)),
        ])
        .expect("built-in stack is valid")
    }

    /// Layers, bottom to top.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total stack thickness.
    pub fn total_thickness(&self) -> Meters {
        self.total_thickness
    }

    /// Composite flexural rigidity `D` in N·m.
    pub fn flexural_rigidity(&self) -> f64 {
        self.flexural_rigidity
    }

    /// Net residual tension per unit width `N0 = Σ σᵢ tᵢ` in N/m;
    /// positive = tensile (stiffens the membrane).
    pub fn membrane_tension(&self) -> f64 {
        self.membrane_tension
    }

    /// Thickness-weighted effective Young's modulus in Pa.
    pub fn effective_modulus(&self) -> f64 {
        self.effective_modulus
    }

    /// Thickness-weighted effective Poisson ratio.
    pub fn effective_poisson(&self) -> f64 {
        self.effective_poisson
    }

    /// Areal mass density `Σ ρᵢ tᵢ` in kg/m² (membrane dynamics).
    pub fn areal_density(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.material.density * l.thickness.value())
            .sum()
    }
}

impl Default for Laminate {
    fn default() -> Self {
        Laminate::cmos_membrane()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layer_matches_textbook_rigidity() {
        // For a homogeneous plate D = E t^3 / (12 (1 - nu^2)).
        let m = Material::silicon_nitride();
        let t = Meters::from_microns(1.0);
        let lam = Laminate::new(vec![Layer::new(m, t)]).unwrap();
        let expected = m.youngs_modulus * t.value().powi(3)
            / (12.0 * (1.0 - m.poisson_ratio * m.poisson_ratio));
        let rel = (lam.flexural_rigidity() - expected).abs() / expected;
        assert!(rel < 1e-12, "relative error {rel}");
    }

    #[test]
    fn splitting_a_layer_does_not_change_rigidity() {
        let m = Material::silicon_dioxide();
        let whole = Laminate::new(vec![Layer::new(m, Meters::from_microns(2.0))]).unwrap();
        let split = Laminate::new(vec![
            Layer::new(m, Meters::from_microns(0.7)),
            Layer::new(m, Meters::from_microns(1.3)),
        ])
        .unwrap();
        let rel = (whole.flexural_rigidity() - split.flexural_rigidity()).abs()
            / whole.flexural_rigidity();
        assert!(rel < 1e-12, "relative error {rel}");
        assert!(
            (whole.membrane_tension() - split.membrane_tension()).abs()
                < 1e-9 * whole.membrane_tension().abs()
        );
    }

    #[test]
    fn paper_stack_properties_are_plausible() {
        let lam = Laminate::cmos_membrane();
        assert!((lam.total_thickness().to_microns() - 3.0).abs() < 1e-9);
        // Rigidity of a 3 µm mixed stack must land between all-oxide and
        // all-nitride homogeneous plates of the same thickness.
        let t = lam.total_thickness();
        let lo = Laminate::new(vec![Layer::new(Material::silicon_dioxide(), t)]).unwrap();
        let hi = Laminate::new(vec![Layer::new(Material::silicon_nitride(), t)]).unwrap();
        assert!(lam.flexural_rigidity() > lo.flexural_rigidity());
        assert!(lam.flexural_rigidity() < hi.flexural_rigidity());
        // The nitride passivation must make the net stack tension tensile,
        // otherwise the released membrane would buckle.
        assert!(
            lam.membrane_tension() > 0.0,
            "net tension {} N/m",
            lam.membrane_tension()
        );
    }

    #[test]
    fn asymmetric_stack_is_stiffer_than_midplane_estimate() {
        // Placing a stiff layer away from the neutral axis of the soft bulk
        // raises D versus lumping everything at its own mid-plane; simply
        // check D is positive and finite for a strongly asymmetric stack.
        let lam = Laminate::new(vec![
            Layer::new(Material::silicon_dioxide(), Meters::from_microns(2.5)),
            Layer::new(Material::silicon_nitride(), Meters::from_microns(0.5)),
        ])
        .unwrap();
        assert!(lam.flexural_rigidity().is_finite());
        assert!(lam.flexural_rigidity() > 0.0);
    }

    #[test]
    fn empty_and_invalid_layers_are_rejected() {
        assert!(matches!(
            Laminate::new(vec![]),
            Err(MemsError::InvalidGeometry(_))
        ));
        let bad = Layer::new(Material::aluminum(), Meters(0.0));
        assert!(matches!(
            Laminate::new(vec![bad]),
            Err(MemsError::InvalidGeometry(_))
        ));
        let mut m = Material::aluminum();
        m.poisson_ratio = 0.6;
        assert!(matches!(
            Laminate::new(vec![Layer::new(m, Meters::from_microns(1.0))]),
            Err(MemsError::InvalidGeometry(_))
        ));
        let mut m = Material::aluminum();
        m.youngs_modulus = -1.0;
        assert!(matches!(
            Laminate::new(vec![Layer::new(m, Meters::from_microns(1.0))]),
            Err(MemsError::InvalidGeometry(_))
        ));
    }

    #[test]
    fn plane_strain_modulus_exceeds_youngs_modulus() {
        for m in [
            Material::silicon_dioxide(),
            Material::silicon_nitride(),
            Material::aluminum(),
            Material::polysilicon(),
        ] {
            assert!(m.plane_strain_modulus() > m.youngs_modulus);
        }
    }

    #[test]
    fn default_is_paper_stack() {
        assert_eq!(Laminate::default(), Laminate::cmos_membrane());
    }
}

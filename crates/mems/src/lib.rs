//! # tonos-mems — capacitive membrane transducer substrate
//!
//! Behavioral model of the micromachined sensor array from
//! *"A CMOS-Based Tactile Sensor for Continuous Blood Pressure Monitoring"*
//! (Kirstein et al., DATE'05).
//!
//! The fabricated device is a 2×2 array of square force-sensitive elements.
//! Each element is a suspended elastic membrane made of the CMOS dielectric
//! stack (silicon oxide / silicon nitride) plus aluminum metallization, with
//! the second-metal top electrode capacitively read against a polysilicon
//! bottom electrode. Paper geometry: membrane side length 100 µm, thickness
//! 3 µm, array pitch 150 µm. The membranes are released by a KOH back-etch
//! and the chip is coated with PDMS for tissue contact.
//!
//! This crate reproduces the only property of that structure the readout
//! electronics can observe: the **pressure → deflection → capacitance**
//! transfer, including
//!
//! * laminated-plate mechanics (composite flexural rigidity and residual
//!   stress of the oxide/nitride/aluminum stack) in [`plate`],
//! * numerically integrated parallel-plate capacitance over the deflected
//!   membrane profile in [`capacitor`],
//! * single elements in [`element`] and the 2×2 array plus the on-chip
//!   reference structure in [`mod@array`],
//! * PDMS contact coupling and the backside pressure tube of the measurement
//!   PCB (paper Fig. 8) in [`contact`].
//!
//! All quantities are SI `f64` values wrapped in the newtypes of [`units`].
//!
//! ## Example
//!
//! ```
//! use tonos_mems::element::ForceSensorElement;
//! use tonos_mems::units::Pascals;
//!
//! # fn main() -> Result<(), tonos_mems::MemsError> {
//! let element = ForceSensorElement::paper_default();
//! let rest = element.capacitance(Pascals(0.0))?;
//! let loaded = element.capacitance(Pascals(4_000.0))?; // ~30 mmHg
//! assert!(loaded > rest, "pressure from the top must increase capacitance");
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod capacitor;
pub mod contact;
pub mod creep;
pub mod dynamics;
pub mod element;
pub mod material;
pub mod plate;
pub mod thermal;
pub mod units;

mod error;

pub use error::MemsError;

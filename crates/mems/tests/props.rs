//! Property-based tests of the MEMS substrate invariants.

use proptest::prelude::*;
use tonos_mems::capacitor::{ElectrodeGeometry, MembraneCapacitor};
use tonos_mems::contact::ContactInterface;
use tonos_mems::material::{Laminate, Layer, Material};
use tonos_mems::plate::SquarePlate;
use tonos_mems::units::{Farads, Meters, Pascals};

proptest! {
    /// Load–deflection inversion round-trips for any deflection within
    /// the physical gap.
    #[test]
    fn plate_solve_round_trips(w0_nm in -900.0_f64..900.0) {
        prop_assume!(w0_nm.abs() > 1e-3);
        let plate = SquarePlate::paper_default();
        let w0 = Meters::from_nanometers(w0_nm);
        let p = plate.pressure_for_deflection(w0);
        let back = plate.center_deflection(p).unwrap();
        let rel = (back.value() - w0.value()).abs() / w0.value().abs();
        prop_assert!(rel < 1e-8, "round-trip error {rel}");
    }

    /// Capacitance is strictly monotone in pressure over any ordered pair
    /// inside the clinical range.
    #[test]
    fn capacitance_is_monotone(p1 in -40_000.0_f64..40_000.0, dp in 10.0_f64..20_000.0) {
        let cap = MembraneCapacitor::paper_default();
        let lo = cap.capacitance(Pascals(p1)).unwrap();
        let hi = cap.capacitance(Pascals(p1 + dp)).unwrap();
        prop_assert!(hi > lo, "C({p1}) = {lo}, C({}) = {hi}", p1 + dp);
    }

    /// Splitting a homogeneous layer anywhere never changes the laminate's
    /// composite properties.
    #[test]
    fn laminate_split_invariance(total_um in 0.5_f64..5.0, split in 0.1_f64..0.9) {
        let m = Material::silicon_nitride();
        let whole = Laminate::new(vec![Layer::new(m, Meters::from_microns(total_um))]).unwrap();
        let parts = Laminate::new(vec![
            Layer::new(m, Meters::from_microns(total_um * split)),
            Layer::new(m, Meters::from_microns(total_um * (1.0 - split))),
        ]).unwrap();
        let rel = (whole.flexural_rigidity() - parts.flexural_rigidity()).abs()
            / whole.flexural_rigidity();
        prop_assert!(rel < 1e-10);
        prop_assert!((whole.membrane_tension() - parts.membrane_tension()).abs()
            < 1e-9 * whole.membrane_tension().abs());
    }

    /// The contact interface is affine in the external pressure:
    /// net(p + d) − net(p) = k·d with a constant, positive slope.
    #[test]
    fn contact_interface_is_affine(p in -10_000.0_f64..10_000.0, d in 1.0_f64..5_000.0) {
        let iface = ContactInterface::wrist_default();
        let base = iface.net_element_pressure(Pascals(p)).value();
        let stepped = iface.net_element_pressure(Pascals(p + d)).value();
        let slope = (stepped - base) / d;
        let expected = iface.force_concentration * iface.pdms_transmission;
        prop_assert!((slope - expected).abs() < 1e-9 * expected);
    }

    /// Stiffer (thicker) plates always deflect less under the same load.
    #[test]
    fn thicker_membranes_deflect_less(extra_um in 0.2_f64..2.0) {
        let thin = SquarePlate::paper_default();
        let mut layers = Laminate::cmos_membrane().layers().to_vec();
        layers.push(Layer::new(
            Material::silicon_nitride(),
            Meters::from_microns(extra_um),
        ));
        let thick = SquarePlate::new(
            Meters::from_microns(100.0),
            Laminate::new(layers).unwrap(),
        )
        .unwrap();
        let p = Pascals(10_000.0);
        let w_thin = thin.center_deflection(p).unwrap();
        let w_thick = thick.center_deflection(p).unwrap();
        prop_assert!(w_thick < w_thin);
    }

    /// Thermal drift is monotone in temperature around the reference and
    /// zero at the reference, for any clinical bias.
    #[test]
    fn thermal_drift_is_monotone(bias_mmhg in 0.0_f64..400.0, dt in 1.0_f64..30.0) {
        use tonos_mems::thermal::ThermalModel;
        use tonos_mems::units::MillimetersHg;
        let model = ThermalModel::paper_default();
        let bias = Pascals::from_mmhg(MillimetersHg(bias_mmhg));
        let t0 = model.reference_temp_c();
        let zero = model.baseline_shift(t0, bias).unwrap();
        prop_assert_eq!(zero.value(), 0.0);
        let hot = model.baseline_shift(t0 + dt, bias).unwrap();
        let hotter = model.baseline_shift(t0 + dt + 5.0, bias).unwrap();
        let cold = model.baseline_shift(t0 - dt, bias).unwrap();
        prop_assert!(hot.value() > 0.0);
        prop_assert!(hotter.value() > hot.value());
        prop_assert!(cold.value() < 0.0);
    }

    /// The membrane's dynamic response is always quasi-static over the
    /// paper's band for any plausible air gap.
    #[test]
    fn dynamics_quasi_static_over_band(gap_um in 0.3_f64..3.0) {
        use tonos_mems::dynamics::MembraneDynamics;
        let plate = SquarePlate::paper_default();
        let d = MembraneDynamics::new(&plate, Meters::from_microns(gap_um)).unwrap();
        prop_assert!(d.natural_frequency_hz() > 1e5);
        prop_assert!(d.is_quasi_static_for(500.0, 1e-3));
    }

    /// Parasitic capacitance shifts the curve but never the sensitivity
    /// ordering: dC/dp is independent of the parasitic term.
    #[test]
    fn parasitics_do_not_change_sensitivity(parasitic_ff in 0.0_f64..100.0) {
        let mut geom = ElectrodeGeometry::paper_default();
        geom.parasitic = Farads::from_femtofarads(parasitic_ff);
        let cap = MembraneCapacitor::new(SquarePlate::paper_default(), geom).unwrap();
        let reference = MembraneCapacitor::paper_default();
        let s1 = cap.pressure_sensitivity(Pascals(0.0)).unwrap();
        let s2 = reference.pressure_sensitivity(Pascals(0.0)).unwrap();
        // The finite-difference ΔC (~1e-19 F) sits 5 decades below the
        // absolute capacitance (~6.5e-14 F), so cancellation limits the
        // achievable agreement to ~1e-10 relative; 1e-6 is a safe bound.
        prop_assert!((s1 - s2).abs() < 1e-6 * s2.abs());
    }
}

//! Proof that the settled frame path performs **zero heap allocations**.
//!
//! A counting global allocator (thread-local counter, so the harness's
//! other test threads don't pollute the count) wraps the system
//! allocator. After a short warm-up that grows every scratch buffer to
//! its high-water mark, pushing frames through the readout must not
//! touch the heap at all — the tentpole guarantee of the packed-bit hot
//! path. A differential check over two monitor sessions extends the
//! claim end-to-end: doubling the session length must not add
//! per-frame allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tonos_core::chip::SensorChip;
use tonos_core::monitor::BloodPressureMonitor;
use tonos_core::readout::ReadoutSystem;
use tonos_core::scratch::ConversionScratch;
use tonos_mems::units::{Farads, MillimetersHg, Pascals};
use tonos_physio::patient::PatientProfile;

/// Counts allocation events (alloc + realloc) per thread. The counter is
/// a const-initialized `Cell<u64>` — no destructor, no lazy init, so the
/// bookkeeping itself never allocates or recurses into the allocator.
struct CountingAlloc;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocation events on this thread so far.
fn alloc_events() -> u64 {
    ALLOC_EVENTS.with(Cell::get)
}

fn frame(mmhg: f64) -> Vec<Pascals> {
    vec![Pascals::from_mmhg(MillimetersHg(mmhg)); 4]
}

#[test]
fn settled_push_frame_allocates_nothing() {
    let mut sys = ReadoutSystem::paper_default().unwrap();
    let f = frame(100.0);
    // Warm-up: grow every scratch buffer (conversion scratch, caps
    // scratch, decimator state) to its steady-state size.
    for _ in 0..16 {
        sys.push_frame(&f).unwrap();
    }
    let before = alloc_events();
    for _ in 0..256 {
        sys.push_frame(&f).unwrap();
    }
    let during = alloc_events() - before;
    assert_eq!(
        during, 0,
        "a settled frame must not touch the heap; saw {during} allocation events over 256 frames"
    );
}

#[test]
fn chip_conversion_scratch_paths_allocate_nothing() {
    let mut chip = SensorChip::paper_default().unwrap();
    let f = frame(80.0);

    // Regression: `capacitances_into` must reuse the caller's buffer.
    let mut caps: Vec<Farads> = Vec::new();
    chip.capacitances_into(&f, &mut caps).unwrap();
    let before = alloc_events();
    for _ in 0..128 {
        chip.capacitances_into(&f, &mut caps).unwrap();
    }
    assert_eq!(
        alloc_events() - before,
        0,
        "capacitances_into must reuse the caller's buffer"
    );

    // The packed frame conversion into caller-owned scratch.
    let mut scratch = ConversionScratch::new();
    chip.convert_frame_packed_into(&f, 128, &mut scratch)
        .unwrap();
    let before = alloc_events();
    for _ in 0..128 {
        chip.convert_frame_packed_into(&f, 128, &mut scratch)
            .unwrap();
    }
    assert_eq!(
        alloc_events() - before,
        0,
        "convert_frame_packed_into must run entirely in caller-owned scratch"
    );
}

#[test]
fn settled_banked_frames_allocate_nothing_across_all_lanes() {
    // The lane bank's tentpole guarantee: one settled frame across all K
    // lanes — input fill on K chips, K modulators stepped per clock
    // through the SoA bank, K decimation chains through the one loaned
    // scratch — touches the heap zero times after warm-up.
    let k = 8;
    let mut systems: Vec<ReadoutSystem> = (0..k)
        .map(|i| {
            let mut config = tonos_core::config::SystemConfig::paper_default();
            config.chip.nonideal = config.chip.nonideal.with_seed(0x50 + i);
            ReadoutSystem::new(config).unwrap()
        })
        .collect();
    let mut bank = tonos_core::bank::ReadoutBank::new(systems.iter_mut().collect()).unwrap();
    let frames: Vec<Vec<Pascals>> = (0..k).map(|i| frame(80.0 + i as f64)).collect();
    let mut ys = vec![0.0; k as usize];
    // Warm-up: settle every mux and grow all per-lane scratch (noise
    // tiles, packed-bit words, decimator state) to steady state.
    for _ in 0..16 {
        bank.push_frames(&frames, &mut ys).unwrap();
    }
    let before = alloc_events();
    for _ in 0..256 {
        bank.push_frames(&frames, &mut ys).unwrap();
    }
    let during = alloc_events() - before;
    assert_eq!(
        during, 0,
        "a settled banked frame must not touch the heap for any lane count; \
         saw {during} allocation events over 256 frames x {k} lanes"
    );
}

#[test]
fn longer_sessions_do_not_add_per_frame_allocations() {
    // End-to-end differential: 8 extra seconds = 8000 extra frames. The
    // legacy path allocated ≥ 3 times per frame (pressure frame, packed
    // bits, capacitance snapshot) — 24 000+ extra events. The budget
    // below covers everything that legitimately scales with duration
    // (truth synthesis, beat analysis, report vectors) while being far
    // too small to hide any per-frame heap traffic.
    let run = |seconds: f64| {
        let mut monitor = BloodPressureMonitor::new(
            tonos_core::config::SystemConfig::paper_default(),
            PatientProfile::normotensive(),
        )
        .unwrap()
        .with_scan_window(150);
        let before = alloc_events();
        let session = monitor.run(seconds).unwrap();
        assert!(session.analysis.pulse_rate_bpm > 40.0);
        alloc_events() - before
    };
    let short = run(8.0);
    let long = run(16.0);
    let extra = long.saturating_sub(short);
    assert!(
        extra < 2_000,
        "8000 extra frames added {extra} allocation events (budget 2000): \
         the per-frame path has regressed off the scratch buffers"
    );
}

//! The scalar readout/session path is the **bit-exact oracle** for the
//! lane-banked one: a banked lane must produce the same output samples,
//! counters, scan decisions, and final session as the same system (or
//! monitor) run alone.

use tonos_core::bank::ReadoutBank;
use tonos_core::batch::run_batch;
use tonos_core::config::SystemConfig;
use tonos_core::monitor::BloodPressureMonitor;
use tonos_core::readout::ReadoutSystem;
use tonos_core::SystemError;
use tonos_mems::units::{MillimetersHg, Pascals};
use tonos_physio::patient::PatientProfile;

/// A paper-default system with per-lane fabrication and noise seeds, so
/// lanes genuinely differ (different mismatch maps, different noise
/// streams).
fn system(seed: u64) -> ReadoutSystem {
    let mut config = SystemConfig::paper_default();
    config.chip.fabrication_seed ^= seed;
    config.chip.nonideal = config.chip.nonideal.with_seed(0xA0 ^ seed);
    ReadoutSystem::new(config).unwrap()
}

fn frame(mmhg: f64) -> Vec<Pascals> {
    vec![Pascals::from_mmhg(MillimetersHg(mmhg)); 4]
}

#[test]
fn banked_frames_match_scalar_systems_exactly() {
    let k = 4;
    let mut scalars: Vec<ReadoutSystem> = (0..k as u64).map(system).collect();
    let mut banked: Vec<ReadoutSystem> = (0..k as u64).map(system).collect();

    // Element selection (settling transient included) plus a pressure
    // staircase: every lane sees a different waveform.
    let pressure = |lane: usize, i: usize| 60.0 + 10.0 * lane as f64 + (i as f64 * 0.11).sin();
    let n = scalars[0].settling_frames() + 40;

    let mut expect: Vec<Vec<f64>> = Vec::new();
    for (lane, sys) in scalars.iter_mut().enumerate() {
        sys.select_element(1, 0, &frame(pressure(lane, 0))).unwrap();
        let mut out = Vec::new();
        for i in 0..n {
            out.push(sys.push_frame(&frame(pressure(lane, i))).unwrap());
        }
        expect.push(out);
    }

    {
        let mut bank = ReadoutBank::new(banked.iter_mut().collect()).unwrap();
        assert_eq!(bank.lanes(), k);
        assert_eq!(bank.osr(), 128);
        let mut frames: Vec<Vec<Pascals>> = vec![Vec::new(); k];
        let mut ys = vec![0.0; k];
        for (lane, f) in frames.iter_mut().enumerate() {
            *f = frame(pressure(lane, 0));
            bank.select_element(lane, 1, 0, f).unwrap();
        }
        for i in 0..n {
            for (lane, f) in frames.iter_mut().enumerate() {
                *f = frame(pressure(lane, i));
            }
            bank.push_frames(&frames, &mut ys).unwrap();
            for (lane, (y, e)) in ys.iter().zip(&expect).enumerate() {
                assert_eq!(y.to_bits(), e[i].to_bits(), "lane {lane} frame {i}");
            }
        }
    } // bank drops: modulators restored

    // After release, the systems continue scalar operation
    // bit-identically (noise streams carried over exactly).
    for (lane, (s, b)) in scalars.iter_mut().zip(banked.iter_mut()).enumerate() {
        for i in 0..30 {
            let p = frame(pressure(lane, n + i));
            assert_eq!(
                s.push_frame(&p).unwrap().to_bits(),
                b.push_frame(&p).unwrap().to_bits(),
                "post-release lane {lane} frame {i}"
            );
        }
        assert_eq!(
            s.chip().modulator_steps(),
            b.chip().modulator_steps(),
            "lane {lane} steps"
        );
        assert_eq!(
            s.chip().modulator_saturations(),
            b.chip().modulator_saturations(),
            "lane {lane} saturations"
        );
    }
}

#[test]
fn mixed_osr_lanes_are_rejected() {
    let mut a = system(1);
    let mut config = SystemConfig::paper_default();
    config.decimator.osr = 64;
    let mut b = match ReadoutSystem::new(config) {
        Ok(sys) => sys,
        // If that decimator shape is invalid, the uniform-OSR check is
        // unreachable through public construction; nothing to test.
        Err(_) => return,
    };
    assert!(matches!(
        ReadoutBank::new(vec![&mut a, &mut b]),
        Err(SystemError::Config(_))
    ));
    assert!(matches!(
        ReadoutBank::new(Vec::new()),
        Err(SystemError::Config(_))
    ));
    // Rejected construction must leave both systems fully operational.
    let _ = a.push_frame(&frame(80.0)).unwrap();
    let _ = b.push_frame(&frame(80.0)).unwrap();
}

/// One monitor per patient seed, distinct chips as well.
fn monitor(seed: u64) -> BloodPressureMonitor {
    let mut config = SystemConfig::paper_default();
    config.chip.fabrication_seed ^= seed;
    config.chip.nonideal = config.chip.nonideal.with_seed(0xB0 ^ seed);
    let patient = PatientProfile::normotensive().with_seed(7 + seed);
    BloodPressureMonitor::new(config, patient)
        .unwrap()
        .with_scan_window(150)
}

#[test]
fn batched_sessions_match_scalar_sessions_exactly() {
    let k = 3u64;
    let mut scalar_sessions = Vec::new();
    for seed in 0..k {
        scalar_sessions.push(monitor(seed).run(6.0).unwrap());
    }

    let mut monitors: Vec<BloodPressureMonitor> = (0..k).map(monitor).collect();
    let batched = run_batch(&mut monitors, 6.0).unwrap();

    assert_eq!(batched.len(), scalar_sessions.len());
    for (lane, (b, s)) in batched.iter().zip(&scalar_sessions).enumerate() {
        assert_eq!(b.scan, s.scan, "lane {lane} scan");
        assert_eq!(b.acquisition_start, s.acquisition_start, "lane {lane}");
        assert_eq!(b.raw, s.raw, "lane {lane} raw waveform");
        assert_eq!(b.calibrated, s.calibrated, "lane {lane} calibrated");
        assert_eq!(b.errors, s.errors, "lane {lane} errors");
        assert_eq!(
            b.analysis.beats.len(),
            s.analysis.beats.len(),
            "lane {lane} beats"
        );
        assert_eq!(b.chip_power_w, s.chip_power_w, "lane {lane} power");
    }
}

#[test]
fn incompatible_batches_are_rejected_cleanly() {
    let mut monitors = vec![monitor(0), monitor(1).with_scan_window(99)];
    assert!(matches!(
        run_batch(&mut monitors, 6.0),
        Err(SystemError::Config(_))
    ));
    // Too-short sessions mirror the scalar validation.
    let mut monitors = vec![monitor(0)];
    assert!(matches!(
        run_batch(&mut monitors, 2.0),
        Err(SystemError::Config(_))
    ));
    // An empty batch is a no-op.
    assert_eq!(run_batch(&mut [], 6.0).unwrap().len(), 0);
    // The rejected monitors still run scalar sessions.
    let session = monitors[0].run(6.0).unwrap();
    assert!(!session.raw.is_empty());
}

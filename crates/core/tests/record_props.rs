//! Property tests for the binary session-record codec
//! (`tonos_core::export`) — the at-rest format the historian stores,
//! so its failure mode under corruption must be a typed
//! `record_corrupt`-style error, never a panic or a silent misread.

use proptest::prelude::*;
use tonos_core::export::{
    read_session_record, validate_record_meta, write_record_parts, RecordMeta,
};
use tonos_core::SystemError;
use tonos_dsp::frame::{Frame, KIND_SESSION_META};
use tonos_mems::units::MillimetersHg;

/// Builds a record byte stream from a deterministic sample pattern.
fn record_bytes(sample_rate: f64, start: u64, n: usize, seed: u64) -> Vec<u8> {
    let raw: Vec<f64> = (0..n)
        .map(|i| (seed as f64).mul_add(1e-3, i as f64 * 0.25))
        .collect();
    let calibrated: Vec<MillimetersHg> = raw
        .iter()
        .map(|&r| MillimetersHg(r.mul_add(0.5, 80.0)))
        .collect();
    let mut buf = Vec::new();
    write_record_parts(sample_rate, start, &raw, &calibrated, &mut buf).unwrap();
    buf
}

fn is_invalid_data(err: &SystemError) -> bool {
    matches!(err, SystemError::Io(std::io::ErrorKind::InvalidData, _))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip is bit-exact for arbitrary lengths (chunk-boundary
    /// lengths included: the writer chunks at 4096 samples).
    #[test]
    fn round_trip_is_bit_exact(
        n in 0usize..9000,
        start in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let rate = 1000.0;
        let buf = record_bytes(rate, start, n, seed);
        let rec = read_session_record(buf.as_slice()).unwrap();
        prop_assert_eq!(rec.sample_rate, rate);
        prop_assert_eq!(rec.acquisition_start as u64, start);
        prop_assert_eq!(rec.raw.len(), n);
        for (i, (&raw, cal)) in rec.raw.iter().zip(&rec.calibrated).enumerate() {
            let expect = (seed as f64).mul_add(1e-3, i as f64 * 0.25);
            prop_assert_eq!(raw, expect);
            prop_assert_eq!(cal.value(), expect.mul_add(0.5, 80.0));
        }
    }

    /// Any truncation of a valid record is rejected with a typed
    /// InvalidData error — never accepted, never a panic.
    #[test]
    fn truncations_are_rejected(
        n in 1usize..600,
        cut_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let buf = record_bytes(500.0, 7, n, seed);
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        let err = read_session_record(buf[..cut].as_ref()).unwrap_err();
        prop_assert!(is_invalid_data(&err), "cut {cut}: {err}");
    }

    /// Flipping any single bit anywhere in the record either fails the
    /// frame CRC / layout checks (typed error) — it can never round
    /// back to success with altered payload. (The sync word and frame
    /// headers are CRC-covered too, so every byte is load-bearing.)
    #[test]
    fn bit_flips_never_misread(
        n in 1usize..400,
        byte_frac in 0.0f64..1.0,
        bit in 0u32..8,
        seed in any::<u64>(),
    ) {
        let buf = record_bytes(250.0, 3, n, seed);
        let at = ((buf.len() - 1) as f64 * byte_frac) as usize;
        let mut bad = buf.clone();
        bad[at] ^= 1u8 << bit;
        match read_session_record(bad.as_slice()) {
            Err(err) => prop_assert!(is_invalid_data(&err), "flip {at}.{bit}: {err}"),
            // A flip that still parses must have been flipped back to
            // the identical stream (impossible for xor) — reject.
            Ok(_) => prop_assert!(false, "flip at byte {at} bit {bit} was accepted"),
        }
    }

    /// The bounded-capacity path: a CRC-valid meta frame declaring an
    /// absurd sample count is rejected by the shared header gate before
    /// any allocation, for every count that exceeds what the record's
    /// byte length could hold.
    #[test]
    fn oversized_declared_counts_are_rejected(
        declared in 0u64..u64::MAX,
        pad in 0usize..256,
    ) {
        let mut meta = Vec::with_capacity(24);
        meta.extend_from_slice(&1000.0f64.to_le_bytes());
        meta.extend_from_slice(&0u64.to_le_bytes());
        meta.extend_from_slice(&declared.to_le_bytes());
        let frame = Frame::bytes(KIND_SESSION_META, 0, 0, 0, meta).unwrap();
        let record_len = frame.encoded_len() + pad;
        let verdict = validate_record_meta(&frame, record_len);
        if declared > (record_len / 16) as u64 {
            prop_assert!(is_invalid_data(&verdict.unwrap_err()));
        } else {
            prop_assert_eq!(
                verdict.unwrap(),
                RecordMeta { sample_rate: 1000.0, acquisition_start: 0, samples: declared }
            );
        }
    }
}

/// Non-property regressions: mismatched part lengths and the helper's
/// kind check.
#[test]
fn parts_writer_rejects_mismatched_lanes() {
    let err =
        write_record_parts(1000.0, 0, &[1.0, 2.0], &[MillimetersHg(80.0)], Vec::new()).unwrap_err();
    assert!(matches!(
        err,
        SystemError::Io(std::io::ErrorKind::InvalidInput, _)
    ));
}

#[test]
fn meta_gate_rejects_wrong_kind_and_layout() {
    use tonos_dsp::frame::KIND_SESSION_DATA;
    let data = Frame::bytes(KIND_SESSION_DATA, 0, 1, 0, vec![0u8; 24]).unwrap();
    assert!(validate_record_meta(&data, 1 << 20).is_err());
    let short = Frame::bytes(KIND_SESSION_META, 0, 0, 0, vec![0u8; 16]).unwrap();
    assert!(validate_record_meta(&short, 1 << 20).is_err());
}

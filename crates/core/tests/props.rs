//! Property-based tests of the system-level invariants.

use proptest::prelude::*;
use tonos_core::analyze::detect_beats;
use tonos_core::calibrate::Calibration;
use tonos_core::chip::SensorChip;
use tonos_core::config::ChipConfig;
use tonos_core::localize::localize_vessel;
use tonos_core::select::ScanResult;
use tonos_mems::array::ArrayLayout;
use tonos_mems::units::{MillimetersHg, Pascals};
use tonos_physio::cuff::CuffReading;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two-point calibration pins its landmarks exactly for any
    /// non-degenerate raw span and physiological cuff reading.
    #[test]
    fn calibration_pins_landmarks(
        raw_dia in -0.9_f64..0.9,
        span in 0.001_f64..1.0,
        sys in 95.0_f64..200.0,
        pulse in 20.0_f64..80.0,
    ) {
        let raw_sys = raw_dia + span;
        let reading = CuffReading {
            time_s: 30.0,
            systolic: MillimetersHg(sys),
            diastolic: MillimetersHg(sys - pulse),
        };
        let cal = Calibration::from_two_point(raw_sys, raw_dia, &reading).unwrap();
        prop_assert!((cal.apply(raw_sys).value() - sys).abs() < 1e-9);
        prop_assert!((cal.apply(raw_dia).value() - (sys - pulse)).abs() < 1e-9);
        // Invertibility everywhere.
        let mid = raw_dia + span / 2.0;
        prop_assert!((cal.invert(cal.apply(mid)) - mid).abs() < 1e-9);
    }

    /// Calibration is invariant under affine transforms of the raw data.
    #[test]
    fn calibration_affine_invariance(
        a in 0.1_f64..10.0,
        b in -5.0_f64..5.0,
        raw in -0.5_f64..0.5,
    ) {
        let reading = CuffReading {
            time_s: 30.0,
            systolic: MillimetersHg(120.0),
            diastolic: MillimetersHg(80.0),
        };
        let cal1 = Calibration::from_two_point(0.8, 0.2, &reading).unwrap();
        let cal2 = Calibration::from_two_point(a * 0.8 + b, a * 0.2 + b, &reading).unwrap();
        let direct = cal1.apply(raw).value();
        let transformed = cal2.apply(a * raw + b).value();
        prop_assert!((direct - transformed).abs() < 1e-6, "{direct} vs {transformed}");
    }

    /// The chip's capacitance LUT agrees with the exact model at any
    /// pressure in the clinical range.
    #[test]
    fn chip_lut_matches_exact_model(mmhg in -400.0_f64..800.0) {
        let chip = SensorChip::new(ChipConfig::paper_default()).unwrap();
        let p = Pascals::from_mmhg(MillimetersHg(mmhg));
        let caps = chip.capacitances(&[p; 4]).unwrap();
        for ((_, element), lut_val) in chip.array().iter().zip(&caps) {
            let exact = element.capacitance(p).unwrap();
            prop_assert!(
                (lut_val.value() - exact.value()).abs() < 1e-17,
                "LUT error {} aF at {mmhg} mmHg",
                (lut_val.value() - exact.value()).abs() * 1e18
            );
        }
    }

    /// Beat detection finds the right beat count on synthetic pulse
    /// trains of any physiological rate and scale.
    #[test]
    fn beat_detection_counts_pulses(
        bpm in 50.0_f64..150.0,
        amplitude in 1.0_f64..60.0,
        offset in -100.0_f64..200.0,
    ) {
        let fs = 250.0;
        let duration = 20.0;
        let n = (fs * duration) as usize;
        let f0 = bpm / 60.0;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                // Pulse-like half-wave shape.
                let s = (2.0 * std::f64::consts::PI * f0 * t).sin().max(0.0).powi(2);
                offset + amplitude * s
            })
            .collect();
        let beats = detect_beats(&x, fs).unwrap();
        let expected = duration * f0;
        prop_assert!(
            ((beats.len() as f64) - expected).abs() <= expected * 0.1 + 2.0,
            "{} beats at {bpm} bpm",
            beats.len()
        );
        for b in &beats {
            prop_assert!(b.systolic > b.diastolic);
        }
    }

    /// The localization centroid always stays inside the array's convex
    /// hull, and uniform scores give zero confidence.
    #[test]
    fn localization_stays_in_hull(scores in prop::collection::vec(0.001_f64..10.0, 4)) {
        let layout = ArrayLayout::paper_default();
        let scan = ScanResult {
            scores: vec![
                ((0, 0), scores[0]),
                ((0, 1), scores[1]),
                ((1, 0), scores[2]),
                ((1, 1), scores[3]),
            ],
            best: (0, 0),
        };
        let est = localize_vessel(&scan, layout).unwrap();
        let half = layout.pitch.value() / 2.0;
        prop_assert!(est.x.abs() <= half + 1e-12);
        prop_assert!(est.y.abs() <= half + 1e-12);
        prop_assert!((0.0..=1.0).contains(&est.confidence));
    }
}

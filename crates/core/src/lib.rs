//! # tonos-core — the CMOS tactile blood-pressure sensor system
//!
//! The primary contribution of *"A CMOS-Based Tactile Sensor for
//! Continuous Blood Pressure Monitoring"* (Kirstein et al., DATE'05) is
//! not any single circuit but the **monolithic system**: a 2×2 membrane
//! array, reference structure, analog multiplexers, and a 2nd-order ΣΔ
//! modulator on one die, decimated by an external FPGA filter to a 12-bit
//! / 1 kS/s stream, applied to tonometric blood-pressure recording with
//! hand-cuff calibration.
//!
//! This crate is that system:
//!
//! * [`config`] — chip and system configuration mirroring the paper's
//!   numbers (128 kS/s, OSR 128, SINC³+FIR32, 500 Hz, 12 bit)
//! * [`chip`] — [`chip::SensorChip`]: array + reference + mux + modulator
//! * [`readout`] — [`readout::ReadoutSystem`]: chip + decimation filter
//!   (the Fig. 3 block diagram), with scan settling management
//! * [`bank`] — [`bank::ReadoutBank`]: K readout systems converting in
//!   lockstep on one SoA modulator bank (bit-identical to scalar)
//! * [`batch`] — [`batch::run_batch`]: whole monitoring sessions run
//!   K-at-a-time on a lane bank
//! * [`scratch`] — [`scratch::ConversionScratch`]: reusable per-frame
//!   working memory, the key to the zero-allocation hot path
//! * [`select`] — strongest-element selection (§2)
//! * [`localize`] — vessel localization from the array scan (§2)
//! * [`calibrate`] — two-point systolic/diastolic cuff calibration (§3.2)
//! * [`analyze`] — beat detection and systolic/diastolic/rate extraction
//! * [`monitor`] — [`monitor::BloodPressureMonitor`]: the end-to-end
//!   continuous monitoring session of Fig. 9, with ground-truth error
//!   reporting the paper could not provide, thermal-drift injection, and
//!   periodic cuff recalibration
//! * [`stream`] — [`stream::OnlineAnalyzer`]: push-based live beat
//!   detection with pulse-rate tracking and clinical alarms
//! * [`report`] — [`report::SessionReport`]: the clinician-facing session
//!   summary
//! * [`export`] — CSV writers for sessions, beats, and spectra
//! * [`vitals`] — derived vitals: respiratory rate from the waveform
//!
//! ## Example: the Fig. 9 pipeline in six lines
//!
//! ```
//! use tonos_core::config::SystemConfig;
//! use tonos_core::monitor::BloodPressureMonitor;
//! use tonos_physio::patient::PatientProfile;
//!
//! # fn main() -> Result<(), tonos_core::SystemError> {
//! let config = SystemConfig::paper_default();
//! let mut monitor = BloodPressureMonitor::new(config, PatientProfile::normotensive())?;
//! let session = monitor.run(6.0)?;
//! assert!(session.analysis.pulse_rate_bpm > 50.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod bank;
pub mod batch;
pub mod calibrate;
pub mod chip;
pub mod config;
pub mod export;
pub mod localize;
pub mod monitor;
pub mod readout;
pub mod report;
pub mod scratch;
pub mod select;
pub mod stream;
pub mod vitals;

mod error;

pub use error::SystemError;

//! Waveform analysis: beat detection and systolic/diastolic extraction.
//!
//! The continuous recording (paper Fig. 9) is only clinically useful once
//! each beat's systolic peak and diastolic foot are identified — both for
//! the cuff calibration (§3.2) and for reporting pulse rate. The detector
//! here is a standard smoothed-peak-picking algorithm with a refractory
//! period, robust to the 12-bit quantization and modest artifacts of the
//! simulated chain.

use crate::SystemError;

/// One detected beat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beat {
    /// Sample index of the systolic peak.
    pub peak_index: usize,
    /// Sample index of the preceding diastolic foot.
    pub foot_index: usize,
    /// Systolic (peak) value in the waveform's units.
    pub systolic: f64,
    /// Diastolic (foot) value in the waveform's units.
    pub diastolic: f64,
}

/// Summary of an analyzed waveform segment.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveformAnalysis {
    /// Detected beats in time order.
    pub beats: Vec<Beat>,
    /// Mean pulse rate in beats per minute.
    pub pulse_rate_bpm: f64,
    /// Mean systolic value.
    pub mean_systolic: f64,
    /// Mean diastolic value.
    pub mean_diastolic: f64,
}

/// Minimum physiological beat spacing (refractory period), seconds —
/// 0.33 s corresponds to 180 bpm.
const MIN_BEAT_SPACING_S: f64 = 0.33;

/// Smoothing window for peak picking, seconds.
const SMOOTH_WINDOW_S: f64 = 0.04;

/// Fraction of the local peak-to-peak span a local maximum must clear
/// (above the local minimum) to count as a systolic peak.
const PEAK_THRESHOLD_FRACTION: f64 = 0.55;

/// Threshold-estimation block length, seconds (see `detect_beats`).
const DETECT_BLOCK_S: f64 = 10.0;

/// Moving-average smoothing with a centered window.
fn smooth(x: &[f64], half_window: usize) -> Vec<f64> {
    if half_window == 0 {
        return x.to_vec();
    }
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    // Prefix sums for O(n) averaging.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &v in x {
        prefix.push(prefix.last().unwrap() + v);
    }
    for i in 0..n {
        let lo = i.saturating_sub(half_window);
        let hi = (i + half_window + 1).min(n);
        out.push((prefix[hi] - prefix[lo]) / (hi - lo) as f64);
    }
    out
}

/// Detects beats in a waveform sampled at `sample_rate` Hz.
///
/// # Errors
///
/// * [`SystemError::Config`] — non-positive sample rate or a segment
///   shorter than one second.
/// * [`SystemError::NoBeatsDetected`] — flat or non-pulsatile input.
pub fn detect_beats(x: &[f64], sample_rate: f64) -> Result<Vec<Beat>, SystemError> {
    if !(sample_rate > 0.0) {
        return Err(SystemError::Config("sample rate must be positive".into()));
    }
    if (x.len() as f64) < sample_rate {
        return Err(SystemError::Config(format!(
            "need at least 1 s of data, got {} samples at {} Hz",
            x.len(),
            sample_rate
        )));
    }
    let half_window = ((SMOOTH_WINDOW_S * sample_rate / 2.0).round() as usize).max(1);
    let s = smooth(x, half_window);
    let min_spacing = (MIN_BEAT_SPACING_S * sample_rate) as usize;

    // Peak picking with a *windowed* threshold: the detection threshold is
    // computed per ~10 s block (with 1 s margins) rather than globally, so
    // slow pressure trends — e.g. a hypertensive episode raising the
    // global maximum — do not push baseline beats under the threshold.
    let n = s.len();
    let block = ((DETECT_BLOCK_S * sample_rate) as usize).max(min_spacing * 4);
    let margin = (sample_rate as usize).max(1);
    let mut peaks: Vec<usize> = Vec::new();
    let mut any_span = false;
    let mut start = 0usize;
    while start < n {
        let seg_lo = start.saturating_sub(margin);
        let seg_hi = (start + block + margin).min(n);
        let seg = &s[seg_lo..seg_hi];
        let lo = seg.iter().copied().fold(f64::MAX, f64::min);
        let hi = seg.iter().copied().fold(f64::MIN, f64::max);
        let span = hi - lo;
        if span > 0.0 {
            any_span = true;
            let threshold = lo + PEAK_THRESHOLD_FRACTION * span;
            let keep_hi = (start + block).min(n);
            for i in seg_lo.max(1)..seg_hi.min(n - 1) {
                // Only record peaks owned by this block (margins exist
                // solely to stabilize the local threshold).
                if i < start || i >= keep_hi {
                    continue;
                }
                if s[i] >= threshold && s[i] >= s[i - 1] && s[i] > s[i + 1] {
                    match peaks.last() {
                        Some(&last) if i - last < min_spacing => {
                            // Keep the taller of the two contenders.
                            if s[i] > s[last] {
                                *peaks.last_mut().unwrap() = i;
                            }
                        }
                        _ => peaks.push(i),
                    }
                }
            }
        }
        start += block;
    }
    if peaks.is_empty() {
        let _ = any_span;
        return Err(SystemError::NoBeatsDetected { samples: x.len() });
    }

    // Refine each peak on the raw trace and find the preceding foot.
    let refine = (half_window * 2).max(1);
    let mut beats = Vec::with_capacity(peaks.len());
    for (k, &p) in peaks.iter().enumerate() {
        let lo_i = p.saturating_sub(refine);
        let hi_i = (p + refine + 1).min(x.len());
        let (peak_index, systolic) = (lo_i..hi_i)
            .map(|i| (i, x[i]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite samples"))
            .expect("non-empty window");
        // Foot: raw minimum between the previous peak (or segment start)
        // and this peak.
        let search_lo = if k == 0 { 0 } else { peaks[k - 1] };
        let (foot_index, diastolic) = (search_lo..=p)
            .map(|i| (i, x[i]))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite samples"))
            .expect("non-empty window");
        beats.push(Beat {
            peak_index,
            foot_index,
            systolic,
            diastolic,
        });
    }
    Ok(beats)
}

/// An ensemble-averaged beat: the mean pulse shape across all detected
/// beats, resampled onto a fixed phase grid and normalized to [0, 1].
///
/// Pulse *morphology* (the reflected-wave shoulder, the dicrotic wave)
/// carries clinical information beyond systolic/diastolic numbers;
/// ensemble averaging is the standard way to extract it from a noisy,
/// quantized recording.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleBeat {
    /// Normalized pulse shape on a uniform phase grid [0, 1).
    pub shape: Vec<f64>,
    /// Number of beats averaged.
    pub beats_used: usize,
}

impl EnsembleBeat {
    /// Averages the peak-to-peak segments of consecutive detected beats
    /// onto a `grid`-point phase axis, then normalizes to [0, 1]. Phase 0
    /// is therefore the systolic peak.
    ///
    /// Peak alignment (rather than foot alignment) is deliberate: the
    /// diastolic tail is nearly flat, so its minimum wanders with any
    /// baseline tilt (respiration!) and foot-aligned ensembles smear.
    /// The systolic peak is sharp and detection-stable.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::NoBeatsDetected`] when fewer than 3 beats
    /// are available, or [`SystemError::Config`] for a degenerate grid.
    pub fn from_beats(x: &[f64], beats: &[Beat], grid: usize) -> Result<Self, SystemError> {
        if grid < 8 {
            return Err(SystemError::Config("ensemble grid must be >= 8".into()));
        }
        if beats.len() < 3 {
            return Err(SystemError::NoBeatsDetected { samples: x.len() });
        }
        let mut acc = vec![0.0; grid];
        let mut used = 0usize;
        for pair in beats.windows(2) {
            let start = pair[0].peak_index;
            let end = pair[1].peak_index;
            if end <= start + 4 || end > x.len() {
                continue;
            }
            let len = (end - start) as f64;
            for (g, a) in acc.iter_mut().enumerate() {
                // Linear interpolation at phase g/grid.
                let pos = start as f64 + len * g as f64 / grid as f64;
                let i = pos.floor() as usize;
                let frac = pos - i as f64;
                let v = if i + 1 < end {
                    x[i] * (1.0 - frac) + x[i + 1] * frac
                } else {
                    x[i.min(x.len() - 1)]
                };
                *a += v;
            }
            used += 1;
        }
        if used < 2 {
            return Err(SystemError::NoBeatsDetected { samples: x.len() });
        }
        for a in &mut acc {
            *a /= used as f64;
        }
        let lo = acc.iter().copied().fold(f64::MAX, f64::min);
        let hi = acc.iter().copied().fold(f64::MIN, f64::max);
        let span = hi - lo;
        if !(span > 0.0) {
            return Err(SystemError::NoBeatsDetected { samples: x.len() });
        }
        for a in &mut acc {
            *a = (*a - lo) / span;
        }
        Ok(EnsembleBeat {
            shape: acc,
            beats_used: used,
        })
    }

    /// Mean normalized level over a phase band `[lo, hi)` of the grid.
    pub fn band_level(&self, lo: f64, hi: f64) -> f64 {
        let n = self.shape.len();
        let a = ((lo * n as f64) as usize).min(n - 1);
        let b = ((hi * n as f64) as usize).clamp(a + 1, n);
        self.shape[a..b].iter().sum::<f64>() / (b - a) as f64
    }

    /// Phase index of the systolic peak.
    pub fn peak_phase(&self) -> f64 {
        let (i, _) = self
            .shape
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty shape");
        i as f64 / self.shape.len() as f64
    }

    /// The reflected-wave shoulder: mean normalized level over the phase
    /// band `[peak + lo, peak + hi)` (fractions of the period, wrapping).
    /// Measuring *relative to the detected peak* removes the arbitrary
    /// foot alignment, so the metric compares across sources. The
    /// radial reflection sits ~0.12–0.25 of a period after the peak.
    pub fn shoulder_after_peak(&self, lo: f64, hi: f64) -> f64 {
        let n = self.shape.len();
        let peak = (self.peak_phase() * n as f64) as usize;
        let a = peak + (lo * n as f64) as usize;
        let b = peak + ((hi * n as f64) as usize).max((lo * n as f64) as usize + 1);
        let count = b - a;
        (a..b).map(|i| self.shape[i % n]).sum::<f64>() / count as f64
    }

    /// Half-height width of the systolic complex: the fraction of the
    /// period the normalized pulse stays at or above 0.5. The stiffer the
    /// arteries, the earlier and larger the reflected wave and the
    /// broader the merged systolic complex — a robust morphology metric
    /// even when the reflection fuses with the primary peak (where
    /// shoulder-level metrics become ambiguous).
    pub fn half_height_width(&self) -> f64 {
        self.shape.iter().filter(|&&v| v >= 0.5).count() as f64 / self.shape.len() as f64
    }
}

impl WaveformAnalysis {
    /// Detects beats and summarizes a waveform segment.
    ///
    /// # Errors
    ///
    /// See [`detect_beats`].
    pub fn from_samples(x: &[f64], sample_rate: f64) -> Result<Self, SystemError> {
        let beats = detect_beats(x, sample_rate)?;
        let pulse_rate_bpm = if beats.len() >= 2 {
            let first = beats.first().unwrap().peak_index as f64;
            let last = beats.last().unwrap().peak_index as f64;
            let beats_n = (beats.len() - 1) as f64;
            60.0 * sample_rate * beats_n / (last - first)
        } else {
            0.0
        };
        let mean_systolic = beats.iter().map(|b| b.systolic).sum::<f64>() / beats.len() as f64;
        let mean_diastolic = beats.iter().map(|b| b.diastolic).sum::<f64>() / beats.len() as f64;
        Ok(WaveformAnalysis {
            beats,
            pulse_rate_bpm,
            mean_systolic,
            mean_diastolic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tonos_physio::patient::PatientProfile;

    fn truth_waveform(duration: f64) -> (Vec<f64>, f64) {
        let record = PatientProfile::normotensive()
            .record(250.0, duration)
            .unwrap();
        (
            record.samples.iter().map(|p| p.value()).collect(),
            record.sample_rate,
        )
    }

    #[test]
    fn detects_the_right_number_of_beats() {
        let (x, fs) = truth_waveform(30.0);
        let beats = detect_beats(&x, fs).unwrap();
        // 72 bpm for 30 s ≈ 36 beats.
        assert!(
            (33..=38).contains(&beats.len()),
            "{} beats detected",
            beats.len()
        );
    }

    #[test]
    fn systolic_and_diastolic_match_the_synthesizer_targets() {
        let (x, fs) = truth_waveform(20.0);
        let analysis = WaveformAnalysis::from_samples(&x, fs).unwrap();
        assert!(
            (analysis.mean_systolic - 120.0).abs() < 4.0,
            "systolic {}",
            analysis.mean_systolic
        );
        assert!(
            (analysis.mean_diastolic - 80.0).abs() < 4.0,
            "diastolic {}",
            analysis.mean_diastolic
        );
        assert!(
            (analysis.pulse_rate_bpm - 72.0).abs() < 3.0,
            "rate {}",
            analysis.pulse_rate_bpm
        );
    }

    #[test]
    fn beat_ordering_and_structure_are_consistent() {
        let (x, fs) = truth_waveform(10.0);
        let beats = detect_beats(&x, fs).unwrap();
        for pair in beats.windows(2) {
            assert!(pair[1].peak_index > pair[0].peak_index);
        }
        for b in &beats {
            assert!(b.foot_index <= b.peak_index);
            assert!(b.systolic > b.diastolic);
        }
    }

    #[test]
    fn works_at_the_system_output_rate_with_quantization() {
        // 1 kHz with 12-bit-like quantization on a small span (the raw
        // ADC representation of the pulse).
        let record = PatientProfile::normotensive().record(1000.0, 15.0).unwrap();
        let x: Vec<f64> = record
            .samples
            .iter()
            .map(|p| {
                let raw = (p.value() - 100.0) / 2000.0; // small FS fraction
                (raw * 2048.0).round() / 2048.0
            })
            .collect();
        let beats = detect_beats(&x, 1000.0).unwrap();
        assert!(
            (15..=20).contains(&beats.len()),
            "{} beats in 15 s",
            beats.len()
        );
    }

    #[test]
    fn nonstationary_records_keep_baseline_beats() {
        // A +35 mmHg episode must not mask the baseline beats before it
        // (regression for the windowed threshold).
        let scenario = tonos_physio::patient::PressureTransient::episode();
        let record = scenario.record(250.0, 160.0).unwrap();
        let x: Vec<f64> = record.samples.iter().map(|p| p.value()).collect();
        let beats = detect_beats(&x, 250.0).unwrap();
        // ~192 beats at 72 bpm over 160 s; allow a generous band but rule
        // out the global-threshold failure mode (which found ~130).
        assert!(
            (175..=205).contains(&beats.len()),
            "{} beats detected over the episode record",
            beats.len()
        );
        // Beats exist both before and during the episode.
        let before = beats
            .iter()
            .filter(|b| (b.peak_index as f64 / 250.0) < 50.0)
            .count();
        let during = beats
            .iter()
            .filter(|b| {
                let t = b.peak_index as f64 / 250.0;
                (85.0..105.0).contains(&t)
            })
            .count();
        assert!(before >= 55, "{before} baseline beats");
        assert!(during >= 20, "{during} episode beats");
    }

    #[test]
    fn flat_input_reports_no_beats() {
        let x = vec![5.0; 3000];
        assert!(matches!(
            detect_beats(&x, 1000.0),
            Err(SystemError::NoBeatsDetected { .. })
        ));
    }

    #[test]
    fn short_or_invalid_input_is_rejected() {
        assert!(matches!(
            detect_beats(&[1.0; 100], 1000.0),
            Err(SystemError::Config(_))
        ));
        assert!(matches!(
            detect_beats(&[1.0; 100], 0.0),
            Err(SystemError::Config(_))
        ));
    }

    #[test]
    fn refractory_period_rejects_dicrotic_double_counting() {
        // Exaggerate the dicrotic bump by summing two sinusoids: the
        // detector must still count only the fundamental rate.
        let fs = 500.0;
        let n = (fs * 20.0) as usize;
        let f0 = 1.2; // 72 bpm
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let main = (2.0 * std::f64::consts::PI * f0 * t).sin();
                let dicrotic = 0.35 * (2.0 * std::f64::consts::PI * 2.0 * f0 * t + 0.8).sin();
                100.0 + 20.0 * (main + dicrotic)
            })
            .collect();
        let beats = detect_beats(&x, fs).unwrap();
        let rate = 60.0 * fs * (beats.len() - 1) as f64
            / (beats.last().unwrap().peak_index - beats[0].peak_index) as f64;
        assert!((rate - 72.0).abs() < 8.0, "rate {rate} (double counting?)");
    }

    #[test]
    fn ensemble_width_ranks_arterial_stiffness() {
        use tonos_physio::waveform::{BeatMorphology, PulseWaveform};
        let params = tonos_physio::waveform::ArterialParams {
            rr_sigma: 0.0,
            drift_step_mmhg: 0.0,
            respiration: tonos_physio::variability::RespiratoryModulation::none(),
            ..tonos_physio::waveform::ArterialParams::normotensive()
        };
        let fs = 500.0;
        let shoulder = |morph: BeatMorphology| {
            let record = PulseWaveform::with_morphology(params, morph)
                .unwrap()
                .record(fs, 20.0)
                .unwrap();
            let x: Vec<f64> = record.samples.iter().map(|p| p.value()).collect();
            let beats = detect_beats(&x, fs).unwrap();
            let ensemble = EnsembleBeat::from_beats(&x, &beats, 100).unwrap();
            assert!(ensemble.beats_used >= 15);
            ensemble.half_height_width()
        };
        let young = shoulder(BeatMorphology::radial_young());
        let adult = shoulder(BeatMorphology::radial_adult());
        let elderly = shoulder(BeatMorphology::radial_elderly());
        assert!(
            young < adult && adult < elderly,
            "systolic-complex width must rank stiffness: {young} {adult} {elderly}"
        );
    }

    #[test]
    fn ensemble_beat_validates_inputs() {
        let x = vec![0.0; 1000];
        assert!(matches!(
            EnsembleBeat::from_beats(&x, &[], 100),
            Err(SystemError::NoBeatsDetected { .. })
        ));
        let beats = vec![
            Beat {
                peak_index: 10,
                foot_index: 5,
                systolic: 1.0,
                diastolic: 0.0,
            },
            Beat {
                peak_index: 50,
                foot_index: 45,
                systolic: 1.0,
                diastolic: 0.0,
            },
            Beat {
                peak_index: 90,
                foot_index: 85,
                systolic: 1.0,
                diastolic: 0.0,
            },
        ];
        assert!(matches!(
            EnsembleBeat::from_beats(&x, &beats, 4),
            Err(SystemError::Config(_))
        ));
        // Flat data between feet → degenerate span.
        assert!(EnsembleBeat::from_beats(&x, &beats, 50).is_err());
    }

    #[test]
    fn smoothing_preserves_mean() {
        let x: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.1).sin()).collect();
        let s = smooth(&x, 5);
        let mx = x.iter().sum::<f64>() / x.len() as f64;
        let ms = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mx - ms).abs() < 1e-3);
        assert_eq!(smooth(&x, 0), x);
    }
}

//! The monolithic sensor chip: array, reference, multiplexers, and the
//! ΣΔ modulator on one die (paper Fig. 3/5).
//!
//! [`SensorChip`] wires the substrates together exactly as the micrograph
//! shows: the 2×2 transducer array and reference structure feed the
//! second-order ΣΔ-modulator through two synchronized 2:1 multiplexers;
//! an auxiliary differential voltage input bypasses the transducer for
//! electrical characterization.
//!
//! ## Capacitance lookup
//!
//! Evaluating the membrane capacitance integral at the 128 kHz modulator
//! clock would be absurdly slow *and* physically pointless — the membrane
//! mechanics are static on a 7.8 µs scale. The chip therefore builds a
//! per-element pressure→capacitance lookup table at construction
//! (compressed from the exact model) and interpolates it per conversion
//! frame; out-of-table loads fall back to the exact (slow) model so
//! accuracy is never silently lost.

use tonos_analog::frontend::{CapacitiveFrontEnd, VoltageInput};
use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta2};
use tonos_analog::mux::AnalogMux;
use tonos_analog::power::PowerModel;
use tonos_dsp::bits::PackedBits;
use tonos_mems::array::SensorArray;
use tonos_mems::units::{Farads, Pascals, Volts};

use crate::config::ChipConfig;
use crate::scratch::ConversionScratch;
use crate::SystemError;

/// Pressure range covered by the capacitance lookup table.
const LUT_MIN_PA: f64 = -150_000.0;
/// Upper bound of the lookup table (≈ +1125 mmHg, far beyond clinical).
const LUT_MAX_PA: f64 = 150_000.0;
/// Lookup table points (1 kPa ≈ 7.5 mmHg resolution before
/// interpolation; capacitance is glassy smooth on that scale).
const LUT_POINTS: usize = 301;

/// Per-element pressure→capacitance interpolation table.
#[derive(Debug, Clone, PartialEq)]
struct CapacitanceLut {
    step: f64,
    /// Capacitance in farads at `LUT_MIN_PA + i * step`.
    values: Vec<f64>,
}

impl CapacitanceLut {
    fn build(element: &tonos_mems::element::ForceSensorElement) -> Result<Self, SystemError> {
        let step = (LUT_MAX_PA - LUT_MIN_PA) / (LUT_POINTS - 1) as f64;
        let mut values = Vec::with_capacity(LUT_POINTS);
        for i in 0..LUT_POINTS {
            let p = Pascals(LUT_MIN_PA + i as f64 * step);
            values.push(element.capacitance(p)?.value());
        }
        Ok(CapacitanceLut { step, values })
    }

    /// Linear interpolation; `None` when outside the table.
    fn lookup(&self, pressure: Pascals) -> Option<Farads> {
        let p = pressure.value();
        if !(LUT_MIN_PA..=LUT_MAX_PA).contains(&p) {
            return None;
        }
        let x = (p - LUT_MIN_PA) / self.step;
        let i = (x.floor() as usize).min(self.values.len() - 2);
        let frac = x - i as f64;
        Some(Farads(
            self.values[i] * (1.0 - frac) + self.values[i + 1] * frac,
        ))
    }
}

/// The integrated tactile sensor chip.
#[derive(Debug, Clone)]
pub struct SensorChip {
    config: ChipConfig,
    array: SensorArray,
    mux: AnalogMux,
    modulator: SigmaDelta2,
    frontend: CapacitiveFrontEnd,
    voltage_input: VoltageInput,
    power: PowerModel,
    luts: Vec<CapacitanceLut>,
    /// Reused per-call capacitance snapshot buffer (taken and restored by
    /// the hot entry points so they stay allocation-free per frame).
    caps_scratch: Vec<Farads>,
    /// Successful element selections (including no-op re-selects, which
    /// still represent scan-controller decisions).
    element_selections: u64,
}

impl SensorChip {
    /// Fabricates a chip from a configuration (array with seeded
    /// mismatch, front end referenced to the on-chip reference structure,
    /// modulator with the configured non-idealities) and precomputes the
    /// capacitance lookup tables.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and substrate construction
    /// failures.
    pub fn new(config: ChipConfig) -> Result<Self, SystemError> {
        config.validate()?;
        let array = SensorArray::with_mismatch(
            config.layout,
            config.electrode,
            config.mismatch,
            config.fabrication_seed,
        )?
        .with_grid(config.capacitance_grid);
        let mux = AnalogMux::new(
            config.layout.rows,
            config.layout.cols,
            config.mux_tau_clocks,
        )?;
        let modulator = SigmaDelta2::new(config.nonideal)?;
        let vref = Volts(config.supply.value() / 2.0);
        let frontend = CapacitiveFrontEnd::new(
            array.reference_capacitance(),
            config.feedback_capacitance,
            vref,
        )?;
        let voltage_input = VoltageInput::new(vref)?;
        let power = PowerModel::paper_default();
        let mut luts = Vec::with_capacity(config.layout.len());
        for (_, element) in array.iter() {
            luts.push(CapacitanceLut::build(element)?);
        }
        Ok(SensorChip {
            config,
            array,
            mux,
            modulator,
            frontend,
            voltage_input,
            power,
            luts,
            caps_scratch: Vec::new(),
            element_selections: 0,
        })
    }

    /// The paper's chip with default configuration.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in configuration; the `Result` mirrors
    /// [`SensorChip::new`].
    pub fn paper_default() -> Result<Self, SystemError> {
        SensorChip::new(ChipConfig::paper_default())
    }

    /// The chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// The transducer array.
    pub fn array(&self) -> &SensorArray {
        &self.array
    }

    /// The capacitive front end (for inspecting Cfb / Vref).
    pub fn frontend(&self) -> &CapacitiveFrontEnd {
        &self.frontend
    }

    /// Currently selected element `(row, col)`.
    pub fn selected_element(&self) -> (usize, usize) {
        self.mux.selected()
    }

    /// Fraction of modulator steps that saturated an integrator (overload
    /// telltale).
    pub fn overload_ratio(&self) -> f64 {
        self.modulator.overload_ratio()
    }

    /// Power consumption in watts at the configured operating point
    /// (anchored at the paper's 11.5 mW @ 5 V / 128 kHz).
    pub fn power_consumption(&self) -> f64 {
        self.power
            .power(self.config.sample_rate_hz, self.config.supply)
    }

    /// Total ΣΔ modulator clock cycles executed so far.
    pub fn modulator_steps(&self) -> u64 {
        self.modulator.steps()
    }

    /// Total modulator integrator saturation events so far.
    pub fn modulator_saturations(&self) -> u64 {
        self.modulator.saturation_events()
    }

    /// Total mux channel switches so far (no-op re-selects excluded).
    pub fn mux_switch_events(&self) -> u64 {
        self.mux.switch_events()
    }

    /// Successful element selections so far (no-op re-selects included).
    pub fn element_selections(&self) -> u64 {
        self.element_selections
    }

    /// Energy in joules consumed by `cycles` modulator clocks at the
    /// configured operating point.
    pub fn energy_for_cycles(&self, cycles: u64) -> f64 {
        self.power
            .energy_for_cycles(cycles, self.config.sample_rate_hz, self.config.supply)
    }

    /// Evaluates every element's capacitance for a per-element pressure
    /// frame, via the lookup tables (exact-model fallback outside the
    /// table range).
    ///
    /// # Errors
    ///
    /// Propagates membrane collapse for loads beyond the table that the
    /// exact model rejects, and a length-mismatch configuration error.
    pub fn capacitances(&self, pressures: &[Pascals]) -> Result<Vec<Farads>, SystemError> {
        let mut caps = Vec::with_capacity(pressures.len());
        self.capacitances_into(pressures, &mut caps)?;
        Ok(caps)
    }

    /// [`SensorChip::capacitances`] into a caller-owned buffer (cleared,
    /// then filled) — the allocation-free variant the hot path uses.
    ///
    /// # Errors
    ///
    /// Mirrors [`SensorChip::capacitances`].
    pub fn capacitances_into(
        &self,
        pressures: &[Pascals],
        caps: &mut Vec<Farads>,
    ) -> Result<(), SystemError> {
        if pressures.len() != self.config.layout.len() {
            return Err(SystemError::Config(format!(
                "expected {} element pressures, got {}",
                self.config.layout.len(),
                pressures.len()
            )));
        }
        caps.clear();
        caps.reserve(pressures.len());
        for (((_, element), lut), &p) in self.array.iter().zip(&self.luts).zip(pressures) {
            let c = match lut.lookup(p) {
                Some(c) => c,
                None => element.capacitance(p)?,
            };
            caps.push(c);
        }
        Ok(())
    }

    /// Selects an array element through the row/column multiplexers. The
    /// pressures describe the array state at switch time (they freeze the
    /// outgoing channel's charge into the settling transient).
    ///
    /// # Errors
    ///
    /// Propagates channel-range and capacitance-evaluation failures.
    pub fn select_element(
        &mut self,
        row: usize,
        col: usize,
        pressures: &[Pascals],
    ) -> Result<(), SystemError> {
        let mut caps = std::mem::take(&mut self.caps_scratch);
        let result = self.capacitances_into(pressures, &mut caps);
        let routed = result.and_then(|()| Ok(self.mux.select(row, col, &caps)?));
        self.caps_scratch = caps;
        routed?;
        self.element_selections += 1;
        Ok(())
    }

    /// Converts one *pressure frame*: the element pressures are held for
    /// `clocks` modulator cycles (the mechanics are static at this time
    /// scale) and the resulting ±1 bitstream is returned as floats for
    /// the decimation filter.
    ///
    /// This is the legacy representation; the hot path is
    /// [`SensorChip::convert_frame_packed`], which this method expands.
    ///
    /// # Errors
    ///
    /// Propagates capacitance-evaluation failures.
    pub fn convert_frame(
        &mut self,
        pressures: &[Pascals],
        clocks: usize,
    ) -> Result<Vec<f64>, SystemError> {
        Ok(self.convert_frame_packed(pressures, clocks)?.to_f64_vec())
    }

    /// Converts one pressure frame into the modulator's native packed
    /// single-bit stream (one bit per clock, 64 clocks per `u64` word) —
    /// no per-bit `f64` materialization between modulator and decimator.
    ///
    /// Bit-exact against [`SensorChip::convert_frame`]: the two differ
    /// only in how the identical bit sequence is carried.
    ///
    /// # Errors
    ///
    /// Propagates capacitance-evaluation failures.
    pub fn convert_frame_packed(
        &mut self,
        pressures: &[Pascals],
        clocks: usize,
    ) -> Result<PackedBits, SystemError> {
        let mut scratch = ConversionScratch::with_frame_capacity(clocks);
        self.convert_frame_packed_into(pressures, clocks, &mut scratch)?;
        Ok(scratch.bits)
    }

    /// [`SensorChip::convert_frame_packed`] into caller-owned scratch —
    /// the zero-allocation hot path. The packed bitstream lands in
    /// `scratch.bits`; `scratch.inputs` and `scratch.noise` hold the
    /// frame's modulator inputs and pre-drawn noise as side products.
    ///
    /// Bit-exact against the per-sample path: the settled mux emits a
    /// constant, so the input fill and the modulator's block stepper
    /// ([`DeltaSigmaModulator::step_block`]) reproduce the scalar
    /// sequence exactly.
    ///
    /// # Errors
    ///
    /// Propagates capacitance-evaluation failures.
    pub fn convert_frame_packed_into(
        &mut self,
        pressures: &[Pascals],
        clocks: usize,
        scratch: &mut ConversionScratch,
    ) -> Result<(), SystemError> {
        let mut caps = std::mem::take(&mut self.caps_scratch);
        let result = self.capacitances_into(pressures, &mut caps);
        let filled = result.and_then(|()| {
            scratch.clear();
            scratch.inputs.reserve(clocks);
            if self.mux.is_settled() {
                // Settled fast path: the routed capacitance is constant
                // for the whole frame — one sample, `clocks` copies.
                if clocks > 0 {
                    let sensed = self.mux.sample(&caps)?;
                    let u = self.frontend.input_fraction(sensed);
                    scratch.inputs.extend(std::iter::repeat_n(u, clocks));
                }
            } else {
                for _ in 0..clocks {
                    let sensed = self.mux.sample(&caps)?;
                    scratch.inputs.push(self.frontend.input_fraction(sensed));
                }
            }
            Ok(())
        });
        self.caps_scratch = caps;
        filled?;
        self.modulator
            .step_block(&scratch.inputs, &mut scratch.noise, &mut scratch.bits);
        Ok(())
    }

    /// The input-fill half of [`SensorChip::convert_frame_packed_into`],
    /// *without* stepping the modulator — the banked readout computes the
    /// frame input here and feeds it to a shared lane bank instead.
    ///
    /// Returns `Some(u)` when the settled mux holds one constant input
    /// for the whole frame (`samples` is left empty), or `None` with
    /// `samples` holding one input per clock (the mux settling
    /// transient). Mux state advances exactly as in the scalar path: one
    /// sample per settled frame, one per clock while settling.
    ///
    /// # Errors
    ///
    /// Propagates capacitance-evaluation failures.
    pub(crate) fn fill_frame_input(
        &mut self,
        pressures: &[Pascals],
        clocks: usize,
        samples: &mut Vec<f64>,
    ) -> Result<Option<f64>, SystemError> {
        let mut caps = std::mem::take(&mut self.caps_scratch);
        let result = self.capacitances_into(pressures, &mut caps);
        let filled = result.and_then(|()| {
            samples.clear();
            if self.mux.is_settled() {
                if clocks > 0 {
                    let sensed = self.mux.sample(&caps)?;
                    return Ok(Some(self.frontend.input_fraction(sensed)));
                }
                Ok(None)
            } else {
                samples.reserve(clocks);
                for _ in 0..clocks {
                    let sensed = self.mux.sample(&caps)?;
                    samples.push(self.frontend.input_fraction(sensed));
                }
                Ok(None)
            }
        });
        self.caps_scratch = caps;
        filled
    }

    /// Hands the chip's modulator off (to a lane bank), leaving a fresh
    /// placeholder built from the chip's own configuration. The chip
    /// must not convert frames until [`SensorChip::restore_modulator`]
    /// puts the (possibly bank-advanced) modulator back.
    ///
    /// # Errors
    ///
    /// Propagates placeholder construction failures (never fails for a
    /// configuration that already built this chip).
    pub(crate) fn extract_modulator(&mut self) -> Result<SigmaDelta2, SystemError> {
        let placeholder = SigmaDelta2::new(self.config.nonideal)?;
        Ok(std::mem::replace(&mut self.modulator, placeholder))
    }

    /// Reinstalls a modulator previously taken by
    /// [`SensorChip::extract_modulator`].
    pub(crate) fn restore_modulator(&mut self, m: SigmaDelta2) {
        self.modulator = m;
    }

    /// Converts a block through the auxiliary differential voltage input
    /// (electrical characterization, §3/§3.1). One input sample per
    /// modulator clock.
    pub fn convert_voltage_block(&mut self, inputs: &[Volts]) -> Vec<f64> {
        let mut out = Vec::with_capacity(inputs.len());
        self.convert_voltage_block_into(inputs, &mut out);
        out
    }

    /// [`SensorChip::convert_voltage_block`] into a caller-owned buffer
    /// (cleared, then filled) — the allocation-free variant.
    pub fn convert_voltage_block_into(&mut self, inputs: &[Volts], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(inputs.len());
        for &v in inputs {
            out.push(f64::from(
                self.modulator.step(self.voltage_input.input_fraction(v)),
            ));
        }
    }

    /// Resets the modulator loop state (integrators, comparator).
    pub fn reset_modulator(&mut self) {
        self.modulator.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tonos_mems::units::MillimetersHg;

    fn chip() -> SensorChip {
        SensorChip::paper_default().unwrap()
    }

    fn uniform_frame(mmhg: f64) -> Vec<Pascals> {
        vec![Pascals::from_mmhg(MillimetersHg(mmhg)); 4]
    }

    #[test]
    fn lut_matches_exact_model_to_attofarads() {
        let chip = chip();
        for &mmhg in &[-200.0, -50.0, 0.0, 33.3, 100.0, 250.0, 400.0] {
            let frame = uniform_frame(mmhg);
            let via_lut = chip.capacitances(&frame).unwrap();
            for ((_, element), lut_val) in chip.array.iter().zip(&via_lut) {
                let exact = element.capacitance(frame[0]).unwrap();
                let err_af = (lut_val.value() - exact.value()).abs() * 1e18;
                assert!(err_af < 5.0, "{mmhg} mmHg: LUT error {err_af} aF");
            }
        }
    }

    #[test]
    fn out_of_table_pressures_fall_back_to_exact_model() {
        let chip = chip();
        // 160 kPa is outside the LUT but below collapse.
        let p = Pascals(160_000.0);
        let caps = chip.capacitances(&[p; 4]).unwrap();
        let exact = chip.array.element(0, 0).unwrap().capacitance(p).unwrap();
        assert!((caps[0].value() - exact.value()).abs() < 1e-20);
    }

    #[test]
    fn conversion_tracks_pressure_changes() {
        let mut chip = chip();
        // Bitstream mean must increase when the pressure (hence ΔC, hence
        // the modulator input) increases.
        let mean_at = |chip: &mut SensorChip, mmhg: f64| {
            let bits = chip.convert_frame(&uniform_frame(mmhg), 40_000).unwrap();
            bits[2000..].iter().sum::<f64>() / (bits.len() - 2000) as f64
        };
        let low = mean_at(&mut chip, 0.0);
        let high = mean_at(&mut chip, 300.0);
        // 300 mmHg deflects the membrane ~25 nm → ΔC ≈ 0.3 fF ≈ 0.003 of
        // the 100 fF full scale.
        assert!(
            high > low + 0.0015,
            "bitstream mean must rise with pressure: {low} -> {high}"
        );
    }

    #[test]
    fn voltage_input_bypasses_the_transducer() {
        let mut chip = chip();
        let bits = chip.convert_voltage_block(&vec![Volts(0.625); 40_000]);
        let mean = bits[2000..].iter().sum::<f64>() / (bits.len() - 2000) as f64;
        // 0.625 V / 2.5 V = 0.25 FS.
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn element_selection_routes_the_right_capacitor() {
        let mut chip = chip();
        // Pressurize only element (1, 0); the selected element must see
        // the load, an unloaded element must not. Comparing the *same*
        // element across frames isolates pressure from per-element
        // mismatch offsets (which are larger than the signal).
        let quiet_frame = uniform_frame(0.0);
        let mut loaded_frame = uniform_frame(0.0);
        loaded_frame[2] = Pascals::from_mmhg(MillimetersHg(300.0));
        let mean_for = |chip: &mut SensorChip, row: usize, col: usize, frame: &[Pascals]| {
            chip.select_element(row, col, frame).unwrap();
            chip.reset_modulator();
            let bits = chip.convert_frame(frame, 40_000).unwrap();
            bits[4000..].iter().sum::<f64>() / (bits.len() - 4000) as f64
        };
        let e10_quiet = mean_for(&mut chip, 1, 0, &quiet_frame);
        let e10_loaded = mean_for(&mut chip, 1, 0, &loaded_frame);
        assert!(
            e10_loaded > e10_quiet + 0.0015,
            "selected loaded element must read higher: {e10_quiet} vs {e10_loaded}"
        );
        let e01_quiet = mean_for(&mut chip, 0, 1, &quiet_frame);
        let e01_loaded = mean_for(&mut chip, 0, 1, &loaded_frame);
        assert!(
            (e01_loaded - e01_quiet).abs() < 0.001,
            "unloaded element must not react: {e01_quiet} vs {e01_loaded}"
        );
        assert_eq!(chip.selected_element(), (0, 1));
    }

    #[test]
    fn power_matches_the_paper() {
        let chip = chip();
        assert!((chip.power_consumption() - 11.5e-3).abs() < 1e-9);
    }

    #[test]
    fn wrong_frame_length_is_rejected() {
        let chip = chip();
        let err = chip.capacitances(&uniform_frame(0.0)[..3]).unwrap_err();
        assert!(matches!(err, SystemError::Config(_)));
    }

    #[test]
    fn collapse_pressure_propagates_as_mems_error() {
        let chip = chip();
        let err = chip.capacitances(&[Pascals(5e6); 4]).unwrap_err();
        assert!(matches!(err, SystemError::Mems(_)));
    }

    #[test]
    fn chips_are_deterministic_per_fabrication_seed() {
        let a = SensorChip::paper_default().unwrap();
        let b = SensorChip::paper_default().unwrap();
        let frame = uniform_frame(80.0);
        assert_eq!(
            a.capacitances(&frame).unwrap(),
            b.capacitances(&frame).unwrap()
        );
        let mut cfg = ChipConfig::paper_default();
        cfg.fabrication_seed ^= 1;
        let c = SensorChip::new(cfg).unwrap();
        assert_ne!(
            a.capacitances(&frame).unwrap(),
            c.capacitances(&frame).unwrap()
        );
    }

    #[test]
    fn no_overload_in_clinical_range() {
        let mut chip = chip();
        let _ = chip.convert_frame(&uniform_frame(250.0), 20_000).unwrap();
        assert_eq!(chip.overload_ratio(), 0.0);
    }
}

//! Vessel localization from an array scan.
//!
//! "This can also be used for localizing blood vessels, buried in
//! tissue." (§2) — the per-element pulsatile scores of a scan form a
//! spatial sample of the vessel's surface pressure kernel; the estimator
//! here fits its lateral position.
//!
//! With only a 2×2 array the kernel is heavily under-sampled, so the
//! estimator uses a score-weighted centroid with baseline subtraction —
//! robust, monotone in the true offset, and exactly what a clinician
//! sweeping the probe needs ("move left / right"), rather than an
//! absolute fit.

use tonos_mems::array::ArrayLayout;

use crate::select::ScanResult;
use crate::SystemError;

/// A vessel position estimate in chip coordinates (meters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VesselEstimate {
    /// Estimated lateral position along x.
    pub x: f64,
    /// Estimated position along y (the vessel axis; near zero by
    /// symmetry unless the kernel is tilted).
    pub y: f64,
    /// Localization confidence in [0, 1]: the relative spread of the
    /// element scores (0 = all equal, nothing to localize).
    pub confidence: f64,
}

/// Estimates the vessel position from scan scores.
///
/// # Errors
///
/// Returns [`SystemError::Config`] when the scores don't match the
/// layout, or when every score is zero/non-finite.
pub fn localize_vessel(
    scan: &ScanResult,
    layout: ArrayLayout,
) -> Result<VesselEstimate, SystemError> {
    if scan.scores.len() != layout.len() {
        return Err(SystemError::Config(format!(
            "{} scores for a {}-element layout",
            scan.scores.len(),
            layout.len()
        )));
    }
    let mut min = f64::MAX;
    let mut max = f64::MIN;
    for &(_, s) in &scan.scores {
        if !s.is_finite() || s < 0.0 {
            return Err(SystemError::Config(format!("invalid score {s}")));
        }
        min = min.min(s);
        max = max.max(s);
    }
    if !(max > 0.0) {
        return Err(SystemError::Config("all scan scores are zero".into()));
    }
    // Baseline-subtracted weights emphasize the spatial *contrast*; the
    // small epsilon keeps the centroid defined when all scores are equal.
    let eps = 1e-12 * max;
    let mut wx = 0.0;
    let mut wy = 0.0;
    let mut wsum = 0.0;
    for &((row, col), s) in &scan.scores {
        let w = (s - min) + eps;
        let (x, y) = layout.position(row, col);
        wx += w * x;
        wy += w * y;
        wsum += w;
    }
    Ok(VesselEstimate {
        x: wx / wsum,
        y: wy / wsum,
        confidence: (max - min) / max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::ScanResult;

    fn layout() -> ArrayLayout {
        ArrayLayout::paper_default()
    }

    fn scan(scores: [f64; 4]) -> ScanResult {
        let mut best = (0, 0);
        let mut best_s = f64::MIN;
        let mut v = Vec::new();
        for (i, &s) in scores.iter().enumerate() {
            let rc = (i / 2, i % 2);
            if s > best_s {
                best_s = s;
                best = rc;
            }
            v.push((rc, s));
        }
        ScanResult { scores: v, best }
    }

    #[test]
    fn uniform_scores_give_center_and_zero_confidence() {
        let est = localize_vessel(&scan([1.0, 1.0, 1.0, 1.0]), layout()).unwrap();
        assert!(est.x.abs() < 1e-9);
        assert!(est.y.abs() < 1e-9);
        assert_eq!(est.confidence, 0.0);
    }

    #[test]
    fn left_heavy_scores_pull_the_estimate_left() {
        // Columns 0 (x = -75 µm) dominate.
        let est = localize_vessel(&scan([3.0, 1.0, 3.0, 1.0]), layout()).unwrap();
        assert!(est.x < -20e-6, "estimate {} should be clearly left", est.x);
        assert!(est.y.abs() < 1e-9, "row-symmetric scores keep y centered");
        assert!(est.confidence > 0.5);
    }

    #[test]
    fn estimate_is_monotone_in_contrast() {
        let weak = localize_vessel(&scan([1.2, 1.0, 1.2, 1.0]), layout()).unwrap();
        let strong = localize_vessel(&scan([3.0, 1.0, 3.0, 1.0]), layout()).unwrap();
        assert!(strong.x < weak.x, "more contrast → estimate farther left");
        assert!(strong.confidence > weak.confidence);
    }

    #[test]
    fn corner_vessel_moves_both_axes() {
        let est = localize_vessel(&scan([1.0, 1.0, 1.0, 4.0]), layout()).unwrap();
        assert!(est.x > 20e-6);
        assert!(est.y > 20e-6);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let bad = ScanResult {
            scores: vec![((0, 0), 1.0)],
            best: (0, 0),
        };
        assert!(localize_vessel(&bad, layout()).is_err());
        assert!(localize_vessel(&scan([0.0, 0.0, 0.0, 0.0]), layout()).is_err());
        assert!(localize_vessel(&scan([1.0, f64::NAN, 1.0, 1.0]), layout()).is_err());
        assert!(localize_vessel(&scan([1.0, -1.0, 1.0, 1.0]), layout()).is_err());
    }
}

//! End-to-end continuous blood-pressure monitoring (the Fig. 9 session).
//!
//! [`BloodPressureMonitor`] runs the complete measurement the paper
//! demonstrates in §3.2:
//!
//! 1. synthesize the patient's arterial pressure (ground truth);
//! 2. couple it through tissue and the contact interface onto the array;
//! 3. **scan** the array and select the strongest element (§2);
//! 4. acquire the continuous raw waveform through mux → ΣΔ → decimator;
//! 5. **calibrate** against a hand-cuff reading (§3.2);
//! 6. extract beats, systolic/diastolic trends, and pulse rate;
//! 7. report tracking errors against the known ground truth — the
//!    quantitative validation the paper's test-person setup could not do.

use tonos_mems::creep::CreepModel;
use tonos_mems::thermal::ThermalModel;
use tonos_mems::units::{MillimetersHg, Pascals};
use tonos_physio::cuff::{CuffDevice, CuffReading};
use tonos_physio::patient::PatientProfile;
use tonos_physio::tissue::TissueModel;
use tonos_physio::waveform::WaveformRecord;
use tonos_telemetry::{buckets, names, Counter, Histogram, Severity, SpanTimer, Telemetry};

use crate::analyze::WaveformAnalysis;
use crate::calibrate::Calibration;
use crate::config::SystemConfig;
use crate::readout::ReadoutSystem;
use crate::select::{scan_strongest, ScanResult};
use crate::SystemError;

/// Beat-tracking errors against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingErrors {
    /// Mean absolute systolic error over matched beats, mmHg.
    pub systolic_mae: f64,
    /// Mean absolute diastolic error over matched beats, mmHg.
    pub diastolic_mae: f64,
    /// Pulse-rate error, beats per minute.
    pub pulse_rate_error_bpm: f64,
    /// Number of detected beats matched to truth beats.
    pub matched_beats: usize,
}

/// A die-temperature profile during a session: a linear ramp from
/// `start_c` to `end_c` over `ramp_s` seconds, then holding — the typical
/// warm-up of a bench-calibrated sensor strapped to skin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureProfile {
    /// Die temperature at session start, °C.
    pub start_c: f64,
    /// Final die temperature, °C.
    pub end_c: f64,
    /// Ramp duration, seconds.
    pub ramp_s: f64,
}

impl TemperatureProfile {
    /// Bench-to-body warm-up: 25 °C → 35 °C over 60 s.
    pub fn skin_warmup() -> Self {
        TemperatureProfile {
            start_c: 25.0,
            end_c: 35.0,
            ramp_s: 60.0,
        }
    }

    /// Die temperature at time `t` seconds into the session.
    pub fn temp_at(&self, t: f64) -> f64 {
        if self.ramp_s <= 0.0 || t >= self.ramp_s {
            self.end_c
        } else if t <= 0.0 {
            self.start_c
        } else {
            self.start_c + (self.end_c - self.start_c) * t / self.ramp_s
        }
    }
}

/// When and how to re-run the cuff calibration during a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecalibrationPolicy {
    /// Interval between cuff recalibrations in seconds; `None` keeps the
    /// single initial calibration (the paper's Fig. 9 procedure).
    pub interval_s: Option<f64>,
    /// Length of the raw-waveform window used for each calibration.
    pub window_s: f64,
}

impl RecalibrationPolicy {
    /// The paper's procedure: calibrate once at the start.
    pub fn initial_only() -> Self {
        RecalibrationPolicy {
            interval_s: None,
            window_s: 4.0,
        }
    }

    /// Recalibrate periodically (the interval must exceed the cuff's
    /// inflation cycle; validated at run time).
    pub fn periodic(interval_s: f64) -> Self {
        RecalibrationPolicy {
            interval_s: Some(interval_s),
            window_s: 4.0,
        }
    }
}

impl Default for RecalibrationPolicy {
    fn default() -> Self {
        RecalibrationPolicy::initial_only()
    }
}

/// A completed monitoring session.
#[derive(Debug, Clone)]
pub struct MonitoringSession {
    /// The ground-truth arterial record driving the session.
    pub truth: WaveformRecord,
    /// Raw (uncalibrated, full-scale units) output samples; the first
    /// corresponds to truth index `acquisition_start`.
    pub raw: Vec<f64>,
    /// Calibrated pressure samples aligned with `raw`.
    pub calibrated: Vec<MillimetersHg>,
    /// Truth sample index at which acquisition (after scan/settling)
    /// began.
    pub acquisition_start: usize,
    /// The array scan that chose the element.
    pub scan: ScanResult,
    /// The initial calibration.
    pub calibration: Calibration,
    /// All calibrations applied, as `(session time, calibration)` pairs —
    /// one entry when running the paper's initial-only procedure.
    pub calibrations: Vec<(f64, Calibration)>,
    /// The cuff reading used for the initial calibration.
    pub cuff_reading: CuffReading,
    /// Beat analysis of the calibrated waveform.
    pub analysis: WaveformAnalysis,
    /// Errors against ground truth.
    pub errors: TrackingErrors,
    /// Output sample rate, Hz.
    pub sample_rate: f64,
    /// Chip power during the session, watts.
    pub chip_power_w: f64,
}

/// Telemetry handles for the monitor's session stages.
#[derive(Debug, Clone, Default)]
pub(crate) struct MonitorInstruments {
    beats: Counter,
    recalibrations: Counter,
    beat_interval: Histogram,
    pub(crate) span_scan: SpanTimer,
    pub(crate) span_acquisition: SpanTimer,
    span_calibration: SpanTimer,
    span_analysis: SpanTimer,
}

/// The end-to-end monitor.
///
/// Fields are crate-visible so the lane-batched session runner
/// (`crate::batch`) can drive the same per-monitor state in lockstep.
#[derive(Debug, Clone)]
pub struct BloodPressureMonitor {
    pub(crate) system: ReadoutSystem,
    pub(crate) tissue: TissueModel,
    pub(crate) patient: PatientProfile,
    pub(crate) cuff: CuffDevice,
    pub(crate) scan_window: usize,
    pub(crate) recalibration: RecalibrationPolicy,
    pub(crate) telemetry: Telemetry,
    pub(crate) instruments: MonitorInstruments,
    /// Optional sensor-side thermal drift: the thermal model plus the
    /// die-temperature profile. Affects the *sensor*, not the truth.
    pub(crate) thermal: Option<(ThermalModel, TemperatureProfile)>,
    /// Optional sensor-side motion artifacts added to the contact-surface
    /// pressure (probe motion disturbs the contact, not the artery).
    pub(crate) artifacts: Option<tonos_physio::artifact::ArtifactGenerator>,
    /// Optional PDMS stress relaxation of the contact (strap-on creep).
    pub(crate) creep: Option<CreepModel>,
}

/// Default number of settled frames scored per element during the scan.
const DEFAULT_SCAN_WINDOW: usize = 400;

/// Fraction of a beat period after onset at which the systolic peak
/// occurs (the template's peak phase).
const SYSTOLIC_PHASE: f64 = 0.16;

/// Beat-matching tolerance in seconds.
const MATCH_TOLERANCE_S: f64 = 0.4;

impl BloodPressureMonitor {
    /// Creates a monitor with the radial-artery tissue preset and a
    /// clinical cuff (seeded from the patient seed).
    ///
    /// # Errors
    ///
    /// Propagates system construction failures.
    pub fn new(config: SystemConfig, patient: PatientProfile) -> Result<Self, SystemError> {
        Ok(BloodPressureMonitor {
            system: ReadoutSystem::new(config)?,
            tissue: TissueModel::radial_artery(),
            patient,
            cuff: CuffDevice::clinical(patient.params.seed ^ 0xCF),
            scan_window: DEFAULT_SCAN_WINDOW,
            recalibration: RecalibrationPolicy::initial_only(),
            telemetry: Telemetry::disabled(),
            instruments: MonitorInstruments::default(),
            thermal: None,
            artifacts: None,
            creep: None,
        })
    }

    /// Attaches a telemetry handle (chainable): session stages are timed
    /// as spans, beats and recalibrations are counted, and noteworthy
    /// session events land in the journal. The readout system underneath
    /// is instrumented through the same handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.system.attach_telemetry(telemetry.clone());
        let i = &mut self.instruments;
        i.beats = telemetry.counter(names::MONITOR_BEATS);
        i.recalibrations = telemetry.counter(names::MONITOR_RECALIBRATIONS);
        // Beat-to-beat intervals: 0.3–2.1 s covers 28–200 bpm.
        i.beat_interval = telemetry.histogram(
            names::MONITOR_BEAT_INTERVAL_S,
            &buckets::linear(0.3, 0.1, 18),
        );
        i.span_scan = telemetry.span(names::SPAN_SCAN);
        i.span_acquisition = telemetry.span(names::SPAN_ACQUISITION);
        i.span_calibration = telemetry.span(names::SPAN_CALIBRATION);
        i.span_analysis = telemetry.span(names::SPAN_ANALYSIS);
        self.telemetry = telemetry;
        self
    }

    /// Replaces the tissue model (chainable).
    pub fn with_tissue(mut self, tissue: TissueModel) -> Self {
        self.tissue = tissue;
        self
    }

    /// Replaces the cuff device (chainable).
    pub fn with_cuff(mut self, cuff: CuffDevice) -> Self {
        self.cuff = cuff;
        self
    }

    /// Replaces the scan window (settled frames per element; chainable).
    pub fn with_scan_window(mut self, frames: usize) -> Self {
        self.scan_window = frames;
        self
    }

    /// Sets the recalibration policy (chainable).
    pub fn with_recalibration(mut self, policy: RecalibrationPolicy) -> Self {
        self.recalibration = policy;
        self
    }

    /// Injects PDMS contact creep: the strap-on hold-down pressure
    /// relaxes viscoelastically, drifting a session calibrated at t = 0
    /// (the arterial truth is unaffected — pure sensor error).
    pub fn with_contact_creep(mut self, creep: CreepModel) -> Self {
        self.creep = Some(creep);
        self
    }

    /// Injects sensor-side motion artifacts (probe motion disturbing the
    /// contact pressure; the arterial truth is unaffected).
    pub fn with_motion_artifacts(
        mut self,
        artifacts: tonos_physio::artifact::ArtifactGenerator,
    ) -> Self {
        self.artifacts = Some(artifacts);
        self
    }

    /// Injects sensor-side thermal drift: the die follows the profile and
    /// the membranes' temperature-dependent stiffness biases the reading
    /// (the ground truth is unaffected — this is pure sensor error).
    pub fn with_thermal_drift(mut self, model: ThermalModel, profile: TemperatureProfile) -> Self {
        self.thermal = Some((model, profile));
        self
    }

    /// The underlying readout system.
    pub fn system(&self) -> &ReadoutSystem {
        &self.system
    }

    /// Runs a session of the given duration (seconds of acquired data,
    /// excluding the scan lead-in, which is synthesized additionally).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Config`] for durations under 4 s (too short
    /// to calibrate) and propagates pipeline failures.
    pub fn run(&mut self, duration_s: f64) -> Result<MonitoringSession, SystemError> {
        if !(duration_s >= 4.0) {
            return Err(SystemError::Config(format!(
                "session of {duration_s} s is too short to calibrate (need >= 4 s)"
            )));
        }
        let fs = self.system.output_rate_hz();
        let settle = self.system.settling_frames() as f64;
        let layout_len = self.system.chip().array().layout().len() as f64;
        let scan_s = (layout_len + 1.0) * (settle + self.scan_window as f64) / fs;
        let truth = self.patient.record(fs, duration_s + scan_s + 1.0)?;
        self.run_record(truth)
    }

    /// Runs a session against an externally synthesized ground-truth
    /// record (scenarios like [`tonos_physio::patient::PressureTransient`]).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Config`] when the record's sample rate does
    /// not match the system output rate or the record is too short;
    /// propagates pipeline failures.
    pub fn run_record(&mut self, truth: WaveformRecord) -> Result<MonitoringSession, SystemError> {
        let fs = self.system.output_rate_hz();
        if (truth.sample_rate - fs).abs() > 1e-9 {
            return Err(SystemError::Config(format!(
                "truth record at {} Hz, system outputs {} Hz",
                truth.sample_rate, fs
            )));
        }
        let synth = self.frame_synth(&truth, fs)?;
        let array_len = self.system.chip().array().layout().len();

        // --- Scan phase: advance through the truth record. ---
        let mut cursor = 0usize;
        let truth_len = truth.samples.len();
        let scan_span = self.instruments.span_scan.start();
        let scan = {
            let truth_ref = &truth;
            let synth_ref = &synth;
            scan_strongest(
                &mut self.system,
                || {
                    let mut frame = Vec::with_capacity(array_len);
                    synth_ref.fill_scan(truth_ref, cursor, &mut frame);
                    cursor += 1;
                    frame
                },
                self.scan_window,
            )?
        };
        scan_span.finish();
        self.telemetry.event(Severity::Info, "monitor", || {
            format!(
                "scan selected element ({}, {}) of {}",
                scan.best.0, scan.best.1, array_len
            )
        });

        let acquisition_start = cursor.min(truth_len);
        if truth_len - acquisition_start < (4.0 * fs) as usize {
            return Err(SystemError::Config(format!(
                "only {} samples remain after the scan; extend the record",
                truth_len - acquisition_start
            )));
        }

        // --- Acquisition phase. ---
        let acquisition_span = self.instruments.span_acquisition.start();
        let mut raw = Vec::with_capacity(truth_len - acquisition_start);
        // One frame buffer for the whole session: with the readout's
        // conversion scratch underneath, each iteration of this loop is
        // allocation-free except for `raw`'s pre-sized pushes.
        let mut frame = Vec::with_capacity(array_len);
        for i in 0..truth_len - acquisition_start {
            synth.fill_acquisition(&truth, acquisition_start, i, fs, &mut frame);
            raw.push(self.system.push_frame(&frame)?);
        }
        acquisition_span.finish();

        self.finish_session(truth, raw, acquisition_start, scan)
    }

    /// Builds this session's frame synthesizer: artifact track aligned
    /// with the truth record and precomputed drift terms. Pure with
    /// respect to the readout state, so the scalar and lane-batched
    /// paths can build identical synthesizers.
    pub(crate) fn frame_synth(
        &self,
        truth: &WaveformRecord,
        fs: f64,
    ) -> Result<FrameSynth, SystemError> {
        let contact = self.system.config().contact;
        let layout = self.system.chip().array().layout();
        let tissue = self.tissue;

        // Sensor-side motion artifacts: a surface-pressure disturbance
        // track aligned with the truth record.
        let artifact_track: Vec<Pascals> = match &self.artifacts {
            Some(generator) => generator
                .track(fs, truth.samples.len() as f64 / fs)
                .into_iter()
                .map(Pascals::from_mmhg)
                .collect(),
            None => Vec::new(),
        };

        // --- Sensor-side thermal drift (membrane-load-referred). ---
        // Precompute the full-scale drift once; the per-frame value is a
        // linear interpolation along the temperature profile.
        let thermal_drift = match &self.thermal {
            Some((model, profile)) if (profile.end_c - profile.start_c).abs() > 1e-9 => {
                // Bias point: the membrane load at the patient's mean
                // pressure.
                let mean_arterial = truth.mean_pressure();
                let bias = contact
                    .net_element_pressure(tissue.field(mean_arterial).pressure_at_xy(0.0, 0.0));
                let full = model.equivalent_pressure_drift(profile.end_c, bias)?;
                Some((*profile, full))
            }
            _ => None,
        };
        // Contact creep: the relaxing fraction applies to the full
        // transmitted contact pressure (hold-down + mean pulse), and the
        // membrane sees it through the concentration/transmission gain.
        let creep_drift = self.creep.map(|creep| {
            let mean_surface = tissue.field(truth.mean_pressure()).pressure_at_xy(0.0, 0.0);
            let surface_bias = Pascals(mean_surface.value() + contact.hold_down.value());
            let gain = contact.force_concentration * contact.pdms_transmission;
            (creep, surface_bias, gain)
        });

        Ok(FrameSynth {
            tissue,
            contact,
            layout,
            artifact_track,
            thermal_drift,
            creep_drift,
        })
    }

    /// The post-acquisition half of a session: cuff calibration(s),
    /// piecewise application, beat analysis, and error reporting. Shared
    /// by [`BloodPressureMonitor::run_record`] and the lane-batched
    /// runner.
    ///
    /// # Errors
    ///
    /// Propagates calibration and analysis failures.
    pub(crate) fn finish_session(
        &mut self,
        truth: WaveformRecord,
        raw: Vec<f64>,
        acquisition_start: usize,
        scan: ScanResult,
    ) -> Result<MonitoringSession, SystemError> {
        let fs = self.system.output_rate_hz();

        // --- Calibration(s) against the cuff. ---
        let window_s = self.recalibration.window_s.min(raw.len() as f64 / fs);
        let window_len = ((window_s * fs) as usize).max(1);
        if let Some(interval) = self.recalibration.interval_s {
            if interval < self.cuff.cycle_time() {
                return Err(SystemError::Config(format!(
                    "recalibration interval {interval} s is shorter than the cuff cycle {} s",
                    self.cuff.cycle_time()
                )));
            }
        }
        let t0 = acquisition_start as f64 / fs;
        let calibration_span = self.instruments.span_calibration.start();
        let mut calibrations: Vec<(f64, Calibration)> = Vec::new();
        let mut first_reading: Option<CuffReading> = None;
        let mut cal_start = 0usize; // raw index of the current window
        loop {
            let t_cal = t0 + cal_start as f64 / fs;
            // Truth beats inside this calibration window.
            let window_beats: Vec<_> = truth
                .beats
                .iter()
                .filter(|b| b.onset_s >= t_cal && b.onset_s < t_cal + window_s)
                .collect();
            if window_beats.is_empty() {
                return Err(SystemError::CalibrationFailed(format!(
                    "no truth beats in the calibration window at t = {t_cal:.1} s"
                )));
            }
            let mean_sys = window_beats.iter().map(|b| b.systolic.value()).sum::<f64>()
                / window_beats.len() as f64;
            let mean_dia = window_beats
                .iter()
                .map(|b| b.diastolic.value())
                .sum::<f64>()
                / window_beats.len() as f64;
            let reading =
                self.cuff
                    .measure(t_cal, MillimetersHg(mean_sys), MillimetersHg(mean_dia))?;
            let cal = Calibration::from_waveform(
                &raw[cal_start..(cal_start + window_len).min(raw.len())],
                fs,
                &reading,
            )?;
            calibrations.push((t_cal, cal));
            if first_reading.is_none() {
                first_reading = Some(reading);
            } else {
                self.instruments.recalibrations.inc();
                self.telemetry.event(Severity::Info, "monitor", || {
                    format!(
                        "cuff recalibration at t = {t_cal:.1} s ({}/{} mmHg)",
                        reading.systolic.value(),
                        reading.diastolic.value()
                    )
                });
            }
            let Some(interval) = self.recalibration.interval_s else {
                break;
            };
            let next = cal_start + (interval * fs) as usize;
            if next + window_len > raw.len() {
                break;
            }
            cal_start = next;
        }
        calibration_span.finish();
        let cuff_reading = first_reading.expect("at least one calibration ran");
        let calibration = calibrations[0].1;

        // Piecewise application: each sample uses the latest calibration
        // whose window has completed by that time.
        let mut calibrated = Vec::with_capacity(raw.len());
        let mut active = 0usize;
        for (i, &r) in raw.iter().enumerate() {
            let t = t0 + i as f64 / fs;
            while active + 1 < calibrations.len() && t >= calibrations[active + 1].0 + window_s {
                active += 1;
            }
            calibrated.push(calibrations[active].1.apply(r));
        }

        // --- Analysis & error reporting. ---
        let analysis_span = self.instruments.span_analysis.start();
        let cal_values: Vec<f64> = calibrated.iter().map(|p| p.value()).collect();
        let analysis = WaveformAnalysis::from_samples(&cal_values, fs)?;
        analysis_span.finish();
        self.instruments.beats.add(analysis.beats.len() as u64);
        for pair in analysis.beats.windows(2) {
            self.instruments
                .beat_interval
                .record((pair[1].peak_index - pair[0].peak_index) as f64 / fs);
        }
        let errors = tracking_errors(&truth, &analysis, acquisition_start, fs);
        self.telemetry.event(Severity::Info, "monitor", || {
            format!(
                "session analyzed: {} beats, {} matched, systolic MAE {:.2} mmHg",
                analysis.beats.len(),
                errors.matched_beats,
                errors.systolic_mae
            )
        });

        Ok(MonitoringSession {
            chip_power_w: self.system.chip().power_consumption(),
            truth,
            raw,
            calibrated,
            acquisition_start,
            scan,
            calibration,
            calibrations,
            cuff_reading,
            analysis,
            errors,
            sample_rate: fs,
        })
    }
}

/// Per-session frame synthesis: arterial truth sample + surface
/// artifact + sensor-side drift → per-element pressure frame.
///
/// Extracted from the session loop so the scalar path and the
/// lane-batched runner (`crate::batch`) synthesize frames through the
/// *same* expressions in the same order — frame values, and therefore
/// the converted bitstreams, stay bit-identical between the two
/// execution strategies. All methods are pure math: infallible and
/// allocation-free, keeping the acquisition loop on the zero-allocation
/// frame path.
#[derive(Debug, Clone)]
pub(crate) struct FrameSynth {
    tissue: TissueModel,
    contact: tonos_mems::contact::ContactInterface,
    layout: tonos_mems::array::ArrayLayout,
    artifact_track: Vec<Pascals>,
    /// Active thermal ramp: (profile, full-scale equivalent drift).
    thermal_drift: Option<(TemperatureProfile, Pascals)>,
    /// Contact creep: (model, surface bias, concentration·transmission).
    creep_drift: Option<(CreepModel, Pascals, f64)>,
}

impl FrameSynth {
    /// Surface artifact at truth index `i` (zero outside the track).
    fn artifact_at(&self, i: usize) -> Pascals {
        self.artifact_track.get(i).copied().unwrap_or(Pascals(0.0))
    }

    /// Arterial sample + surface artifact → per-element pressures, into
    /// a caller-owned buffer.
    fn fill(&self, arterial: MillimetersHg, artifact: Pascals, out: &mut Vec<Pascals>) {
        let field = self.tissue.field(arterial);
        out.clear();
        for row in 0..self.layout.rows {
            for col in 0..self.layout.cols {
                let (x, y) = self.layout.position(row, col);
                out.push(
                    self.contact
                        .net_element_pressure(field.pressure_at_xy(x, y) + artifact),
                );
            }
        }
    }

    /// Scan-phase frame at truth index `idx` (clamped to the record).
    pub(crate) fn fill_scan(&self, truth: &WaveformRecord, idx: usize, out: &mut Vec<Pascals>) {
        let i = idx.min(truth.samples.len() - 1);
        self.fill(truth.samples[i], self.artifact_at(i), out);
    }

    /// Combined sensor drift (thermal + creep) at session time `t`.
    fn drift_at(&self, t: f64) -> Pascals {
        let thermal = match &self.thermal_drift {
            Some((profile, full)) => {
                let frac =
                    (profile.temp_at(t) - profile.start_c) / (profile.end_c - profile.start_c);
                // The model's drift is referenced to its own reference
                // temperature; the session starts at profile.start_c,
                // so only the *change* from the start matters.
                *full * frac
            }
            None => Pascals(0.0),
        };
        let creep = match &self.creep_drift {
            Some((creep, surface_bias, gain)) => creep.pressure_drift(*surface_bias, t) * *gain,
            None => Pascals(0.0),
        };
        thermal + creep
    }

    /// Acquisition-phase frame: truth index `acquisition_start + i`,
    /// with the session drift applied to every element.
    pub(crate) fn fill_acquisition(
        &self,
        truth: &WaveformRecord,
        acquisition_start: usize,
        i: usize,
        fs: f64,
        out: &mut Vec<Pascals>,
    ) {
        let t = (acquisition_start + i) as f64 / fs;
        let arterial = truth.samples[acquisition_start + i];
        self.fill(arterial, self.artifact_at(acquisition_start + i), out);
        let drift = self.drift_at(t);
        for p in out {
            *p += drift;
        }
    }
}

/// Matches detected beats to truth beats and accumulates errors.
fn tracking_errors(
    truth: &WaveformRecord,
    analysis: &WaveformAnalysis,
    acquisition_start: usize,
    fs: f64,
) -> TrackingErrors {
    let mut sys_err = 0.0;
    let mut dia_err = 0.0;
    let mut matched = 0usize;
    for beat in &analysis.beats {
        let peak_t = (acquisition_start + beat.peak_index) as f64 / fs;
        // Truth beat whose systolic instant is nearest this peak.
        let nearest = truth.beats.iter().min_by(|a, b| {
            let ta = (a.onset_s + SYSTOLIC_PHASE * a.rr_s - peak_t).abs();
            let tb = (b.onset_s + SYSTOLIC_PHASE * b.rr_s - peak_t).abs();
            ta.partial_cmp(&tb).expect("finite times")
        });
        if let Some(t) = nearest {
            if (t.onset_s + SYSTOLIC_PHASE * t.rr_s - peak_t).abs() <= MATCH_TOLERANCE_S {
                sys_err += (beat.systolic - t.systolic.value()).abs();
                dia_err += (beat.diastolic - t.diastolic.value()).abs();
                matched += 1;
            }
        }
    }
    let truth_rate = truth.mean_heart_rate_bpm();
    TrackingErrors {
        systolic_mae: if matched > 0 {
            sys_err / matched as f64
        } else {
            f64::NAN
        },
        diastolic_mae: if matched > 0 {
            dia_err / matched as f64
        } else {
            f64::NAN
        },
        pulse_rate_error_bpm: (analysis.pulse_rate_bpm - truth_rate).abs(),
        matched_beats: matched,
    }
}

/// Small extension trait so the frame factory can call the tissue field
/// without importing the `PressureField` trait at every call site.
trait PressureAt {
    fn pressure_at_xy(&self, x: f64, y: f64) -> Pascals;
}

impl PressureAt for tonos_physio::tissue::TissueField {
    fn pressure_at_xy(&self, x: f64, y: f64) -> Pascals {
        use tonos_mems::contact::PressureField;
        self.pressure_at(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tonos_physio::patient::PressureTransient;

    fn quick_monitor() -> BloodPressureMonitor {
        BloodPressureMonitor::new(
            SystemConfig::paper_default(),
            PatientProfile::normotensive(),
        )
        .unwrap()
        .with_scan_window(150)
    }

    #[test]
    fn session_tracks_the_patient() {
        let mut monitor = quick_monitor();
        let session = monitor.run(8.0).unwrap();
        assert!(
            session.errors.matched_beats >= 6,
            "matched {} beats",
            session.errors.matched_beats
        );
        assert!(
            session.errors.systolic_mae < 8.0,
            "systolic MAE {} mmHg",
            session.errors.systolic_mae
        );
        assert!(
            session.errors.diastolic_mae < 8.0,
            "diastolic MAE {} mmHg",
            session.errors.diastolic_mae
        );
        assert!(
            session.errors.pulse_rate_error_bpm < 5.0,
            "rate error {}",
            session.errors.pulse_rate_error_bpm
        );
        assert!((session.chip_power_w - 11.5e-3).abs() < 1e-9);
        assert_eq!(session.sample_rate, 1000.0);
        assert_eq!(session.raw.len(), session.calibrated.len());
    }

    #[test]
    fn calibrated_waveform_lands_in_the_clinical_band() {
        let mut monitor = quick_monitor();
        let session = monitor.run(6.0).unwrap();
        let vals: Vec<f64> = session.calibrated.iter().map(|p| p.value()).collect();
        let max = vals.iter().copied().fold(f64::MIN, f64::max);
        let min = vals.iter().copied().fold(f64::MAX, f64::min);
        assert!((100.0..145.0).contains(&max), "systolic envelope {max}");
        assert!((55.0..95.0).contains(&min), "diastolic envelope {min}");
    }

    #[test]
    fn too_short_sessions_are_rejected() {
        let mut monitor = quick_monitor();
        assert!(matches!(monitor.run(2.0), Err(SystemError::Config(_))));
    }

    #[test]
    fn mismatched_record_rate_is_rejected() {
        let mut monitor = quick_monitor();
        let wrong = PatientProfile::normotensive().record(500.0, 10.0).unwrap();
        assert!(matches!(
            monitor.run_record(wrong),
            Err(SystemError::Config(_))
        ));
    }

    #[test]
    fn transient_scenario_is_tracked() {
        let mut monitor = quick_monitor();
        let scenario = PressureTransient {
            onset_s: 5.0,
            ramp_s: 3.0,
            hold_s: 4.0,
            ..PressureTransient::episode()
        };
        let truth = scenario.record(1000.0, 16.0).unwrap();
        let session = monitor.run_record(truth).unwrap();
        // Calibrated waveform must rise during the plateau relative to
        // the pre-onset baseline.
        let fs = session.sample_rate;
        let idx = |t: f64| ((t * fs) as usize).saturating_sub(session.acquisition_start);
        let seg_max = |lo: usize, hi: usize| {
            session.calibrated
                [lo.min(session.calibrated.len() - 1)..hi.min(session.calibrated.len())]
                .iter()
                .map(|p| p.value())
                .fold(f64::MIN, f64::max)
        };
        let baseline = seg_max(idx(2.5), idx(4.5));
        let plateau = seg_max(idx(9.0), idx(11.5));
        assert!(
            plateau > baseline + 15.0,
            "plateau {plateau} vs baseline {baseline}"
        );
    }

    #[test]
    fn thermal_drift_biases_a_single_calibration_session() {
        // A warm-up after the initial calibration must bias the reading;
        // periodic recalibration must remove most of that bias. Use a
        // deliberately large, fast temperature swing so the effect
        // dominates the other error sources in a short test.
        let profile = TemperatureProfile {
            start_c: 25.0,
            end_c: 80.0,
            ramp_s: 10.0,
        };
        let thermal = tonos_mems::thermal::ThermalModel::paper_default();

        let run = |policy: RecalibrationPolicy| {
            let mut monitor = BloodPressureMonitor::new(
                SystemConfig::paper_default(),
                PatientProfile::normotensive(),
            )
            .unwrap()
            .with_scan_window(120)
            .with_thermal_drift(thermal.clone(), profile)
            // A fast research cuff so an 8 s recalibration interval is
            // legal in this accelerated test.
            .with_cuff(CuffDevice::new(5.0, 1.0, 1.0, 1.0, 0xC0).unwrap())
            .with_recalibration(policy);
            monitor.run(26.0).unwrap()
        };

        let fixed = run(RecalibrationPolicy::initial_only());
        let recal = run(RecalibrationPolicy::periodic(8.0));
        assert_eq!(fixed.calibrations.len(), 1);
        assert!(
            recal.calibrations.len() >= 3,
            "{}",
            recal.calibrations.len()
        );
        assert!(
            fixed.errors.systolic_mae > recal.errors.systolic_mae + 1.0,
            "recalibration must beat a fixed calibration under drift: {} vs {}",
            fixed.errors.systolic_mae,
            recal.errors.systolic_mae
        );
    }

    #[test]
    fn motion_artifacts_degrade_but_do_not_break_tracking() {
        let clean = quick_monitor().run(10.0).unwrap();
        // Moderate artifacts: 8 mmHg surface spikes (≈ 29 mmHg at the
        // membrane after the contact concentration) every ~7 s. The
        // artifact schedule is drawn over the whole record — scan phase
        // included — but only events landing in the post-scan acquisition
        // window can show up in `raw`, so the seed is chosen to place
        // spikes there; seeds whose draws fall inside the ~12 s scan
        // (e.g. seed 5 under the workspace generator) make the envelope
        // comparison below vacuous.
        let mut noisy_monitor = quick_monitor().with_motion_artifacts(
            tonos_physio::artifact::ArtifactGenerator::new(0.15, 8.0, 2).unwrap(),
        );
        let noisy = noisy_monitor.run(10.0).unwrap();
        // Tracking still works…
        assert!(noisy.errors.matched_beats >= 5);
        assert!(
            noisy.errors.systolic_mae < 15.0,
            "artifacted MAE {}",
            noisy.errors.systolic_mae
        );
        // …but the artifacts are visibly present in the raw stream.
        let spread = |raw: &[f64]| {
            let max = raw.iter().copied().fold(f64::MIN, f64::max);
            let min = raw.iter().copied().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(
            spread(&noisy.raw) > spread(&clean.raw) * 1.2,
            "artifacts must widen the raw envelope"
        );
    }

    #[test]
    fn epicardial_contact_yields_a_stronger_signal() {
        let wrist = quick_monitor().run(6.0).unwrap();
        let mut epi_monitor =
            quick_monitor().with_tissue(tonos_physio::tissue::TissueModel::epicardial());
        let epi = epi_monitor.run(6.0).unwrap();
        let p2p = |raw: &[f64]| {
            let max = raw.iter().copied().fold(f64::MIN, f64::max);
            let min = raw.iter().copied().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(
            p2p(&epi.raw) > 1.8 * p2p(&wrist.raw),
            "direct contact must produce a much larger pulse: {} vs {}",
            p2p(&epi.raw),
            p2p(&wrist.raw)
        );
        assert!(epi.errors.systolic_mae < 8.0);
    }

    #[test]
    fn contact_creep_drifts_the_reading_down() {
        // An aggressive creep model (25 % relaxing with a 10 s constant)
        // must pull the late-session reading visibly below a crept-free
        // run calibrated at the same instant.
        let creep = tonos_mems::creep::CreepModel::new(0.25, 10.0).unwrap();
        let rigid = quick_monitor().run(12.0).unwrap();
        let mut crept_monitor = quick_monitor().with_contact_creep(creep);
        let crept = crept_monitor.run(12.0).unwrap();
        let late_mean = |s: &MonitoringSession| {
            let n = s.calibrated.len();
            s.calibrated[n - 3000..]
                .iter()
                .map(|p| p.value())
                .sum::<f64>()
                / 3000.0
        };
        assert!(
            late_mean(&crept) < late_mean(&rigid) - 2.0,
            "creep must depress the late reading: {} vs {}",
            late_mean(&crept),
            late_mean(&rigid)
        );
        // And the mild default preset is a sub-mmHg effect on this scale.
        let mut mild_monitor =
            quick_monitor().with_contact_creep(tonos_mems::creep::CreepModel::pdms_strap());
        let mild = mild_monitor.run(12.0).unwrap();
        assert!(
            (late_mean(&mild) - late_mean(&rigid)).abs() < 2.0,
            "default creep is slow: {} vs {}",
            late_mean(&mild),
            late_mean(&rigid)
        );
    }

    #[test]
    fn recalibration_interval_must_respect_the_cuff_cycle() {
        let mut monitor = quick_monitor().with_recalibration(RecalibrationPolicy::periodic(10.0)); // < 30 s cycle
        assert!(matches!(monitor.run(25.0), Err(SystemError::Config(_))));
    }

    #[test]
    fn temperature_profile_shape() {
        let p = TemperatureProfile {
            start_c: 25.0,
            end_c: 35.0,
            ramp_s: 60.0,
        };
        assert_eq!(p.temp_at(-1.0), 25.0);
        assert_eq!(p.temp_at(0.0), 25.0);
        assert!((p.temp_at(30.0) - 30.0).abs() < 1e-12);
        assert_eq!(p.temp_at(60.0), 35.0);
        assert_eq!(p.temp_at(1000.0), 35.0);
        let instant = TemperatureProfile { ramp_s: 0.0, ..p };
        assert_eq!(instant.temp_at(0.0), 35.0);
    }

    #[test]
    fn sessions_are_deterministic() {
        let a = quick_monitor().run(5.0).unwrap();
        let b = quick_monitor().run(5.0).unwrap();
        assert_eq!(a.raw, b.raw);
        assert_eq!(a.calibration, b.calibration);
    }
}

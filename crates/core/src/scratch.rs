//! Caller-owned scratch buffers for the per-frame conversion hot path.
//!
//! Converting one pressure frame needs four working buffers: the
//! modulator input samples for the frame, the pre-drawn per-sample noise
//! the block modulator uses internally, the packed ±1 bitstream, and the
//! decimated outputs. Allocating them per frame would put four heap
//! round-trips on a path that runs 1 000 times per second per session —
//! [`ConversionScratch`] owns them instead, so a settled readout session
//! performs **zero heap allocations per frame** (proven by the
//! counting-allocator test in `tests/alloc_free.rs`).
//!
//! Ownership flows downward: [`crate::readout::ReadoutSystem`] owns one
//! scratch and lends it to [`crate::chip::SensorChip`] per frame; the
//! monitor above reuses the readout's scratch transitively by calling
//! `push_frame`. The buffers grow to the frame's high-water mark on first
//! use and are only cleared (never shrunk) afterwards.

use tonos_dsp::bits::PackedBits;

/// Reusable working memory for one pressure-frame conversion.
///
/// All buffers are cleared at the start of each conversion and retain
/// their capacity across frames. The contents after a conversion are the
/// frame's intermediate products, readable until the next conversion:
/// `bits` holds the packed modulator stream and `out` the decimated
/// samples.
#[derive(Debug, Clone, Default)]
pub struct ConversionScratch {
    /// Modulator input samples (one per modulator clock).
    pub inputs: Vec<f64>,
    /// Per-sample noise workspace for the block modulator.
    pub noise: Vec<f64>,
    /// Packed ±1 modulator bitstream for the frame.
    pub bits: PackedBits,
    /// Decimated output samples for the frame.
    pub out: Vec<f64>,
}

impl ConversionScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        ConversionScratch::default()
    }

    /// Scratch pre-sized for frames of `clocks` modulator cycles, so the
    /// first frame already runs allocation-free.
    pub fn with_frame_capacity(clocks: usize) -> Self {
        ConversionScratch {
            inputs: Vec::with_capacity(clocks),
            noise: Vec::with_capacity(clocks),
            bits: PackedBits::with_capacity(clocks),
            out: Vec::with_capacity(4),
        }
    }

    /// Clears all buffers, keeping their allocations.
    pub fn clear(&mut self) {
        self.inputs.clear();
        self.noise.clear();
        self.bits.clear();
        self.out.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_keeps_capacity() {
        let mut s = ConversionScratch::with_frame_capacity(128);
        s.inputs.extend(std::iter::repeat_n(0.5, 128));
        s.noise.extend(std::iter::repeat_n(0.1, 128));
        for i in 0..128 {
            s.bits.push(i % 2 == 0);
        }
        s.out.push(0.25);
        let caps = (s.inputs.capacity(), s.noise.capacity(), s.out.capacity());
        s.clear();
        assert!(s.inputs.is_empty() && s.noise.is_empty() && s.out.is_empty());
        assert!(s.bits.is_empty());
        assert_eq!(
            (s.inputs.capacity(), s.noise.capacity(), s.out.capacity()),
            caps
        );
    }
}

//! Strongest-element selection.
//!
//! "In order to relax the necessary accuracy of sensor placement, an
//! array of force detectors is used and the sensor element with the
//! strongest signal is selected during measurement." (§2)
//!
//! The scanner measures every element for a short window (discarding the
//! decimation settling after each mux switch), scores each element by the
//! standard deviation of its settled output — the pulsatile signal — and
//! picks the maximum. The AC measure deliberately ignores static mismatch
//! offsets, which dwarf the pulse; standard deviation (rather than
//! peak-to-peak) averages across the 12-bit quantization grid, resolving
//! sub-LSB amplitude differences between elements.

use tonos_mems::units::Pascals;

use crate::readout::ReadoutSystem;
use crate::SystemError;

/// Result of an array scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResult {
    /// Per-element pulsatile scores (standard deviation of the settled
    /// output), row-major with their `(row, col)` indices.
    pub scores: Vec<((usize, usize), f64)>,
    /// The winning element.
    pub best: (usize, usize),
}

impl ScanResult {
    /// The score of a specific element.
    pub fn score(&self, row: usize, col: usize) -> Option<f64> {
        self.scores
            .iter()
            .find(|((r, c), _)| *r == row && *c == col)
            .map(|(_, s)| *s)
    }
}

/// Scans every array element and selects the one with the strongest
/// pulsatile signal.
///
/// `frame_source` produces the per-element pressure frame for consecutive
/// output-rate instants (it is called once per converted frame, across
/// all elements, so time keeps advancing during the scan — exactly like
/// the real sequential scan). `window` is the number of *settled* frames
/// scored per element.
///
/// The winning element is left selected on the mux, with the system
/// settled on it.
///
/// # Errors
///
/// Returns [`SystemError::Config`] for a zero-length window and
/// propagates conversion failures.
pub fn scan_strongest<F>(
    system: &mut ReadoutSystem,
    mut frame_source: F,
    window: usize,
) -> Result<ScanResult, SystemError>
where
    F: FnMut() -> Vec<Pascals>,
{
    if window == 0 {
        return Err(SystemError::Config("scan window must be positive".into()));
    }
    let layout = system.chip().array().layout();
    let settle = system.settling_frames();
    let mut scores = Vec::with_capacity(layout.len());
    let mut best = (0, 0);
    let mut best_score = f64::NEG_INFINITY;
    // One flat pressure buffer, reused for every element; frames are
    // borrowed chunks of it (the readout API accepts any slice-like
    // frame), so the scan allocates the measurement buffer once.
    let mut flat: Vec<Pascals> = Vec::with_capacity((settle + window) * layout.len());
    for row in 0..layout.rows {
        for col in 0..layout.cols {
            flat.clear();
            for _ in 0..settle + window {
                flat.extend(frame_source());
            }
            let frames: Vec<&[Pascals]> = flat.chunks(layout.len()).collect();
            let settled = system.measure_element(row, col, &frames)?;
            let mean = settled.iter().sum::<f64>() / settled.len() as f64;
            let score = (settled.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                / settled.len() as f64)
                .sqrt();
            scores.push(((row, col), score));
            if score > best_score {
                best_score = score;
                best = (row, col);
            }
        }
    }
    // Re-select the winner and settle on it.
    flat.clear();
    for _ in 0..settle + 1 {
        flat.extend(frame_source());
    }
    let frames: Vec<&[Pascals]> = flat.chunks(layout.len()).collect();
    let _ = system.measure_element(best.0, best.1, &frames)?;
    Ok(ScanResult { scores, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use tonos_mems::units::MillimetersHg;

    /// A pulse source that drives one element much harder than the rest.
    fn pulsed_source(hot: usize) -> impl FnMut() -> Vec<Pascals> {
        let mut t = 0usize;
        move || {
            t += 1;
            // 2 Hz "pulse" at the 1 kHz frame rate, 40 mmHg p2p on the hot
            // element, 4 mmHg on the others (spatial falloff).
            let phase = (t as f64 / 1000.0) * 2.0 * std::f64::consts::PI * 2.0;
            let strong = 80.0 + 20.0 * phase.sin();
            let weak = 80.0 + 2.0 * phase.sin();
            (0..4)
                .map(|i| Pascals::from_mmhg(MillimetersHg(if i == hot { strong } else { weak })))
                .collect()
        }
    }

    #[test]
    fn scanner_finds_the_pulsating_element() {
        for hot in 0..4 {
            let mut sys = ReadoutSystem::new(SystemConfig::paper_default()).unwrap();
            let result = scan_strongest(&mut sys, pulsed_source(hot), 600).unwrap();
            let expected = (hot / 2, hot % 2);
            assert_eq!(result.best, expected, "hot element {hot}: {result:?}");
            assert_eq!(sys.chip().selected_element(), expected);
        }
    }

    #[test]
    fn scores_reflect_signal_strength_not_offset() {
        let mut sys = ReadoutSystem::new(SystemConfig::paper_default()).unwrap();
        let result = scan_strongest(&mut sys, pulsed_source(3), 600).unwrap();
        let hot_score = result.score(1, 1).unwrap();
        for &((r, c), s) in &result.scores {
            if (r, c) != (1, 1) {
                assert!(
                    hot_score > 2.0 * s,
                    "hot std {hot_score} must dominate ({r},{c}) = {s}"
                );
            }
        }
    }

    #[test]
    fn zero_window_is_rejected() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        assert!(matches!(
            scan_strongest(&mut sys, || vec![Pascals(0.0); 4], 0),
            Err(SystemError::Config(_))
        ));
    }

    #[test]
    fn scan_result_lookup() {
        let result = ScanResult {
            scores: vec![((0, 0), 1.0), ((0, 1), 2.0)],
            best: (0, 1),
        };
        assert_eq!(result.score(0, 1), Some(2.0));
        assert_eq!(result.score(1, 1), None);
    }
}

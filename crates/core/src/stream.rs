//! Streaming (online) waveform analysis.
//!
//! [`crate::analyze`] works on completed recordings; a bedside monitor
//! works on a *live* 1 kS/s stream and must emit events — beats, rate
//! changes, alarms — with bounded latency and memory. [`OnlineAnalyzer`]
//! is that push-based engine: feed it calibrated pressure samples one at
//! a time and consume [`MonitorEvent`]s.
//!
//! The detector is the streaming twin of the batch algorithm: a running
//! moving-average smoother, an adaptive min/max envelope with a ~3 s
//! decay (the streaming analogue of the batch detector's windowed
//! threshold), a refractory period, and foot tracking between peaks.
//! Detection latency is half the smoothing window plus one sample.

use std::collections::VecDeque;

use tonos_telemetry::{names, Counter, Severity, Telemetry};

use crate::SystemError;

/// Events emitted by the online analyzer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MonitorEvent {
    /// A heartbeat was detected.
    Beat {
        /// Time of the systolic peak, seconds since stream start.
        time_s: f64,
        /// Systolic pressure (stream units; mmHg when fed calibrated
        /// samples).
        systolic: f64,
        /// Diastolic (foot) pressure of this beat.
        diastolic: f64,
        /// Smoothed pulse rate estimate in beats/minute (0 until two
        /// beats have been seen).
        pulse_rate_bpm: f64,
    },
    /// Sustained elevated systolic pressure.
    HypertensionAlarm {
        /// Time the alarm fired, seconds.
        time_s: f64,
        /// Mean systolic over the qualifying beats.
        systolic: f64,
    },
    /// Sustained low systolic pressure.
    HypotensionAlarm {
        /// Time the alarm fired, seconds.
        time_s: f64,
        /// Mean systolic over the qualifying beats.
        systolic: f64,
    },
    /// No beat for several seconds while the stream keeps arriving —
    /// probe displaced, vessel lost, or flatline.
    SignalLossAlarm {
        /// Time the alarm fired, seconds.
        time_s: f64,
        /// Seconds since the last detected beat.
        silence_s: f64,
    },
}

/// Alarm thresholds and timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlarmLimits {
    /// Systolic above this (mmHg) over the qualifying run raises
    /// [`MonitorEvent::HypertensionAlarm`].
    pub systolic_high: f64,
    /// Systolic below this raises [`MonitorEvent::HypotensionAlarm`].
    pub systolic_low: f64,
    /// Consecutive qualifying beats required for a pressure alarm.
    pub qualifying_beats: usize,
    /// Beat-free seconds before a signal-loss alarm.
    pub signal_loss_s: f64,
}

impl AlarmLimits {
    /// Adult defaults: alarm above 160 / below 90 mmHg systolic after
    /// 5 consecutive beats; signal loss after 3 s.
    pub fn adult() -> Self {
        AlarmLimits {
            systolic_high: 160.0,
            systolic_low: 90.0,
            qualifying_beats: 5,
            signal_loss_s: 3.0,
        }
    }
}

impl Default for AlarmLimits {
    fn default() -> Self {
        AlarmLimits::adult()
    }
}

/// Smoothing window (seconds), matching the batch detector.
const SMOOTH_WINDOW_S: f64 = 0.04;
/// Envelope decay time constant (seconds).
const ENVELOPE_TAU_S: f64 = 3.0;
/// Threshold position inside the envelope, as in the batch detector.
const THRESHOLD_FRACTION: f64 = 0.55;
/// Refractory period (seconds), as in the batch detector.
const REFRACTORY_S: f64 = 0.33;

/// Push-based beat detector and alarm engine.
#[derive(Debug, Clone)]
pub struct OnlineAnalyzer {
    sample_rate: f64,
    limits: AlarmLimits,
    // Smoother.
    window: VecDeque<f64>,
    window_len: usize,
    window_sum: f64,
    // Raw history for peak refinement (same span as the smoother).
    raw_history: VecDeque<f64>,
    // Concealment flags aligned with `raw_history`: whether each sample
    // feeding the systolic refinement was transport-fabricated.
    flag_history: VecDeque<bool>,
    // Adaptive envelope.
    env_max: f64,
    env_min: f64,
    env_alpha: f64,
    envelope_ready: bool,
    // Peak picking state.
    prev_s: [f64; 2],
    samples_seen: u64,
    last_peak_sample: Option<u64>,
    running_min_since_peak: f64,
    // Whether any sample since the last peak — the span the diastolic
    // (running min) is drawn from — was concealed.
    concealed_since_peak: bool,
    // Rate estimate.
    last_beat_time: Option<f64>,
    rate_bpm: f64,
    // Alarm state.
    high_run: usize,
    low_run: usize,
    high_acc: f64,
    low_acc: f64,
    // Whether the current qualifying run contains any beat whose
    // systolic/diastolic measurement windows include gap-concealed
    // samples (see [`OnlineAnalyzer::push_flagged`]).
    high_tainted: bool,
    low_tainted: bool,
    signal_loss_armed: bool,
    // Telemetry: alarms are counted and journaled; beats are far too
    // chatty for the journal and are counted by the session monitor.
    telemetry: Telemetry,
    alarms: Counter,
    alarms_suppressed: Counter,
}

impl OnlineAnalyzer {
    /// Creates an analyzer for a stream at `sample_rate` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Config`] for a non-positive sample rate or
    /// inconsistent alarm limits.
    pub fn new(sample_rate: f64, limits: AlarmLimits) -> Result<Self, SystemError> {
        if !(sample_rate > 0.0) {
            return Err(SystemError::Config("sample rate must be positive".into()));
        }
        if limits.systolic_low >= limits.systolic_high {
            return Err(SystemError::Config(format!(
                "hypotension limit {} must be below hypertension limit {}",
                limits.systolic_low, limits.systolic_high
            )));
        }
        if limits.qualifying_beats == 0 || !(limits.signal_loss_s > 0.0) {
            return Err(SystemError::Config(
                "alarm timing parameters must be positive".into(),
            ));
        }
        let window_len = ((SMOOTH_WINDOW_S * sample_rate) as usize).max(3) | 1; // odd
        Ok(OnlineAnalyzer {
            sample_rate,
            limits,
            window: VecDeque::with_capacity(window_len),
            window_len,
            window_sum: 0.0,
            raw_history: VecDeque::with_capacity(window_len),
            flag_history: VecDeque::with_capacity(window_len),
            env_max: f64::MIN,
            env_min: f64::MAX,
            env_alpha: 1.0 / (ENVELOPE_TAU_S * sample_rate),
            envelope_ready: false,
            prev_s: [0.0; 2],
            samples_seen: 0,
            last_peak_sample: None,
            running_min_since_peak: f64::MAX,
            concealed_since_peak: false,
            last_beat_time: None,
            rate_bpm: 0.0,
            high_run: 0,
            low_run: 0,
            high_acc: 0.0,
            low_acc: 0.0,
            high_tainted: false,
            low_tainted: false,
            signal_loss_armed: true,
            telemetry: Telemetry::disabled(),
            alarms: Counter::disabled(),
            alarms_suppressed: Counter::disabled(),
        })
    }

    /// Attaches a telemetry handle (chainable): every alarm increments
    /// the alarm counter and lands in the journal (pressure alarms at
    /// critical severity, signal loss as a warning).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.alarms = telemetry.counter(names::ANALYZER_ALARMS);
        self.alarms_suppressed = telemetry.counter(names::ANALYZER_ALARMS_SUPPRESSED);
        self.telemetry = telemetry;
        self
    }

    /// The stream sample rate.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Current smoothed pulse-rate estimate (0 before two beats).
    pub fn pulse_rate_bpm(&self) -> f64 {
        self.rate_bpm
    }

    /// Pushes one sample; returns any events it triggered (usually none,
    /// occasionally one beat and/or one alarm).
    pub fn push(&mut self, x: f64) -> Vec<MonitorEvent> {
        self.push_flagged(x, false)
    }

    /// [`OnlineAnalyzer::push`] with an explicit provenance flag — the
    /// entry point for host-link pipelines whose transport can lose
    /// frames (`tonos-link`).
    ///
    /// A `concealed` sample is one the transport layer fabricated to
    /// cover a gap (e.g. hold-last). It advances the stream's timebase
    /// and detector state exactly like a clean sample, but a *pressure*
    /// alarm whose qualifying run includes any beat *measured from*
    /// concealed data is **suppressed**. A beat's systolic is the max
    /// over the smoother-window history and its diastolic the running
    /// min since the previous peak, so a beat counts as concealed when
    /// any sample in either of those windows was flagged — not merely
    /// the sample at the detection instant. Suppressed alarms are
    /// counted under
    /// [`names::ANALYZER_ALARMS_SUPPRESSED`] and journaled as a warning
    /// instead of raised — fabricated samples must never fire a clinical
    /// alarm on their own. The run state is kept, so the alarm fires
    /// normally once enough *clean* qualifying beats accumulate.
    ///
    /// [`MonitorEvent::SignalLossAlarm`] deliberately still fires during
    /// concealed spans: it reports the *absence* of beats, which a
    /// transport gap genuinely is — fail-safe in the alarm-raising
    /// direction, never in the alarm-masking one.
    pub fn push_flagged(&mut self, x: f64, concealed: bool) -> Vec<MonitorEvent> {
        let mut events = Vec::new();
        let t = self.samples_seen as f64 / self.sample_rate;

        // --- Smoother (centered moving average, streamed). ---
        self.window.push_back(x);
        self.raw_history.push_back(x);
        self.flag_history.push_back(concealed);
        self.window_sum += x;
        if self.window.len() > self.window_len {
            self.window_sum -= self.window.pop_front().expect("non-empty");
            self.raw_history.pop_front();
            self.flag_history.pop_front();
        }
        let s = self.window_sum / self.window.len() as f64;

        // --- Adaptive envelope. ---
        if !self.envelope_ready {
            self.env_max = s;
            self.env_min = s;
            self.envelope_ready = true;
        } else {
            if s > self.env_max {
                self.env_max = s;
            } else {
                self.env_max += (s - self.env_max) * self.env_alpha;
            }
            if s < self.env_min {
                self.env_min = s;
            } else {
                self.env_min += (s - self.env_min) * self.env_alpha;
            }
        }
        let span = self.env_max - self.env_min;
        let threshold = self.env_min + THRESHOLD_FRACTION * span;

        self.running_min_since_peak = self.running_min_since_peak.min(x);
        self.concealed_since_peak |= concealed;

        // --- Peak picking on [s(n-2), s(n-1), s(n)]. ---
        let refractory = (REFRACTORY_S * self.sample_rate) as u64;
        if self.samples_seen >= 2 && span > 0.0 {
            let (a, b, c) = (self.prev_s[0], self.prev_s[1], s);
            let is_peak = b >= a && b > c && b >= threshold;
            let clear = match self.last_peak_sample {
                Some(last) => self.samples_seen - 1 - last >= refractory,
                None => true,
            };
            if is_peak && clear {
                // Refine systolic on the raw history (the peak is 1
                // sample behind; the history spans the smoother window).
                let systolic = self.raw_history.iter().copied().fold(f64::MIN, f64::max);
                let diastolic = if self.running_min_since_peak < f64::MAX {
                    self.running_min_since_peak
                } else {
                    self.env_min
                };
                // The beat is tainted when any sample its values were
                // drawn from was concealed: the systolic comes from the
                // history window, the diastolic from the since-peak span.
                let beat_tainted =
                    self.concealed_since_peak || self.flag_history.iter().any(|&f| f);
                let beat_time = (self.samples_seen - 1) as f64 / self.sample_rate;
                if let Some(prev) = self.last_beat_time {
                    let rr = beat_time - prev;
                    if rr > 0.0 {
                        let inst = 60.0 / rr;
                        self.rate_bpm = if self.rate_bpm == 0.0 {
                            inst
                        } else {
                            0.7 * self.rate_bpm + 0.3 * inst
                        };
                    }
                }
                self.last_beat_time = Some(beat_time);
                self.last_peak_sample = Some(self.samples_seen - 1);
                self.running_min_since_peak = f64::MAX;
                self.concealed_since_peak = false;
                self.signal_loss_armed = true;
                events.push(MonitorEvent::Beat {
                    time_s: beat_time,
                    systolic,
                    diastolic,
                    pulse_rate_bpm: self.rate_bpm,
                });
                // --- Pressure alarms on beat values. A qualifying run
                // containing any concealed-tainted beat is suppressed:
                // fabricated data must not raise a pressure alarm.
                if systolic > self.limits.systolic_high {
                    self.high_run += 1;
                    self.high_acc += systolic;
                    self.high_tainted |= beat_tainted;
                    if self.high_run == self.limits.qualifying_beats {
                        let mean_sys = self.high_acc / self.high_run as f64;
                        if self.high_tainted {
                            self.alarms_suppressed.inc();
                            self.telemetry.event(Severity::Warning, "analyzer", || {
                                format!(
                                    "hypertension alarm at t = {beat_time:.1} s suppressed: \
                                     qualifying beats include gap-concealed samples"
                                )
                            });
                            // Restart the run so the alarm can still
                            // fire on purely clean qualifying beats.
                            self.high_run = 0;
                            self.high_acc = 0.0;
                            self.high_tainted = false;
                        } else {
                            events.push(MonitorEvent::HypertensionAlarm {
                                time_s: beat_time,
                                systolic: mean_sys,
                            });
                            self.alarms.inc();
                            self.telemetry.event(Severity::Critical, "analyzer", || {
                                format!(
                                    "hypertension alarm at t = {beat_time:.1} s \
                                     (mean systolic {mean_sys:.1})"
                                )
                            });
                        }
                    }
                } else {
                    self.high_run = 0;
                    self.high_acc = 0.0;
                    self.high_tainted = false;
                }
                if systolic < self.limits.systolic_low {
                    self.low_run += 1;
                    self.low_acc += systolic;
                    self.low_tainted |= beat_tainted;
                    if self.low_run == self.limits.qualifying_beats {
                        let mean_sys = self.low_acc / self.low_run as f64;
                        if self.low_tainted {
                            self.alarms_suppressed.inc();
                            self.telemetry.event(Severity::Warning, "analyzer", || {
                                format!(
                                    "hypotension alarm at t = {beat_time:.1} s suppressed: \
                                     qualifying beats include gap-concealed samples"
                                )
                            });
                            self.low_run = 0;
                            self.low_acc = 0.0;
                            self.low_tainted = false;
                        } else {
                            events.push(MonitorEvent::HypotensionAlarm {
                                time_s: beat_time,
                                systolic: mean_sys,
                            });
                            self.alarms.inc();
                            self.telemetry.event(Severity::Critical, "analyzer", || {
                                format!(
                                    "hypotension alarm at t = {beat_time:.1} s \
                                     (mean systolic {mean_sys:.1})"
                                )
                            });
                        }
                    }
                } else {
                    self.low_run = 0;
                    self.low_acc = 0.0;
                    self.low_tainted = false;
                }
            }
        }
        self.prev_s[0] = self.prev_s[1];
        self.prev_s[1] = s;

        // --- Signal-loss alarm. ---
        if let Some(last) = self.last_beat_time {
            let silence = t - last;
            if silence > self.limits.signal_loss_s && self.signal_loss_armed {
                self.signal_loss_armed = false; // one alarm per loss episode
                events.push(MonitorEvent::SignalLossAlarm {
                    time_s: t,
                    silence_s: silence,
                });
                self.alarms.inc();
                self.telemetry.event(Severity::Warning, "analyzer", || {
                    format!("signal loss at t = {t:.1} s ({silence:.1} s without a beat)")
                });
            }
        }

        self.samples_seen += 1;
        events
    }

    /// Pushes a block of samples, collecting all events.
    pub fn push_block(&mut self, xs: &[f64]) -> Vec<MonitorEvent> {
        xs.iter().flat_map(|&x| self.push(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tonos_physio::patient::{PatientProfile, PressureTransient};

    fn stream_of(profile: PatientProfile, duration: f64) -> (Vec<f64>, f64) {
        let record = profile.record(250.0, duration).unwrap();
        (
            record.samples.iter().map(|p| p.value()).collect(),
            record.sample_rate,
        )
    }

    fn beats(events: &[MonitorEvent]) -> Vec<(f64, f64)> {
        events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::Beat {
                    time_s, systolic, ..
                } => Some((*time_s, *systolic)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn streaming_matches_batch_beat_count() {
        let (x, fs) = stream_of(PatientProfile::normotensive(), 30.0);
        let mut online = OnlineAnalyzer::new(fs, AlarmLimits::adult()).unwrap();
        let events = online.push_block(&x);
        let online_beats = beats(&events).len();
        let batch_beats = crate::analyze::detect_beats(&x, fs).unwrap().len();
        assert!(
            (online_beats as i64 - batch_beats as i64).abs() <= 2,
            "online {online_beats} vs batch {batch_beats}"
        );
        // Rate estimate converges to 72 bpm.
        assert!(
            (online.pulse_rate_bpm() - 72.0).abs() < 4.0,
            "rate {}",
            online.pulse_rate_bpm()
        );
    }

    #[test]
    fn beat_values_track_the_profile() {
        let (x, fs) = stream_of(PatientProfile::normotensive(), 20.0);
        let mut online = OnlineAnalyzer::new(fs, AlarmLimits::adult()).unwrap();
        let events = online.push_block(&x);
        let bs = beats(&events);
        assert!(bs.len() >= 20);
        // Skip the first beats while the envelope settles.
        let sys_mean = bs[4..].iter().map(|(_, s)| *s).sum::<f64>() / (bs.len() - 4) as f64;
        assert!((sys_mean - 120.0).abs() < 4.0, "systolic mean {sys_mean}");
    }

    #[test]
    fn hypertension_alarm_fires_during_the_episode() {
        let scenario = PressureTransient {
            onset_s: 20.0,
            ramp_s: 10.0,
            hold_s: 30.0,
            sys_delta: tonos_mems::units::MillimetersHg(50.0),
            ..PressureTransient::episode()
        };
        let record = scenario.record(250.0, 80.0).unwrap();
        let x: Vec<f64> = record.samples.iter().map(|p| p.value()).collect();
        let mut online = OnlineAnalyzer::new(250.0, AlarmLimits::adult()).unwrap();
        let events = online.push_block(&x);
        let alarm = events.iter().find_map(|e| match e {
            MonitorEvent::HypertensionAlarm { time_s, systolic } => Some((*time_s, *systolic)),
            _ => None,
        });
        let (t, sys) = alarm.expect("a +50 mmHg episode must raise the alarm");
        assert!(
            (20.0..45.0).contains(&t),
            "alarm at {t} s should fall in the climb/plateau"
        );
        assert!(sys > 160.0);
        // No hypotension alarm in this scenario.
        assert!(!events
            .iter()
            .any(|e| matches!(e, MonitorEvent::HypotensionAlarm { .. })));
    }

    #[test]
    fn hypotension_alarm_fires_for_a_low_patient() {
        let (x, fs) = stream_of(PatientProfile::hypotensive(), 30.0);
        let limits = AlarmLimits {
            systolic_low: 100.0, // 95/60 patient: every beat qualifies
            ..AlarmLimits::adult()
        };
        let mut online = OnlineAnalyzer::new(fs, limits).unwrap();
        let events = online.push_block(&x);
        assert!(events
            .iter()
            .any(|e| matches!(e, MonitorEvent::HypotensionAlarm { .. })));
    }

    #[test]
    fn signal_loss_alarm_fires_once_per_episode() {
        let (mut x, fs) = stream_of(PatientProfile::normotensive(), 10.0);
        // Flatline for 6 s, then resume.
        let flat_start = x.len();
        x.extend(std::iter::repeat_n(100.0, (6.0 * fs) as usize));
        let (resume, _) = stream_of(PatientProfile::normotensive(), 5.0);
        x.extend(resume);
        let mut online = OnlineAnalyzer::new(fs, AlarmLimits::adult()).unwrap();
        let events = online.push_block(&x);
        let losses: Vec<f64> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::SignalLossAlarm { time_s, .. } => Some(*time_s),
                _ => None,
            })
            .collect();
        assert_eq!(losses.len(), 1, "exactly one loss alarm: {losses:?}");
        let loss_t = losses[0];
        let flat_t = flat_start as f64 / fs;
        // Silence is measured from the *last beat*, which can precede the
        // flatline start by up to one RR interval (~0.85 s).
        assert!(
            loss_t > flat_t + 3.0 - 1.0 && loss_t < flat_t + 3.0 + 1.0,
            "loss at {loss_t}, flat at {flat_t}"
        );
        // Beats resume after the gap.
        assert!(beats(&events).iter().any(|(t, _)| *t > flat_t + 6.0));
    }

    #[test]
    fn arrhythmia_does_not_break_the_stream_analyzer() {
        // PVCs (premature, weak beats + compensatory pauses) must neither
        // trigger signal-loss alarms nor wreck the rate estimate.
        let (x, fs) = stream_of(PatientProfile::arrhythmic(), 60.0);
        let mut online = OnlineAnalyzer::new(fs, AlarmLimits::adult()).unwrap();
        let events = online.push_block(&x);
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, MonitorEvent::SignalLossAlarm { .. })),
            "compensatory pauses are not signal loss"
        );
        let rate = online.pulse_rate_bpm();
        assert!(
            (60.0..90.0).contains(&rate),
            "rate {rate} should stay near the 72 bpm base rhythm"
        );
        // Beat count within the plausible band (PVCs may or may not each
        // be caught, but the rhythm must not double-count).
        let n = beats(&events).len();
        assert!((60..=85).contains(&n), "{n} beats in 60 s");
    }

    #[test]
    fn concealed_beats_suppress_pressure_alarms() {
        use tonos_telemetry::{names, Registry};
        // A hypertensive stream: every beat qualifies for the alarm.
        let scenario = PressureTransient {
            onset_s: 0.0,
            ramp_s: 1.0,
            hold_s: 60.0,
            sys_delta: tonos_mems::units::MillimetersHg(50.0),
            ..PressureTransient::episode()
        };
        let record = scenario.record(250.0, 40.0).unwrap();
        let x: Vec<f64> = record.samples.iter().map(|p| p.value()).collect();

        // Clean stream: the alarm fires.
        let mut clean = OnlineAnalyzer::new(250.0, AlarmLimits::adult()).unwrap();
        let events: Vec<_> = x.iter().flat_map(|&v| clean.push(v)).collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, MonitorEvent::HypertensionAlarm { .. })));

        // Same stream flagged concealed end-to-end: no pressure alarm,
        // every would-be alarm counted as suppressed + journaled.
        let registry = Registry::new();
        let mut concealed = OnlineAnalyzer::new(250.0, AlarmLimits::adult())
            .unwrap()
            .with_telemetry(registry.telemetry());
        let events: Vec<_> = x
            .iter()
            .flat_map(|&v| concealed.push_flagged(v, true))
            .collect();
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, MonitorEvent::HypertensionAlarm { .. })),
            "concealed samples must not raise pressure alarms"
        );
        // Beats are still detected (timebase and detector keep running).
        assert!(events
            .iter()
            .any(|e| matches!(e, MonitorEvent::Beat { .. })));
        let s = registry.snapshot();
        assert!(s.counter(names::ANALYZER_ALARMS_SUPPRESSED).unwrap() >= 1);
        assert_eq!(s.counter(names::ANALYZER_ALARMS).unwrap_or(0), 0);

        // A short concealed span taints only runs that include it: after
        // `qualifying_beats` clean beats, the alarm still fires.
        let mut mixed = OnlineAnalyzer::new(250.0, AlarmLimits::adult()).unwrap();
        let conceal_until = (5.0 * 250.0) as usize;
        let mut fired = false;
        for (i, &v) in x.iter().enumerate() {
            for e in mixed.push_flagged(v, i < conceal_until) {
                if matches!(e, MonitorEvent::HypertensionAlarm { .. }) {
                    fired = true;
                }
            }
        }
        assert!(fired, "clean qualifying beats after the gap must alarm");
    }

    #[test]
    fn concealed_samples_inside_beat_windows_taint_the_beat() {
        // A hypertensive stream with short concealed bursts recurring
        // inside every beat period. The beat's systolic and diastolic
        // are drawn from windows spanning up to a full beat interval, so
        // these bursts feed every beat's values even though the
        // detection instants themselves are almost always clean — the
        // alarm must still be suppressed.
        let scenario = PressureTransient {
            onset_s: 0.0,
            ramp_s: 1.0,
            hold_s: 60.0,
            sys_delta: tonos_mems::units::MillimetersHg(50.0),
            ..PressureTransient::episode()
        };
        let record = scenario.record(250.0, 40.0).unwrap();
        let x: Vec<f64> = record.samples.iter().map(|p| p.value()).collect();
        let mut online = OnlineAnalyzer::new(250.0, AlarmLimits::adult()).unwrap();
        let mut events = Vec::new();
        // 40 ms concealed every 0.8 s: inside every ~0.85 s beat window.
        for (i, &v) in x.iter().enumerate() {
            events.extend(online.push_flagged(v, i % 200 < 10));
        }
        assert!(
            events
                .iter()
                .any(|e| matches!(e, MonitorEvent::Beat { .. })),
            "beats must still be detected"
        );
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, MonitorEvent::HypertensionAlarm { .. })),
            "beats measured from concealed samples must not alarm"
        );
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(OnlineAnalyzer::new(0.0, AlarmLimits::adult()).is_err());
        let bad = AlarmLimits {
            systolic_low: 200.0,
            ..AlarmLimits::adult()
        };
        assert!(OnlineAnalyzer::new(250.0, bad).is_err());
        let bad = AlarmLimits {
            qualifying_beats: 0,
            ..AlarmLimits::adult()
        };
        assert!(OnlineAnalyzer::new(250.0, bad).is_err());
        let bad = AlarmLimits {
            signal_loss_s: 0.0,
            ..AlarmLimits::adult()
        };
        assert!(OnlineAnalyzer::new(250.0, bad).is_err());
    }

    #[test]
    fn streaming_is_incremental_not_batchy() {
        // Feeding sample by sample or in blocks must give identical
        // events.
        let (x, fs) = stream_of(PatientProfile::exercise(), 12.0);
        let mut one = OnlineAnalyzer::new(fs, AlarmLimits::adult()).unwrap();
        let mut blk = OnlineAnalyzer::new(fs, AlarmLimits::adult()).unwrap();
        let mut events_one = Vec::new();
        for &v in &x {
            events_one.extend(one.push(v));
        }
        let events_blk = blk.push_block(&x);
        assert_eq!(events_one, events_blk);
    }
}

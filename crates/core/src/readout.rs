//! The complete readout path: chip → decimation filter → sample stream
//! (the block diagram of paper Fig. 3, with the FPGA+USB link replaced by
//! direct sample delivery).
//!
//! [`ReadoutSystem`] also owns the *scan controller* logic implied by
//! §2.2: after an element switch, the decimation filter still carries the
//! previous element's history, so a number of output samples
//! ([`ReadoutSystem::settling_frames`]) must be discarded — "the settling
//! when switching between different sensor elements is limited by the
//! signal bandwidth of the ΣΔ-AD-converter".

use tonos_dsp::decimator::TwoStageDecimator;
use tonos_mems::units::{Pascals, Volts};

use crate::chip::SensorChip;
use crate::config::SystemConfig;
use crate::SystemError;

/// Chip plus decimation filter, converting pressure frames at the output
/// rate (1 kS/s in the paper configuration).
#[derive(Debug, Clone)]
pub struct ReadoutSystem {
    config: SystemConfig,
    chip: SensorChip,
    decimator: TwoStageDecimator,
}

impl ReadoutSystem {
    /// Builds the system from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and substrate construction
    /// failures.
    pub fn new(config: SystemConfig) -> Result<Self, SystemError> {
        config.validate()?;
        let chip = SensorChip::new(config.chip)?;
        let decimator = config.decimator.build()?;
        Ok(ReadoutSystem {
            config,
            chip,
            decimator,
        })
    }

    /// The paper's system.
    ///
    /// # Errors
    ///
    /// Mirrors [`ReadoutSystem::new`]; never fails for the built-in
    /// configuration.
    pub fn paper_default() -> Result<Self, SystemError> {
        ReadoutSystem::new(SystemConfig::paper_default())
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The sensor chip (immutable access).
    pub fn chip(&self) -> &SensorChip {
        &self.chip
    }

    /// Modulator clocks per output sample (the oversampling ratio).
    pub fn osr(&self) -> usize {
        self.config.decimator.osr
    }

    /// Output sample rate in Hz.
    pub fn output_rate_hz(&self) -> f64 {
        self.config.output_rate_hz()
    }

    /// Output samples to discard after an element switch before the
    /// decimation chain has flushed the previous element.
    pub fn settling_frames(&self) -> usize {
        self.decimator.settling_output_samples()
    }

    /// Converts one pressure frame (element pressures held for one output
    /// period) into exactly one output sample in normalized full-scale
    /// units.
    ///
    /// # Errors
    ///
    /// Propagates chip conversion failures.
    pub fn push_frame(&mut self, pressures: &[Pascals]) -> Result<f64, SystemError> {
        let bits = self.chip.convert_frame(pressures, self.osr())?;
        let mut out = None;
        for b in bits {
            if let Some(y) = self.decimator.push(b) {
                out = Some(y);
            }
        }
        // Feeding exactly `osr` modulator samples always produces exactly
        // one decimated output (the phases are aligned by construction).
        out.ok_or_else(|| {
            SystemError::Config("decimator phase misaligned with frame size".into())
        })
    }

    /// Converts a sequence of frames, returning one output per frame.
    ///
    /// # Errors
    ///
    /// Propagates per-frame conversion failures.
    pub fn push_frames(&mut self, frames: &[Vec<Pascals>]) -> Result<Vec<f64>, SystemError> {
        frames.iter().map(|f| self.push_frame(f)).collect()
    }

    /// Selects an array element and reports how many upcoming output
    /// samples the caller must discard (the scan-controller contract).
    ///
    /// # Errors
    ///
    /// Propagates channel-range and capacitance failures.
    pub fn select_element(
        &mut self,
        row: usize,
        col: usize,
        pressures: &[Pascals],
    ) -> Result<usize, SystemError> {
        self.chip.select_element(row, col, pressures)?;
        Ok(self.settling_frames())
    }

    /// Measures one element: selects it, converts `frames`, and returns
    /// only the settled outputs (the first [`ReadoutSystem::settling_frames`]
    /// are discarded).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Config`] when fewer frames than the settling
    /// time are provided; propagates conversion failures.
    pub fn measure_element(
        &mut self,
        row: usize,
        col: usize,
        frames: &[Vec<Pascals>],
    ) -> Result<Vec<f64>, SystemError> {
        if frames.is_empty() {
            return Err(SystemError::Config("no frames provided".into()));
        }
        let discard = self.select_element(row, col, &frames[0])?;
        if frames.len() <= discard {
            return Err(SystemError::Config(format!(
                "need more than {discard} frames to settle, got {}",
                frames.len()
            )));
        }
        let out = self.push_frames(frames)?;
        Ok(out[discard..].to_vec())
    }

    /// Runs the electrical characterization path (§3.1): a differential
    /// voltage sequence at the modulator rate through the auxiliary input
    /// and the decimation filter. Returns the decimated output.
    pub fn acquire_voltage(&mut self, inputs: &[Volts]) -> Vec<f64> {
        let bits = self.chip.convert_voltage_block(inputs);
        self.decimator.process(&bits)
    }

    /// Resets the modulator and decimation filter state.
    pub fn reset(&mut self) {
        self.chip.reset_modulator();
        self.decimator.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tonos_mems::units::MillimetersHg;

    fn frame(mmhg: f64) -> Vec<Pascals> {
        vec![Pascals::from_mmhg(MillimetersHg(mmhg)); 4]
    }

    #[test]
    fn one_frame_one_output() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        assert_eq!(sys.osr(), 128);
        assert_eq!(sys.output_rate_hz(), 1000.0);
        let y = sys.push_frame(&frame(0.0)).unwrap();
        assert!(y.is_finite());
        let ys = sys.push_frames(&vec![frame(0.0); 10]).unwrap();
        assert_eq!(ys.len(), 10);
    }

    #[test]
    fn settled_output_tracks_pressure_steps() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        let discard = sys.settling_frames();
        let low: Vec<f64> = sys.push_frames(&vec![frame(50.0); discard + 60]).unwrap()
            [discard..]
            .to_vec();
        let high: Vec<f64> = sys.push_frames(&vec![frame(250.0); discard + 60]).unwrap()
            [discard..]
            .to_vec();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&high) > mean(&low),
            "{} !> {}",
            mean(&high),
            mean(&low)
        );
    }

    #[test]
    fn measure_element_discards_settling() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        let n = sys.settling_frames() + 25;
        let frames = vec![frame(100.0); n];
        let out = sys.measure_element(1, 1, &frames).unwrap();
        assert_eq!(out.len(), 25);
        // After settling, a constant input gives a near-constant output
        // (residual = quantization + modulator noise).
        let mean = out.iter().sum::<f64>() / out.len() as f64;
        let dev = out.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
        assert!(dev < 0.01, "settled spread {dev}");
    }

    #[test]
    fn measure_element_needs_enough_frames() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        let too_few = vec![frame(0.0); sys.settling_frames()];
        assert!(matches!(
            sys.measure_element(0, 0, &too_few),
            Err(SystemError::Config(_))
        ));
        assert!(matches!(
            sys.measure_element(0, 0, &[]),
            Err(SystemError::Config(_))
        ));
    }

    #[test]
    fn voltage_path_decimates_at_osr() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        let inputs = vec![Volts(0.5); 128 * 20];
        let out = sys.acquire_voltage(&inputs);
        assert_eq!(out.len(), 20);
        // 0.5 V / 2.5 V = 0.2 FS once settled.
        let last = *out.last().unwrap();
        assert!((last - 0.2).abs() < 0.02, "settled to {last}");
    }

    #[test]
    fn reset_clears_history() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        let _ = sys.push_frames(&vec![frame(300.0); 30]).unwrap();
        sys.reset();
        // After reset the first settled samples match a fresh system fed
        // the same input (same seeds, cleared state).
        let mut fresh = ReadoutSystem::paper_default().unwrap();
        let a = sys.push_frames(&vec![frame(50.0); 20]).unwrap();
        let b = fresh.push_frames(&vec![frame(50.0); 20]).unwrap();
        // Noise streams have advanced differently, so compare means
        // rather than samples.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean(&a[10..]) - mean(&b[10..])).abs() < 0.005);
    }

    #[test]
    fn invalid_selection_propagates() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        assert!(matches!(
            sys.select_element(5, 0, &frame(0.0)),
            Err(SystemError::Analog(_))
        ));
    }
}

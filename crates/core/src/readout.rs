//! The complete readout path: chip → decimation filter → sample stream
//! (the block diagram of paper Fig. 3, with the FPGA+USB link replaced by
//! direct sample delivery).
//!
//! [`ReadoutSystem`] also owns the *scan controller* logic implied by
//! §2.2: after an element switch, the decimation filter still carries the
//! previous element's history, so a number of output samples
//! ([`ReadoutSystem::settling_frames`]) must be discarded — "the settling
//! when switching between different sensor elements is limited by the
//! signal bandwidth of the ΣΔ-AD-converter".

use tonos_dsp::decimator::TwoStageDecimator;
use tonos_mems::units::{Pascals, Volts};
use tonos_telemetry::{names, Counter, Gauge, Telemetry};

use crate::chip::SensorChip;
use crate::config::SystemConfig;
use crate::scratch::ConversionScratch;
use crate::SystemError;

/// Telemetry handles and native-counter cursors for the readout path.
///
/// The analog/dsp substrates keep their own always-on `u64` counters;
/// this bridge flushes the *deltas* into the shared registry at frame
/// granularity, so the hot modulator loop never touches an atomic.
#[derive(Debug, Clone, Default)]
struct ReadoutInstruments {
    frames_in: Counter,
    samples_out: Counter,
    settling_discarded: Counter,
    element_selections: Counter,
    modulator_steps: Counter,
    modulator_saturations: Counter,
    mux_switches: Counter,
    decimator_in: Counter,
    decimator_out: Counter,
    decimator_flushes: Counter,
    quantizer_clips: Counter,
    energy_j: Gauge,
    // Native-counter values at the last flush (deltas since attachment).
    last_steps: u64,
    last_saturations: u64,
    last_switches: u64,
    last_selections: u64,
    last_dec_in: u64,
    last_dec_out: u64,
    last_flushes: u64,
    last_clips: u64,
}

/// Chip plus decimation filter, converting pressure frames at the output
/// rate (1 kS/s in the paper configuration).
#[derive(Debug, Clone)]
pub struct ReadoutSystem {
    config: SystemConfig,
    chip: SensorChip,
    decimator: TwoStageDecimator,
    telemetry: Telemetry,
    instruments: ReadoutInstruments,
    /// Reusable per-frame working memory; makes the settled frame path
    /// allocation-free (see `tests/alloc_free.rs`).
    scratch: ConversionScratch,
    /// Output samples still inside the post-switch settling window; used
    /// to classify each produced sample as settled or discarded.
    pending_discard: usize,
}

impl ReadoutSystem {
    /// Builds the system from a configuration, with telemetry disabled.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and substrate construction
    /// failures.
    pub fn new(config: SystemConfig) -> Result<Self, SystemError> {
        ReadoutSystem::with_telemetry(config, Telemetry::disabled())
    }

    /// Builds the system with the given telemetry handle. A disabled
    /// handle costs one branch per frame; an enabled one flushes the
    /// substrate counters into the registry after every converted frame.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and substrate construction
    /// failures.
    pub fn with_telemetry(config: SystemConfig, telemetry: Telemetry) -> Result<Self, SystemError> {
        config.validate()?;
        let chip = SensorChip::new(config.chip)?;
        let decimator = config.decimator.build()?;
        let scratch = ConversionScratch::with_frame_capacity(config.decimator.osr);
        let mut sys = ReadoutSystem {
            config,
            chip,
            decimator,
            telemetry: Telemetry::disabled(),
            instruments: ReadoutInstruments::default(),
            scratch,
            pending_discard: 0,
        };
        sys.attach_telemetry(telemetry);
        Ok(sys)
    }

    /// Attaches (or replaces) the telemetry handle, resolving all
    /// instruments. Counting starts from the current substrate state —
    /// activity before attachment is not retroactively reported.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        let i = &mut self.instruments;
        i.frames_in = telemetry.counter(names::READOUT_FRAMES_IN);
        i.samples_out = telemetry.counter(names::READOUT_SAMPLES_OUT);
        i.settling_discarded = telemetry.counter(names::READOUT_SETTLING_DISCARDED);
        i.element_selections = telemetry.counter(names::CHIP_ELEMENT_SELECTIONS);
        i.modulator_steps = telemetry.counter(names::MODULATOR_STEPS);
        i.modulator_saturations = telemetry.counter(names::MODULATOR_SATURATIONS);
        i.mux_switches = telemetry.counter(names::MUX_SWITCHES);
        i.decimator_in = telemetry.counter(names::DECIMATOR_SAMPLES_IN);
        i.decimator_out = telemetry.counter(names::DECIMATOR_SAMPLES_OUT);
        i.decimator_flushes = telemetry.counter(names::DECIMATOR_FLUSHES);
        i.quantizer_clips = telemetry.counter(names::QUANTIZER_CLIPS);
        i.energy_j = telemetry.gauge(names::CHIP_ENERGY_J);
        i.last_steps = self.chip.modulator_steps();
        i.last_saturations = self.chip.modulator_saturations();
        i.last_switches = self.chip.mux_switch_events();
        i.last_selections = self.chip.element_selections();
        i.last_dec_in = self.decimator.samples_in();
        i.last_dec_out = self.decimator.samples_out();
        i.last_flushes = self.decimator.flushes();
        i.last_clips = self.decimator.clip_events();
        telemetry
            .gauge(names::CHIP_POWER_W)
            .set(self.chip.power_consumption());
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Flushes substrate-counter deltas into the registry. Called
    /// automatically after every frame, selection, and reset when
    /// telemetry is enabled.
    fn flush_native(&mut self) {
        self.flush_native_from(
            self.chip.modulator_steps(),
            self.chip.modulator_saturations(),
        );
    }

    /// [`ReadoutSystem::flush_native`] with the modulator counters
    /// supplied by the caller — the banked readout holds this lane's
    /// modulator in a [`tonos_analog::bank::SigmaDelta2Bank`], so the
    /// chip's own (placeholder) counters are stale while banked and the
    /// bank's per-lane counters are authoritative. Counters only ever
    /// flush forward: a value at or below the cursor is a no-op.
    pub(crate) fn flush_native_from(&mut self, steps: u64, saturations: u64) {
        let i = &mut self.instruments;
        if steps > i.last_steps {
            let delta_steps = steps - i.last_steps;
            i.modulator_steps.add(delta_steps);
            i.energy_j.add(self.chip.energy_for_cycles(delta_steps));
            i.last_steps = steps;
        }
        macro_rules! flush {
            ($counter:ident, $cursor:ident, $value:expr) => {
                let v = $value;
                if v > i.$cursor {
                    i.$counter.add(v - i.$cursor);
                    i.$cursor = v;
                }
            };
        }
        flush!(modulator_saturations, last_saturations, saturations);
        flush!(mux_switches, last_switches, self.chip.mux_switch_events());
        flush!(
            element_selections,
            last_selections,
            self.chip.element_selections()
        );
        flush!(decimator_in, last_dec_in, self.decimator.samples_in());
        flush!(decimator_out, last_dec_out, self.decimator.samples_out());
        flush!(decimator_flushes, last_flushes, self.decimator.flushes());
        flush!(quantizer_clips, last_clips, self.decimator.clip_events());
    }

    /// Mutable chip access for the banked readout (input fill, element
    /// selection, modulator extraction).
    pub(crate) fn chip_mut(&mut self) -> &mut SensorChip {
        &mut self.chip
    }

    /// Mutable decimator access for the banked readout.
    pub(crate) fn decimator_mut(&mut self) -> &mut TwoStageDecimator {
        &mut self.decimator
    }

    /// Per-frame accounting for a frame converted *through a lane bank*
    /// rather than [`ReadoutSystem::push_frame`]: same frames-in /
    /// settled-vs-discarded bookkeeping and native-counter flush, with
    /// the modulator counters supplied from the bank lane.
    pub(crate) fn note_banked_frame(&mut self, steps: u64, saturations: u64) {
        if self.telemetry.enabled() {
            self.instruments.frames_in.inc();
            if self.pending_discard > 0 {
                self.instruments.settling_discarded.inc();
            } else {
                self.instruments.samples_out.inc();
            }
            self.flush_native_from(steps, saturations);
        }
        if self.pending_discard > 0 {
            self.pending_discard -= 1;
        }
    }

    /// The paper's system.
    ///
    /// # Errors
    ///
    /// Mirrors [`ReadoutSystem::new`]; never fails for the built-in
    /// configuration.
    pub fn paper_default() -> Result<Self, SystemError> {
        ReadoutSystem::new(SystemConfig::paper_default())
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The sensor chip (immutable access).
    pub fn chip(&self) -> &SensorChip {
        &self.chip
    }

    /// Modulator clocks per output sample (the oversampling ratio).
    pub fn osr(&self) -> usize {
        self.config.decimator.osr
    }

    /// Output sample rate in Hz.
    pub fn output_rate_hz(&self) -> f64 {
        self.config.output_rate_hz()
    }

    /// Output samples to discard after an element switch before the
    /// decimation chain has flushed the previous element.
    pub fn settling_frames(&self) -> usize {
        self.decimator.settling_output_samples()
    }

    /// Converts one pressure frame (element pressures held for one output
    /// period) into exactly one output sample in normalized full-scale
    /// units.
    ///
    /// # Errors
    ///
    /// Propagates chip conversion failures.
    pub fn push_frame(&mut self, pressures: &[Pascals]) -> Result<f64, SystemError> {
        // Hot path: the bitstream stays packed (64 modulator clocks per
        // u64 word) from the modulator's block stepper to the
        // word-parallel integer CIC — no ±1.0 f64 round trip, no per-bit
        // loop, and no heap allocation once the scratch has grown to the
        // frame size. Bit-exact against the legacy f64 path.
        let osr = self.osr();
        self.chip
            .convert_frame_packed_into(pressures, osr, &mut self.scratch)?;
        self.decimator
            .process_packed_into(&self.scratch.bits, &mut self.scratch.out);
        // Feeding exactly `osr` modulator samples always produces exactly
        // one decimated output (the phases are aligned by construction).
        let y = match self.scratch.out[..] {
            [y] => y,
            _ => {
                return Err(SystemError::Config(
                    "decimator phase misaligned with frame size".into(),
                ))
            }
        };
        if self.telemetry.enabled() {
            self.instruments.frames_in.inc();
            // Every frame yields one output; it is either still inside
            // the post-switch settling window (discarded by the scan
            // controller) or a settled sample delivered downstream —
            // frames_in == samples_out + settling_discarded, exactly.
            if self.pending_discard > 0 {
                self.instruments.settling_discarded.inc();
            } else {
                self.instruments.samples_out.inc();
            }
            self.flush_native();
        }
        if self.pending_discard > 0 {
            self.pending_discard -= 1;
        }
        Ok(y)
    }

    /// Converts a sequence of frames, returning one output per frame.
    ///
    /// Frames are anything slice-like (`Vec<Pascals>`, `&[Pascals]`,
    /// arrays), so callers can stream borrowed chunks of a flat buffer
    /// instead of materializing `Vec<Vec<_>>`.
    ///
    /// # Errors
    ///
    /// Propagates per-frame conversion failures.
    pub fn push_frames<F: AsRef<[Pascals]>>(
        &mut self,
        frames: &[F],
    ) -> Result<Vec<f64>, SystemError> {
        frames.iter().map(|f| self.push_frame(f.as_ref())).collect()
    }

    /// Selects an array element and reports how many upcoming output
    /// samples the caller must discard (the scan-controller contract).
    ///
    /// # Errors
    ///
    /// Propagates channel-range and capacitance failures.
    pub fn select_element(
        &mut self,
        row: usize,
        col: usize,
        pressures: &[Pascals],
    ) -> Result<usize, SystemError> {
        self.chip.select_element(row, col, pressures)?;
        let discard = self.settling_frames();
        self.pending_discard = discard;
        if self.telemetry.enabled() {
            self.flush_native();
        }
        Ok(discard)
    }

    /// Measures one element: selects it, converts `frames`, and returns
    /// only the settled outputs (the first [`ReadoutSystem::settling_frames`]
    /// are discarded).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Config`] when fewer frames than the settling
    /// time are provided; propagates conversion failures.
    pub fn measure_element<F: AsRef<[Pascals]>>(
        &mut self,
        row: usize,
        col: usize,
        frames: &[F],
    ) -> Result<Vec<f64>, SystemError> {
        if frames.is_empty() {
            return Err(SystemError::Config("no frames provided".into()));
        }
        let discard = self.select_element(row, col, frames[0].as_ref())?;
        if frames.len() <= discard {
            return Err(SystemError::Config(format!(
                "need more than {discard} frames to settle, got {}",
                frames.len()
            )));
        }
        let out = self.push_frames(frames)?;
        Ok(out[discard..].to_vec())
    }

    /// Runs the electrical characterization path (§3.1): a differential
    /// voltage sequence at the modulator rate through the auxiliary input
    /// and the decimation filter. Returns the decimated output.
    pub fn acquire_voltage(&mut self, inputs: &[Volts]) -> Vec<f64> {
        // Reuse the frame scratch: the ±1 stream lands in `inputs` (an
        // f64 buffer of the right shape), the decimated output in `out`.
        self.scratch.clear();
        self.chip
            .convert_voltage_block_into(inputs, &mut self.scratch.inputs);
        self.decimator
            .process_into(&self.scratch.inputs, &mut self.scratch.out);
        let out = self.scratch.out.clone();
        if self.telemetry.enabled() {
            self.flush_native();
        }
        out
    }

    /// Resets the modulator and decimation filter state.
    pub fn reset(&mut self) {
        self.chip.reset_modulator();
        self.decimator.reset();
        self.pending_discard = 0;
        if self.telemetry.enabled() {
            self.flush_native();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tonos_mems::units::MillimetersHg;

    fn frame(mmhg: f64) -> Vec<Pascals> {
        vec![Pascals::from_mmhg(MillimetersHg(mmhg)); 4]
    }

    #[test]
    fn one_frame_one_output() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        assert_eq!(sys.osr(), 128);
        assert_eq!(sys.output_rate_hz(), 1000.0);
        let y = sys.push_frame(&frame(0.0)).unwrap();
        assert!(y.is_finite());
        let ys = sys.push_frames(&vec![frame(0.0); 10]).unwrap();
        assert_eq!(ys.len(), 10);
    }

    #[test]
    fn settled_output_tracks_pressure_steps() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        let discard = sys.settling_frames();
        let low: Vec<f64> =
            sys.push_frames(&vec![frame(50.0); discard + 60]).unwrap()[discard..].to_vec();
        let high: Vec<f64> =
            sys.push_frames(&vec![frame(250.0); discard + 60]).unwrap()[discard..].to_vec();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&high) > mean(&low),
            "{} !> {}",
            mean(&high),
            mean(&low)
        );
    }

    #[test]
    fn measure_element_discards_settling() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        let n = sys.settling_frames() + 25;
        let frames = vec![frame(100.0); n];
        let out = sys.measure_element(1, 1, &frames).unwrap();
        assert_eq!(out.len(), 25);
        // After settling, a constant input gives a near-constant output
        // (residual = quantization + modulator noise).
        let mean = out.iter().sum::<f64>() / out.len() as f64;
        let dev = out.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
        assert!(dev < 0.01, "settled spread {dev}");
    }

    #[test]
    fn measure_element_needs_enough_frames() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        let too_few = vec![frame(0.0); sys.settling_frames()];
        assert!(matches!(
            sys.measure_element(0, 0, &too_few),
            Err(SystemError::Config(_))
        ));
        assert!(matches!(
            sys.measure_element::<Vec<Pascals>>(0, 0, &[]),
            Err(SystemError::Config(_))
        ));
    }

    #[test]
    fn voltage_path_decimates_at_osr() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        let inputs = vec![Volts(0.5); 128 * 20];
        let out = sys.acquire_voltage(&inputs);
        assert_eq!(out.len(), 20);
        // 0.5 V / 2.5 V = 0.2 FS once settled.
        let last = *out.last().unwrap();
        assert!((last - 0.2).abs() < 0.02, "settled to {last}");
    }

    #[test]
    fn reset_clears_history() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        let _ = sys.push_frames(&vec![frame(300.0); 30]).unwrap();
        sys.reset();
        // After reset the first settled samples match a fresh system fed
        // the same input (same seeds, cleared state).
        let mut fresh = ReadoutSystem::paper_default().unwrap();
        let a = sys.push_frames(&vec![frame(50.0); 20]).unwrap();
        let b = fresh.push_frames(&vec![frame(50.0); 20]).unwrap();
        // Noise streams have advanced differently, so compare means
        // rather than samples.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean(&a[10..]) - mean(&b[10..])).abs() < 0.005);
    }

    #[test]
    fn telemetry_accounts_for_every_frame() {
        use tonos_telemetry::{names, Registry};
        let registry = Registry::new();
        let mut sys =
            ReadoutSystem::with_telemetry(SystemConfig::paper_default(), registry.telemetry())
                .unwrap();
        assert!(sys.telemetry().enabled());
        let settle = sys.settling_frames();
        let _ = sys.push_frames(&vec![frame(80.0); 10]).unwrap();
        let _ = sys
            .measure_element(1, 1, &vec![frame(80.0); settle + 25])
            .unwrap();
        let s = registry.snapshot();
        let frames_in = s.counter(names::READOUT_FRAMES_IN).unwrap();
        let samples_out = s.counter(names::READOUT_SAMPLES_OUT).unwrap();
        let discarded = s.counter(names::READOUT_SETTLING_DISCARDED).unwrap();
        assert_eq!(frames_in, (10 + settle + 25) as u64);
        assert_eq!(discarded, settle as u64);
        assert_eq!(frames_in, samples_out + discarded);
        // The bridge flushes the substrate counters consistently: one OSR
        // worth of modulator clocks and decimator inputs per frame.
        let osr = sys.osr() as u64;
        assert_eq!(s.counter(names::MODULATOR_STEPS), Some(frames_in * osr));
        assert_eq!(
            s.counter(names::DECIMATOR_SAMPLES_IN),
            Some(frames_in * osr)
        );
        assert_eq!(s.counter(names::DECIMATOR_SAMPLES_OUT), Some(frames_in));
        assert_eq!(s.counter(names::CHIP_ELEMENT_SELECTIONS), Some(1));
        assert_eq!(s.counter(names::MUX_SWITCHES), Some(1));
        // 128 clocks at ~90 nJ each per frame.
        let energy = s.gauge(names::CHIP_ENERGY_J).unwrap();
        let expected = sys.chip().energy_for_cycles(frames_in * osr);
        assert!((energy - expected).abs() < 1e-12, "{energy} vs {expected}");
    }

    #[test]
    fn disabled_telemetry_reports_nothing() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        assert!(!sys.telemetry().enabled());
        let _ = sys.push_frames(&vec![frame(0.0); 5]).unwrap();
        // Borrowed-chunk frames work through the same generic API.
        let flat = [Pascals(0.0); 4 * 3];
        let chunks: Vec<&[Pascals]> = flat.chunks(4).collect();
        let out = sys.push_frames(&chunks).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn invalid_selection_propagates() {
        let mut sys = ReadoutSystem::paper_default().unwrap();
        assert!(matches!(
            sys.select_element(5, 0, &frame(0.0)),
            Err(SystemError::Analog(_))
        ));
    }
}

//! Whole monitoring sessions run K-at-a-time on a lane bank.
//!
//! [`run_batch`] executes K [`BloodPressureMonitor`] sessions in
//! lockstep: each lane keeps its own patient, tissue path, chip, and
//! decimation chain, but every modulator clock steps through one shared
//! [`crate::bank::ReadoutBank`] — the SoA hot loop that converts K
//! patients per instruction stream. The control flow mirrors
//! [`BloodPressureMonitor::run`] stage for stage (scan → acquisition →
//! calibration → analysis), so each lane's session is **bit-identical**
//! to running its monitor alone; the scalar path stays the oracle.
//!
//! Lockstep needs one frame schedule for every lane: same output rate,
//! array layout, settling time, scan window, and OSR. Heterogeneous
//! groups are rejected with [`SystemError::Config`] — callers (the
//! fleet's batch engine) fall back to scalar sessions.

use tonos_analog::bank::BankScratch;
use tonos_mems::units::Pascals;

use crate::bank::ReadoutBank;
use crate::monitor::{BloodPressureMonitor, MonitoringSession};
use crate::select::ScanResult;
use crate::SystemError;

/// Reusable per-worker scratch for [`run_batch_with_scratch`].
///
/// Holds the modulator bank's grown noise tiles (and transpose buffers)
/// between batches, so a long-lived worker fills its lane tiles into
/// already-sized storage instead of re-growing allocations per session
/// group. Contents carry no session state — adopting a stale scratch is
/// always bit-safe; it only changes allocation behavior.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    bank: BankScratch,
}

/// Runs one monitoring session per monitor, K lanes in lockstep on a
/// shared modulator bank. Returns one [`MonitoringSession`] per monitor,
/// in order — each bit-identical to what `monitors[i].run(duration_s)`
/// would have produced.
///
/// # Errors
///
/// Returns [`SystemError::Config`] when the monitors are not
/// lockstep-compatible (differing rates, layouts, settling, scan
/// windows, or OSR) or the duration is under 4 s; propagates any lane's
/// pipeline failure (callers can rerun scalar sessions to isolate the
/// failing lane).
pub fn run_batch(
    monitors: &mut [BloodPressureMonitor],
    duration_s: f64,
) -> Result<Vec<MonitoringSession>, SystemError> {
    let mut scratch = BatchScratch::default();
    run_batch_with_scratch(monitors, duration_s, &mut scratch)
}

/// [`run_batch`] with a caller-held [`BatchScratch`]: the bank adopts
/// the scratch for the conversion and hands it back (grown) before the
/// modulators are released, so fleet workers amortize tile allocation
/// across every batch they run.
///
/// # Errors
///
/// Identical to [`run_batch`].
pub fn run_batch_with_scratch(
    monitors: &mut [BloodPressureMonitor],
    duration_s: f64,
    scratch: &mut BatchScratch,
) -> Result<Vec<MonitoringSession>, SystemError> {
    let k = monitors.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    if !(duration_s >= 4.0) {
        return Err(SystemError::Config(format!(
            "session of {duration_s} s is too short to calibrate (need >= 4 s)"
        )));
    }

    // --- Lockstep compatibility: one frame schedule for all lanes. ---
    let fs = monitors[0].system.output_rate_hz();
    let settle = monitors[0].system.settling_frames();
    let layout = monitors[0].system.chip().array().layout();
    let window = monitors[0].scan_window;
    for m in monitors.iter() {
        let incompatible = (m.system.output_rate_hz() - fs).abs() > 1e-9
            || m.system.settling_frames() != settle
            || m.system.chip().array().layout().rows != layout.rows
            || m.system.chip().array().layout().cols != layout.cols
            || m.scan_window != window;
        if incompatible {
            return Err(SystemError::Config(
                "monitors are not lockstep-compatible (rate/layout/settling/scan window)".into(),
            ));
        }
    }
    if window == 0 {
        return Err(SystemError::Config("scan window must be positive".into()));
    }

    // --- Per-lane ground truth and frame synthesis (scalar `run`). ---
    let scan_s = (layout.len() as f64 + 1.0) * (settle as f64 + window as f64) / fs;
    let mut truths = Vec::with_capacity(k);
    let mut synths = Vec::with_capacity(k);
    for m in monitors.iter() {
        let truth = m.patient.record(fs, duration_s + scan_s + 1.0)?;
        if (truth.sample_rate - fs).abs() > 1e-9 {
            return Err(SystemError::Config(format!(
                "truth record at {} Hz, system outputs {} Hz",
                truth.sample_rate, fs
            )));
        }
        synths.push(m.frame_synth(&truth, fs)?);
        truths.push(truth);
    }
    let truth_len = truths[0].samples.len();
    if truths.iter().any(|t| t.samples.len() != truth_len) {
        return Err(SystemError::Config(
            "lockstep lanes need equal-length truth records".into(),
        ));
    }

    // Telemetry handles are cheap shared clones; taking them up front
    // keeps the monitors free for the exclusive system borrows below.
    let instruments: Vec<_> = monitors.iter().map(|m| m.instruments.clone()).collect();
    let telemetry: Vec<_> = monitors.iter().map(|m| m.telemetry.clone()).collect();
    // One banked-conversion span per lane, on the lane's own registry —
    // operators comparing `span.bank.convert_s` against the scalar
    // scan/acquisition spans see what lockstep bought that session.
    let bank_timers: Vec<_> = telemetry
        .iter()
        .map(|t| t.span(tonos_telemetry::names::SPAN_BANK_CONVERT))
        .collect();

    // --- Banked conversion: scan then acquisition, all lanes lockstep.
    let (scans, raws, acquisition_start) = {
        let bank_spans: Vec<_> = bank_timers.iter().map(|t| t.start()).collect();
        let systems: Vec<_> = monitors.iter_mut().map(|m| &mut m.system).collect();
        let mut bank = ReadoutBank::new(systems)?;
        bank.adopt_scratch(std::mem::take(&mut scratch.bank));

        let mut cursor = 0usize;
        let mut frame_bufs: Vec<Vec<Pascals>> = vec![Vec::with_capacity(layout.len()); k];
        let mut ys = vec![0.0; k];

        // Scan: every lane walks the same element schedule as
        // `crate::select::scan_strongest`; only the pressures (and
        // therefore the winners) differ per lane.
        let scan_spans: Vec<_> = instruments.iter().map(|i| i.span_scan.start()).collect();
        let mut scores: Vec<Vec<((usize, usize), f64)>> = vec![Vec::with_capacity(layout.len()); k];
        let mut best = vec![(0usize, 0usize); k];
        let mut best_score = vec![f64::NEG_INFINITY; k];
        let mut settled_out: Vec<Vec<f64>> = vec![Vec::with_capacity(window); k];
        for row in 0..layout.rows {
            for col in 0..layout.cols {
                for lane in 0..k {
                    synths[lane].fill_scan(&truths[lane], cursor, &mut frame_bufs[lane]);
                    bank.select_element(lane, row, col, &frame_bufs[lane])?;
                    settled_out[lane].clear();
                }
                for f in 0..settle + window {
                    for lane in 0..k {
                        synths[lane].fill_scan(&truths[lane], cursor, &mut frame_bufs[lane]);
                    }
                    cursor += 1;
                    bank.push_frames(&frame_bufs, &mut ys)?;
                    if f >= settle {
                        for (sink, &y) in settled_out.iter_mut().zip(&ys) {
                            sink.push(y);
                        }
                    }
                }
                for lane in 0..k {
                    let settled = &settled_out[lane];
                    let mean = settled.iter().sum::<f64>() / settled.len() as f64;
                    let score = (settled.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                        / settled.len() as f64)
                        .sqrt();
                    scores[lane].push(((row, col), score));
                    if score > best_score[lane] {
                        best_score[lane] = score;
                        best[lane] = (row, col);
                    }
                }
            }
        }
        // Re-select each lane's winner and settle on it.
        for lane in 0..k {
            synths[lane].fill_scan(&truths[lane], cursor, &mut frame_bufs[lane]);
            bank.select_element(lane, best[lane].0, best[lane].1, &frame_bufs[lane])?;
        }
        for _ in 0..settle + 1 {
            for lane in 0..k {
                synths[lane].fill_scan(&truths[lane], cursor, &mut frame_bufs[lane]);
            }
            cursor += 1;
            bank.push_frames(&frame_bufs, &mut ys)?;
        }
        for span in scan_spans {
            span.finish();
        }
        let scans: Vec<ScanResult> = scores
            .into_iter()
            .zip(&best)
            .map(|(scores, &best)| ScanResult { scores, best })
            .collect();
        for (lane, t) in telemetry.iter().enumerate() {
            let b = scans[lane].best;
            t.event(tonos_telemetry::Severity::Info, "monitor", || {
                format!(
                    "scan selected element ({}, {}) of {}",
                    b.0,
                    b.1,
                    layout.len()
                )
            });
        }

        let acquisition_start = cursor.min(truth_len);
        if truth_len - acquisition_start < (4.0 * fs) as usize {
            return Err(SystemError::Config(format!(
                "only {} samples remain after the scan; extend the record",
                truth_len - acquisition_start
            )));
        }

        // Acquisition: the steady lockstep loop — all lanes settled, so
        // every frame takes the bank's allocation-free constant path.
        let acq_spans: Vec<_> = instruments
            .iter()
            .map(|i| i.span_acquisition.start())
            .collect();
        let mut raws: Vec<Vec<f64>> = vec![Vec::with_capacity(truth_len - acquisition_start); k];
        for i in 0..truth_len - acquisition_start {
            for lane in 0..k {
                synths[lane].fill_acquisition(
                    &truths[lane],
                    acquisition_start,
                    i,
                    fs,
                    &mut frame_bufs[lane],
                );
            }
            bank.push_frames(&frame_bufs, &mut ys)?;
            for (raw, &y) in raws.iter_mut().zip(&ys) {
                raw.push(y);
            }
        }
        for span in acq_spans {
            span.finish();
        }
        for span in bank_spans {
            span.finish();
        }

        scratch.bank = bank.take_scratch();
        bank.release();
        (scans, raws, acquisition_start)
    };

    // --- Per-lane calibration, analysis, and reporting (scalar code).
    let mut sessions = Vec::with_capacity(k);
    for (((m, truth), raw), scan) in monitors.iter_mut().zip(truths).zip(raws).zip(scans) {
        sessions.push(m.finish_session(truth, raw, acquisition_start, scan)?);
    }
    Ok(sessions)
}

//! Two-point cuff calibration (paper §3.2, Fig. 9).
//!
//! "The acquired signal is relative to the pressure applied to the skin
//! surface … In order to get absolute pressure values, a calibration has
//! to be performed. This calibration can be accomplished by measuring the
//! systolic and diastolic pressure with a conventional hand cuff device."
//!
//! The calibration is affine: the raw waveform's mean beat maximum is
//! pinned to the cuff's systolic reading and the mean beat minimum to the
//! diastolic reading. Everything in the readout chain up to here is
//! linear in pressure to first order, so two points suffice — exactly the
//! paper's procedure.

use tonos_mems::units::MillimetersHg;
use tonos_physio::cuff::CuffReading;

use crate::analyze::WaveformAnalysis;
use crate::SystemError;

/// An affine raw→mmHg calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// mmHg per raw unit.
    pub gain: f64,
    /// mmHg at raw zero.
    pub offset: f64,
}

impl Calibration {
    /// Builds the calibration from raw systolic/diastolic landmarks and a
    /// cuff reference reading.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::CalibrationFailed`] when the raw span is
    /// degenerate (flat signal) or the cuff reading is non-physiological
    /// (systolic ≤ diastolic).
    pub fn from_two_point(
        raw_systolic: f64,
        raw_diastolic: f64,
        reference: &CuffReading,
    ) -> Result<Self, SystemError> {
        let raw_span = raw_systolic - raw_diastolic;
        if !(raw_span.abs() > 1e-12) || !raw_span.is_finite() {
            return Err(SystemError::CalibrationFailed(format!(
                "degenerate raw span {raw_span}"
            )));
        }
        let ref_span = reference.systolic.value() - reference.diastolic.value();
        if ref_span <= 0.0 {
            return Err(SystemError::CalibrationFailed(format!(
                "cuff reading {}/{} is non-physiological",
                reference.systolic.value(),
                reference.diastolic.value()
            )));
        }
        let gain = ref_span / raw_span;
        let offset = reference.diastolic.value() - gain * raw_diastolic;
        Ok(Calibration { gain, offset })
    }

    /// Calibrates a waveform segment directly: detects beats in the raw
    /// signal, uses the mean beat extrema as the two points.
    ///
    /// # Errors
    ///
    /// Propagates beat-detection failures and two-point construction
    /// failures.
    pub fn from_waveform(
        raw: &[f64],
        sample_rate: f64,
        reference: &CuffReading,
    ) -> Result<Self, SystemError> {
        let analysis = WaveformAnalysis::from_samples(raw, sample_rate)?;
        Calibration::from_two_point(analysis.mean_systolic, analysis.mean_diastolic, reference)
    }

    /// Converts one raw sample to absolute pressure.
    pub fn apply(&self, raw: f64) -> MillimetersHg {
        MillimetersHg(self.gain * raw + self.offset)
    }

    /// Converts a raw segment to absolute pressure.
    pub fn apply_all(&self, raw: &[f64]) -> Vec<MillimetersHg> {
        raw.iter().map(|&r| self.apply(r)).collect()
    }

    /// Inverts the calibration (mmHg → raw), for synthesis/testing.
    pub fn invert(&self, pressure: MillimetersHg) -> f64 {
        (pressure.value() - self.offset) / self.gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(sys: f64, dia: f64) -> CuffReading {
        CuffReading {
            time_s: 30.0,
            systolic: MillimetersHg(sys),
            diastolic: MillimetersHg(dia),
        }
    }

    #[test]
    fn pins_both_landmarks_exactly() {
        let cal = Calibration::from_two_point(0.8, 0.2, &reading(120.0, 80.0)).unwrap();
        assert!((cal.apply(0.8).value() - 120.0).abs() < 1e-12);
        assert!((cal.apply(0.2).value() - 80.0).abs() < 1e-12);
        // Midpoint maps linearly.
        assert!((cal.apply(0.5).value() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn negative_gain_chains_are_supported() {
        // A readout that decreases with pressure still calibrates (gain
        // just comes out negative).
        let cal = Calibration::from_two_point(-0.3, 0.3, &reading(120.0, 80.0)).unwrap();
        assert!(cal.gain < 0.0);
        assert!((cal.apply(-0.3).value() - 120.0).abs() < 1e-12);
        assert!((cal.apply(0.3).value() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn affine_invariance_of_the_raw_signal() {
        // Scaling/offsetting the raw signal must produce the same
        // calibrated output.
        let raw: Vec<f64> = (0..100)
            .map(|i| 0.5 + 0.3 * ((i as f64) * 0.2).sin())
            .collect();
        let cal_a = Calibration::from_two_point(0.8, 0.2, &reading(120.0, 80.0)).unwrap();
        // Transformed raw: r' = 3 r + 5 → landmarks transform likewise.
        let cal_b =
            Calibration::from_two_point(3.0 * 0.8 + 5.0, 3.0 * 0.2 + 5.0, &reading(120.0, 80.0))
                .unwrap();
        for &r in &raw {
            let a = cal_a.apply(r).value();
            let b = cal_b.apply(3.0 * r + 5.0).value();
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn invert_round_trips() {
        let cal = Calibration::from_two_point(1.5, 0.5, &reading(130.0, 85.0)).unwrap();
        for &mmhg in &[60.0, 85.0, 100.0, 130.0, 180.0] {
            let raw = cal.invert(MillimetersHg(mmhg));
            assert!((cal.apply(raw).value() - mmhg).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(matches!(
            Calibration::from_two_point(0.5, 0.5, &reading(120.0, 80.0)),
            Err(SystemError::CalibrationFailed(_))
        ));
        assert!(matches!(
            Calibration::from_two_point(0.8, 0.2, &reading(80.0, 120.0)),
            Err(SystemError::CalibrationFailed(_))
        ));
        assert!(matches!(
            Calibration::from_two_point(f64::NAN, 0.2, &reading(120.0, 80.0)),
            Err(SystemError::CalibrationFailed(_))
        ));
    }

    #[test]
    fn from_waveform_uses_beat_landmarks() {
        // Synthesize a raw pulse train between 0.2 and 0.8 raw units.
        let fs = 250.0;
        let n = (fs * 15.0) as usize;
        let raw: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let beat = ((2.0 * std::f64::consts::PI * 1.2 * t).sin())
                    .max(0.0)
                    .powi(2);
                0.2 + 0.6 * beat
            })
            .collect();
        let cal = Calibration::from_waveform(&raw, fs, &reading(120.0, 80.0)).unwrap();
        let top = cal.apply(0.8).value();
        let bottom = cal.apply(0.2).value();
        assert!((top - 120.0).abs() < 3.0, "systolic mapped to {top}");
        assert!((bottom - 80.0).abs() < 3.0, "diastolic mapped to {bottom}");
    }

    #[test]
    fn apply_all_matches_apply() {
        let cal = Calibration::from_two_point(1.0, 0.0, &reading(120.0, 80.0)).unwrap();
        let raw = [0.0, 0.5, 1.0];
        let all = cal.apply_all(&raw);
        for (r, c) in raw.iter().zip(&all) {
            assert_eq!(cal.apply(*r), *c);
        }
    }
}

//! Error type for the system crate.

use std::error::Error;
use std::fmt;

use tonos_analog::AnalogError;
use tonos_dsp::DspError;
use tonos_mems::MemsError;
use tonos_physio::PhysioError;

/// Errors produced by the integrated sensor system.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// A MEMS-level failure (collapse, invalid geometry, …).
    Mems(MemsError),
    /// An analog-circuit failure (invalid configuration, bad channel, …).
    Analog(AnalogError),
    /// A digital-filter failure (invalid parameters, short input, …).
    Dsp(DspError),
    /// A physiological-model failure.
    Physio(PhysioError),
    /// A system-level configuration or processing failure.
    Config(String),
    /// An I/O failure (export writers, session records, the host link).
    /// Carries the [`std::io::ErrorKind`] plus the rendered message —
    /// [`std::io::Error`] itself is neither `Clone` nor `PartialEq`.
    Io(std::io::ErrorKind, String),
    /// Calibration could not be established (degenerate raw span, missing
    /// beats, or missing cuff reading).
    CalibrationFailed(String),
    /// No beats could be detected in a waveform segment.
    NoBeatsDetected {
        /// Samples examined.
        samples: usize,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Mems(e) => write!(f, "mems: {e}"),
            SystemError::Analog(e) => write!(f, "analog: {e}"),
            SystemError::Dsp(e) => write!(f, "dsp: {e}"),
            SystemError::Physio(e) => write!(f, "physio: {e}"),
            SystemError::Config(msg) => write!(f, "configuration: {msg}"),
            SystemError::Io(kind, msg) => write!(f, "i/o ({kind:?}): {msg}"),
            SystemError::CalibrationFailed(msg) => write!(f, "calibration failed: {msg}"),
            SystemError::NoBeatsDetected { samples } => {
                write!(f, "no beats detected in {samples} samples")
            }
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystemError::Mems(e) => Some(e),
            SystemError::Analog(e) => Some(e),
            SystemError::Dsp(e) => Some(e),
            SystemError::Physio(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemsError> for SystemError {
    fn from(e: MemsError) -> Self {
        SystemError::Mems(e)
    }
}

impl From<AnalogError> for SystemError {
    fn from(e: AnalogError) -> Self {
        SystemError::Analog(e)
    }
}

impl From<DspError> for SystemError {
    fn from(e: DspError) -> Self {
        SystemError::Dsp(e)
    }
}

impl From<PhysioError> for SystemError {
    fn from(e: PhysioError) -> Self {
        SystemError::Physio(e)
    }
}

impl From<std::io::Error> for SystemError {
    fn from(e: std::io::Error) -> Self {
        SystemError::Io(e.kind(), e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources_work() {
        let e: SystemError = MemsError::InvalidGeometry("x".into()).into();
        assert!(matches!(e, SystemError::Mems(_)));
        assert!(e.source().is_some());
        let e: SystemError = AnalogError::InvalidParameter("y".into()).into();
        assert!(e.to_string().contains("analog"));
        let e: SystemError = DspError::NoSignal.into();
        assert!(e.to_string().contains("dsp"));
        let e: SystemError = PhysioError::InvalidParameter("z".into()).into();
        assert!(e.to_string().contains("physio"));
        let e = SystemError::NoBeatsDetected { samples: 42 };
        assert!(e.to_string().contains("42"));
        assert!(e.source().is_none());
        let e: SystemError = std::io::Error::other("disk full").into();
        assert!(matches!(e, SystemError::Io(std::io::ErrorKind::Other, _)));
        assert!(e.to_string().contains("disk full"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SystemError>();
    }
}

//! Human-readable session reports.
//!
//! A monitoring device is judged by the summary it hands the clinician.
//! [`SessionReport`] condenses a [`MonitoringSession`] into the fields a
//! chart recorder would print — patient numbers, device configuration,
//! calibration provenance, and quality indicators — with a stable
//! `Display` layout suitable for logs and examples.

use std::fmt;

use crate::monitor::MonitoringSession;

/// Condensed clinical + engineering summary of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Session length in seconds (acquired data).
    pub duration_s: f64,
    /// Mean systolic pressure, mmHg.
    pub systolic: f64,
    /// Mean diastolic pressure, mmHg.
    pub diastolic: f64,
    /// Mean arterial pressure estimate, mmHg.
    pub mean_arterial: f64,
    /// Pulse rate, beats per minute.
    pub pulse_rate_bpm: f64,
    /// Number of beats analyzed.
    pub beats: usize,
    /// Selected array element.
    pub element: (usize, usize),
    /// Number of cuff calibrations applied.
    pub calibrations: usize,
    /// Cuff reading used for the initial calibration (sys/dia mmHg).
    pub cuff: (f64, f64),
    /// Chip power during the session, milliwatts.
    pub chip_power_mw: f64,
    /// Quality indicator: fraction of detected beats matched to the
    /// expected rhythm (1.0 = every beat plausible).
    pub beat_yield: f64,
}

impl SessionReport {
    /// Builds the report from a completed session.
    pub fn from_session(session: &MonitoringSession) -> Self {
        let duration_s = session.raw.len() as f64 / session.sample_rate;
        let expected_beats = duration_s * session.analysis.pulse_rate_bpm / 60.0;
        let beat_yield = if expected_beats > 0.0 {
            (session.analysis.beats.len() as f64 / expected_beats).min(1.0)
        } else {
            0.0
        };
        SessionReport {
            duration_s,
            systolic: session.analysis.mean_systolic,
            diastolic: session.analysis.mean_diastolic,
            mean_arterial: session.analysis.mean_diastolic
                + (session.analysis.mean_systolic - session.analysis.mean_diastolic) / 3.0,
            pulse_rate_bpm: session.analysis.pulse_rate_bpm,
            beats: session.analysis.beats.len(),
            element: session.scan.best,
            calibrations: session.calibrations.len(),
            cuff: (
                session.cuff_reading.systolic.value(),
                session.cuff_reading.diastolic.value(),
            ),
            chip_power_mw: session.chip_power_w * 1e3,
            beat_yield,
        }
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "blood pressure session report")?;
        writeln!(f, "  duration        : {:7.1} s", self.duration_s)?;
        writeln!(
            f,
            "  blood pressure  : {:5.1} / {:5.1} mmHg (MAP {:5.1})",
            self.systolic, self.diastolic, self.mean_arterial
        )?;
        writeln!(
            f,
            "  pulse           : {:7.1} bpm over {} beats (yield {:4.0} %)",
            self.pulse_rate_bpm,
            self.beats,
            self.beat_yield * 100.0
        )?;
        writeln!(
            f,
            "  sensor element  : ({}, {})  |  chip power {:.1} mW",
            self.element.0, self.element.1, self.chip_power_mw
        )?;
        write!(
            f,
            "  calibration     : {} cuff point(s), initial {:3.0}/{:3.0} mmHg",
            self.calibrations, self.cuff.0, self.cuff.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::monitor::BloodPressureMonitor;
    use tonos_physio::patient::PatientProfile;

    fn session() -> MonitoringSession {
        BloodPressureMonitor::new(
            SystemConfig::paper_default(),
            PatientProfile::normotensive(),
        )
        .unwrap()
        .with_scan_window(120)
        .run(6.0)
        .unwrap()
    }

    #[test]
    fn report_summarizes_the_session_faithfully() {
        let s = session();
        let r = SessionReport::from_session(&s);
        assert!((r.duration_s - s.raw.len() as f64 / 1000.0).abs() < 1e-9);
        assert_eq!(r.beats, s.analysis.beats.len());
        assert!((r.systolic - s.analysis.mean_systolic).abs() < 1e-12);
        assert!((r.mean_arterial - (r.diastolic + (r.systolic - r.diastolic) / 3.0)).abs() < 1e-9);
        assert_eq!(r.calibrations, 1);
        assert!((r.chip_power_mw - 11.5).abs() < 1e-6);
        assert!(
            r.beat_yield > 0.8 && r.beat_yield <= 1.0,
            "yield {}",
            r.beat_yield
        );
    }

    #[test]
    fn display_contains_the_clinical_numbers() {
        let r = SessionReport::from_session(&session());
        let text = r.to_string();
        assert!(text.contains("blood pressure session report"));
        assert!(text.contains("mmHg"));
        assert!(text.contains("bpm"));
        assert!(text.contains("cuff point"));
        // All lines are present (header + 5 fields).
        assert_eq!(text.lines().count(), 6);
    }
}

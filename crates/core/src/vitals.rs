//! Derived vital signs beyond blood pressure.
//!
//! A continuous pressure waveform carries more than systole and diastole:
//! respiration modulates the arterial baseline by a few mmHg (the
//! physiology behind "respiratory sinus" patterns on arterial lines).
//! Since the paper's sensor streams the full waveform, the respiratory
//! rate comes for free — a derived vital a cuff can never provide.
//!
//! Method: take the per-beat *diastolic* series (immune to the pulse
//! itself), resample it to a uniform 4 Hz axis, remove the mean and slow
//! drift, and locate the spectral peak in the 0.08–0.7 Hz respiratory
//! band with a Goertzel sweep.

use tonos_dsp::goertzel::Goertzel;
use tonos_dsp::iir::Biquad;

use crate::analyze::Beat;
use crate::SystemError;

/// Respiratory band searched, Hz (≈ 5–42 breaths/min).
const RESP_BAND_LO_HZ: f64 = 0.08;
const RESP_BAND_HI_HZ: f64 = 0.7;
/// Uniform resampling rate of the beat series, Hz.
const RESAMPLE_HZ: f64 = 4.0;

/// A respiratory-rate estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RespiratoryEstimate {
    /// Breathing rate in breaths per minute.
    pub rate_per_min: f64,
    /// Peak modulation amplitude in the waveform's units (mmHg for a
    /// calibrated stream).
    pub amplitude: f64,
    /// Confidence in [0, 1]: spectral peak power relative to the total
    /// band power (1.0 = pure sinusoidal breathing).
    pub confidence: f64,
}

/// Estimates the respiratory rate from detected beats.
///
/// `sample_rate` is the waveform's rate (used to time the beats).
///
/// # Errors
///
/// Returns [`SystemError::Config`] for a non-positive sample rate, or
/// [`SystemError::NoBeatsDetected`] when fewer than 10 beats / 10 s of
/// data are available (too short to resolve a breath).
pub fn respiratory_rate(
    beats: &[Beat],
    sample_rate: f64,
) -> Result<RespiratoryEstimate, SystemError> {
    if !(sample_rate > 0.0) {
        return Err(SystemError::Config("sample rate must be positive".into()));
    }
    if beats.len() < 10 {
        return Err(SystemError::NoBeatsDetected {
            samples: beats.len(),
        });
    }
    let t_first = beats.first().expect("non-empty").peak_index as f64 / sample_rate;
    let t_last = beats.last().expect("non-empty").peak_index as f64 / sample_rate;
    if t_last - t_first < 10.0 {
        return Err(SystemError::NoBeatsDetected {
            samples: beats.len(),
        });
    }

    // Resample the diastolic series onto a uniform axis by linear
    // interpolation between beats.
    let n = ((t_last - t_first) * RESAMPLE_HZ) as usize;
    let mut series = Vec::with_capacity(n);
    let mut k = 0usize;
    for i in 0..n {
        let t = t_first + i as f64 / RESAMPLE_HZ;
        while k + 1 < beats.len() - 1 && (beats[k + 1].peak_index as f64 / sample_rate) < t {
            k += 1;
        }
        let t0 = beats[k].peak_index as f64 / sample_rate;
        let t1 = beats[k + 1].peak_index as f64 / sample_rate;
        let frac = ((t - t0) / (t1 - t0)).clamp(0.0, 1.0);
        series.push(beats[k].diastolic * (1.0 - frac) + beats[k + 1].diastolic * frac);
    }

    // Remove mean and sub-respiratory drift with a gentle high-pass.
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    for v in &mut series {
        *v -= mean;
    }
    let mut hp = Biquad::highpass(
        RESP_BAND_LO_HZ / 2.0,
        RESAMPLE_HZ,
        std::f64::consts::FRAC_1_SQRT_2,
    )
    .map_err(SystemError::Dsp)?;
    let filtered = hp.process(&series);
    // Discard the high-pass transient.
    let settle = (RESAMPLE_HZ * 5.0) as usize;
    let usable = &filtered[settle.min(filtered.len() / 4)..];

    // Goertzel sweep across the respiratory band.
    let steps = 60;
    let mut best = (0.0, 0.0);
    let mut total_power = 0.0;
    for s in 0..steps {
        let f =
            RESP_BAND_LO_HZ + (RESP_BAND_HI_HZ - RESP_BAND_LO_HZ) * s as f64 / (steps - 1) as f64;
        let mut g = Goertzel::new(f, RESAMPLE_HZ).map_err(SystemError::Dsp)?;
        g.push_block(usable);
        let p = g.power();
        total_power += p;
        if p > best.1 {
            best = (f, p);
        }
    }
    if !(best.1 > 0.0) {
        return Err(SystemError::NoBeatsDetected {
            samples: beats.len(),
        });
    }
    // Amplitude from the winning bin; confidence is the winning bin's
    // share of the swept power. A distinct breath concentrates roughly
    // half the band power in one bin (~0.5); an apneic record spreads it
    // across drift and noise. The share is already in [0, 1], so no
    // scaling — an earlier ×3 "peak width" correction saturated the
    // metric at 1.0 for breathing and apneic records alike.
    let mut g = Goertzel::new(best.0, RESAMPLE_HZ).map_err(SystemError::Dsp)?;
    g.push_block(usable);
    Ok(RespiratoryEstimate {
        rate_per_min: best.0 * 60.0,
        amplitude: g.amplitude(),
        confidence: best.1 / total_power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::detect_beats;
    use tonos_physio::patient::PatientProfile;
    use tonos_physio::variability::RespiratoryModulation;
    use tonos_physio::waveform::{ArterialParams, PulseWaveform};

    fn estimate_for(params: ArterialParams, duration: f64) -> RespiratoryEstimate {
        let record = PulseWaveform::new(params)
            .unwrap()
            .record(250.0, duration)
            .unwrap();
        let x: Vec<f64> = record.samples.iter().map(|p| p.value()).collect();
        let beats = detect_beats(&x, 250.0).unwrap();
        respiratory_rate(&beats, 250.0).unwrap()
    }

    #[test]
    fn recovers_the_resting_breathing_rate() {
        let est = estimate_for(ArterialParams::normotensive(), 90.0);
        // Resting preset breathes at 0.25 Hz = 15/min.
        assert!(
            (est.rate_per_min - 15.0).abs() < 1.5,
            "rate {} /min",
            est.rate_per_min
        );
        assert!(
            (est.amplitude - 2.0).abs() < 1.0,
            "amplitude {} mmHg vs 2 mmHg modulation",
            est.amplitude
        );
        assert!(est.confidence > 0.3, "confidence {}", est.confidence);
    }

    #[test]
    fn tracks_a_faster_breathing_rate() {
        let params = ArterialParams {
            respiration: RespiratoryModulation {
                rate_hz: 0.4, // 24 breaths/min (exercise)
                amplitude_mmhg: 3.0,
            },
            ..ArterialParams::normotensive()
        };
        let est = estimate_for(params, 90.0);
        assert!(
            (est.rate_per_min - 24.0).abs() < 2.0,
            "rate {} /min",
            est.rate_per_min
        );
    }

    #[test]
    fn apneic_patient_reports_low_confidence() {
        let params = ArterialParams {
            respiration: RespiratoryModulation::none(),
            ..ArterialParams::normotensive()
        };
        let with_breathing = estimate_for(ArterialParams::normotensive(), 60.0);
        let apneic = estimate_for(params, 60.0);
        assert!(
            apneic.confidence < with_breathing.confidence,
            "apneic confidence {} !< breathing {}",
            apneic.confidence,
            with_breathing.confidence
        );
        assert!(
            apneic.amplitude < 1.0,
            "phantom modulation {}",
            apneic.amplitude
        );
    }

    #[test]
    fn short_records_are_rejected() {
        let record = PatientProfile::normotensive().record(250.0, 8.0).unwrap();
        let x: Vec<f64> = record.samples.iter().map(|p| p.value()).collect();
        let beats = detect_beats(&x, 250.0).unwrap();
        assert!(matches!(
            respiratory_rate(&beats, 250.0),
            Err(SystemError::NoBeatsDetected { .. })
        ));
        assert!(matches!(
            respiratory_rate(&beats, 0.0),
            Err(SystemError::Config(_))
        ));
        assert!(matches!(
            respiratory_rate(&beats[..3], 250.0),
            Err(SystemError::NoBeatsDetected { .. })
        ));
    }

    #[test]
    fn works_through_the_full_sensor_chain() {
        use crate::config::SystemConfig;
        use crate::monitor::BloodPressureMonitor;
        let mut monitor = BloodPressureMonitor::new(
            SystemConfig::paper_default(),
            PatientProfile::normotensive(),
        )
        .unwrap()
        .with_scan_window(150);
        let session = monitor.run(45.0).unwrap();
        let est = respiratory_rate(&session.analysis.beats, session.sample_rate).unwrap();
        assert!(
            (est.rate_per_min - 15.0).abs() < 2.5,
            "through-chain respiratory rate {} /min",
            est.rate_per_min
        );
    }
}

//! Lane-banked readout: K complete readout systems converting frames in
//! lockstep through one shared SoA modulator bank.
//!
//! [`ReadoutBank`] borrows K [`ReadoutSystem`]s, lifts their modulators
//! into a [`SigmaDelta2Bank`] (`tonos-analog`), and converts one frame
//! per lane per call: the per-lane input is computed by each lane's own
//! chip (mux, front end, capacitance LUTs — exactly the scalar path),
//! the K modulators then step **per clock in lockstep** through the
//! bank's flat lanes, and each lane's packed bitstream runs through its
//! own decimation chain. One [`ConversionScratch`] is loaned across all
//! lanes for the decimated output, so the settled frame path stays
//! allocation-free for any K.
//!
//! The scalar [`ReadoutSystem::push_frame`] stays the bit-exact oracle:
//! a banked lane produces the same outputs, counters, and telemetry as
//! the same system run alone (see `tests/bank_readout.rs`).

use tonos_analog::bank::{BankScratch, LaneInput, SigmaDelta2Bank};
use tonos_dsp::bits::PackedBits;
use tonos_mems::units::Pascals;

use crate::readout::ReadoutSystem;
use crate::scratch::ConversionScratch;
use crate::SystemError;

/// K readout systems converting in lockstep on a shared modulator bank.
///
/// Constructed over mutable borrows of the scalar systems; dropping the
/// bank (or calling [`ReadoutBank::release`]) hands each modulator back
/// with its exact state, so the systems continue scalar operation
/// bit-identically afterwards.
#[derive(Debug)]
pub struct ReadoutBank<'a> {
    lanes: Vec<&'a mut ReadoutSystem>,
    modulators: SigmaDelta2Bank,
    /// Per-lane packed bitstream for the current frame.
    bits: Vec<PackedBits>,
    /// Per-lane settling-transient input scratch (empty while settled).
    samples: Vec<Vec<f64>>,
    /// Per-lane constant input for the settled fast path.
    const_in: Vec<f64>,
    /// Per-lane settled flag for the current frame.
    settled: Vec<bool>,
    /// One decimation output buffer loaned across all lanes.
    scratch: ConversionScratch,
    osr: usize,
    /// True once a modulator has been taken back out (release ran).
    released: bool,
}

impl<'a> ReadoutBank<'a> {
    /// Banks the given systems, lifting each chip's modulator into the
    /// shared SoA bank (lane index = position in `lanes`).
    ///
    /// While banked, the borrowed systems must convert only through the
    /// bank — their own `push_frame` would run a placeholder modulator.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Config`] when `lanes` is empty or the
    /// systems disagree on the oversampling ratio (lockstep conversion
    /// needs one block size).
    pub fn new(mut lanes: Vec<&'a mut ReadoutSystem>) -> Result<Self, SystemError> {
        if lanes.is_empty() {
            return Err(SystemError::Config("a readout bank needs lanes".into()));
        }
        let osr = lanes[0].osr();
        if let Some(bad) = lanes.iter().find(|s| s.osr() != osr) {
            return Err(SystemError::Config(format!(
                "lockstep lanes need one OSR: {} vs {}",
                osr,
                bad.osr()
            )));
        }
        let k = lanes.len();
        let mut modulators = SigmaDelta2Bank::new();
        for sys in &mut lanes {
            modulators.push_lane(sys.chip_mut().extract_modulator()?);
        }
        Ok(ReadoutBank {
            lanes,
            modulators,
            bits: vec![PackedBits::with_capacity(osr); k],
            samples: vec![Vec::new(); k],
            const_in: vec![0.0; k],
            settled: vec![false; k],
            scratch: ConversionScratch::with_frame_capacity(osr),
            osr,
            released: false,
        })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Hands a pre-grown block scratch to the underlying modulator bank
    /// (see [`BankScratch`]); a fleet worker reuses one scratch across
    /// every batch it runs so the noise tiles stay grown.
    pub fn adopt_scratch(&mut self, scratch: BankScratch) {
        self.modulators.adopt_scratch(scratch);
    }

    /// Detaches the modulator bank's block scratch for reuse elsewhere.
    pub fn take_scratch(&mut self) -> BankScratch {
        self.modulators.take_scratch()
    }

    /// Modulator clocks per output sample (uniform across lanes).
    pub fn osr(&self) -> usize {
        self.osr
    }

    /// Immutable access to one lane's readout system.
    pub fn lane(&self, lane: usize) -> &ReadoutSystem {
        self.lanes[lane]
    }

    /// Selects an array element on one lane (scan-controller step);
    /// returns the lane's settling discard count. Other lanes are
    /// untouched — their noise streams and mux state do not move.
    ///
    /// # Errors
    ///
    /// Propagates channel-range and capacitance failures.
    pub fn select_element(
        &mut self,
        lane: usize,
        row: usize,
        col: usize,
        pressures: &[Pascals],
    ) -> Result<usize, SystemError> {
        self.lanes[lane].select_element(row, col, pressures)
    }

    /// Converts one pressure frame per lane in lockstep, writing one
    /// output sample per lane into `out`.
    ///
    /// Settled lanes contribute a constant modulator input (computed by
    /// their own mux/front end) and the whole bank steps through the
    /// allocation-free constant path; while any lane's mux is still
    /// settling, that lane feeds an explicit per-clock transient.
    /// Each lane is bit-identical to its scalar
    /// [`ReadoutSystem::push_frame`].
    ///
    /// # Errors
    ///
    /// Propagates conversion failures.
    ///
    /// # Panics
    ///
    /// Panics when `frames` or `out` length differs from the lane count.
    pub fn push_frames<F: AsRef<[Pascals]>>(
        &mut self,
        frames: &[F],
        out: &mut [f64],
    ) -> Result<(), SystemError> {
        let k = self.lanes();
        assert_eq!(frames.len(), k, "one frame per lane");
        assert_eq!(out.len(), k, "one output slot per lane");
        let osr = self.osr;

        // Pass 1: per-lane frame input through each lane's own chip.
        let mut all_settled = true;
        for (lane, frame) in frames.iter().enumerate() {
            match self.lanes[lane].chip_mut().fill_frame_input(
                frame.as_ref(),
                osr,
                &mut self.samples[lane],
            )? {
                Some(u) => {
                    self.settled[lane] = true;
                    self.const_in[lane] = u;
                }
                None => {
                    self.settled[lane] = false;
                    all_settled = false;
                }
            }
        }

        // Pass 2: all K modulators, per clock in lockstep.
        for b in &mut self.bits {
            b.clear();
        }
        if all_settled {
            // The hot path: no per-frame buffer of lane inputs at all.
            self.modulators
                .step_block_constant(osr, &self.const_in, &mut self.bits);
        } else {
            // Mixed settled/settling lanes (scan transients): build the
            // borrowed input list per call. Allocates, but only while
            // some mux is settling.
            let inputs: Vec<LaneInput> = (0..k)
                .map(|lane| {
                    if self.settled[lane] {
                        LaneInput::Constant(self.const_in[lane])
                    } else {
                        LaneInput::Samples(&self.samples[lane])
                    }
                })
                .collect();
            self.modulators.step_block(osr, &inputs, &mut self.bits);
        }

        // Pass 3: per-lane decimation through the shared scratch, plus
        // the per-frame accounting the scalar push_frame does.
        for (lane, sys) in self.lanes.iter_mut().enumerate() {
            self.scratch.out.clear();
            sys.decimator_mut()
                .process_packed_into(&self.bits[lane], &mut self.scratch.out);
            let y = match self.scratch.out[..] {
                [y] => y,
                _ => {
                    return Err(SystemError::Config(
                        "decimator phase misaligned with frame size".into(),
                    ))
                }
            };
            sys.note_banked_frame(
                self.modulators.steps(lane),
                self.modulators.saturation_events(lane),
            );
            out[lane] = y;
        }
        Ok(())
    }

    /// Hands every modulator back to its system (exact state, including
    /// noise-stream positions) and ends banked operation. Called by
    /// `Drop` as well; use the explicit form when the borrowed systems
    /// are needed again immediately.
    pub fn release(mut self) {
        self.release_in_place();
    }

    fn release_in_place(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        for sys in &mut self.lanes {
            let m = self.modulators.retire_lane(0);
            sys.chip_mut().restore_modulator(m);
        }
    }
}

impl Drop for ReadoutBank<'_> {
    fn drop(&mut self) {
        self.release_in_place();
    }
}

//! Chip and system configuration, defaulting to the paper's numbers.

use tonos_analog::nonideal::NonIdealities;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_mems::array::{ArrayLayout, MismatchModel};
use tonos_mems::capacitor::ElectrodeGeometry;
use tonos_mems::contact::ContactInterface;
use tonos_mems::units::{Farads, Volts};

use crate::SystemError;

/// Configuration of the sensor chip (everything on the die).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipConfig {
    /// Modulator clock in Hz (paper: 128 kHz).
    pub sample_rate_hz: f64,
    /// Supply voltage (paper: 5 V).
    pub supply: Volts,
    /// Array layout (paper: 2×2, 150 µm pitch).
    pub layout: ArrayLayout,
    /// Element electrode geometry.
    pub electrode: ElectrodeGeometry,
    /// Fabrication mismatch magnitudes.
    pub mismatch: MismatchModel,
    /// First-stage feedback capacitance (full-scale ΔC); the paper's
    /// future-work resolution knob.
    pub feedback_capacitance: Farads,
    /// Analog non-idealities of the ΣΔ loop.
    pub nonideal: NonIdealities,
    /// Mux settling time constant in modulator clocks.
    pub mux_tau_clocks: f64,
    /// Simpson grid for membrane capacitance evaluation (even).
    pub capacitance_grid: usize,
    /// Fabrication seed (array mismatch).
    pub fabrication_seed: u64,
}

impl ChipConfig {
    /// The paper's chip: 128 kHz, 5 V, 2×2 array, typical mismatch and
    /// non-idealities, 100 fF feedback capacitors.
    pub fn paper_default() -> Self {
        ChipConfig {
            sample_rate_hz: 128_000.0,
            supply: Volts(5.0),
            layout: ArrayLayout::paper_default(),
            electrode: ElectrodeGeometry::paper_default(),
            mismatch: MismatchModel::typical(),
            feedback_capacitance: Farads::from_femtofarads(100.0),
            nonideal: NonIdealities::typical(),
            mux_tau_clocks: 0.5,
            capacitance_grid: 16,
            fabrication_seed: 0xC41D,
        }
    }

    /// A measurement-tuned chip: feedback capacitance reduced to 10 fF so
    /// the millimeter-of-mercury pulse uses more of the converter's full
    /// scale — the adjustment the paper's outlook proposes for "an
    /// improvement of the resolution during blood pressure measurements".
    pub fn measurement_tuned() -> Self {
        ChipConfig {
            feedback_capacitance: Farads::from_femtofarads(10.0),
            ..ChipConfig::paper_default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Config`] for non-positive rates/supplies or
    /// an invalid grid, and propagates non-ideality validation.
    pub fn validate(&self) -> Result<(), SystemError> {
        if !(self.sample_rate_hz > 0.0) {
            return Err(SystemError::Config("sample rate must be positive".into()));
        }
        if !(self.supply.value() > 0.0) {
            return Err(SystemError::Config("supply must be positive".into()));
        }
        if self.capacitance_grid < 2 || !self.capacitance_grid.is_multiple_of(2) {
            return Err(SystemError::Config(format!(
                "capacitance grid {} must be even and >= 2",
                self.capacitance_grid
            )));
        }
        if !(self.feedback_capacitance.value() > 0.0) {
            return Err(SystemError::Config(
                "feedback capacitance must be positive".into(),
            ));
        }
        if self.layout.is_empty() {
            return Err(SystemError::Config("array layout is empty".into()));
        }
        self.nonideal.validate()?;
        Ok(())
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig::paper_default()
    }
}

/// Configuration of the complete measurement system (chip + FPGA + setup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// The chip.
    pub chip: ChipConfig,
    /// The decimation filter (paper: OSR 128, SINC³ + FIR32, 500 Hz,
    /// 12 bit).
    pub decimator: DecimatorConfig,
    /// The sensor–tissue interface (hold-down, backpressure, PDMS).
    pub contact: ContactInterface,
}

impl SystemConfig {
    /// The full paper system with the measurement-tuned feedback
    /// capacitance (the configuration that actually recorded Fig. 9) and
    /// the wrist contact setup of Fig. 8.
    pub fn paper_default() -> Self {
        SystemConfig {
            chip: ChipConfig::measurement_tuned(),
            decimator: DecimatorConfig::paper_default(),
            contact: ContactInterface::wrist_default(),
        }
    }

    /// The electrical-characterization system (§3.1): paper chip with the
    /// stock 100 fF feedback capacitors — the transducer is bypassed via
    /// the voltage input, so the contact setup is irrelevant but kept at
    /// its default.
    pub fn characterization_default() -> Self {
        SystemConfig {
            chip: ChipConfig::paper_default(),
            decimator: DecimatorConfig::paper_default(),
            contact: ContactInterface::transparent(),
        }
    }

    /// Output sample rate of the system in Hz.
    pub fn output_rate_hz(&self) -> f64 {
        self.chip.sample_rate_hz / self.decimator.osr as f64
    }

    /// Validates chip and decimator consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Config`] when the decimator's input rate
    /// disagrees with the chip clock, and propagates chip and interface
    /// validation failures.
    pub fn validate(&self) -> Result<(), SystemError> {
        self.chip.validate()?;
        if (self.decimator.input_rate - self.chip.sample_rate_hz).abs() > 1e-9 {
            return Err(SystemError::Config(format!(
                "decimator input rate {} != chip clock {}",
                self.decimator.input_rate, self.chip.sample_rate_hz
            )));
        }
        self.contact.validate()?;
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate_and_match_the_text() {
        let s = SystemConfig::paper_default();
        s.validate().unwrap();
        assert_eq!(s.chip.sample_rate_hz, 128_000.0);
        assert_eq!(s.chip.supply, Volts(5.0));
        assert_eq!(s.decimator.osr, 128);
        assert_eq!(s.decimator.output_bits, Some(12));
        assert_eq!(s.decimator.cutoff_hz, 500.0);
        assert_eq!(s.output_rate_hz(), 1000.0);
        assert_eq!(s.chip.layout.rows, 2);
        assert_eq!(s.chip.layout.cols, 2);
        SystemConfig::characterization_default().validate().unwrap();
    }

    #[test]
    fn measurement_tuning_reduces_cfb_only() {
        let stock = ChipConfig::paper_default();
        let tuned = ChipConfig::measurement_tuned();
        assert!(tuned.feedback_capacitance < stock.feedback_capacitance);
        assert_eq!(tuned.sample_rate_hz, stock.sample_rate_hz);
        assert_eq!(tuned.nonideal, stock.nonideal);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut c = ChipConfig::paper_default();
        c.sample_rate_hz = 0.0;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::paper_default();
        c.capacitance_grid = 7;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::paper_default();
        c.feedback_capacitance = Farads(0.0);
        assert!(c.validate().is_err());
        let mut c = ChipConfig::paper_default();
        c.supply = Volts(0.0);
        assert!(c.validate().is_err());

        let mut s = SystemConfig::paper_default();
        s.chip.sample_rate_hz = 64_000.0; // decimator still expects 128 kHz
        assert!(matches!(s.validate(), Err(SystemError::Config(_))));
    }

    #[test]
    fn default_impls_match_paper_presets() {
        assert_eq!(ChipConfig::default(), ChipConfig::paper_default());
        assert_eq!(SystemConfig::default(), SystemConfig::paper_default());
    }
}

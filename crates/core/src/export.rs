//! Export of sessions, beats, and spectra — CSV and binary records.
//!
//! The paper's setup streamed the 12-bit samples over USB "to a computer
//! system" — which means someone immediately needed the data in a file.
//! The CSV writers produce plain text (RFC-4180-simple: no quoting
//! needed for numeric data) against any [`std::io::Write`], so callers
//! choose the destination (file, buffer, pipe) per C-RW-VALUE.
//!
//! [`write_session_record`] / [`read_session_record`] store the sample
//! stream *binary and CRC-protected*, as a sequence of
//! [`tonos_dsp::frame`] frames — the exact codec the live host link
//! (`tonos-link`) speaks on the wire, so recorded sessions and link
//! traffic share one format and one corruption-detection story.

use std::io::{Read, Write};

use crate::monitor::MonitoringSession;
use crate::SystemError;
use tonos_dsp::spectrum::Spectrum;
use tonos_mems::units::MillimetersHg;

/// Writes a session's sample stream: `time_s,raw_fs,calibrated_mmhg`.
///
/// # Errors
///
/// Returns [`SystemError::Io`] wrapping any I/O failure.
pub fn write_session_csv<W: Write>(
    session: &MonitoringSession,
    mut out: W,
) -> Result<(), SystemError> {
    writeln!(out, "time_s,raw_fs,calibrated_mmhg")?;
    let t0 = session.acquisition_start as f64 / session.sample_rate;
    for (i, (&raw, cal)) in session.raw.iter().zip(&session.calibrated).enumerate() {
        writeln!(
            out,
            "{:.6},{:.9},{:.4}",
            t0 + i as f64 / session.sample_rate,
            raw,
            cal.value()
        )?;
    }
    Ok(())
}

/// Writes the detected beats: `time_s,systolic_mmhg,diastolic_mmhg`.
///
/// # Errors
///
/// Returns [`SystemError::Io`] wrapping any I/O failure.
pub fn write_beats_csv<W: Write>(
    session: &MonitoringSession,
    mut out: W,
) -> Result<(), SystemError> {
    writeln!(out, "time_s,systolic_mmhg,diastolic_mmhg")?;
    let t0 = session.acquisition_start as f64 / session.sample_rate;
    for beat in &session.analysis.beats {
        writeln!(
            out,
            "{:.4},{:.3},{:.3}",
            t0 + beat.peak_index as f64 / session.sample_rate,
            beat.systolic,
            beat.diastolic
        )?;
    }
    Ok(())
}

/// Writes a spectrum: `frequency_hz,level_dbfs`.
///
/// # Errors
///
/// Returns [`SystemError::Io`] wrapping any I/O failure.
pub fn write_spectrum_csv<W: Write>(spectrum: &Spectrum, mut out: W) -> Result<(), SystemError> {
    writeln!(out, "frequency_hz,level_dbfs")?;
    for (i, db) in spectrum.to_dbfs().into_iter().enumerate() {
        writeln!(out, "{:.4},{:.3}", spectrum.bin_frequency(i), db)?;
    }
    Ok(())
}

/// Samples per [`tonos_dsp::frame::KIND_SESSION_DATA`] frame in a binary
/// session record (16 bytes per sample: raw + calibrated `f64`).
const RECORD_CHUNK_SAMPLES: usize = 4096;

/// The sample stream read back from a binary session record.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// Output sample rate, Hz.
    pub sample_rate: f64,
    /// Truth sample index at which acquisition began.
    pub acquisition_start: usize,
    /// Raw (uncalibrated, full-scale) samples — bit-exact.
    pub raw: Vec<f64>,
    /// Calibrated samples aligned with `raw` — bit-exact.
    pub calibrated: Vec<MillimetersHg>,
}

fn record_corrupt(msg: impl Into<String>) -> SystemError {
    SystemError::Io(std::io::ErrorKind::InvalidData, msg.into())
}

/// The decoded `KIND_SESSION_META` header of a binary session record.
///
/// Produced by [`validate_record_meta`] — the single checked gate that
/// both [`read_session_record`] and external record containers (the
/// historian's segment reader) pass a candidate meta frame through
/// before trusting any of its fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordMeta {
    /// Output sample rate, Hz.
    pub sample_rate: f64,
    /// Truth sample index at which acquisition began.
    pub acquisition_start: u64,
    /// Declared sample count (already bounded against the record size).
    pub samples: u64,
}

/// Validates a candidate session-record meta frame: kind, payload
/// layout, and the declared sample count against `record_bytes` (the
/// total encoded record size the count will be trusted to describe).
///
/// This is the single source of truth for record-header validation —
/// `read_session_record` and the historian's segment reader both call
/// it, so a crafted or corrupt meta frame is rejected identically
/// everywhere instead of each container growing its own subtly
/// different bounds checks.
///
/// # Errors
///
/// Returns [`SystemError::Io`] with [`std::io::ErrorKind::InvalidData`]
/// when the frame is not a `KIND_SESSION_META` frame, its payload is
/// not the 24-byte meta layout, or the declared sample count could not
/// possibly fit in `record_bytes` (every sample costs 16 payload
/// bytes, so a record of `n` bytes holds at most `n / 16` samples —
/// rejecting here is what keeps a forged count from sizing a huge
/// allocation).
pub fn validate_record_meta(
    meta: &tonos_dsp::frame::Frame,
    record_bytes: usize,
) -> Result<RecordMeta, SystemError> {
    use tonos_dsp::frame::KIND_SESSION_META;
    if meta.kind != KIND_SESSION_META || meta.payload_bytes().len() != 24 {
        return Err(record_corrupt("session record does not start with meta"));
    }
    let m = meta.payload_bytes();
    let sample_rate = f64::from_le_bytes(m[0..8].try_into().expect("8 bytes"));
    let acquisition_start = u64::from_le_bytes(m[8..16].try_into().expect("8 bytes"));
    let samples = u64::from_le_bytes(m[16..24].try_into().expect("8 bytes"));
    if samples > (record_bytes / 16) as u64 {
        return Err(record_corrupt(format!(
            "meta declares {samples} samples but the record is only {record_bytes} bytes"
        )));
    }
    Ok(RecordMeta {
        sample_rate,
        acquisition_start,
        samples,
    })
}

/// Writes a session's sample stream as a binary, CRC-protected record:
/// one [`KIND_SESSION_META`](tonos_dsp::frame::KIND_SESSION_META) frame
/// (sample rate, acquisition start, sample count) followed by
/// [`KIND_SESSION_DATA`](tonos_dsp::frame::KIND_SESSION_DATA) frames of
/// up to `RECORD_CHUNK_SAMPLES` (4096) interleaved `(raw, calibrated)` `f64`
/// pairs. The frame `clock` field carries the chunk's first sample
/// index; `seq` numbers the frames.
///
/// [`read_session_record`] round-trips this bit-exactly, and because the
/// container is the live link's frame codec, a recorded session can be
/// replayed through any frame decoder.
///
/// # Errors
///
/// Returns [`SystemError::Io`] on write failure.
pub fn write_session_record<W: Write>(
    session: &MonitoringSession,
    out: W,
) -> Result<(), SystemError> {
    write_record_parts(
        session.sample_rate,
        session.acquisition_start as u64,
        &session.raw,
        &session.calibrated,
        out,
    )
}

/// Writes a binary session record from its constituent parts — the
/// same format as [`write_session_record`], for producers that have a
/// sample stream but no [`MonitoringSession`] around it (the
/// historian's link recorder journaling live ingest, replay tools
/// re-chunking stored streams).
///
/// `raw` and `calibrated` must be the same length.
///
/// # Errors
///
/// Returns [`SystemError::Io`] on write failure and with
/// [`std::io::ErrorKind::InvalidInput`] on mismatched slice lengths.
pub fn write_record_parts<W: Write>(
    sample_rate: f64,
    acquisition_start: u64,
    raw: &[f64],
    calibrated: &[MillimetersHg],
    mut out: W,
) -> Result<(), SystemError> {
    use tonos_dsp::frame::{Frame, KIND_SESSION_DATA, KIND_SESSION_META};
    if raw.len() != calibrated.len() {
        return Err(SystemError::Io(
            std::io::ErrorKind::InvalidInput,
            format!(
                "record parts disagree: {} raw vs {} calibrated samples",
                raw.len(),
                calibrated.len()
            ),
        ));
    }
    let mut meta = Vec::with_capacity(24);
    meta.extend_from_slice(&sample_rate.to_le_bytes());
    meta.extend_from_slice(&acquisition_start.to_le_bytes());
    meta.extend_from_slice(&(raw.len() as u64).to_le_bytes());
    let meta = Frame::bytes(KIND_SESSION_META, 0, 0, 0, meta)
        .expect("24-byte meta payload is within the frame limit");
    out.write_all(&meta.encode())?;
    let mut seq = 1u32;
    let mut buf = Vec::new();
    for (start, chunk) in raw
        .chunks(RECORD_CHUNK_SAMPLES)
        .enumerate()
        .map(|(i, c)| (i * RECORD_CHUNK_SAMPLES, c))
    {
        let mut payload = Vec::with_capacity(chunk.len() * 16);
        for (i, &r) in chunk.iter().enumerate() {
            payload.extend_from_slice(&r.to_le_bytes());
            payload.extend_from_slice(&calibrated[start + i].value().to_le_bytes());
        }
        let frame = Frame::bytes(KIND_SESSION_DATA, 0, seq, start as u64, payload)
            .expect("chunk payload is within the frame limit");
        seq = seq.wrapping_add(1);
        buf.clear();
        frame.encode_into(&mut buf);
        out.write_all(&buf)?;
    }
    Ok(())
}

/// Reads back a binary session record written by
/// [`write_session_record`], verifying every frame's CRC and the
/// meta-declared sample count.
///
/// # Errors
///
/// Returns [`SystemError::Io`] on read failure, and
/// [`SystemError::Io`] with [`std::io::ErrorKind::InvalidData`] when a
/// frame fails its CRC, frames are missing, or the layout is not a
/// session record.
pub fn read_session_record<R: Read>(mut input: R) -> Result<SessionRecord, SystemError> {
    use tonos_dsp::frame::{Frame, ParseOutcome, KIND_SESSION_DATA};
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    let mut pos = 0;
    let mut frames = Vec::new();
    while pos < bytes.len() {
        match Frame::parse(&bytes[pos..]) {
            ParseOutcome::Parsed { frame, consumed } => {
                pos += consumed;
                frames.push(frame);
            }
            ParseOutcome::NeedMore => {
                return Err(record_corrupt("session record ends mid-frame"));
            }
            ParseOutcome::Corrupt { reason } => {
                return Err(record_corrupt(format!(
                    "corrupt frame at byte {pos}: {reason:?}"
                )));
            }
        }
    }
    let Some((meta, data)) = frames.split_first() else {
        return Err(record_corrupt("empty session record"));
    };
    // The declared count sizes two allocations below, so it goes
    // through the shared checked gate before being trusted: a corrupt
    // or crafted meta frame declaring more samples than the record
    // could hold is rejected instead of panicking on a huge
    // `with_capacity`.
    let header = validate_record_meta(meta, bytes.len())?;
    let sample_rate = header.sample_rate;
    let acquisition_start = header.acquisition_start as usize;
    let samples = header.samples as usize;
    let mut raw = Vec::with_capacity(samples);
    let mut calibrated = Vec::with_capacity(samples);
    for frame in data {
        if frame.kind != KIND_SESSION_DATA {
            return Err(record_corrupt(format!(
                "unexpected frame kind {} in session record",
                frame.kind
            )));
        }
        if frame.clock as usize != raw.len() {
            return Err(record_corrupt(format!(
                "data frame at sample {} but {} samples read",
                frame.clock,
                raw.len()
            )));
        }
        let payload = frame.payload_bytes();
        if !payload.len().is_multiple_of(16) {
            return Err(record_corrupt("data frame payload is not whole samples"));
        }
        for pair in payload.chunks_exact(16) {
            raw.push(f64::from_le_bytes(pair[0..8].try_into().expect("8 bytes")));
            calibrated.push(MillimetersHg(f64::from_le_bytes(
                pair[8..16].try_into().expect("8 bytes"),
            )));
        }
    }
    if raw.len() != samples {
        return Err(record_corrupt(format!(
            "meta declared {samples} samples, record holds {}",
            raw.len()
        )));
    }
    Ok(SessionRecord {
        sample_rate,
        acquisition_start,
        raw,
        calibrated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::monitor::BloodPressureMonitor;
    use tonos_dsp::signal::sine_wave;
    use tonos_dsp::window::Window;
    use tonos_physio::patient::PatientProfile;

    fn session() -> MonitoringSession {
        BloodPressureMonitor::new(
            SystemConfig::paper_default(),
            PatientProfile::normotensive(),
        )
        .unwrap()
        .with_scan_window(120)
        .run(5.0)
        .unwrap()
    }

    #[test]
    fn session_csv_has_one_row_per_sample() {
        let s = session();
        let mut buf = Vec::new();
        write_session_csv(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("time_s,raw_fs,calibrated_mmhg"));
        assert_eq!(text.lines().count(), s.raw.len() + 1);
        // Rows parse back to numbers and times are monotone.
        let mut last_t = f64::MIN;
        for line in text.lines().skip(1).take(100) {
            let cols: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            assert_eq!(cols.len(), 3);
            assert!(cols[0] > last_t);
            last_t = cols[0];
            assert!((50.0..200.0).contains(&cols[2]), "calibrated {}", cols[2]);
        }
    }

    #[test]
    fn beats_csv_matches_the_analysis() {
        let s = session();
        let mut buf = Vec::new();
        write_beats_csv(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), s.analysis.beats.len() + 1);
        for (line, beat) in text.lines().skip(1).zip(&s.analysis.beats) {
            let cols: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            assert!((cols[1] - beat.systolic).abs() < 1e-3);
            assert!((cols[2] - beat.diastolic).abs() < 1e-3);
        }
    }

    #[test]
    fn spectrum_csv_round_trips() {
        let x = sine_wave(1000.0, 100.0, 0.5, 0.0, 1024);
        let spec = Spectrum::from_signal(&x, 1000.0, Window::Hann).unwrap();
        let mut buf = Vec::new();
        write_spectrum_csv(&spec, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), spec.len() + 1);
        // The tone's bin is the loudest row.
        let mut best = (0.0, f64::MIN);
        for line in text.lines().skip(1) {
            let cols: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            if cols[1] > best.1 {
                best = (cols[0], cols[1]);
            }
        }
        assert!((best.0 - 100.0).abs() < 1.0, "peak at {} Hz", best.0);
    }

    #[test]
    fn io_errors_surface_as_typed_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let s = session();
        let err = write_session_csv(&s, Broken).unwrap_err();
        assert!(matches!(err, SystemError::Io(std::io::ErrorKind::Other, _)));
        assert!(err.to_string().contains("disk full"));
        let err = write_session_record(&s, Broken).unwrap_err();
        assert!(matches!(err, SystemError::Io(_, _)));
    }

    #[test]
    fn binary_record_round_trips_bit_exactly() {
        let s = session();
        let mut buf = Vec::new();
        write_session_record(&s, &mut buf).unwrap();
        let record = read_session_record(buf.as_slice()).unwrap();
        assert_eq!(record.sample_rate, s.sample_rate);
        assert_eq!(record.acquisition_start, s.acquisition_start);
        // Bit-exact: f64 equality, not tolerance.
        assert_eq!(record.raw, s.raw);
        assert_eq!(record.calibrated, s.calibrated);
    }

    #[test]
    fn absurd_declared_sample_count_is_rejected_before_allocating() {
        use tonos_dsp::frame::{Frame, KIND_SESSION_META};
        // A CRC-valid meta frame declaring ~u64::MAX samples: the reader
        // must reject it as corrupt, not attempt the allocation.
        let mut meta = Vec::with_capacity(24);
        meta.extend_from_slice(&1000.0f64.to_le_bytes());
        meta.extend_from_slice(&0u64.to_le_bytes());
        meta.extend_from_slice(&u64::MAX.to_le_bytes());
        let frame = Frame::bytes(KIND_SESSION_META, 0, 0, 0, meta).unwrap();
        let err = read_session_record(frame.encode().as_slice()).unwrap_err();
        assert!(
            matches!(err, SystemError::Io(std::io::ErrorKind::InvalidData, _)),
            "{err}"
        );
    }

    #[test]
    fn corrupt_records_are_rejected_not_misread() {
        let s = session();
        let mut buf = Vec::new();
        write_session_record(&s, &mut buf).unwrap();
        // Flip one payload bit: the CRC must catch it.
        let mut bad = buf.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        let err = read_session_record(bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, SystemError::Io(std::io::ErrorKind::InvalidData, _)),
            "{err}"
        );
        // Truncation is detected, not silently accepted.
        let err = read_session_record(buf[..buf.len() - 5].as_ref()).unwrap_err();
        assert!(matches!(
            err,
            SystemError::Io(std::io::ErrorKind::InvalidData, _)
        ));
        // Empty input is an error too.
        assert!(read_session_record([].as_slice()).is_err());
    }
}

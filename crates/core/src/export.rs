//! CSV export of sessions, beats, and spectra.
//!
//! The paper's setup streamed the 12-bit samples over USB "to a computer
//! system" — which means someone immediately needed the data in a file.
//! These writers produce plain CSV (RFC-4180-simple: no quoting needed
//! for numeric data) against any [`std::io::Write`], so callers choose
//! the destination (file, buffer, pipe) per C-RW-VALUE.

use std::io::Write;

use crate::monitor::MonitoringSession;
use crate::SystemError;
use tonos_dsp::spectrum::Spectrum;

/// Writes a session's sample stream: `time_s,raw_fs,calibrated_mmhg`.
///
/// # Errors
///
/// Returns [`SystemError::Config`] wrapping any I/O failure.
pub fn write_session_csv<W: Write>(
    session: &MonitoringSession,
    mut out: W,
) -> Result<(), SystemError> {
    let io = |e: std::io::Error| SystemError::Config(format!("csv write failed: {e}"));
    writeln!(out, "time_s,raw_fs,calibrated_mmhg").map_err(io)?;
    let t0 = session.acquisition_start as f64 / session.sample_rate;
    for (i, (&raw, cal)) in session.raw.iter().zip(&session.calibrated).enumerate() {
        writeln!(
            out,
            "{:.6},{:.9},{:.4}",
            t0 + i as f64 / session.sample_rate,
            raw,
            cal.value()
        )
        .map_err(io)?;
    }
    Ok(())
}

/// Writes the detected beats: `time_s,systolic_mmhg,diastolic_mmhg`.
///
/// # Errors
///
/// Returns [`SystemError::Config`] wrapping any I/O failure.
pub fn write_beats_csv<W: Write>(
    session: &MonitoringSession,
    mut out: W,
) -> Result<(), SystemError> {
    let io = |e: std::io::Error| SystemError::Config(format!("csv write failed: {e}"));
    writeln!(out, "time_s,systolic_mmhg,diastolic_mmhg").map_err(io)?;
    let t0 = session.acquisition_start as f64 / session.sample_rate;
    for beat in &session.analysis.beats {
        writeln!(
            out,
            "{:.4},{:.3},{:.3}",
            t0 + beat.peak_index as f64 / session.sample_rate,
            beat.systolic,
            beat.diastolic
        )
        .map_err(io)?;
    }
    Ok(())
}

/// Writes a spectrum: `frequency_hz,level_dbfs`.
///
/// # Errors
///
/// Returns [`SystemError::Config`] wrapping any I/O failure.
pub fn write_spectrum_csv<W: Write>(spectrum: &Spectrum, mut out: W) -> Result<(), SystemError> {
    let io = |e: std::io::Error| SystemError::Config(format!("csv write failed: {e}"));
    writeln!(out, "frequency_hz,level_dbfs").map_err(io)?;
    for (i, db) in spectrum.to_dbfs().into_iter().enumerate() {
        writeln!(out, "{:.4},{:.3}", spectrum.bin_frequency(i), db).map_err(io)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::monitor::BloodPressureMonitor;
    use tonos_dsp::signal::sine_wave;
    use tonos_dsp::window::Window;
    use tonos_physio::patient::PatientProfile;

    fn session() -> MonitoringSession {
        BloodPressureMonitor::new(
            SystemConfig::paper_default(),
            PatientProfile::normotensive(),
        )
        .unwrap()
        .with_scan_window(120)
        .run(5.0)
        .unwrap()
    }

    #[test]
    fn session_csv_has_one_row_per_sample() {
        let s = session();
        let mut buf = Vec::new();
        write_session_csv(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("time_s,raw_fs,calibrated_mmhg"));
        assert_eq!(text.lines().count(), s.raw.len() + 1);
        // Rows parse back to numbers and times are monotone.
        let mut last_t = f64::MIN;
        for line in text.lines().skip(1).take(100) {
            let cols: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            assert_eq!(cols.len(), 3);
            assert!(cols[0] > last_t);
            last_t = cols[0];
            assert!((50.0..200.0).contains(&cols[2]), "calibrated {}", cols[2]);
        }
    }

    #[test]
    fn beats_csv_matches_the_analysis() {
        let s = session();
        let mut buf = Vec::new();
        write_beats_csv(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), s.analysis.beats.len() + 1);
        for (line, beat) in text.lines().skip(1).zip(&s.analysis.beats) {
            let cols: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            assert!((cols[1] - beat.systolic).abs() < 1e-3);
            assert!((cols[2] - beat.diastolic).abs() < 1e-3);
        }
    }

    #[test]
    fn spectrum_csv_round_trips() {
        let x = sine_wave(1000.0, 100.0, 0.5, 0.0, 1024);
        let spec = Spectrum::from_signal(&x, 1000.0, Window::Hann).unwrap();
        let mut buf = Vec::new();
        write_spectrum_csv(&spec, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), spec.len() + 1);
        // The tone's bin is the loudest row.
        let mut best = (0.0, f64::MIN);
        for line in text.lines().skip(1) {
            let cols: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            if cols[1] > best.1 {
                best = (cols[0], cols[1]);
            }
        }
        assert!((best.0 - 100.0).abs() < 1.0, "peak at {} Hz", best.0);
    }

    #[test]
    fn io_errors_surface_as_typed_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let s = session();
        let err = write_session_csv(&s, Broken).unwrap_err();
        assert!(matches!(err, SystemError::Config(_)));
        assert!(err.to_string().contains("disk full"));
    }
}

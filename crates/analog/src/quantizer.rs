//! Single-bit comparator (the ΣΔ quantizer) with offset and hysteresis.
//!
//! The 1-bit quantizer of the modulator (paper Fig. 6) is a clocked
//! comparator. Its two first-order impairments are a static input offset
//! and switching hysteresis (the effective threshold depends on the
//! previous decision). Both are heavily attenuated by the loop gain in a
//! ΣΔ modulator, which the modulator tests verify.

use crate::noise::NoiseSource;

/// A clocked single-bit comparator.
#[derive(Debug, Clone)]
pub struct Comparator {
    pub(crate) offset: f64,
    pub(crate) hysteresis: f64,
    /// Per-decision input-referred noise sigma.
    pub(crate) noise_sigma: f64,
    pub(crate) noise: NoiseSource,
    pub(crate) last: i8,
}

impl Comparator {
    /// Creates a comparator with the given offset and hysteresis
    /// half-width (both in the modulator's full-scale units).
    ///
    /// # Panics
    ///
    /// Panics when `hysteresis` or `noise_sigma` is negative (static
    /// sizing error; user input is validated upstream).
    pub fn new(offset: f64, hysteresis: f64, noise_sigma: f64, noise: NoiseSource) -> Self {
        assert!(hysteresis >= 0.0, "hysteresis must be non-negative");
        assert!(noise_sigma >= 0.0, "noise sigma must be non-negative");
        Comparator {
            offset,
            hysteresis,
            noise_sigma,
            noise,
            last: 1,
        }
    }

    /// An ideal comparator (zero offset/hysteresis/noise).
    pub fn ideal() -> Self {
        Comparator::new(0.0, 0.0, 0.0, NoiseSource::from_seed(0))
    }

    /// Decides the sign of `input`, returning +1 or −1.
    ///
    /// With hysteresis `h`, the threshold is `offset − h·last`: a
    /// comparator that last output +1 needs the input to fall below
    /// `offset − h` to flip, and vice versa.
    pub fn decide(&mut self, input: f64) -> i8 {
        let threshold = self.offset - self.hysteresis * f64::from(self.last)
            + self.noise.gaussian(self.noise_sigma);
        self.last = if input >= threshold { 1 } else { -1 };
        self.last
    }

    /// The previous decision (+1 after reset).
    pub fn last_decision(&self) -> i8 {
        self.last
    }

    /// Resets the decision history.
    pub fn reset(&mut self) {
        self.last = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_comparator_is_a_sign_function() {
        let mut c = Comparator::ideal();
        assert_eq!(c.decide(0.5), 1);
        assert_eq!(c.decide(-0.5), -1);
        assert_eq!(c.decide(0.0), 1, "ties resolve positive");
        assert_eq!(c.last_decision(), 1);
    }

    #[test]
    fn offset_shifts_the_threshold() {
        let mut c = Comparator::new(0.1, 0.0, 0.0, NoiseSource::from_seed(0));
        assert_eq!(c.decide(0.05), -1, "below offset");
        assert_eq!(c.decide(0.15), 1, "above offset");
    }

    #[test]
    fn hysteresis_resists_small_reversals() {
        let h = 0.2;
        let mut c = Comparator::new(0.0, h, 0.0, NoiseSource::from_seed(0));
        assert_eq!(c.decide(1.0), 1);
        // A small negative input does not flip a +1 comparator whose
        // flip threshold is -h.
        assert_eq!(c.decide(-0.1), 1);
        // A large one does.
        assert_eq!(c.decide(-0.3), -1);
        // Now the flip-back threshold is +h: small positive stays -1.
        assert_eq!(c.decide(0.1), -1);
        assert_eq!(c.decide(0.3), 1);
    }

    #[test]
    fn reset_restores_positive_history() {
        let mut c = Comparator::new(0.0, 0.5, 0.0, NoiseSource::from_seed(0));
        c.decide(-10.0);
        assert_eq!(c.last_decision(), -1);
        c.reset();
        assert_eq!(c.last_decision(), 1);
    }

    #[test]
    fn comparator_noise_randomizes_marginal_decisions() {
        let mut c = Comparator::new(0.0, 0.0, 0.05, NoiseSource::from_seed(9));
        let mut ones = 0;
        let n = 10_000;
        for _ in 0..n {
            if c.decide(0.0) == 1 {
                ones += 1;
            }
        }
        let ratio = ones as f64 / n as f64;
        assert!(
            (0.45..0.55).contains(&ratio),
            "zero input with noise must flip ~50/50, got {ratio}"
        );
        // Far-from-threshold decisions are unaffected.
        assert_eq!(c.decide(1.0), 1);
        assert_eq!(c.decide(-1.0), -1);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn negative_hysteresis_is_rejected() {
        let _ = Comparator::new(0.0, -0.1, 0.0, NoiseSource::from_seed(0));
    }
}

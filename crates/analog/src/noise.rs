//! Seeded noise sources for the switched-capacitor circuit models.
//!
//! Every stochastic impairment in the readout chain draws from a
//! [`NoiseSource`] seeded explicitly, so each experiment in the repository
//! is bit-reproducible. The physical anchors are the classic
//! switched-capacitor relations:
//!
//! * sampled thermal noise on a capacitor: `v_rms = sqrt(kT / C)`;
//! * aperture jitter on a sampled waveform: `v_err ≈ slope · t_jitter`.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Default junction temperature for noise budgets, in kelvin (body-contact
/// operation sits near 310 K, but electrical characterization is at room
/// temperature).
pub const ROOM_TEMPERATURE_K: f64 = 300.0;

/// RMS voltage of kT/C sampling noise for a capacitance in farads at a
/// temperature in kelvin.
///
/// # Panics
///
/// Panics if `capacitance` or `temperature` is not positive (a static
/// sizing error in circuit construction).
pub fn ktc_noise_rms(capacitance: f64, temperature: f64) -> f64 {
    assert!(
        capacitance > 0.0 && temperature > 0.0,
        "kT/C noise needs positive C and T"
    );
    (BOLTZMANN * temperature / capacitance).sqrt()
}

/// Number of ziggurat layers (a power of two so the layer index is a
/// mask of the entropy word).
const ZIGGURAT_LAYERS: usize = 128;
/// Right edge of the base layer for the 128-layer standard-normal
/// ziggurat (Marsaglia & Tsang).
const ZIGGURAT_R: f64 = 3.442_619_855_899;
/// Area of each layer (including the base layer's tail).
const ZIGGURAT_V: f64 = 9.912_563_035_262_17e-3;

/// `x` and `y = exp(-x²/2)` at the layer boundaries. `x[0]` is the base
/// layer's *virtual* width `V / f(R)` (> R, so the base rectangle has the
/// same area as every other layer once the tail is folded in);
/// `x[LAYERS] = 0`, `y[LAYERS] = 1`.
fn ziggurat_tables() -> &'static ([f64; ZIGGURAT_LAYERS + 1], [f64; ZIGGURAT_LAYERS + 1]) {
    use std::sync::OnceLock;
    static TABLES: OnceLock<([f64; ZIGGURAT_LAYERS + 1], [f64; ZIGGURAT_LAYERS + 1])> =
        OnceLock::new();
    TABLES.get_or_init(|| {
        let f = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0; ZIGGURAT_LAYERS + 1];
        let mut y = [0.0; ZIGGURAT_LAYERS + 1];
        x[0] = ZIGGURAT_V / f(ZIGGURAT_R);
        x[1] = ZIGGURAT_R;
        for i in 2..ZIGGURAT_LAYERS {
            // Each layer has area V: f(x[i]) = f(x[i-1]) + V / x[i-1].
            x[i] = (-2.0 * (f(x[i - 1]) + ZIGGURAT_V / x[i - 1]).ln()).sqrt();
        }
        x[ZIGGURAT_LAYERS] = 0.0;
        for i in 0..=ZIGGURAT_LAYERS {
            y[i] = f(x[i]);
        }
        (x, y)
    })
}

/// A deterministic Gaussian noise stream.
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: StdRng,
}

impl NoiseSource {
    /// Creates a source from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        NoiseSource {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform in `(0, 1]` — safe as a logarithm argument.
    #[inline]
    fn unit_open(&mut self) -> f64 {
        ((self.rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a standard-normal sample.
    ///
    /// Uses a 128-layer ziggurat (an *exact* sampler, not an
    /// approximation): ~98 % of draws cost one 64-bit word and one
    /// multiply; the rest fall through to the layer-edge rejection test
    /// or the Marsaglia tail. The noise-path share of a ΣΔ modulator
    /// clock dropped ~3× when this replaced the Box–Muller transform —
    /// see `BENCH_hotpath.json`.
    pub fn standard(&mut self) -> f64 {
        let (xs, ys) = ziggurat_tables();
        loop {
            let bits = self.rng.next_u64();
            let i = (bits & (ZIGGURAT_LAYERS as u64 - 1)) as usize;
            let sign = if bits & ZIGGURAT_LAYERS as u64 != 0 {
                -1.0
            } else {
                1.0
            };
            let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let x = u * xs[i];
            if x < xs[i + 1] {
                // Strictly inside the next layer's rectangle: accept
                // without evaluating the density (the hot path).
                return sign * x;
            }
            if i == 0 {
                // Base layer overflow: sample the tail beyond R.
                loop {
                    let e1 = -self.unit_open().ln() / ZIGGURAT_R;
                    let e2 = -self.unit_open().ln();
                    if e2 + e2 > e1 * e1 {
                        return sign * (ZIGGURAT_R + e1);
                    }
                }
            }
            // Layer edge: accept with probability proportional to the
            // density between the layer's bounding heights.
            let y = ys[i] + (ys[i + 1] - ys[i]) * self.unit_open();
            if y < (-0.5 * x * x).exp() {
                return sign * x;
            }
        }
    }

    /// Draws a zero-mean Gaussian sample with the given standard
    /// deviation. A sigma of exactly zero short-circuits to 0.0 without
    /// consuming randomness, so disabling a noise source does not shift
    /// the sequence of the others.
    #[inline]
    pub fn gaussian(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 0.0;
        }
        self.standard() * sigma
    }

    /// Derives an independent child source (splitting streams for the two
    /// integrators, the comparator, etc.).
    pub fn split(&mut self) -> NoiseSource {
        NoiseSource::from_seed(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ktc_matches_hand_calculation() {
        // 1 pF at 300 K: sqrt(1.38e-23 * 300 / 1e-12) ≈ 64.4 µV.
        let v = ktc_noise_rms(1e-12, 300.0);
        assert!((v - 64.4e-6).abs() < 1e-6, "{v}");
        // Bigger cap, less noise.
        assert!(ktc_noise_rms(4e-12, 300.0) < v);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ktc_rejects_zero_cap() {
        let _ = ktc_noise_rms(0.0, 300.0);
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = NoiseSource::from_seed(11);
        let mut b = NoiseSource::from_seed(11);
        for _ in 0..100 {
            assert_eq!(a.standard(), b.standard());
        }
        let mut c = NoiseSource::from_seed(12);
        assert_ne!(a.standard(), c.standard());
    }

    #[test]
    fn gaussian_statistics_are_plausible() {
        let mut src = NoiseSource::from_seed(5);
        let n = 100_000;
        let sigma = 2.5;
        let samples: Vec<f64> = (0..n).map(|_| src.gaussian(sigma)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.03, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_consumes_no_randomness() {
        let mut a = NoiseSource::from_seed(77);
        let mut b = NoiseSource::from_seed(77);
        let _ = a.gaussian(0.0);
        let _ = a.gaussian(0.0);
        // b never drew; subsequent samples must still match.
        assert_eq!(a.standard(), b.standard());
    }

    #[test]
    fn split_streams_are_independent_but_deterministic() {
        let mut parent_a = NoiseSource::from_seed(3);
        let mut parent_b = NoiseSource::from_seed(3);
        let mut child_a = parent_a.split();
        let mut child_b = parent_b.split();
        for _ in 0..10 {
            assert_eq!(child_a.standard(), child_b.standard());
        }
        // Child differs from parent's continued stream.
        assert_ne!(child_a.standard(), parent_a.standard());
    }
}

//! Seeded noise sources for the switched-capacitor circuit models.
//!
//! Every stochastic impairment in the readout chain draws from a
//! [`NoiseSource`] seeded explicitly, so each experiment in the repository
//! is bit-reproducible. The physical anchors are the classic
//! switched-capacitor relations:
//!
//! * sampled thermal noise on a capacitor: `v_rms = sqrt(kT / C)`;
//! * aperture jitter on a sampled waveform: `v_err ≈ slope · t_jitter`.

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Default junction temperature for noise budgets, in kelvin (body-contact
/// operation sits near 310 K, but electrical characterization is at room
/// temperature).
pub const ROOM_TEMPERATURE_K: f64 = 300.0;

/// RMS voltage of kT/C sampling noise for a capacitance in farads at a
/// temperature in kelvin.
///
/// # Panics
///
/// Panics if `capacitance` or `temperature` is not positive (a static
/// sizing error in circuit construction).
pub fn ktc_noise_rms(capacitance: f64, temperature: f64) -> f64 {
    assert!(
        capacitance > 0.0 && temperature > 0.0,
        "kT/C noise needs positive C and T"
    );
    (BOLTZMANN * temperature / capacitance).sqrt()
}

/// Number of ziggurat layers (a power of two so the layer index is a
/// mask of the entropy word).
pub(crate) const ZIGGURAT_LAYERS: usize = 128;
/// Right edge of the base layer for the 128-layer standard-normal
/// ziggurat (Marsaglia & Tsang).
const ZIGGURAT_R: f64 = 3.442_619_855_899;
/// Area of each layer (including the base layer's tail).
const ZIGGURAT_V: f64 = 9.912_563_035_262_17e-3;

/// `x` and `y = exp(-x²/2)` at the layer boundaries. `x[0]` is the base
/// layer's *virtual* width `V / f(R)` (> R, so the base rectangle has the
/// same area as every other layer once the tail is folded in);
/// `x[LAYERS] = 0`, `y[LAYERS] = 1`.
fn ziggurat_tables() -> &'static ([f64; ZIGGURAT_LAYERS + 1], [f64; ZIGGURAT_LAYERS + 1]) {
    use std::sync::OnceLock;
    static TABLES: OnceLock<([f64; ZIGGURAT_LAYERS + 1], [f64; ZIGGURAT_LAYERS + 1])> =
        OnceLock::new();
    TABLES.get_or_init(|| {
        let f = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0; ZIGGURAT_LAYERS + 1];
        let mut y = [0.0; ZIGGURAT_LAYERS + 1];
        x[0] = ZIGGURAT_V / f(ZIGGURAT_R);
        x[1] = ZIGGURAT_R;
        for i in 2..ZIGGURAT_LAYERS {
            // Each layer has area V: f(x[i]) = f(x[i-1]) + V / x[i-1].
            x[i] = (-2.0 * (f(x[i - 1]) + ZIGGURAT_V / x[i - 1]).ln()).sqrt();
        }
        x[ZIGGURAT_LAYERS] = 0.0;
        for i in 0..=ZIGGURAT_LAYERS {
            y[i] = f(x[i]);
        }
        (x, y)
    })
}

/// xoshiro256++ (Blackman & Vigna, public domain): the entropy engine
/// behind every noise draw in the signal chain.
///
/// Chosen over a cryptographic generator because the modulator draws
/// several 64-bit words *per clock per lane* — at 128 kHz × K lanes the
/// generator is a first-order term in the conversion budget, and
/// xoshiro256++ costs a handful of ALU ops per word (~4× cheaper than
/// the ChaCha-class generator it replaced; see `BENCH_hotpath.json`).
/// Statistical quality (passes BigCrush) is far beyond what a noise
/// model needs, and streams stay fully determined by their seed.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the four state words through SplitMix64 — the reference
    /// seeding procedure, which also guarantees a non-zero state.
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The `x` boundary table alone — the only table the speculative
/// accept needs (the wide noise kernels gather from it per register).
pub(crate) fn ziggurat_xs() -> &'static [f64; ZIGGURAT_LAYERS + 1] {
    &ziggurat_tables().0
}

/// Applies the ziggurat sign bit (bit 7 of the entropy word) to a
/// non-negative sample by OR-ing it into the IEEE sign position —
/// bit-identical to multiplying by ±1.0, with no branch.
#[inline]
fn apply_sign(bits: u64, x: f64) -> f64 {
    f64::from_bits(x.to_bits() | ((bits & ZIGGURAT_LAYERS as u64) << 56))
}

/// Speculative ziggurat accept for one entropy word — the layer
/// lookup, single multiply, and branchless sign of
/// [`NoiseSource::standard`]'s hot path. Returns the signed candidate
/// and whether it is accepted without a density evaluation.
///
/// This is the one place the accept test lives: the lockstep scalar
/// rows call it in both the speculative pass and the rejection-replay
/// pass, and it is the scalar statement of what the wide kernels
/// (`noise_wide`) evaluate in-register.
#[inline(always)]
pub(crate) fn speculate(bits: u64, xs: &[f64; ZIGGURAT_LAYERS + 1]) -> (f64, bool) {
    let i = (bits & (ZIGGURAT_LAYERS as u64 - 1)) as usize;
    let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let x = u * xs[i];
    (apply_sign(bits, x), x < xs[i + 1])
}

/// Replays one rejected speculative draw through the exact scalar
/// rejection path (layer edge or Marsaglia tail) on a stream rebuilt
/// from its slot's state words, leaving the advanced words back in the
/// slot. Shared by the lockstep scalar rows and the wide kernels'
/// lane-mask replay — either caller consumes exactly the words
/// [`NoiseSource::standard`] would.
pub(crate) fn replay_slot(
    s0: &mut u64,
    s1: &mut u64,
    s2: &mut u64,
    s3: &mut u64,
    bits: u64,
) -> f64 {
    let mut src = NoiseSource {
        rng: Xoshiro256 {
            s: [*s0, *s1, *s2, *s3],
        },
    };
    let z = src.finish_standard(ziggurat_tables(), bits);
    [*s0, *s1, *s2, *s3] = src.rng.s;
    z
}

/// The per-draw scale applied on top of a standard-normal sample — the
/// two shapes the lane bank's noise tiles need, written so the scalar
/// and wide paths evaluate the identical expression per lane.
#[derive(Clone, Copy)]
pub(crate) enum Epilogue<'a> {
    /// `z * sigmas[j]` — the pre-multiplied noise tiles.
    Scaled {
        /// Per-lane standard deviations.
        sigmas: &'a [f64],
    },
    /// `biases[j] + z * sigmas[j] + 0.0` — the noisy constant-input
    /// tile (the trailing `+ 0.0` mirrors the scalar path's vanished
    /// jitter term exactly).
    Biased {
        /// Per-lane constant inputs.
        biases: &'a [f64],
        /// Per-lane standard deviations.
        sigmas: &'a [f64],
    },
}

impl Epilogue<'_> {
    /// Applies the scale for lane `j` — the scalar statement of the
    /// wide kernels' vector epilogue.
    #[inline(always)]
    pub(crate) fn apply(self, j: usize, z: f64) -> f64 {
        match self {
            Epilogue::Scaled { sigmas } => z * sigmas[j],
            Epilogue::Biased { biases, sigmas } => biases[j] + z * sigmas[j] + 0.0,
        }
    }
}

/// A deterministic Gaussian noise stream.
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: Xoshiro256,
}

impl NoiseSource {
    /// Creates a source from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        NoiseSource {
            rng: Xoshiro256::from_seed(seed),
        }
    }

    /// Uniform in `(0, 1]` — safe as a logarithm argument.
    #[inline]
    fn unit_open(&mut self) -> f64 {
        ((self.rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a standard-normal sample.
    ///
    /// Uses a 128-layer ziggurat (an *exact* sampler, not an
    /// approximation): ~98 % of draws cost one 64-bit word and one
    /// multiply; the rest fall through to the layer-edge rejection test
    /// or the Marsaglia tail. The noise-path share of a ΣΔ modulator
    /// clock dropped ~3× when this replaced the Box–Muller transform —
    /// see `BENCH_hotpath.json`.
    pub fn standard(&mut self) -> f64 {
        let tables = ziggurat_tables();
        self.one_standard(tables)
    }

    /// One full ziggurat draw against pre-resolved tables (hot path,
    /// rejection loop, and tail).
    #[inline]
    fn one_standard(
        &mut self,
        tables: &([f64; ZIGGURAT_LAYERS + 1], [f64; ZIGGURAT_LAYERS + 1]),
    ) -> f64 {
        let bits = self.rng.next_u64();
        self.finish_standard(tables, bits)
    }

    /// Completes a ziggurat draw whose first entropy word has already
    /// been consumed from this stream — the continuation shared by the
    /// per-draw path and the lockstep tile fill's rejection handling.
    /// Word-for-word identical to the historical single-loop sampler.
    #[inline]
    fn finish_standard(
        &mut self,
        (xs, ys): &([f64; ZIGGURAT_LAYERS + 1], [f64; ZIGGURAT_LAYERS + 1]),
        mut bits: u64,
    ) -> f64 {
        loop {
            let i = (bits & (ZIGGURAT_LAYERS as u64 - 1)) as usize;
            let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let x = u * xs[i];
            if x < xs[i + 1] {
                // Strictly inside the next layer's rectangle: accept
                // without evaluating the density (the hot path).
                return apply_sign(bits, x);
            }
            if i == 0 {
                // Base layer overflow: sample the tail beyond R.
                return apply_sign(bits, self.tail_beyond_r());
            }
            // Layer edge: accept with probability proportional to the
            // density between the layer's bounding heights.
            let y = ys[i] + (ys[i + 1] - ys[i]) * self.unit_open();
            if y < (-0.5 * x * x).exp() {
                return apply_sign(bits, x);
            }
            bits = self.rng.next_u64();
        }
    }

    /// Fills `out` with standard-normal samples, exactly as if each had
    /// been drawn by [`NoiseSource::standard`] in sequence.
    ///
    /// This is the batched ziggurat fill the lane bank uses to pre-draw
    /// a block of per-clock noise per lane. Four draws are speculated at
    /// a time entirely branch-free (generator step, layer lookup, accept
    /// test, branchless sign via a bit OR); when all four land in the
    /// accept-without-density region (~94 % of chunks) they commit as a
    /// straight-line store. A chunk with any rejection rolls the
    /// generator back (its state is four words) and replays the chunk
    /// through the full per-draw path. The sample *sequence* is
    /// bit-identical to repeated `standard()` calls, so pre-filling
    /// never shifts a stream.
    pub fn fill_standard(&mut self, out: &mut [f64]) {
        let tables = ziggurat_tables();
        let (xs, _) = tables;
        let mut chunks = out.chunks_exact_mut(4);
        for chunk in &mut chunks {
            let rolled_back = self.rng.clone();
            let mut accept = true;
            for slot in chunk.iter_mut() {
                let bits = self.rng.next_u64();
                let i = (bits & (ZIGGURAT_LAYERS as u64 - 1)) as usize;
                let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let x = u * xs[i];
                accept &= x < xs[i + 1];
                *slot = apply_sign(bits, x);
            }
            if !accept {
                // Replay the whole chunk through the exact per-draw
                // path, so rejection handling consumes words in the
                // same order as `standard()`.
                self.rng = rolled_back;
                for slot in chunk.iter_mut() {
                    *slot = self.one_standard(tables);
                }
            }
        }
        for slot in chunks.into_remainder() {
            *slot = self.one_standard(tables);
        }
    }

    /// Marsaglia tail sample beyond the base-layer edge `R` (the rare
    /// fallback shared by [`NoiseSource::standard`] and
    /// [`NoiseSource::fill_standard`]).
    #[cold]
    fn tail_beyond_r(&mut self) -> f64 {
        loop {
            let e1 = -self.unit_open().ln() / ZIGGURAT_R;
            let e2 = -self.unit_open().ln();
            if e2 + e2 > e1 * e1 {
                return ZIGGURAT_R + e1;
            }
        }
    }

    /// Draws a zero-mean Gaussian sample with the given standard
    /// deviation. A sigma of exactly zero short-circuits to 0.0 without
    /// consuming randomness, so disabling a noise source does not shift
    /// the sequence of the others.
    #[inline]
    pub fn gaussian(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 0.0;
        }
        self.standard() * sigma
    }

    /// Derives an independent child source (splitting streams for the two
    /// integrators, the comparator, etc.).
    pub fn split(&mut self) -> NoiseSource {
        NoiseSource::from_seed(self.rng.next_u64())
    }
}

/// Lockstep multi-stream ziggurat fill: K independent [`NoiseSource`]
/// streams advanced one draw per step, side by side.
///
/// A single stream's generator is a serial dependency chain — each word
/// waits on the last — so per-stream fills are latency-bound no matter
/// how they are batched. Holding K streams' state words in
/// structure-of-arrays form and stepping all K per clock turns that
/// latency into throughput: the K chains interleave in the pipeline and
/// the pure-integer generator loop autovectorizes. Under `--features
/// wide-lanes` on x86-64 the fill goes further: an explicit-SIMD kernel
/// (`noise_wide`, picked at runtime like the tile kernels — see
/// [`kernel_name`]) steps 4 (AVX2) or 8 (AVX-512F) streams per vector
/// register and performs the speculative ziggurat accept branchlessly
/// in-register, with rejections collected as a lane mask and replayed
/// through the exact scalar path. This is the noise engine behind the
/// lane bank's clock-major tiles.
///
/// Each stream's draw *sequence* stays bit-identical to scalar
/// [`NoiseSource::standard`] calls: the lockstep step consumes exactly
/// the word `standard()` would, and the ~1 % of draws that miss the
/// accept-without-density region replay through the exact scalar
/// rejection path on their own stream.
#[derive(Debug, Clone, Default)]
pub struct LockstepFill {
    s0: Vec<u64>,
    s1: Vec<u64>,
    s2: Vec<u64>,
    s3: Vec<u64>,
    bits: Vec<u64>,
}

impl LockstepFill {
    /// An empty fill scratch; reusable across blocks without
    /// reallocating once warm.
    pub fn new() -> Self {
        LockstepFill::default()
    }

    /// Starts a new lockstep group; follow with one
    /// [`LockstepFill::load`] per stream.
    pub fn begin(&mut self, k: usize) {
        for v in [&mut self.s0, &mut self.s1, &mut self.s2, &mut self.s3] {
            v.clear();
            v.reserve(k);
        }
        self.bits.clear();
        self.bits.resize(k, 0);
    }

    /// Adds one stream to the group (slot index = call order).
    pub fn load(&mut self, src: &NoiseSource) {
        let [a, b, c, d] = src.rng.s;
        self.s0.push(a);
        self.s1.push(b);
        self.s2.push(c);
        self.s3.push(d);
    }

    /// Writes slot `j`'s advanced generator state back to its stream.
    pub fn store(&self, j: usize, src: &mut NoiseSource) {
        src.rng.s = [self.s0[j], self.s1[j], self.s2[j], self.s3[j]];
    }

    /// Fills a clock-major tile with scaled draws:
    /// `out[n*k + j] = stream_j.standard() * sigmas[j]` for each clock
    /// `n` — the lane bank's pre-multiplied noise tiles.
    ///
    /// Dispatches to the explicit-SIMD wide kernel when the build
    /// (`--features wide-lanes`) and the host CPU support one (see
    /// [`kernel_name`]); the portable lockstep rows otherwise. Either
    /// path is bit-identical.
    pub fn fill_scaled(&mut self, sigmas: &[f64], clocks: usize, out: &mut [f64]) {
        self.fill_dispatch(Epilogue::Scaled { sigmas }, clocks, out);
    }

    /// Fills a clock-major tile with biased scaled draws:
    /// `out[n*k + j] = biases[j] + stream_j.standard() * sigmas[j] + 0.0`
    /// — the lane bank's noisy constant-input tile (the trailing `+ 0.0`
    /// mirrors the scalar path's vanished jitter term exactly).
    /// Dispatched like [`LockstepFill::fill_scaled`].
    pub fn fill_biased(&mut self, biases: &[f64], sigmas: &[f64], clocks: usize, out: &mut [f64]) {
        self.fill_dispatch(Epilogue::Biased { biases, sigmas }, clocks, out);
    }

    /// [`LockstepFill::fill_scaled`] pinned to the portable lockstep
    /// rows — the always-compiled oracle the wide kernel is
    /// property-tested (and benchmarked) against.
    pub fn fill_scaled_portable(&mut self, sigmas: &[f64], clocks: usize, out: &mut [f64]) {
        let ep = Epilogue::Scaled { sigmas };
        self.fill_lanes(0, clocks, out, move |j, z| ep.apply(j, z));
    }

    /// [`LockstepFill::fill_biased`] pinned to the portable lockstep
    /// rows.
    pub fn fill_biased_portable(
        &mut self,
        biases: &[f64],
        sigmas: &[f64],
        clocks: usize,
        out: &mut [f64],
    ) {
        let ep = Epilogue::Biased { biases, sigmas };
        self.fill_lanes(0, clocks, out, move |j, z| ep.apply(j, z));
    }

    /// Kernel dispatch: the wide kernel handles the leading full vector
    /// groups (0 lanes when unavailable), the portable rows take
    /// whatever remains — the partial-tail lanes of a K that is not a
    /// multiple of the vector width.
    fn fill_dispatch(&mut self, ep: Epilogue<'_>, clocks: usize, out: &mut [f64]) {
        let k = self.bits.len();
        if k == 0 || clocks == 0 {
            return;
        }
        let lane0 = self.fill_wide(ep, clocks, out);
        if lane0 < k {
            self.fill_lanes(lane0, clocks, out, move |j, z| ep.apply(j, z));
        }
    }

    /// Runs the explicit-SIMD kernel over the leading full vector
    /// groups, returning the number of lanes it handled.
    #[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
    fn fill_wide(&mut self, ep: Epilogue<'_>, clocks: usize, out: &mut [f64]) -> usize {
        let Some(isa) = crate::noise_wide::active() else {
            return 0;
        };
        let k = self.bits.len();
        crate::noise_wide::fill(
            isa,
            &mut self.s0[..k],
            &mut self.s1[..k],
            &mut self.s2[..k],
            &mut self.s3[..k],
            ep,
            clocks,
            k,
            &mut out[..clocks * k],
        )
    }

    /// Without `wide-lanes` (or off x86-64) there is no wide kernel:
    /// every lane goes through the portable rows.
    #[cfg(not(all(feature = "wide-lanes", target_arch = "x86_64")))]
    fn fill_wide(&mut self, _ep: Epilogue<'_>, _clocks: usize, _out: &mut [f64]) -> usize {
        0
    }

    /// The portable lockstep core for lanes `lane0..K`: one generator
    /// step per stream per clock, then the shared [`speculate`] accept
    /// test; rejected draws (rare) replay through the exact scalar path
    /// via [`replay_slot`].
    fn fill_lanes(
        &mut self,
        lane0: usize,
        clocks: usize,
        out: &mut [f64],
        f: impl Fn(usize, f64) -> f64,
    ) {
        let k = self.bits.len();
        if lane0 >= k || clocks == 0 {
            return;
        }
        let xs = ziggurat_xs();
        let s0 = &mut self.s0[..k];
        let s1 = &mut self.s1[..k];
        let s2 = &mut self.s2[..k];
        let s3 = &mut self.s3[..k];
        let bits = &mut self.bits[..k];
        for row in out[..clocks * k].chunks_exact_mut(k) {
            // One xoshiro256++ step per stream, all streams in lockstep
            // (pure integer, unit stride: the autovectorized half).
            for j in lane0..k {
                let r = s0[j]
                    .wrapping_add(s3[j])
                    .rotate_left(23)
                    .wrapping_add(s0[j]);
                let t = s1[j] << 17;
                s2[j] ^= s0[j];
                s3[j] ^= s1[j];
                s1[j] ^= s2[j];
                s0[j] ^= s3[j];
                s2[j] ^= t;
                s3[j] = s3[j].rotate_left(45);
                bits[j] = r;
            }
            // Speculative accept for every stream — `standard()`'s hot
            // path, stated once in `speculate`.
            let mut any_reject = false;
            for j in lane0..k {
                let (z, accepted) = speculate(bits[j], xs);
                any_reject |= !accepted;
                row[j] = f(j, z);
            }
            if any_reject {
                // Re-test each slot (same shared helper — no second
                // statement of the accept condition) and replay the
                // misses on their own stream; accepted slots are
                // untouched.
                for j in lane0..k {
                    let b = bits[j];
                    if speculate(b, xs).1 {
                        continue;
                    }
                    let z = replay_slot(&mut s0[j], &mut s1[j], &mut s2[j], &mut s3[j], b);
                    row[j] = f(j, z);
                }
            }
        }
    }
}

/// The lockstep-fill kernel this build+host actually runs — benchmarks
/// record it next to their ns/draw numbers. `"scalar-lockstep"`
/// without `wide-lanes` (or when no wide ISA is available, or when
/// `TONOS_FORCE_KERNEL=scalar-tile` pins the portable bodies);
/// `"wide-avx2"` / `"wide-avx512f"` by runtime CPU detection with it.
pub fn kernel_name() -> &'static str {
    #[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
    {
        use crate::noise_wide::WideIsa;
        if let Some(isa) = crate::noise_wide::active() {
            return match isa {
                WideIsa::Avx2 => "wide-avx2",
                WideIsa::Avx512 => "wide-avx512f",
            };
        }
    }
    "scalar-lockstep"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ktc_matches_hand_calculation() {
        // 1 pF at 300 K: sqrt(1.38e-23 * 300 / 1e-12) ≈ 64.4 µV.
        let v = ktc_noise_rms(1e-12, 300.0);
        assert!((v - 64.4e-6).abs() < 1e-6, "{v}");
        // Bigger cap, less noise.
        assert!(ktc_noise_rms(4e-12, 300.0) < v);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ktc_rejects_zero_cap() {
        let _ = ktc_noise_rms(0.0, 300.0);
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = NoiseSource::from_seed(11);
        let mut b = NoiseSource::from_seed(11);
        for _ in 0..100 {
            assert_eq!(a.standard(), b.standard());
        }
        let mut c = NoiseSource::from_seed(12);
        assert_ne!(a.standard(), c.standard());
    }

    #[test]
    fn gaussian_statistics_are_plausible() {
        let mut src = NoiseSource::from_seed(5);
        let n = 100_000;
        let sigma = 2.5;
        let samples: Vec<f64> = (0..n).map(|_| src.gaussian(sigma)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.03, "std {}", var.sqrt());
    }

    #[test]
    fn fill_standard_matches_sequential_draws() {
        // The batched fill must be sequence-identical to repeated
        // standard() calls — across block boundaries and for enough
        // draws to hit the rejection paths (layer edges, tail).
        let mut batched = NoiseSource::from_seed(0xBA7C);
        let mut scalar = NoiseSource::from_seed(0xBA7C);
        let mut buf = vec![0.0; 1024];
        for len in [1usize, 7, 64, 127, 128, 500, 1024] {
            batched.fill_standard(&mut buf[..len]);
            for (i, &b) in buf[..len].iter().enumerate() {
                assert_eq!(b, scalar.standard(), "draw {i} of block {len}");
            }
        }
        // Interleaving fills and scalar draws must also stay aligned.
        batched.fill_standard(&mut buf[..33]);
        for &b in &buf[..33] {
            assert_eq!(b, scalar.standard());
        }
        assert_eq!(batched.standard(), scalar.standard());
    }

    #[test]
    fn lockstep_fill_matches_scalar_draws_per_stream() {
        // Enough draws per stream to exercise the rejection paths, plus
        // re-loading the same group for a second block: every stream
        // must stay sequence-identical to scalar draws, and the bias /
        // scale application must match the scalar expressions exactly.
        let k = 7;
        let clocks = 600;
        let sigmas: Vec<f64> = (0..k).map(|j| 0.5 + j as f64).collect();
        let biases: Vec<f64> = (0..k).map(|j| -3.0 + j as f64).collect();
        let mut streams: Vec<NoiseSource> = (0..k)
            .map(|j| NoiseSource::from_seed(900 + j as u64))
            .collect();
        let mut oracle: Vec<NoiseSource> = streams.clone();
        let mut fill = LockstepFill::new();
        let mut tile = vec![0.0; clocks * k];

        fill.begin(k);
        for s in &streams {
            fill.load(s);
        }
        fill.fill_scaled(&sigmas, clocks, &mut tile);
        for (j, s) in streams.iter_mut().enumerate() {
            fill.store(j, s);
        }
        for n in 0..clocks {
            for (j, o) in oracle.iter_mut().enumerate() {
                assert_eq!(
                    tile[n * k + j],
                    o.standard() * sigmas[j],
                    "clock {n} slot {j}"
                );
            }
        }

        // Second block through the biased fill: the stored-back states
        // must resume exactly where the oracle streams are.
        fill.begin(k);
        for s in &streams {
            fill.load(s);
        }
        fill.fill_biased(&biases, &sigmas, clocks, &mut tile);
        for (j, s) in streams.iter_mut().enumerate() {
            fill.store(j, s);
        }
        for n in 0..clocks {
            for (j, o) in oracle.iter_mut().enumerate() {
                assert_eq!(
                    tile[n * k + j],
                    biases[j] + o.standard() * sigmas[j] + 0.0,
                    "clock {n} slot {j}"
                );
            }
        }
        for (s, o) in streams.iter_mut().zip(&mut oracle) {
            assert_eq!(s.standard(), o.standard());
        }
    }

    #[test]
    fn zero_sigma_consumes_no_randomness() {
        let mut a = NoiseSource::from_seed(77);
        let mut b = NoiseSource::from_seed(77);
        let _ = a.gaussian(0.0);
        let _ = a.gaussian(0.0);
        // b never drew; subsequent samples must still match.
        assert_eq!(a.standard(), b.standard());
    }

    #[test]
    fn split_streams_are_independent_but_deterministic() {
        let mut parent_a = NoiseSource::from_seed(3);
        let mut parent_b = NoiseSource::from_seed(3);
        let mut child_a = parent_a.split();
        let mut child_b = parent_b.split();
        for _ in 0..10 {
            assert_eq!(child_a.standard(), child_b.standard());
        }
        // Child differs from parent's continued stream.
        assert_ne!(child_a.standard(), parent_a.standard());
    }
}

//! Seeded noise sources for the switched-capacitor circuit models.
//!
//! Every stochastic impairment in the readout chain draws from a
//! [`NoiseSource`] seeded explicitly, so each experiment in the repository
//! is bit-reproducible. The physical anchors are the classic
//! switched-capacitor relations:
//!
//! * sampled thermal noise on a capacitor: `v_rms = sqrt(kT / C)`;
//! * aperture jitter on a sampled waveform: `v_err ≈ slope · t_jitter`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Default junction temperature for noise budgets, in kelvin (body-contact
/// operation sits near 310 K, but electrical characterization is at room
/// temperature).
pub const ROOM_TEMPERATURE_K: f64 = 300.0;

/// RMS voltage of kT/C sampling noise for a capacitance in farads at a
/// temperature in kelvin.
///
/// # Panics
///
/// Panics if `capacitance` or `temperature` is not positive (a static
/// sizing error in circuit construction).
pub fn ktc_noise_rms(capacitance: f64, temperature: f64) -> f64 {
    assert!(
        capacitance > 0.0 && temperature > 0.0,
        "kT/C noise needs positive C and T"
    );
    (BOLTZMANN * temperature / capacitance).sqrt()
}

/// A deterministic Gaussian noise stream.
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: StdRng,
    /// Spare Box–Muller sample.
    spare: Option<f64>,
}

impl NoiseSource {
    /// Creates a source from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        NoiseSource {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Draws a standard-normal sample (Box–Muller, cached pair).
    pub fn standard(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a zero-mean Gaussian sample with the given standard
    /// deviation. A sigma of exactly zero short-circuits to 0.0 without
    /// consuming randomness, so disabling a noise source does not shift
    /// the sequence of the others.
    pub fn gaussian(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 0.0;
        }
        self.standard() * sigma
    }

    /// Derives an independent child source (splitting streams for the two
    /// integrators, the comparator, etc.).
    pub fn split(&mut self) -> NoiseSource {
        NoiseSource::from_seed(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ktc_matches_hand_calculation() {
        // 1 pF at 300 K: sqrt(1.38e-23 * 300 / 1e-12) ≈ 64.4 µV.
        let v = ktc_noise_rms(1e-12, 300.0);
        assert!((v - 64.4e-6).abs() < 1e-6, "{v}");
        // Bigger cap, less noise.
        assert!(ktc_noise_rms(4e-12, 300.0) < v);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ktc_rejects_zero_cap() {
        let _ = ktc_noise_rms(0.0, 300.0);
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = NoiseSource::from_seed(11);
        let mut b = NoiseSource::from_seed(11);
        for _ in 0..100 {
            assert_eq!(a.standard(), b.standard());
        }
        let mut c = NoiseSource::from_seed(12);
        assert_ne!(a.standard(), c.standard());
    }

    #[test]
    fn gaussian_statistics_are_plausible() {
        let mut src = NoiseSource::from_seed(5);
        let n = 100_000;
        let sigma = 2.5;
        let samples: Vec<f64> = (0..n).map(|_| src.gaussian(sigma)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.03, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_consumes_no_randomness() {
        let mut a = NoiseSource::from_seed(77);
        let mut b = NoiseSource::from_seed(77);
        let _ = a.gaussian(0.0);
        let _ = a.gaussian(0.0);
        // b never drew; subsequent samples must still match.
        assert_eq!(a.standard(), b.standard());
    }

    #[test]
    fn split_streams_are_independent_but_deterministic() {
        let mut parent_a = NoiseSource::from_seed(3);
        let mut parent_b = NoiseSource::from_seed(3);
        let mut child_a = parent_a.split();
        let mut child_b = parent_b.split();
        for _ in 0..10 {
            assert_eq!(child_a.standard(), child_b.standard());
        }
        // Child differs from parent's continued stream.
        assert_ne!(child_a.standard(), parent_a.standard());
    }
}

//! # tonos-analog — switched-capacitor readout electronics substrate
//!
//! Behavioral model of the on-chip readout circuitry of the DATE'05
//! tactile blood-pressure sensor (paper §2.2, Fig. 3 and Fig. 6): a
//! fully-differential switched-capacitor **second-order single-bit
//! ΣΔ-modulator** whose first stage integrates the charge difference
//! between the selected sensing capacitor and the on-chip reference
//! capacitor, preceded by two synchronized 2:1 analog multiplexers for
//! row/column element selection (Fig. 4).
//!
//! The modulator additionally has a *differential voltage interface* "so a
//! full characterization of the analog to digital conversion of this
//! circuit can be accomplished, independent of the connected transducer"
//! (§3) — that input is what the Fig. 7 sine-wave test drives, and the
//! [`modulator::SigmaDelta2`] `step` method accepts exactly that normalized value.
//!
//! Modules:
//!
//! * [`frontend`] — capacitance-difference-to-input conversion with the
//!   adjustable first-stage feedback capacitors the paper's *future work*
//!   points at
//! * [`integrator`] — SC integrator with finite-gain leak, saturation and
//!   sampled kT/C noise
//! * [`quantizer`] — single-bit comparator with offset and hysteresis
//! * [`dac`] — the 1-bit feedback DAC with level mismatch, ISI and
//!   reference noise
//! * [`characterize`] — static (DC transfer / INL) converter
//!   characterization
//! * [`modulator`] — 2nd-order (and baseline 1st-order) single-bit ΣΔ
//! * [`bank`] — structure-of-arrays lane bank stepping K modulators per
//!   clock (bit-identical to the scalar path, which stays the oracle)
//! * [`tile`] — the fixed-width lane tiles and wide/scalar per-clock
//!   kernels the bank executes on (`wide-lanes` feature selects the
//!   explicit wide-ops body)
//! * [`mux`] — the 2:1 row/column multiplexers with settling transients
//! * [`noise`] — seeded Gaussian noise sources and kT/C helpers; the
//!   lockstep tile fill dispatches to an explicit-SIMD `noise_wide`
//!   kernel (4/8 xoshiro streams per register, in-register ziggurat
//!   accept) under `wide-lanes` on x86-64
//! * [`power`] — supply/clock-scaled power model anchored at the measured
//!   11.5 mW @ 5 V, 128 kHz
//! * [`nonideal`] — aggregated non-ideality configuration
//!
//! ## Example: convert a DC input and check charge balance
//!
//! ```
//! use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta2};
//! use tonos_analog::nonideal::NonIdealities;
//!
//! # fn main() -> Result<(), tonos_analog::AnalogError> {
//! let mut dsm = SigmaDelta2::new(NonIdealities::ideal())?;
//! let bits = dsm.process(&vec![0.25; 65_536]);
//! let mean: f64 = bits.iter().map(|&b| f64::from(b)).sum::<f64>() / bits.len() as f64;
//! assert!((mean - 0.25).abs() < 0.01, "bitstream mean tracks the input");
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod bank;
pub mod characterize;
pub mod dac;
pub mod frontend;
pub mod integrator;
pub mod modulator;
pub mod mux;
pub mod noise;
pub mod nonideal;
pub mod power;
pub mod quantizer;
pub mod tile;

mod error;
#[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
mod kernel;
#[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
mod noise_wide;

pub use error::AnalogError;

//! The **wide noise plane**: explicit-SIMD lockstep ziggurat fill for
//! the lane bank (`--features wide-lanes`, x86-64 only).
//!
//! The portable [`LockstepFill`](crate::noise::LockstepFill) rows are
//! already structure-of-arrays — K xoshiro256++ streams side by side —
//! but they lean on autovectorization, and the ziggurat accept
//! (layer-table lookup, compare, sign OR) never vectorizes on its own.
//! This module states the whole draw explicitly, one vector register
//! at a time:
//!
//! * **4 (AVX2) or 8 (AVX-512F) generator streams per register.** A
//!   group's four state words live in four vector registers for the
//!   *entire block* — the only per-clock memory traffic is the two
//!   layer-table gathers and the tile-row store.
//! * **Speculative accept in-register.** Layer index = `bits & 127`
//!   feeds a `vgatherqpd` into the boundary table `xs` (and `xs[i+1]`),
//!   the uniform mantissa converts exactly via the split-word
//!   magic-number trick (`bits >> 11` is 53 bits — one `u32` half plus
//!   a 21-bit high part, both exact), one multiply forms the
//!   candidate, and the sign is OR-ed into the IEEE sign bit — the
//!   same branchless expressions as the scalar
//!   [`speculate`](crate::noise::speculate), evaluated lane-parallel.
//! * **Rejections are a lane mask.** The `x < xs[i+1]` compare yields
//!   a mask; a zero mask (≈ 92 % of clock-rows at 8 lanes) costs one
//!   test-and-branch. A nonzero mask spills the group's state words,
//!   replays exactly the masked lanes through the shared scalar
//!   [`replay_slot`](crate::noise::replay_slot) — consuming precisely
//!   the words `NoiseSource::standard` would — and reloads.
//! * **The per-lane scale is fused.** The `bias + z * sigma` epilogue
//!   happens in the same registers and stores straight into the
//!   clock-major noise tile the loop filter reads, so the draw never
//!   round-trips through an unscaled buffer.
//!
//! Every floating-point expression matches the scalar path
//! operation-for-operation (no FMA contraction — intrinsics pin the
//! instruction selection), so each stream's draw sequence is
//! **bit-identical** to per-stream `standard()` calls — the property
//! `tests/noise_oracle.rs` proves across vector-width boundaries,
//! partial tails, and rejection replay, and the reason the portable
//! rows can stay the always-compiled oracle (ARCHITECTURE §4's
//! scalar-as-oracle rule).
//!
//! Dispatch mirrors the tile kernels in [`crate::bank`]: runtime CPUID
//! probe, AVX-512F preferred over AVX2, overridable via
//! `TONOS_FORCE_KERNEL` (see [`crate::kernel`]). The kernels handle
//! the leading full vector groups; the caller runs partial-tail lanes
//! through the portable rows.

use std::arch::x86_64::*;

use crate::kernel::{forced_kernel, ForcedKernel};
use crate::noise::{replay_slot, ziggurat_xs, Epilogue, ZIGGURAT_LAYERS};

/// Which explicit-SIMD fill kernel dispatch resolved to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WideIsa {
    /// 4 streams per 256-bit register.
    Avx2,
    /// 8 streams per 512-bit register.
    Avx512,
}

/// The wide kernel this process runs, if any: runtime CPUID probe
/// (AVX-512F over AVX2), capped/pinned by `TONOS_FORCE_KERNEL`. `None`
/// means every lane takes the portable lockstep rows.
pub(crate) fn active() -> Option<WideIsa> {
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    let avx512 = std::arch::is_x86_feature_detected!("avx512f");
    match forced_kernel() {
        Some(ForcedKernel::Scalar) => None,
        Some(ForcedKernel::Avx2) if avx2 => Some(WideIsa::Avx2),
        Some(ForcedKernel::Avx512) if avx512 => Some(WideIsa::Avx512),
        // An unsupported forced wide kernel falls back to the probe —
        // the override can never select an ISA this CPU lacks.
        _ => {
            if avx512 {
                Some(WideIsa::Avx512)
            } else if avx2 {
                Some(WideIsa::Avx2)
            } else {
                None
            }
        }
    }
}

/// Fills the leading full vector groups of a clock-major `clocks × k`
/// tile with scaled standard-normal draws, advancing the lockstep
/// state words in place. Returns the number of lanes handled (a
/// multiple of the vector width — possibly 0); the caller owes the
/// remaining tail lanes to the portable rows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill(
    isa: WideIsa,
    s0: &mut [u64],
    s1: &mut [u64],
    s2: &mut [u64],
    s3: &mut [u64],
    ep: Epilogue<'_>,
    clocks: usize,
    k: usize,
    out: &mut [f64],
) -> usize {
    assert!(
        s0.len() >= k && s1.len() >= k && s2.len() >= k && s3.len() >= k,
        "state rows must cover all {k} lanes"
    );
    assert!(out.len() >= clocks * k, "tile must cover clocks x lanes");
    let (biases, sigmas) = match ep {
        Epilogue::Scaled { sigmas } => (&[][..], sigmas),
        Epilogue::Biased { biases, sigmas } => (biases, sigmas),
    };
    assert!(sigmas.len() >= k, "one sigma per lane");
    let biased = matches!(ep, Epilogue::Biased { .. });
    if biased {
        assert!(biases.len() >= k, "one bias per lane");
    }
    match (isa, biased) {
        // SAFETY: `active()` (the only producer of `WideIsa`) confirmed
        // the matching CPU feature at runtime.
        (WideIsa::Avx2, false) => unsafe {
            fill_avx2::<false>(s0, s1, s2, s3, biases, sigmas, clocks, k, out)
        },
        (WideIsa::Avx2, true) => unsafe {
            fill_avx2::<true>(s0, s1, s2, s3, biases, sigmas, clocks, k, out)
        },
        (WideIsa::Avx512, false) => unsafe {
            fill_avx512::<false>(s0, s1, s2, s3, biases, sigmas, clocks, k, out)
        },
        (WideIsa::Avx512, true) => unsafe {
            fill_avx512::<true>(s0, s1, s2, s3, biases, sigmas, clocks, k, out)
        },
    }
}

/// `2^84 + 2^52` — the folding constant of the split-word u64→f64
/// conversion (both powers and their sum are exactly representable).
const HI_FOLD: f64 = ((1u128 << 84) as f64) + ((1u64 << 52) as f64);

/// The scalar epilogue for a replayed lane — must match
/// [`Epilogue::apply`] expression-for-expression.
#[inline(always)]
fn apply_replayed<const BIASED: bool>(biases: &[f64], sigmas: &[f64], lane: usize, z: f64) -> f64 {
    if BIASED {
        biases[lane] + z * sigmas[lane] + 0.0
    } else {
        z * sigmas[lane]
    }
}

/// AVX-512F fill: 8 streams per 512-bit register, mask-register accept.
///
/// One [`fill_avx512_group`] call per 8-lane group: the whole block's
/// clock loop runs with that group's state words pinned in registers.
/// (Interleaving two groups' chains in one clock loop was tried and
/// measured slightly slower — out-of-order execution already overlaps
/// consecutive clocks' gathers, so the extra live state buys nothing.)
///
/// # Safety
///
/// Caller must have verified AVX-512F support ([`active`] does) and
/// that `s0..s3`/`sigmas` (and `biases` when `BIASED`) cover `k` lanes
/// and `out` covers `clocks * k` entries ([`fill`] asserts both).
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn fill_avx512<const BIASED: bool>(
    s0: &mut [u64],
    s1: &mut [u64],
    s2: &mut [u64],
    s3: &mut [u64],
    biases: &[f64],
    sigmas: &[f64],
    clocks: usize,
    k: usize,
    out: &mut [f64],
) -> usize {
    const W: usize = 8;
    let groups = k / W;
    for g in 0..groups {
        // SAFETY: forwarding the caller's contract; lanes
        // `g*W .. (g+1)*W` are within `..k`.
        unsafe {
            fill_avx512_group::<BIASED>(s0, s1, s2, s3, biases, sigmas, clocks, k, out, g * W);
        }
    }
    groups * W
}

/// The AVX-512F clock loop for one 8-lane group starting at `lane0`.
///
/// # Safety
///
/// As [`fill_avx512`], plus `lane0 + 8 <= k`.
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn fill_avx512_group<const BIASED: bool>(
    s0: &mut [u64],
    s1: &mut [u64],
    s2: &mut [u64],
    s3: &mut [u64],
    biases: &[f64],
    sigmas: &[f64],
    clocks: usize,
    k: usize,
    out: &mut [f64],
    lane0: usize,
) {
    const W: usize = 8;
    let xs = ziggurat_xs();
    let xs_ptr: *const f64 = xs.as_ptr();
    let m_layer = _mm512_set1_epi64(ZIGGURAT_LAYERS as i64 - 1);
    let m_sign = _mm512_set1_epi64(ZIGGURAT_LAYERS as i64);
    let m_lo32 = _mm512_set1_epi64(0xFFFF_FFFF);
    let exp52 = _mm512_set1_epi64(0x4330_0000_0000_0000_u64 as i64);
    let exp84 = _mm512_set1_epi64(0x4530_0000_0000_0000_u64 as i64);
    let hi_fold = _mm512_set1_pd(HI_FOLD);
    let scale53 = _mm512_set1_pd(1.0 / (1u64 << 53) as f64);
    let zero = _mm512_setzero_pd();
    let mut rbuf = [0u64; W];
    // SAFETY: lane0 + W <= k and every row covers k lanes.
    let mut v0 = unsafe { _mm512_loadu_epi64(s0.as_ptr().add(lane0).cast()) };
    let mut v1 = unsafe { _mm512_loadu_epi64(s1.as_ptr().add(lane0).cast()) };
    let mut v2 = unsafe { _mm512_loadu_epi64(s2.as_ptr().add(lane0).cast()) };
    let mut v3 = unsafe { _mm512_loadu_epi64(s3.as_ptr().add(lane0).cast()) };
    // SAFETY: sigmas (and biases when BIASED) cover k lanes.
    let sig = unsafe { _mm512_loadu_pd(sigmas.as_ptr().add(lane0)) };
    let bias = if BIASED {
        unsafe { _mm512_loadu_pd(biases.as_ptr().add(lane0)) }
    } else {
        zero
    };
    for n in 0..clocks {
        // xoshiro256++: result = rotl(s0 + s3, 23) + s0, then the
        // state permutation -- all 8 streams per operation.
        let r = _mm512_add_epi64(_mm512_rol_epi64::<23>(_mm512_add_epi64(v0, v3)), v0);
        let t = _mm512_slli_epi64::<17>(v1);
        v2 = _mm512_xor_epi64(v2, v0);
        v3 = _mm512_xor_epi64(v3, v1);
        v1 = _mm512_xor_epi64(v1, v2);
        v0 = _mm512_xor_epi64(v0, v3);
        v2 = _mm512_xor_epi64(v2, t);
        v3 = _mm512_rol_epi64::<45>(v3);
        // Layer lookup: i = bits & 127 indexes the 129-entry boundary
        // table, so both gathers stay in bounds.
        let i = _mm512_and_epi64(r, m_layer);
        // SAFETY: every index is masked to 0..=127, inside the static
        // 129-entry `xs` table; the `xi1` gather reads the same indices
        // off a one-entry-shifted base (i.e. `xs[i + 1]`, at most entry
        // 128).
        let xi = unsafe { _mm512_i64gather_pd::<8>(i, xs_ptr) };
        let xi1 = unsafe { _mm512_i64gather_pd::<8>(i, xs_ptr.add(1)) };
        // u = (bits >> 11) as f64 * 2^-53, conversion exact via the
        // split-word trick: lo 32 bits and hi 21 bits each convert
        // exactly, and their recombination is exact because the sum
        // (< 2^53) is representable.
        let mant = _mm512_srli_epi64::<11>(r);
        let lo = _mm512_and_epi64(mant, m_lo32);
        let hi = _mm512_srli_epi64::<32>(mant);
        let lo_d = _mm512_castsi512_pd(_mm512_or_epi64(lo, exp52));
        let hi_d = _mm512_sub_pd(_mm512_castsi512_pd(_mm512_or_epi64(hi, exp84)), hi_fold);
        let u = _mm512_mul_pd(_mm512_add_pd(hi_d, lo_d), scale53);
        // Candidate, accept mask, branchless sign -- `speculate`
        // lane-parallel.
        let x = _mm512_mul_pd(u, xi);
        let accept = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(x, xi1);
        let sign = _mm512_slli_epi64::<56>(_mm512_and_epi64(r, m_sign));
        let z = _mm512_castsi512_pd(_mm512_or_epi64(_mm512_castpd_si512(x), sign));
        // Fused per-lane scale, stored straight into the tile row.
        let v = if BIASED {
            _mm512_add_pd(_mm512_add_pd(bias, _mm512_mul_pd(z, sig)), zero)
        } else {
            _mm512_mul_pd(z, sig)
        };
        // SAFETY: n < clocks and lane0 + W <= k, so the store ends at
        // or before clocks * k <= out.len().
        unsafe { _mm512_storeu_pd(out.as_mut_ptr().add(n * k + lane0), v) };
        let mut reject = !accept;
        if reject != 0 {
            // Spill the group state, replay exactly the masked lanes
            // through the shared scalar path, reload.
            // SAFETY: same bounds as the loads above.
            unsafe {
                _mm512_storeu_epi64(s0.as_mut_ptr().add(lane0).cast(), v0);
                _mm512_storeu_epi64(s1.as_mut_ptr().add(lane0).cast(), v1);
                _mm512_storeu_epi64(s2.as_mut_ptr().add(lane0).cast(), v2);
                _mm512_storeu_epi64(s3.as_mut_ptr().add(lane0).cast(), v3);
                _mm512_storeu_epi64(rbuf.as_mut_ptr().cast(), r);
            }
            while reject != 0 {
                let j = reject.trailing_zeros() as usize;
                reject &= reject - 1;
                let lane = lane0 + j;
                let zr = replay_slot(
                    &mut s0[lane],
                    &mut s1[lane],
                    &mut s2[lane],
                    &mut s3[lane],
                    rbuf[j],
                );
                out[n * k + lane] = apply_replayed::<BIASED>(biases, sigmas, lane, zr);
            }
            // SAFETY: same bounds as the loads above.
            v0 = unsafe { _mm512_loadu_epi64(s0.as_ptr().add(lane0).cast()) };
            v1 = unsafe { _mm512_loadu_epi64(s1.as_ptr().add(lane0).cast()) };
            v2 = unsafe { _mm512_loadu_epi64(s2.as_ptr().add(lane0).cast()) };
            v3 = unsafe { _mm512_loadu_epi64(s3.as_ptr().add(lane0).cast()) };
        }
    }
    // SAFETY: same bounds as the loads above.
    unsafe {
        _mm512_storeu_epi64(s0.as_mut_ptr().add(lane0).cast(), v0);
        _mm512_storeu_epi64(s1.as_mut_ptr().add(lane0).cast(), v1);
        _mm512_storeu_epi64(s2.as_mut_ptr().add(lane0).cast(), v2);
        _mm512_storeu_epi64(s3.as_mut_ptr().add(lane0).cast(), v3);
    }
}

/// AVX2 fill: 4 streams per 256-bit register, `movemask` accept.
///
/// # Safety
///
/// Caller must have verified AVX2 support ([`active`] does) and the
/// same slice bounds as [`fill_avx512`].
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn fill_avx2<const BIASED: bool>(
    s0: &mut [u64],
    s1: &mut [u64],
    s2: &mut [u64],
    s3: &mut [u64],
    biases: &[f64],
    sigmas: &[f64],
    clocks: usize,
    k: usize,
    out: &mut [f64],
) -> usize {
    const W: usize = 4;
    let xs = ziggurat_xs();
    let groups = k / W;
    let m_layer = _mm256_set1_epi64x(ZIGGURAT_LAYERS as i64 - 1);
    let m_sign = _mm256_set1_epi64x(ZIGGURAT_LAYERS as i64);
    let m_lo32 = _mm256_set1_epi64x(0xFFFF_FFFF);
    let exp52 = _mm256_set1_epi64x(0x4330_0000_0000_0000_u64 as i64);
    let exp84 = _mm256_set1_epi64x(0x4530_0000_0000_0000_u64 as i64);
    let hi_fold = _mm256_set1_pd(HI_FOLD);
    let scale53 = _mm256_set1_pd(1.0 / (1u64 << 53) as f64);
    let zero = _mm256_setzero_pd();
    // AVX2 has no vector rotate: rotl(x, N) = (x << N) | (x >> 64-N).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn rotl<const N: i32, const INV: i32>(x: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi64::<N>(x), _mm256_srli_epi64::<INV>(x))
    }
    let mut rbuf = [0u64; W];
    for g in 0..groups {
        let lane0 = g * W;
        // SAFETY: lane0 + W <= k and every row covers k lanes.
        let mut v0 = unsafe { _mm256_loadu_si256(s0.as_ptr().add(lane0).cast()) };
        let mut v1 = unsafe { _mm256_loadu_si256(s1.as_ptr().add(lane0).cast()) };
        let mut v2 = unsafe { _mm256_loadu_si256(s2.as_ptr().add(lane0).cast()) };
        let mut v3 = unsafe { _mm256_loadu_si256(s3.as_ptr().add(lane0).cast()) };
        // SAFETY: sigmas (and biases when BIASED) cover k lanes.
        let sig = unsafe { _mm256_loadu_pd(sigmas.as_ptr().add(lane0)) };
        let bias = if BIASED {
            unsafe { _mm256_loadu_pd(biases.as_ptr().add(lane0)) }
        } else {
            zero
        };
        for n in 0..clocks {
            let r = _mm256_add_epi64(rotl::<23, 41>(_mm256_add_epi64(v0, v3)), v0);
            let t = _mm256_slli_epi64::<17>(v1);
            v2 = _mm256_xor_si256(v2, v0);
            v3 = _mm256_xor_si256(v3, v1);
            v1 = _mm256_xor_si256(v1, v2);
            v0 = _mm256_xor_si256(v0, v3);
            v2 = _mm256_xor_si256(v2, t);
            v3 = rotl::<45, 19>(v3);
            let i = _mm256_and_si256(r, m_layer);
            // SAFETY: every index is masked to 0..=127, inside the
            // static 129-entry `xs` table; the `xi1` gather reads the
            // same indices off a one-entry-shifted base (`xs[i + 1]`,
            // at most entry 128).
            let xi = unsafe { _mm256_i64gather_pd::<8>(xs.as_ptr(), i) };
            let xi1 = unsafe { _mm256_i64gather_pd::<8>(xs.as_ptr().add(1), i) };
            let mant = _mm256_srli_epi64::<11>(r);
            let lo = _mm256_and_si256(mant, m_lo32);
            let hi = _mm256_srli_epi64::<32>(mant);
            let lo_d = _mm256_castsi256_pd(_mm256_or_si256(lo, exp52));
            let hi_d = _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(hi, exp84)), hi_fold);
            let u = _mm256_mul_pd(_mm256_add_pd(hi_d, lo_d), scale53);
            let x = _mm256_mul_pd(u, xi);
            let accept = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(x, xi1)) as u32;
            let sign = _mm256_slli_epi64::<56>(_mm256_and_si256(r, m_sign));
            let z = _mm256_castsi256_pd(_mm256_or_si256(_mm256_castpd_si256(x), sign));
            let v = if BIASED {
                _mm256_add_pd(_mm256_add_pd(bias, _mm256_mul_pd(z, sig)), zero)
            } else {
                _mm256_mul_pd(z, sig)
            };
            // SAFETY: n < clocks and lane0 + W <= k, so the store ends
            // at or before clocks * k <= out.len().
            unsafe { _mm256_storeu_pd(out.as_mut_ptr().add(n * k + lane0), v) };
            let mut reject = !accept & 0xF;
            if reject != 0 {
                // SAFETY: same bounds as the loads above.
                unsafe {
                    _mm256_storeu_si256(s0.as_mut_ptr().add(lane0).cast(), v0);
                    _mm256_storeu_si256(s1.as_mut_ptr().add(lane0).cast(), v1);
                    _mm256_storeu_si256(s2.as_mut_ptr().add(lane0).cast(), v2);
                    _mm256_storeu_si256(s3.as_mut_ptr().add(lane0).cast(), v3);
                    _mm256_storeu_si256(rbuf.as_mut_ptr().cast(), r);
                }
                while reject != 0 {
                    let j = reject.trailing_zeros() as usize;
                    reject &= reject - 1;
                    let lane = lane0 + j;
                    let zr = replay_slot(
                        &mut s0[lane],
                        &mut s1[lane],
                        &mut s2[lane],
                        &mut s3[lane],
                        rbuf[j],
                    );
                    out[n * k + lane] = apply_replayed::<BIASED>(biases, sigmas, lane, zr);
                }
                // SAFETY: same bounds as the loads above.
                v0 = unsafe { _mm256_loadu_si256(s0.as_ptr().add(lane0).cast()) };
                v1 = unsafe { _mm256_loadu_si256(s1.as_ptr().add(lane0).cast()) };
                v2 = unsafe { _mm256_loadu_si256(s2.as_ptr().add(lane0).cast()) };
                v3 = unsafe { _mm256_loadu_si256(s3.as_ptr().add(lane0).cast()) };
            }
        }
        // SAFETY: same bounds as the loads above.
        unsafe {
            _mm256_storeu_si256(s0.as_mut_ptr().add(lane0).cast(), v0);
            _mm256_storeu_si256(s1.as_mut_ptr().add(lane0).cast(), v1);
            _mm256_storeu_si256(s2.as_mut_ptr().add(lane0).cast(), v2);
            _mm256_storeu_si256(s3.as_mut_ptr().add(lane0).cast(), v3);
        }
    }
    groups * W
}

//! Error type for the analog readout substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the switched-capacitor readout models.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalogError {
    /// A circuit parameter was non-physical or out of its supported range.
    InvalidParameter(String),
    /// A mux channel outside the array was selected.
    ChannelOutOfRange {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Mux rows.
        rows: usize,
        /// Mux columns.
        cols: usize,
    },
}

impl fmt::Display for AnalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalogError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            AnalogError::ChannelOutOfRange {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "mux channel ({row}, {col}) out of range for {rows}x{cols} array"
            ),
        }
    }
}

impl Error for AnalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(AnalogError::InvalidParameter("gain".into())
            .to_string()
            .contains("gain"));
        let e = AnalogError::ChannelOutOfRange {
            row: 3,
            col: 1,
            rows: 2,
            cols: 2,
        };
        assert!(e.to_string().contains("(3, 1)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalogError>();
    }
}

//! The single-bit feedback DAC of the ΣΔ loop.
//!
//! A 1-bit DAC is *inherently linear* — its two levels always define a
//! straight line — which is the main reason single-bit ΣΔ modulators
//! (like the paper's) are robust against element mismatch. The residual
//! error mechanisms modeled here are:
//!
//! * **level mismatch** — the positive reference charge differs from the
//!   negative one by a relative ε; alone this is only a gain/offset
//!   error;
//! * **inter-symbol interference (ISI)** — on a bit *transition* the
//!   reference has less time to settle and part of the feedback charge is
//!   lost. A *symmetric* loss (equal on rising and falling edges) is
//!   first-differenced by the bitstream algebra and therefore noise-shaped
//!   out of band; the damaging, classic mechanism is **rise/fall
//!   asymmetry**, whose error tracks the transition density — a
//!   signal-dependent, in-band distortion (the reason return-to-zero DAC
//!   coding exists). The model applies the loss to rising transitions
//!   only, i.e. it represents the asymmetric part;
//! * **reference noise** — thermal/supply noise on Vref multiplies the
//!   fed-back charge.

use crate::noise::NoiseSource;

/// Behavioral single-bit feedback DAC.
#[derive(Debug, Clone)]
pub struct FeedbackDac {
    /// Relative positive-level error.
    pub(crate) level_mismatch: f64,
    /// Fraction of feedback charge lost on a *rising* transition (the
    /// asymmetric part of the settling error).
    pub(crate) isi: f64,
    /// Reference-noise sigma per clock (relative).
    pub(crate) reference_noise_sigma: f64,
    pub(crate) noise: NoiseSource,
    pub(crate) last_bit: i8,
}

impl FeedbackDac {
    /// Creates the DAC.
    ///
    /// # Panics
    ///
    /// Panics when `isi` or `reference_noise_sigma` is negative (user
    /// input is validated in
    /// [`crate::nonideal::NonIdealities::validate`]).
    pub fn new(
        level_mismatch: f64,
        isi: f64,
        reference_noise_sigma: f64,
        noise: NoiseSource,
    ) -> Self {
        assert!(isi >= 0.0, "ISI must be non-negative");
        assert!(
            reference_noise_sigma >= 0.0,
            "reference noise must be non-negative"
        );
        FeedbackDac {
            level_mismatch,
            isi,
            reference_noise_sigma,
            noise,
            last_bit: 1,
        }
    }

    /// An ideal ±1 DAC.
    pub fn ideal() -> Self {
        FeedbackDac::new(0.0, 0.0, 0.0, NoiseSource::from_seed(0))
    }

    /// Converts the comparator decision into the analog feedback value
    /// for this clock.
    pub fn convert(&mut self, bit: i8) -> f64 {
        let nominal = f64::from(bit);
        // Level mismatch affects the positive level only (the relative
        // definition; splitting it differently is the same line).
        let mut v = if bit > 0 {
            nominal * (1.0 + self.level_mismatch)
        } else {
            nominal
        };
        if bit > self.last_bit {
            // Rising transition only: the asymmetric settling loss.
            v *= 1.0 - self.isi;
        }
        self.last_bit = bit;
        v * (1.0 + self.noise.gaussian(self.reference_noise_sigma))
    }

    /// Resets the transition history.
    pub fn reset(&mut self) {
        self.last_bit = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_dac_is_exact() {
        let mut dac = FeedbackDac::ideal();
        assert_eq!(dac.convert(1), 1.0);
        assert_eq!(dac.convert(-1), -1.0);
        assert_eq!(dac.convert(-1), -1.0);
        assert_eq!(dac.convert(1), 1.0);
    }

    #[test]
    fn level_mismatch_scales_only_the_positive_level() {
        let mut dac = FeedbackDac::new(0.01, 0.0, 0.0, NoiseSource::from_seed(0));
        assert!((dac.convert(1) - 1.01).abs() < 1e-15);
        assert_eq!(dac.convert(-1), -1.0);
    }

    #[test]
    fn isi_applies_only_on_rising_transitions() {
        let mut dac = FeedbackDac::new(0.0, 0.1, 0.0, NoiseSource::from_seed(0));
        // Initial history is +1: a +1 output is not a transition.
        assert_eq!(dac.convert(1), 1.0);
        // Falling transition: full charge (the symmetric part is modeled
        // as absorbed in the nominal level).
        assert_eq!(dac.convert(-1), -1.0);
        // Holding -1: full charge.
        assert_eq!(dac.convert(-1), -1.0);
        // Rising transition: reduced charge.
        assert!((dac.convert(1) - 0.9).abs() < 1e-15);
        // Holding +1 again: full charge.
        assert_eq!(dac.convert(1), 1.0);
    }

    #[test]
    fn reference_noise_is_multiplicative_and_seeded() {
        let mut a = FeedbackDac::new(0.0, 0.0, 0.01, NoiseSource::from_seed(3));
        let mut b = FeedbackDac::new(0.0, 0.0, 0.01, NoiseSource::from_seed(3));
        for i in 0..100 {
            let bit = if i % 3 == 0 { 1 } else { -1 };
            let va = a.convert(bit);
            assert_eq!(va, b.convert(bit));
            assert!((va.abs() - 1.0).abs() < 0.1, "noise is small and relative");
        }
    }

    #[test]
    fn reset_clears_transition_history() {
        let mut dac = FeedbackDac::new(0.0, 0.2, 0.0, NoiseSource::from_seed(0));
        let _ = dac.convert(-1);
        dac.reset();
        // History is +1 again: +1 is not a rising transition.
        assert_eq!(dac.convert(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "ISI")]
    fn negative_isi_panics() {
        let _ = FeedbackDac::new(0.0, -0.1, 0.0, NoiseSource::from_seed(0));
    }
}

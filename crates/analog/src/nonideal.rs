//! Aggregated non-ideality configuration of the readout chain.
//!
//! [`NonIdealities`] gathers every analog impairment knob in one builder
//! so experiments can sweep them individually (ablation A3 in DESIGN.md):
//! finite op-amp DC gain, integrator output saturation, input-referred
//! sampled noise (kT/C plus switch/op-amp thermal), comparator offset and
//! hysteresis, and clock jitter.
//!
//! Two presets matter:
//!
//! * [`NonIdealities::ideal`] — the textbook modulator, used to verify
//!   noise-shaping math against theory;
//! * [`NonIdealities::typical`] — calibrated so the full chain's measured
//!   SNR lands in the paper's "better than 72 dB" band once the 12-bit
//!   output quantizer is applied (the dominant limit, as in the paper
//!   where the output resolution *is* 12 bit).

use crate::noise::{ktc_noise_rms, ROOM_TEMPERATURE_K};
use crate::AnalogError;

/// Non-ideality parameters of the SC ΣΔ readout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonIdealities {
    /// Op-amp DC gain (V/V); `f64::INFINITY` for an ideal integrator.
    pub opamp_dc_gain: f64,
    /// Integrator output saturation in full-scale units.
    pub integrator_saturation: f64,
    /// Input-referred sampled noise sigma per clock, in full-scale units
    /// (kT/C + switch + op-amp thermal, all lumped).
    pub input_noise_sigma: f64,
    /// Comparator offset in full-scale units.
    pub comparator_offset: f64,
    /// Comparator hysteresis half-width in full-scale units.
    pub comparator_hysteresis: f64,
    /// Clock-jitter-induced error gain: multiplies the per-sample input
    /// slew (`u[n] − u[n−1]`), i.e. `t_jitter · fs`.
    pub jitter_slew_gain: f64,
    /// Relative error of the 1-bit DAC's positive level versus the
    /// negative one. A single-bit DAC is inherently *linear* (two levels
    /// define a line), so this produces only gain/offset error — but it
    /// interacts with ISI below.
    pub dac_level_mismatch: f64,
    /// Inter-symbol interference of the DAC: fraction of the feedback
    /// charge lost whenever the output bit *transitions* (incomplete
    /// reference settling). Signal-dependent, hence a true distortion
    /// mechanism even for a 1-bit DAC.
    pub dac_isi: f64,
    /// Reference-voltage noise sigma per clock, in full-scale units
    /// (multiplies the DAC feedback).
    pub reference_noise_sigma: f64,
    /// RNG seed for all noise streams.
    pub seed: u64,
}

impl NonIdealities {
    /// The textbook modulator: no noise, no leak, generous saturation.
    pub fn ideal() -> Self {
        NonIdealities {
            opamp_dc_gain: f64::INFINITY,
            integrator_saturation: 8.0,
            input_noise_sigma: 0.0,
            comparator_offset: 0.0,
            comparator_hysteresis: 0.0,
            jitter_slew_gain: 0.0,
            dac_level_mismatch: 0.0,
            dac_isi: 0.0,
            reference_noise_sigma: 0.0,
            seed: 0,
        }
    }

    /// Impairments typical of a 0.8 µm 5 V SC design: 72 dB op-amp gain,
    /// ±4 FS integrator swing, input noise from ~0.5 pF effective
    /// sampling capacitance referred to a 2.5 V reference plus op-amp
    /// thermal noise, 2 mV-scale comparator offset, small hysteresis, and
    /// 100 ps-class clock jitter at 128 kHz.
    pub fn typical() -> Self {
        // kT/C of 0.5 pF at 300 K ≈ 91 µV; referred to a 2.5 V full scale
        // ≈ 3.6e-5. Switch and op-amp noise dominate: lump to 3e-4 FS.
        let ktc = ktc_noise_rms(0.5e-12, ROOM_TEMPERATURE_K) / 2.5;
        NonIdealities {
            opamp_dc_gain: 4000.0,
            integrator_saturation: 4.0,
            input_noise_sigma: ktc + 2.6e-4,
            comparator_offset: 8e-4,
            comparator_hysteresis: 2e-4,
            jitter_slew_gain: 100e-12 * 128_000.0,
            dac_level_mismatch: 1e-3,
            dac_isi: 1e-4,
            reference_noise_sigma: 5e-5,
            seed: 0x5EED,
        }
    }

    /// Replaces the RNG seed (chainable).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the input-referred noise sigma (chainable).
    pub fn with_input_noise(mut self, sigma: f64) -> Self {
        self.input_noise_sigma = sigma;
        self
    }

    /// Replaces the op-amp DC gain (chainable).
    pub fn with_opamp_gain(mut self, gain: f64) -> Self {
        self.opamp_dc_gain = gain;
        self
    }

    /// Replaces the comparator offset (chainable).
    pub fn with_comparator_offset(mut self, offset: f64) -> Self {
        self.comparator_offset = offset;
        self
    }

    /// Replaces the comparator hysteresis (chainable).
    pub fn with_comparator_hysteresis(mut self, hysteresis: f64) -> Self {
        self.comparator_hysteresis = hysteresis;
        self
    }

    /// Replaces the integrator saturation level (chainable).
    pub fn with_integrator_saturation(mut self, sat: f64) -> Self {
        self.integrator_saturation = sat;
        self
    }

    /// Replaces the jitter slew gain (chainable).
    pub fn with_jitter_slew_gain(mut self, gain: f64) -> Self {
        self.jitter_slew_gain = gain;
        self
    }

    /// Replaces the DAC level mismatch (chainable).
    pub fn with_dac_level_mismatch(mut self, mismatch: f64) -> Self {
        self.dac_level_mismatch = mismatch;
        self
    }

    /// Replaces the DAC inter-symbol interference (chainable).
    pub fn with_dac_isi(mut self, isi: f64) -> Self {
        self.dac_isi = isi;
        self
    }

    /// Replaces the reference noise sigma (chainable).
    pub fn with_reference_noise(mut self, sigma: f64) -> Self {
        self.reference_noise_sigma = sigma;
        self
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for non-positive gain or
    /// saturation, or negative noise magnitudes.
    pub fn validate(&self) -> Result<(), AnalogError> {
        if !(self.opamp_dc_gain > 1.0) {
            return Err(AnalogError::InvalidParameter(format!(
                "op-amp DC gain {} must exceed 1",
                self.opamp_dc_gain
            )));
        }
        if !(self.integrator_saturation > 0.0) {
            return Err(AnalogError::InvalidParameter(
                "integrator saturation must be positive".into(),
            ));
        }
        for (name, v) in [
            ("input noise sigma", self.input_noise_sigma),
            ("comparator hysteresis", self.comparator_hysteresis),
            ("jitter slew gain", self.jitter_slew_gain),
            ("DAC ISI", self.dac_isi),
            ("reference noise sigma", self.reference_noise_sigma),
        ] {
            if v < 0.0 || !v.is_finite() {
                return Err(AnalogError::InvalidParameter(format!(
                    "{name} {v} must be finite and non-negative"
                )));
            }
        }
        if !self.comparator_offset.is_finite() {
            return Err(AnalogError::InvalidParameter(
                "comparator offset must be finite".into(),
            ));
        }
        if !self.dac_level_mismatch.is_finite() || self.dac_level_mismatch.abs() >= 0.5 {
            return Err(AnalogError::InvalidParameter(format!(
                "DAC level mismatch {} must be finite and |mismatch| < 0.5",
                self.dac_level_mismatch
            )));
        }
        Ok(())
    }
}

impl Default for NonIdealities {
    fn default() -> Self {
        NonIdealities::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        NonIdealities::ideal().validate().unwrap();
        NonIdealities::typical().validate().unwrap();
    }

    #[test]
    fn typical_noise_is_sub_millivolt_scale() {
        let n = NonIdealities::typical();
        assert!(n.input_noise_sigma > 1e-5 && n.input_noise_sigma < 1e-3);
        assert!(n.opamp_dc_gain >= 1000.0, "72 dB-class gain expected");
    }

    #[test]
    fn builder_methods_chain() {
        let n = NonIdealities::ideal()
            .with_seed(9)
            .with_input_noise(1e-4)
            .with_opamp_gain(500.0)
            .with_comparator_offset(-1e-3)
            .with_comparator_hysteresis(5e-4)
            .with_integrator_saturation(2.0)
            .with_jitter_slew_gain(1e-6);
        assert_eq!(n.seed, 9);
        assert_eq!(n.input_noise_sigma, 1e-4);
        assert_eq!(n.opamp_dc_gain, 500.0);
        assert_eq!(n.comparator_offset, -1e-3);
        assert_eq!(n.comparator_hysteresis, 5e-4);
        assert_eq!(n.integrator_saturation, 2.0);
        assert_eq!(n.jitter_slew_gain, 1e-6);
        n.validate().unwrap();
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(NonIdealities::ideal()
            .with_opamp_gain(0.5)
            .validate()
            .is_err());
        assert!(NonIdealities::ideal()
            .with_integrator_saturation(0.0)
            .validate()
            .is_err());
        assert!(NonIdealities::ideal()
            .with_input_noise(-1.0)
            .validate()
            .is_err());
        assert!(NonIdealities::ideal()
            .with_comparator_hysteresis(-1e-3)
            .validate()
            .is_err());
        assert!(NonIdealities::ideal()
            .with_comparator_offset(f64::NAN)
            .validate()
            .is_err());
        assert!(NonIdealities::ideal()
            .with_jitter_slew_gain(f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn default_is_typical() {
        assert_eq!(NonIdealities::default(), NonIdealities::typical());
    }
}

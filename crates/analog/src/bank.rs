//! Tiled structure-of-arrays **lane bank** for the 2nd-order ΣΔ
//! modulator: K independent converter sessions stepped per clock in
//! lockstep.
//!
//! Array-scale CMOS readout gets its throughput from running many
//! identical channels in parallel; the software analogue is data-level
//! parallelism. [`SigmaDelta2Bank`] holds the loop-filter state of K
//! independent [`SigmaDelta2`] instances as fixed-width **lane tiles**
//! — cache-line-aligned rows of [`TILE`] f64 lanes (see
//! [`crate::tile`]) — and converts blocks in 64-clock **chunks**:
//! within a chunk the loop runs tile-outer/clock-inner, so each tile's
//! integrator states, coefficient rows, and ±1 histories stay in
//! registers for 64 consecutive clocks instead of streaming through
//! memory once per clock.
//!
//! The 1-bit side is **bit-sliced**: comparator decisions and
//! feedback-DAC selects live as packed lane masks (a `u8` per tile in
//! flight, one `u64` word per 64 lanes at rest in the bank), and each
//! clock of a chunk deposits its per-lane comparator bits into one
//! `u64` *lane word* — quantize/feedback is word-parallel mask
//! arithmetic, the same trick [`PackedBits`]' `push_word` plays for
//! the CIC. At the chunk boundary a 64×64 bit transpose
//! ([`tonos_dsp::bits::transpose64`]) pivots the per-clock lane words
//! into per-lane time words, which flush straight into each lane's
//! [`PackedBits`].
//!
//! Full tiles step through `step_tile` — the explicit
//! wide-ops kernel under `--features wide-lanes`, the portable scalar
//! tile loop otherwise. The final partial tile (K mod [`TILE`] lanes)
//! always steps scalar, so padding lanes never execute.
//!
//! ## Scalar path as the oracle
//!
//! The bank is an *execution strategy*, never a different model: every
//! lane's bitstream, loop-filter state, and noise-stream positions are
//! **bit-identical** to a scalar [`SigmaDelta2`] with the same seed fed
//! the same inputs (property-tested across random K, seeds, and block
//! boundaries, with and without `wide-lanes`). This holds because every
//! noise consumer owns an independent split stream, so per-lane
//! pre-filling (batched ziggurat draws into a lanes×block noise tile
//! via [`NoiseSource::fill_standard`]) consumes each stream in exactly
//! the per-sample order of the scalar path, and the per-clock
//! arithmetic reproduces the scalar expressions
//! association-for-association.
//!
//! Lanes are absorbed from and released back to scalar modulators
//! ([`SigmaDelta2Bank::push_lane`] / [`SigmaDelta2Bank::retire_lane`]),
//! so sessions can join late, finish early, or be reset mid-run without
//! disturbing the neighbours' streams.

use tonos_dsp::bits::{transpose64, PackedBits};

use crate::dac::FeedbackDac;
use crate::integrator::ScIntegrator;
use crate::modulator::{Coefficients, SigmaDelta2};
use crate::noise::{LockstepFill, NoiseSource};
use crate::nonideal::NonIdealities;
use crate::quantizer::Comparator;
use crate::tile::{step_lane, step_tile, BitRow, F64Tile, TileConsts, TileRow, TileRows, TILE};

/// One lane's input for a block conversion.
///
/// The settled readout mux holds a constant modulator input for a whole
/// output frame — the common case, and the one the bank's pre-fill fast
/// path exploits (jitter vanishes after the first clock because the
/// per-sample slew is zero). A still-settling mux produces a per-clock
/// transient, supplied as explicit samples.
#[derive(Debug, Clone, Copy)]
pub enum LaneInput<'a> {
    /// The input is held at this value for every clock of the block.
    Constant(f64),
    /// One explicit input sample per clock (length must equal the block
    /// size).
    Samples(&'a [f64]),
}

/// Per-lane cold state: the split noise streams and configuration that
/// the per-clock loop does not touch.
#[derive(Debug, Clone)]
struct LaneCold {
    n1: NoiseSource,
    n2: NoiseSource,
    nc: NoiseSource,
    nd: NoiseSource,
    input_noise: NoiseSource,
    coeffs: Coefficients,
    nonideal: NonIdealities,
}

/// Reusable block scratch for a [`SigmaDelta2Bank`]: the clock-major
/// noise/input tiles, the per-chunk lane-word buffer, and the lockstep
/// ziggurat fill state.
///
/// The scratch is allocation-free once warm, and it is *detachable*:
/// [`SigmaDelta2Bank::take_scratch`] /
/// [`SigmaDelta2Bank::adopt_scratch`] move it between banks so a fleet
/// worker can pre-fill once and reuse the grown tiles across every
/// batch it runs, instead of re-growing per session group.
#[derive(Debug, Clone, Default)]
pub struct BankScratch {
    /// Noisy modulator inputs `u[n]` per lane (clock-major: `n*K +
    /// lane`).
    u_tile: Vec<f64>,
    /// Pre-multiplied first-integrator noise (`standard * sigma`).
    z1_tile: Vec<f64>,
    /// Pre-multiplied second-integrator noise.
    z2_tile: Vec<f64>,
    /// Pre-multiplied comparator noise.
    zc_tile: Vec<f64>,
    /// Pre-multiplied DAC reference noise.
    zr_tile: Vec<f64>,
    /// Contiguous per-lane fill scratch.
    row: Vec<f64>,
    /// Per-chunk lane words: for each 64-lane group, 64 words — word
    /// `r` holds every lane's comparator bit for clock `r` of the
    /// chunk. Transposed in place to per-lane time words at the chunk
    /// boundary.
    clock_rows: Vec<u64>,
    /// One k-length row of exact 0.0 standing in for all-zero tiles.
    zero_row: Vec<f64>,
    /// Lockstep multi-stream ziggurat scratch: when every lane of a
    /// tile is noisy, all K streams advance side by side instead of one
    /// lane at a time (see [`LockstepFill`]).
    fill: LockstepFill,
}

/// Strided reader over a clock-major tile: row `n` starts at
/// `n * stride`. An all-zero noise tile aliases the shared zero row
/// with stride 0, so dead tiles cost one cache line regardless of the
/// block length.
#[derive(Clone, Copy)]
struct RowSrc<'a> {
    data: &'a [f64],
    stride: usize,
}

impl<'a> RowSrc<'a> {
    fn new(tile: &'a [f64], zero_row: &'a [f64], dead: bool, stride: usize) -> Self {
        if dead {
            RowSrc {
                data: zero_row,
                stride: 0,
            }
        } else {
            RowSrc { data: tile, stride }
        }
    }

    /// The aligned copy of lanes `lane0..lane0+TILE` at clock `n`.
    #[inline(always)]
    fn tile(&self, n: usize, lane0: usize) -> F64Tile {
        let base = n * self.stride + lane0;
        F64Tile::from_row(self.data[base..base + TILE].try_into().expect("full tile"))
    }

    /// One lane's value at clock `n`.
    #[inline(always)]
    fn at(&self, n: usize, lane: usize) -> f64 {
        self.data[n * self.stride + lane]
    }
}

/// The per-chunk row sources shared by every tile of a chunk.
#[derive(Clone, Copy)]
struct ChunkSrc<'a> {
    u: RowSrc<'a>,
    z1: RowSrc<'a>,
    z2: RowSrc<'a>,
    zc: RowSrc<'a>,
    zr: RowSrc<'a>,
    /// First clock of the chunk.
    start: usize,
}

/// One full tile through one ≤64-clock chunk: state stays in the caller
/// provided locals (registers), each clock's comparator byte lands in
/// the chunk's per-clock lane word at `shift`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile_chunk_body(
    x1: &mut F64Tile,
    x2: &mut F64Tile,
    cl: &mut u8,
    dl: &mut u8,
    sat: &mut [u64; TILE],
    consts: &TileConsts,
    src: &ChunkSrc,
    lane0: usize,
    shift: u32,
    out: &mut [u64],
) {
    for (r, out_word) in out.iter_mut().enumerate() {
        let n = src.start + r;
        let rows = TileRows {
            u: src.u.tile(n, lane0),
            z1: src.z1.tile(n, lane0),
            z2: src.z2.tile(n, lane0),
            zc: src.zc.tile(n, lane0),
            zr: src.zr.tile(n, lane0),
        };
        let (vpos8, sat8) = step_tile(x1, x2, consts, &rows, *cl, *dl);
        *cl = vpos8;
        *dl = vpos8;
        *out_word |= u64::from(vpos8) << shift;
        for (i, acc) in sat.iter_mut().enumerate() {
            *acc += u64::from(sat8 >> i & 1);
        }
    }
}

/// Baseline-ISA instantiation of the chunk kernel (always present; the
/// only one on non-x86 or without `wide-lanes`).
#[allow(clippy::too_many_arguments)]
fn tile_chunk_portable(
    x1: &mut F64Tile,
    x2: &mut F64Tile,
    cl: &mut u8,
    dl: &mut u8,
    sat: &mut [u64; TILE],
    consts: &TileConsts,
    src: &ChunkSrc,
    lane0: usize,
    shift: u32,
    out: &mut [u64],
) {
    tile_chunk_body(x1, x2, cl, dl, sat, consts, src, lane0, shift, out);
}

/// AVX2 instantiation: identical Rust body, recompiled with 256-bit
/// vector codegen. Bit-identical results — the body is plain IEEE
/// adds/muls/compares/selects and Rust never contracts them into FMAs,
/// so wider registers change scheduling only, never values.
///
/// # Safety
///
/// Caller must have verified AVX2 support (the [`Isa`] dispatch does).
#[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_chunk_avx2(
    x1: &mut F64Tile,
    x2: &mut F64Tile,
    cl: &mut u8,
    dl: &mut u8,
    sat: &mut [u64; TILE],
    consts: &TileConsts,
    src: &ChunkSrc,
    lane0: usize,
    shift: u32,
    out: &mut [u64],
) {
    tile_chunk_body(x1, x2, cl, dl, sat, consts, src, lane0, shift, out);
}

/// AVX-512F instantiation: one 8-lane tile per zmm register.
///
/// # Safety
///
/// Caller must have verified AVX-512F support (the [`Isa`] dispatch
/// does).
#[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_chunk_avx512(
    x1: &mut F64Tile,
    x2: &mut F64Tile,
    cl: &mut u8,
    dl: &mut u8,
    sat: &mut [u64; TILE],
    consts: &TileConsts,
    src: &ChunkSrc,
    lane0: usize,
    shift: u32,
    out: &mut [u64],
) {
    tile_chunk_body(x1, x2, cl, dl, sat, consts, src, lane0, shift, out);
}

/// Which instantiation of the chunk kernel this process runs, resolved
/// once per block from runtime CPU detection (`wide-lanes` on x86-64)
/// or fixed to the portable body elsewhere.
#[derive(Clone, Copy, Debug)]
enum Isa {
    Portable,
    #[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
    Avx2,
    #[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
    Avx512,
}

impl Isa {
    fn detect() -> Isa {
        #[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
        {
            use crate::kernel::ForcedKernel;
            let avx2 = std::arch::is_x86_feature_detected!("avx2");
            let avx512 = std::arch::is_x86_feature_detected!("avx512f");
            // `TONOS_FORCE_KERNEL` pins the choice; forcing an ISA the
            // CPU lacks falls back to the normal probe (never unsound).
            match crate::kernel::forced_kernel() {
                Some(ForcedKernel::Scalar) => return Isa::Portable,
                Some(ForcedKernel::Avx2) if avx2 => return Isa::Avx2,
                Some(ForcedKernel::Avx512) if avx512 => return Isa::Avx512,
                _ => {}
            }
            if avx512 {
                return Isa::Avx512;
            }
            if avx2 {
                return Isa::Avx2;
            }
        }
        Isa::Portable
    }

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn run_tile_chunk(
        self,
        x1: &mut F64Tile,
        x2: &mut F64Tile,
        cl: &mut u8,
        dl: &mut u8,
        sat: &mut [u64; TILE],
        consts: &TileConsts,
        src: &ChunkSrc,
        lane0: usize,
        shift: u32,
        out: &mut [u64],
    ) {
        match self {
            Isa::Portable => {
                tile_chunk_portable(x1, x2, cl, dl, sat, consts, src, lane0, shift, out)
            }
            // SAFETY: the variant only exists when `detect` confirmed
            // the feature on this CPU.
            #[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
            Isa::Avx2 => unsafe {
                tile_chunk_avx2(x1, x2, cl, dl, sat, consts, src, lane0, shift, out);
            },
            #[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
            Isa::Avx512 => unsafe {
                tile_chunk_avx512(x1, x2, cl, dl, sat, consts, src, lane0, shift, out);
            },
        }
    }
}

/// The tile kernel this build+host actually steps full tiles with —
/// benchmarks record it next to their numbers. `"scalar-tile"` without
/// `wide-lanes`; with it, `"wide-avx512f"` / `"wide-avx2"` /
/// `"wide-portable"` by runtime CPU detection.
pub fn kernel_name() -> &'static str {
    if !crate::tile::wide_lanes() {
        return "scalar-tile";
    }
    match Isa::detect() {
        Isa::Portable => "wide-portable",
        #[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
        Isa::Avx2 => "wide-avx2",
        #[cfg(all(feature = "wide-lanes", target_arch = "x86_64"))]
        Isa::Avx512 => "wide-avx512f",
    }
}

/// K second-order ΣΔ modulators in tiled structure-of-arrays form,
/// stepped in lockstep one clock at a time.
#[derive(Debug, Clone, Default)]
pub struct SigmaDelta2Bank {
    // --- Hot per-lane state the per-clock kernel touches, stored as
    // --- aligned 8-lane tiles. ---
    /// First integrator state.
    x1: TileRow,
    /// Second integrator state.
    x2: TileRow,
    /// Integrator pole `p = A/(A+1)` (shared by both stages).
    leak: TileRow,
    /// Integrator output clamp.
    sat: TileRow,
    comp_offset: TileRow,
    comp_hyst: TileRow,
    dac_mismatch: TileRow,
    dac_isi: TileRow,
    b1: TileRow,
    a1: TileRow,
    c1: TileRow,
    a2: TileRow,
    /// Previous comparator decisions, bit-sliced: bit set ⇔ last was
    /// +1.
    comp_last: BitRow,
    /// Previous DAC bits, bit-sliced likewise.
    dac_last: BitRow,
    // --- Per-lane state the fill passes touch (flat rows). ---
    /// First-stage per-sample noise sigma.
    int1_sigma: Vec<f64>,
    /// Second-stage per-sample noise sigma.
    int2_sigma: Vec<f64>,
    comp_sigma: Vec<f64>,
    dac_sigma: Vec<f64>,
    prev_input: Vec<f64>,
    input_sigma: Vec<f64>,
    jitter_gain: Vec<f64>,
    steps: Vec<u64>,
    saturation_events: Vec<u64>,
    // --- Cold per-lane state. ---
    cold: Vec<LaneCold>,
    /// Per noise tile (z1, z2, zc, zr): clock count through which every
    /// zero-sigma lane column is known to hold 0.0 for the current lane
    /// layout. Zero-sigma columns never change once written, so the
    /// per-block zero fill can be skipped while the layout is stable;
    /// any lane add/remove (or scratch swap) invalidates the markers.
    zero_clean: [usize; 4],
    /// Per noise tile: true when *every* lane's sigma is zero. Such a
    /// tile is neither filled nor read — the loop filter substitutes
    /// the shared zero row, keeping the per-block working set to the
    /// tiles that actually carry noise (the difference between staying
    /// in L1 and spilling at K=8).
    all_zero: [bool; 4],
    /// Detachable block scratch (see [`BankScratch`]).
    scratch: BankScratch,
}

impl SigmaDelta2Bank {
    /// An empty bank; add lanes with [`SigmaDelta2Bank::push_lane`].
    pub fn new() -> Self {
        SigmaDelta2Bank::default()
    }

    /// Builds a bank by absorbing a set of scalar modulators, one lane
    /// each (lane index = position in `mods`).
    pub fn from_modulators(mods: impl IntoIterator<Item = SigmaDelta2>) -> Self {
        let mut bank = SigmaDelta2Bank::new();
        for m in mods {
            bank.push_lane(m);
        }
        bank
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.prev_input.len()
    }

    /// True when the bank holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.prev_input.is_empty()
    }

    /// Hands this bank a pre-grown scratch (typically taken from a
    /// retired bank on the same worker), replacing its own. The
    /// zero-column markers are invalidated because the adopted tiles'
    /// contents are unknown.
    pub fn adopt_scratch(&mut self, scratch: BankScratch) {
        self.scratch = scratch;
        self.zero_clean = [0; 4];
    }

    /// Detaches the bank's block scratch for reuse elsewhere, leaving a
    /// fresh (empty) one behind.
    pub fn take_scratch(&mut self) -> BankScratch {
        self.zero_clean = [0; 4];
        std::mem::take(&mut self.scratch)
    }

    /// Absorbs a scalar modulator as a new lane (appended last) and
    /// returns its lane index. The modulator's exact state — loop
    /// filter, histories, counters, and the positions of all five split
    /// noise streams — carries over, so a lane behaves as if the scalar
    /// modulator had simply kept stepping.
    pub fn push_lane(&mut self, m: SigmaDelta2) -> usize {
        let lane = self.lanes();
        self.x1.push(m.int1.state);
        self.x2.push(m.int2.state);
        self.leak.push(m.int1.leak);
        self.sat.push(m.int1.saturation);
        self.int1_sigma.push(m.int1.noise_sigma);
        self.int2_sigma.push(m.int2.noise_sigma);
        self.comp_offset.push(m.comparator.offset);
        self.comp_hyst.push(m.comparator.hysteresis);
        self.comp_sigma.push(m.comparator.noise_sigma);
        self.comp_last.push(m.comparator.last > 0);
        self.dac_mismatch.push(m.dac.level_mismatch);
        self.dac_isi.push(m.dac.isi);
        self.dac_sigma.push(m.dac.reference_noise_sigma);
        self.dac_last.push(m.dac.last_bit > 0);
        self.b1.push(m.coeffs.b1);
        self.a1.push(m.coeffs.a1);
        self.c1.push(m.coeffs.c1);
        self.a2.push(m.coeffs.a2);
        self.prev_input.push(m.prev_input);
        self.input_sigma.push(m.nonideal.input_noise_sigma);
        self.jitter_gain.push(m.nonideal.jitter_slew_gain);
        self.steps.push(m.steps);
        self.saturation_events.push(m.saturation_events);
        self.cold.push(LaneCold {
            n1: m.int1.noise,
            n2: m.int2.noise,
            nc: m.comparator.noise,
            nd: m.dac.noise,
            input_noise: m.input_noise,
            coeffs: m.coeffs,
            nonideal: m.nonideal,
        });
        self.zero_clean = [0; 4];
        self.refresh_zero_tiles();
        lane
    }

    /// Removes a lane and reconstitutes it as a scalar modulator with
    /// the lane's exact state, including noise-stream positions. Lanes
    /// after `lane` shift down by one — across tile and word boundaries
    /// — and their streams are untouched, so surviving lanes stay
    /// bit-identical to their scalar references.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn retire_lane(&mut self, lane: usize) -> SigmaDelta2 {
        assert!(lane < self.lanes(), "lane {lane} out of range");
        let cold = self.cold.remove(lane);
        // The comparator decision doubles as the modulator's last output
        // bit (scalar `step` sets both from the same `v`).
        let comp_last = if self.comp_last.remove(lane) { 1 } else { -1 };
        let m = SigmaDelta2 {
            coeffs: cold.coeffs,
            int1: ScIntegrator {
                state: self.x1.remove(lane),
                leak: self.leak.get(lane),
                saturation: self.sat.get(lane),
                noise_sigma: self.int1_sigma.remove(lane),
                noise: cold.n1,
                saturated: false,
            },
            int2: ScIntegrator {
                state: self.x2.remove(lane),
                leak: self.leak.remove(lane),
                saturation: self.sat.remove(lane),
                noise_sigma: self.int2_sigma.remove(lane),
                noise: cold.n2,
                saturated: false,
            },
            comparator: Comparator {
                offset: self.comp_offset.remove(lane),
                hysteresis: self.comp_hyst.remove(lane),
                noise_sigma: self.comp_sigma.remove(lane),
                noise: cold.nc,
                last: comp_last,
            },
            dac: FeedbackDac {
                level_mismatch: self.dac_mismatch.remove(lane),
                isi: self.dac_isi.remove(lane),
                reference_noise_sigma: self.dac_sigma.remove(lane),
                noise: cold.nd,
                last_bit: if self.dac_last.remove(lane) { 1 } else { -1 },
            },
            input_noise: cold.input_noise,
            nonideal: cold.nonideal,
            prev_input: self.prev_input.remove(lane),
            last_bit: comp_last,
            saturation_events: self.saturation_events.remove(lane),
            steps: self.steps.remove(lane),
        };
        self.b1.remove(lane);
        self.a1.remove(lane);
        self.c1.remove(lane);
        self.a2.remove(lane);
        self.input_sigma.remove(lane);
        self.jitter_gain.remove(lane);
        self.zero_clean = [0; 4];
        self.refresh_zero_tiles();
        m
    }

    /// Recomputes the all-zero tile markers for the current lane layout.
    fn refresh_zero_tiles(&mut self) {
        self.all_zero = [
            self.int1_sigma.iter().all(|&s| s == 0.0),
            self.int2_sigma.iter().all(|&s| s == 0.0),
            self.comp_sigma.iter().all(|&s| s == 0.0),
            self.dac_sigma.iter().all(|&s| s == 0.0),
        ];
    }

    /// Resets one lane's loop state exactly like
    /// [`crate::modulator::DeltaSigmaModulator::reset`] on the scalar
    /// modulator: integrators and histories clear, counters zero, noise
    /// stream positions are *kept*.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn reset_lane(&mut self, lane: usize) {
        assert!(lane < self.lanes(), "lane {lane} out of range");
        self.x1.set(lane, 0.0);
        self.x2.set(lane, 0.0);
        self.comp_last.set(lane, true);
        self.dac_last.set(lane, true);
        self.prev_input[lane] = 0.0;
        self.steps[lane] = 0;
        self.saturation_events[lane] = 0;
    }

    /// Total converted clocks on a lane since construction/reset.
    pub fn steps(&self, lane: usize) -> u64 {
        self.steps[lane]
    }

    /// Integrator saturation events on a lane since construction/reset.
    pub fn saturation_events(&self, lane: usize) -> u64 {
        self.saturation_events[lane]
    }

    /// Converts `clocks` modulator cycles on every lane in lockstep,
    /// appending each lane's packed bitstream to the matching entry of
    /// `bits` (not cleared first).
    ///
    /// Per lane, the produced bits and the post-block state are
    /// bit-identical to the scalar path. Allocation-free once the
    /// internal tiles have grown to the block size (the scratch is
    /// reused across calls).
    ///
    /// # Panics
    ///
    /// Panics when `inputs` or `bits` length differs from the lane
    /// count, or a [`LaneInput::Samples`] length differs from `clocks`.
    pub fn step_block(&mut self, clocks: usize, inputs: &[LaneInput], bits: &mut [PackedBits]) {
        let k = self.lanes();
        assert_eq!(inputs.len(), k, "one input per lane");
        assert_eq!(bits.len(), k, "one bit sink per lane");
        if clocks == 0 || k == 0 {
            return;
        }
        self.grow_scratch(clocks);
        self.fill_input_tile(clocks, inputs);
        self.fill_noise_tiles(clocks);
        self.run_loop_filter(clocks, bits);
    }

    /// Converts `clocks` modulator cycles on every lane in lockstep with
    /// every lane held at a constant input for the whole block — the
    /// settled-mux frame case. Semantically identical to
    /// [`SigmaDelta2Bank::step_block`] with all-[`LaneInput::Constant`]
    /// inputs, but takes a plain `&[f64]` so callers converting settled
    /// frames need no per-frame `LaneInput` buffer at all.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` or `bits` length differs from the lane count.
    pub fn step_block_constant(&mut self, clocks: usize, inputs: &[f64], bits: &mut [PackedBits]) {
        let k = self.lanes();
        assert_eq!(inputs.len(), k, "one input per lane");
        assert_eq!(bits.len(), k, "one bit sink per lane");
        if clocks == 0 || k == 0 {
            return;
        }
        self.grow_scratch(clocks);
        self.fill_input_tile_constant(clocks, inputs);
        self.fill_noise_tiles(clocks);
        self.run_loop_filter(clocks, bits);
    }

    /// Grows the block scratch to `clocks` (no-op once warm).
    fn grow_scratch(&mut self, clocks: usize) {
        let k = self.lanes();
        let tile = clocks * k;
        let s = &mut self.scratch;
        for t in [
            &mut s.u_tile,
            &mut s.z1_tile,
            &mut s.z2_tile,
            &mut s.zc_tile,
            &mut s.zr_tile,
        ] {
            if t.len() < tile {
                t.resize(tile, 0.0);
            }
        }
        if s.row.len() < clocks {
            s.row.resize(clocks, 0.0);
        }
        let words = k.div_ceil(64) * 64;
        if s.clock_rows.len() < words {
            s.clock_rows.resize(words, 0);
        }
        if s.zero_row.len() < k {
            s.zero_row.resize(k, 0.0);
        }
    }

    /// Pass 1: per-lane sampled-input impairments into the clock-major
    /// input tile — the same draws, in the same order, as the scalar
    /// `step_block` input pass.
    fn fill_input_tile(&mut self, clocks: usize, inputs: &[LaneInput]) {
        for (lane, input) in inputs.iter().enumerate() {
            match *input {
                LaneInput::Constant(x) => self.fill_lane_constant(lane, clocks, x),
                LaneInput::Samples(xs) => self.fill_lane_samples(lane, clocks, xs),
            }
        }
    }

    /// Fills the whole input tile for an all-constant block. Clock 0 is
    /// per-lane scalar (it carries the frame-boundary slew and its
    /// conditional jitter draw); when every lane has input noise, clocks
    /// `1..` advance all K input streams in lockstep through one biased
    /// tile fill instead of lane-at-a-time rows.
    fn fill_input_tile_constant(&mut self, clocks: usize, inputs: &[f64]) {
        let k = self.lanes();
        if clocks > 1 && self.input_sigma[..k].iter().all(|&s| s != 0.0) {
            for (lane, &x) in inputs.iter().enumerate() {
                let sigma = self.input_sigma[lane];
                let gain = self.jitter_gain[lane];
                let src = &mut self.cold[lane].input_noise;
                let jitter = gain * (x - self.prev_input[lane]);
                self.scratch.u_tile[lane] = x + src.gaussian(sigma) + src.gaussian(jitter.abs());
                self.prev_input[lane] = x;
            }
            self.scratch.fill.begin(k);
            for c in self.cold.iter() {
                self.scratch.fill.load(&c.input_noise);
            }
            let s = &mut self.scratch;
            s.fill.fill_biased(
                inputs,
                &self.input_sigma[..k],
                clocks - 1,
                &mut s.u_tile[k..clocks * k],
            );
            for (j, c) in self.cold.iter_mut().enumerate() {
                self.scratch.fill.store(j, &mut c.input_noise);
            }
        } else {
            for (lane, &x) in inputs.iter().enumerate() {
                self.fill_lane_constant(lane, clocks, x);
            }
        }
    }

    /// Fills one lane's input-tile column for a constant-input block.
    fn fill_lane_constant(&mut self, lane: usize, clocks: usize, x: f64) {
        let k = self.lanes();
        let sigma = self.input_sigma[lane];
        let gain = self.jitter_gain[lane];
        let src = &mut self.cold[lane].input_noise;
        // Clock 0 sees the frame-boundary slew (scalar semantics,
        // including the conditional jitter draw); every later clock has
        // zero slew, so the jitter term is exactly `+ 0.0` and consumes
        // nothing.
        let jitter = gain * (x - self.prev_input[lane]);
        self.scratch.u_tile[lane] = x + src.gaussian(sigma) + src.gaussian(jitter.abs());
        self.prev_input[lane] = x;
        if sigma != 0.0 {
            let row = &mut self.scratch.row[..clocks - 1];
            src.fill_standard(row);
            for (n, &z) in row.iter().enumerate() {
                self.scratch.u_tile[(n + 1) * k + lane] = x + z * sigma + 0.0;
            }
        } else {
            for n in 1..clocks {
                self.scratch.u_tile[n * k + lane] = x + 0.0 + 0.0;
            }
        }
    }

    /// Fills one lane's input-tile column from explicit per-clock
    /// samples (the still-settling mux transient).
    fn fill_lane_samples(&mut self, lane: usize, clocks: usize, xs: &[f64]) {
        let k = self.lanes();
        assert_eq!(xs.len(), clocks, "one sample per clock");
        let sigma = self.input_sigma[lane];
        let gain = self.jitter_gain[lane];
        let src = &mut self.cold[lane].input_noise;
        for (n, &x) in xs.iter().enumerate() {
            let jitter = gain * (x - self.prev_input[lane]);
            self.prev_input[lane] = x;
            self.scratch.u_tile[n * k + lane] =
                x + src.gaussian(sigma) + src.gaussian(jitter.abs());
        }
    }

    /// Pass 2: pre-draw every unconditional per-clock noise stream into
    /// pre-multiplied clock-major tiles. A zero-sigma stream draws
    /// nothing (its tile entries are exactly `0.0`, matching the scalar
    /// `gaussian(0.0)` short-circuit). Three tile classes, cheapest
    /// first: all lanes zero-sigma → the tile is dead (the loop filter
    /// reads the zero row); all lanes noisy → one lockstep fill advances
    /// every stream side by side; mixed → lane-at-a-time rows.
    fn fill_noise_tiles(&mut self, clocks: usize) {
        let k = self.lanes();
        let clean = self.zero_clean;
        let all_zero = self.all_zero;
        let SigmaDelta2Bank {
            int1_sigma,
            int2_sigma,
            comp_sigma,
            dac_sigma,
            cold,
            scratch,
            ..
        } = self;
        let BankScratch {
            z1_tile,
            z2_tile,
            zc_tile,
            zr_tile,
            row,
            fill,
            ..
        } = scratch;
        type Pick = fn(&mut LaneCold) -> &mut NoiseSource;
        let tiles: [(&mut Vec<f64>, &Vec<f64>, Pick); 4] = [
            (z1_tile, int1_sigma, |c| &mut c.n1),
            (z2_tile, int2_sigma, |c| &mut c.n2),
            (zc_tile, comp_sigma, |c| &mut c.nc),
            (zr_tile, dac_sigma, |c| &mut c.nd),
        ];
        for (t, (tile, sigmas, pick)) in tiles.into_iter().enumerate() {
            if all_zero[t] {
                continue;
            }
            if sigmas[..k].iter().all(|&s| s != 0.0) {
                fill.begin(k);
                for c in cold.iter_mut() {
                    fill.load(pick(c));
                }
                fill.fill_scaled(&sigmas[..k], clocks, &mut tile[..clocks * k]);
                for (j, c) in cold.iter_mut().enumerate() {
                    fill.store(j, pick(c));
                }
                continue;
            }
            for (lane, c) in cold.iter_mut().enumerate() {
                let sigma = sigmas[lane];
                if sigma == 0.0 {
                    // Once zeroed for this layout, the column stays
                    // zero — the loop filter only reads the tiles.
                    if clean[t] < clocks {
                        for n in 0..clocks {
                            tile[n * k + lane] = 0.0;
                        }
                    }
                } else {
                    let r = &mut row[..clocks];
                    pick(c).fill_standard(r);
                    for (n, &z) in r.iter().enumerate() {
                        tile[n * k + lane] = z * sigma;
                    }
                }
            }
        }
        for (t, c) in self.zero_clean.iter_mut().enumerate() {
            if !all_zero[t] {
                *c = clean[t].max(clocks);
            }
        }
    }

    /// Pass 3: the tiled lockstep loop filter.
    ///
    /// The block is converted in chunks of ≤ 64 clocks. Within a chunk
    /// the loop runs **tile-outer, clock-inner**: each full tile's
    /// integrator states, coefficients, and packed ±1 history bytes are
    /// pulled into locals once and stepped through
    /// `step_tile` for the whole chunk — 64 clocks of
    /// register-resident state per memory round trip. Each clock
    /// deposits its comparator byte into the chunk's per-clock `u64`
    /// lane word; at the chunk boundary [`transpose64`] pivots each
    /// 64-lane group's words into per-lane time words, which flush into
    /// the lanes' [`PackedBits`]. Chunk boundaries land exactly on the
    /// 64-clock flush points of the per-clock formulation, so packed
    /// output is bit-identical.
    ///
    /// Lanes past the last full tile (K mod [`TILE`]) step scalar
    /// through [`step_lane`] with the same chunk structure, so padding
    /// lanes never execute.
    fn run_loop_filter(&mut self, clocks: usize, bits: &mut [PackedBits]) {
        let k = self.lanes();
        let groups = k.div_ceil(64);
        let full_tiles = k / TILE;
        let tail = full_tiles * TILE;
        let [z1_zero, z2_zero, zc_zero, zr_zero] = self.all_zero;
        let SigmaDelta2Bank {
            x1,
            x2,
            leak,
            sat,
            comp_offset,
            comp_hyst,
            dac_mismatch,
            dac_isi,
            b1,
            a1,
            c1,
            a2,
            comp_last,
            dac_last,
            steps,
            saturation_events,
            scratch,
            ..
        } = self;
        let BankScratch {
            u_tile,
            z1_tile,
            z2_tile,
            zc_tile,
            zr_tile,
            clock_rows,
            zero_row,
            ..
        } = scratch;
        let zero_row = &zero_row[..k];
        let u = RowSrc {
            data: u_tile,
            stride: k,
        };
        let z1 = RowSrc::new(z1_tile, zero_row, z1_zero, k);
        let z2 = RowSrc::new(z2_tile, zero_row, z2_zero, k);
        let zc = RowSrc::new(zc_tile, zero_row, zc_zero, k);
        let zr = RowSrc::new(zr_tile, zero_row, zr_zero, k);
        let clock_rows = &mut clock_rows[..groups * 64];
        let isa = Isa::detect();
        let mut start = 0usize;
        while start < clocks {
            let nb = (clocks - start).min(64);
            clock_rows.fill(0);
            let src = ChunkSrc {
                u,
                z1,
                z2,
                zc,
                zr,
                start,
            };
            // Full tiles: state stays in registers for the whole chunk.
            for t in 0..full_tiles {
                let lane0 = t * TILE;
                let consts = TileConsts {
                    leak: *leak.tile(t),
                    sat: *sat.tile(t),
                    off: *comp_offset.tile(t),
                    hyst: *comp_hyst.tile(t),
                    mis: *dac_mismatch.tile(t),
                    isi: *dac_isi.tile(t),
                    b1: *b1.tile(t),
                    a1: *a1.tile(t),
                    c1: *c1.tile(t),
                    a2: *a2.tile(t),
                };
                let mut x1t = *x1.tile(t);
                let mut x2t = *x2.tile(t);
                let mut cl = comp_last.byte(t);
                let mut dl = dac_last.byte(t);
                let mut sat8_acc = [0u64; TILE];
                let shift = 8 * (t % 8) as u32;
                let rows_out = &mut clock_rows[(lane0 / 64) * 64..(lane0 / 64) * 64 + nb];
                isa.run_tile_chunk(
                    &mut x1t,
                    &mut x2t,
                    &mut cl,
                    &mut dl,
                    &mut sat8_acc,
                    &consts,
                    &src,
                    lane0,
                    shift,
                    rows_out,
                );
                x1.set_tile(t, x1t);
                x2.set_tile(t, x2t);
                comp_last.set_byte(t, cl);
                dac_last.set_byte(t, dl);
                for (i, &acc) in sat8_acc.iter().enumerate() {
                    saturation_events[lane0 + i] += acc;
                }
            }
            // Tail lanes (< TILE of them): plain scalar chunk.
            for lane in tail..k {
                let (leak, sat) = (leak.get(lane), sat.get(lane));
                let (off, hyst) = (comp_offset.get(lane), comp_hyst.get(lane));
                let (mis, isi) = (dac_mismatch.get(lane), dac_isi.get(lane));
                let (b1, a1) = (b1.get(lane), a1.get(lane));
                let (c1, a2) = (c1.get(lane), a2.get(lane));
                let mut x1s = x1.get(lane);
                let mut x2s = x2.get(lane);
                let mut cl = comp_last.get(lane);
                let mut dl = dac_last.get(lane);
                let mut sat_acc = 0u64;
                let bit = lane % 64;
                let rows_out = &mut clock_rows[(lane / 64) * 64..(lane / 64) * 64 + nb];
                for (r, out_word) in rows_out.iter_mut().enumerate() {
                    let n = start + r;
                    let (vpos, satd) = step_lane(
                        &mut x1s,
                        &mut x2s,
                        leak,
                        sat,
                        off,
                        hyst,
                        mis,
                        isi,
                        b1,
                        a1,
                        c1,
                        a2,
                        u.at(n, lane),
                        z1.at(n, lane),
                        z2.at(n, lane),
                        zc.at(n, lane),
                        zr.at(n, lane),
                        cl,
                        dl,
                    );
                    cl = vpos;
                    dl = vpos;
                    *out_word |= u64::from(vpos) << bit;
                    sat_acc += u64::from(satd);
                }
                x1.set(lane, x1s);
                x2.set(lane, x2s);
                comp_last.set(lane, cl);
                dac_last.set(lane, dl);
                saturation_events[lane] += sat_acc;
            }
            // Pivot per-clock lane words into per-lane time words and
            // flush — same boundaries as a per-clock `n & 63 == 63`
            // flush, so the packed streams are bit-identical.
            for g in 0..groups {
                let block: &mut [u64; 64] = (&mut clock_rows[g * 64..(g + 1) * 64])
                    .try_into()
                    .expect("64-word group block");
                transpose64(block);
                let lanes_here = (k - g * 64).min(64);
                for (l, word) in block[..lanes_here].iter().enumerate() {
                    bits[g * 64 + l].push_bits(*word, nb);
                }
            }
            start += nb;
        }
        for s in steps[..k].iter_mut() {
            *s += clocks as u64;
        }
    }
}

//! Structure-of-arrays **lane bank** for the 2nd-order ΣΔ modulator:
//! K independent converter sessions stepped per clock in lockstep.
//!
//! Array-scale CMOS readout gets its throughput from running many
//! identical channels in parallel; the software analogue is data-level
//! parallelism. [`SigmaDelta2Bank`] holds the loop-filter state of K
//! independent [`SigmaDelta2`] instances in flat `[f64]` lanes
//! (integrator states, comparator/DAC history, input history) and steps
//! *all* lanes for each modulator clock in one tight loop — the K serial
//! floating-point dependency chains interleave in the CPU pipeline and
//! the lane loop autovectorizes, where the scalar path serializes on a
//! single chain.
//!
//! ## Scalar path as the oracle
//!
//! The bank is an *execution strategy*, never a different model: every
//! lane's bitstream, loop-filter state, and noise-stream positions are
//! **bit-identical** to a scalar [`SigmaDelta2`] with the same seed fed
//! the same inputs (property-tested across random K, seeds, and block
//! boundaries). This holds because every noise consumer owns an
//! independent split stream, so per-lane pre-filling (batched ziggurat
//! draws into a lanes×block noise tile via
//! [`NoiseSource::fill_standard`]) consumes each stream in exactly the
//! per-sample order of the scalar path, and the per-clock arithmetic
//! reproduces the scalar expressions association-for-association.
//!
//! Lanes are absorbed from and released back to scalar modulators
//! ([`SigmaDelta2Bank::push_lane`] / [`SigmaDelta2Bank::retire_lane`]),
//! so sessions can join late, finish early, or be reset mid-run without
//! disturbing the neighbours' streams.

use tonos_dsp::bits::PackedBits;

use crate::dac::FeedbackDac;
use crate::integrator::ScIntegrator;
use crate::modulator::{Coefficients, SigmaDelta2};
use crate::noise::{LockstepFill, NoiseSource};
use crate::nonideal::NonIdealities;
use crate::quantizer::Comparator;

/// One lane's input for a block conversion.
///
/// The settled readout mux holds a constant modulator input for a whole
/// output frame — the common case, and the one the bank's pre-fill fast
/// path exploits (jitter vanishes after the first clock because the
/// per-sample slew is zero). A still-settling mux produces a per-clock
/// transient, supplied as explicit samples.
#[derive(Debug, Clone, Copy)]
pub enum LaneInput<'a> {
    /// The input is held at this value for every clock of the block.
    Constant(f64),
    /// One explicit input sample per clock (length must equal the block
    /// size).
    Samples(&'a [f64]),
}

/// Per-lane cold state: the split noise streams and configuration that
/// the per-clock loop does not touch.
#[derive(Debug, Clone)]
struct LaneCold {
    n1: NoiseSource,
    n2: NoiseSource,
    nc: NoiseSource,
    nd: NoiseSource,
    input_noise: NoiseSource,
    coeffs: Coefficients,
    nonideal: NonIdealities,
}

/// K second-order ΣΔ modulators in structure-of-arrays form, stepped in
/// lockstep one clock at a time.
#[derive(Debug, Clone, Default)]
pub struct SigmaDelta2Bank {
    // --- Hot per-lane state, one flat array per field (SoA). ---
    /// First integrator state.
    x1: Vec<f64>,
    /// Second integrator state.
    x2: Vec<f64>,
    /// Integrator pole `p = A/(A+1)` (shared by both stages).
    leak: Vec<f64>,
    /// Integrator output clamp.
    sat: Vec<f64>,
    /// First-stage per-sample noise sigma.
    int1_sigma: Vec<f64>,
    /// Second-stage per-sample noise sigma.
    int2_sigma: Vec<f64>,
    comp_offset: Vec<f64>,
    comp_hyst: Vec<f64>,
    comp_sigma: Vec<f64>,
    /// Previous comparator decision as ±1.0.
    comp_last: Vec<f64>,
    dac_mismatch: Vec<f64>,
    dac_isi: Vec<f64>,
    dac_sigma: Vec<f64>,
    /// Previous DAC bit as ±1.0.
    dac_last: Vec<f64>,
    b1: Vec<f64>,
    a1: Vec<f64>,
    c1: Vec<f64>,
    a2: Vec<f64>,
    prev_input: Vec<f64>,
    input_sigma: Vec<f64>,
    jitter_gain: Vec<f64>,
    steps: Vec<u64>,
    saturation_events: Vec<u64>,
    // --- Cold per-lane state. ---
    cold: Vec<LaneCold>,
    // --- Reusable block scratch (clock-major tiles: index n*K + lane).
    /// Noisy modulator inputs `u[n]` per lane.
    u_tile: Vec<f64>,
    /// Pre-multiplied first-integrator noise (`standard * sigma`).
    z1_tile: Vec<f64>,
    /// Pre-multiplied second-integrator noise.
    z2_tile: Vec<f64>,
    /// Pre-multiplied comparator noise.
    zc_tile: Vec<f64>,
    /// Pre-multiplied DAC reference noise.
    zr_tile: Vec<f64>,
    /// Contiguous per-lane fill scratch.
    row: Vec<f64>,
    /// Per-lane 64-bit output accumulators.
    words: Vec<u64>,
    /// Per noise tile (z1, z2, zc, zr): clock count through which every
    /// zero-sigma lane column is known to hold 0.0 for the current lane
    /// layout. Zero-sigma columns never change once written, so the
    /// per-block zero fill can be skipped while the layout is stable;
    /// any lane add/remove invalidates the markers.
    zero_clean: [usize; 4],
    /// Per noise tile: true when *every* lane's sigma is zero. Such a
    /// tile is neither filled nor read — the loop filter substitutes
    /// [`SigmaDelta2Bank::zero_row`], keeping the per-block working set
    /// to the tiles that actually carry noise (the difference between
    /// staying in L1 and spilling at K=8).
    all_zero: [bool; 4],
    /// One k-length row of exact 0.0 standing in for all-zero tiles.
    zero_row: Vec<f64>,
    /// Lockstep multi-stream ziggurat scratch: when every lane of a tile
    /// is noisy, all K streams advance side by side instead of one lane
    /// at a time (see [`LockstepFill`]).
    fill: LockstepFill,
}

impl SigmaDelta2Bank {
    /// An empty bank; add lanes with [`SigmaDelta2Bank::push_lane`].
    pub fn new() -> Self {
        SigmaDelta2Bank::default()
    }

    /// Builds a bank by absorbing a set of scalar modulators, one lane
    /// each (lane index = position in `mods`).
    pub fn from_modulators(mods: impl IntoIterator<Item = SigmaDelta2>) -> Self {
        let mut bank = SigmaDelta2Bank::new();
        for m in mods {
            bank.push_lane(m);
        }
        bank
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.x1.len()
    }

    /// True when the bank holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.x1.is_empty()
    }

    /// Absorbs a scalar modulator as a new lane (appended last) and
    /// returns its lane index. The modulator's exact state — loop
    /// filter, histories, counters, and the positions of all five split
    /// noise streams — carries over, so a lane behaves as if the scalar
    /// modulator had simply kept stepping.
    pub fn push_lane(&mut self, m: SigmaDelta2) -> usize {
        let lane = self.lanes();
        self.x1.push(m.int1.state);
        self.x2.push(m.int2.state);
        self.leak.push(m.int1.leak);
        self.sat.push(m.int1.saturation);
        self.int1_sigma.push(m.int1.noise_sigma);
        self.int2_sigma.push(m.int2.noise_sigma);
        self.comp_offset.push(m.comparator.offset);
        self.comp_hyst.push(m.comparator.hysteresis);
        self.comp_sigma.push(m.comparator.noise_sigma);
        self.comp_last.push(f64::from(m.comparator.last));
        self.dac_mismatch.push(m.dac.level_mismatch);
        self.dac_isi.push(m.dac.isi);
        self.dac_sigma.push(m.dac.reference_noise_sigma);
        self.dac_last.push(f64::from(m.dac.last_bit));
        self.b1.push(m.coeffs.b1);
        self.a1.push(m.coeffs.a1);
        self.c1.push(m.coeffs.c1);
        self.a2.push(m.coeffs.a2);
        self.prev_input.push(m.prev_input);
        self.input_sigma.push(m.nonideal.input_noise_sigma);
        self.jitter_gain.push(m.nonideal.jitter_slew_gain);
        self.steps.push(m.steps);
        self.saturation_events.push(m.saturation_events);
        self.cold.push(LaneCold {
            n1: m.int1.noise,
            n2: m.int2.noise,
            nc: m.comparator.noise,
            nd: m.dac.noise,
            input_noise: m.input_noise,
            coeffs: m.coeffs,
            nonideal: m.nonideal,
        });
        self.zero_clean = [0; 4];
        self.refresh_zero_tiles();
        lane
    }

    /// Removes a lane and reconstitutes it as a scalar modulator with
    /// the lane's exact state, including noise-stream positions. Lanes
    /// after `lane` shift down by one; their streams are untouched, so
    /// surviving lanes stay bit-identical to their scalar references.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn retire_lane(&mut self, lane: usize) -> SigmaDelta2 {
        assert!(lane < self.lanes(), "lane {lane} out of range");
        let cold = self.cold.remove(lane);
        // The comparator decision doubles as the modulator's last output
        // bit (scalar `step` sets both from the same `v`).
        let comp_last = if self.comp_last.remove(lane) > 0.0 {
            1
        } else {
            -1
        };
        let m = SigmaDelta2 {
            coeffs: cold.coeffs,
            int1: ScIntegrator {
                state: self.x1.remove(lane),
                leak: self.leak[lane],
                saturation: self.sat[lane],
                noise_sigma: self.int1_sigma.remove(lane),
                noise: cold.n1,
                saturated: false,
            },
            int2: ScIntegrator {
                state: self.x2.remove(lane),
                leak: self.leak.remove(lane),
                saturation: self.sat.remove(lane),
                noise_sigma: self.int2_sigma.remove(lane),
                noise: cold.n2,
                saturated: false,
            },
            comparator: Comparator {
                offset: self.comp_offset.remove(lane),
                hysteresis: self.comp_hyst.remove(lane),
                noise_sigma: self.comp_sigma.remove(lane),
                noise: cold.nc,
                last: comp_last,
            },
            dac: FeedbackDac {
                level_mismatch: self.dac_mismatch.remove(lane),
                isi: self.dac_isi.remove(lane),
                reference_noise_sigma: self.dac_sigma.remove(lane),
                noise: cold.nd,
                last_bit: if self.dac_last.remove(lane) > 0.0 {
                    1
                } else {
                    -1
                },
            },
            input_noise: cold.input_noise,
            nonideal: cold.nonideal,
            prev_input: self.prev_input.remove(lane),
            last_bit: comp_last,
            saturation_events: self.saturation_events.remove(lane),
            steps: self.steps.remove(lane),
        };
        self.b1.remove(lane);
        self.a1.remove(lane);
        self.c1.remove(lane);
        self.a2.remove(lane);
        self.input_sigma.remove(lane);
        self.jitter_gain.remove(lane);
        self.zero_clean = [0; 4];
        self.refresh_zero_tiles();
        m
    }

    /// Recomputes the all-zero tile markers for the current lane layout.
    fn refresh_zero_tiles(&mut self) {
        self.all_zero = [
            self.int1_sigma.iter().all(|&s| s == 0.0),
            self.int2_sigma.iter().all(|&s| s == 0.0),
            self.comp_sigma.iter().all(|&s| s == 0.0),
            self.dac_sigma.iter().all(|&s| s == 0.0),
        ];
    }

    /// Resets one lane's loop state exactly like
    /// [`crate::modulator::DeltaSigmaModulator::reset`] on the scalar
    /// modulator: integrators and histories clear, counters zero, noise
    /// stream positions are *kept*.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn reset_lane(&mut self, lane: usize) {
        assert!(lane < self.lanes(), "lane {lane} out of range");
        self.x1[lane] = 0.0;
        self.x2[lane] = 0.0;
        self.comp_last[lane] = 1.0;
        self.dac_last[lane] = 1.0;
        self.prev_input[lane] = 0.0;
        self.steps[lane] = 0;
        self.saturation_events[lane] = 0;
    }

    /// Total converted clocks on a lane since construction/reset.
    pub fn steps(&self, lane: usize) -> u64 {
        self.steps[lane]
    }

    /// Integrator saturation events on a lane since construction/reset.
    pub fn saturation_events(&self, lane: usize) -> u64 {
        self.saturation_events[lane]
    }

    /// Converts `clocks` modulator cycles on every lane in lockstep,
    /// appending each lane's packed bitstream to the matching entry of
    /// `bits` (not cleared first).
    ///
    /// Per lane, the produced bits and the post-block state are
    /// bit-identical to the scalar path. Allocation-free once the
    /// internal tiles have grown to the block size (the scratch is
    /// reused across calls).
    ///
    /// # Panics
    ///
    /// Panics when `inputs` or `bits` length differs from the lane
    /// count, or a [`LaneInput::Samples`] length differs from `clocks`.
    pub fn step_block(&mut self, clocks: usize, inputs: &[LaneInput], bits: &mut [PackedBits]) {
        let k = self.lanes();
        assert_eq!(inputs.len(), k, "one input per lane");
        assert_eq!(bits.len(), k, "one bit sink per lane");
        if clocks == 0 || k == 0 {
            return;
        }
        self.grow_scratch(clocks);
        self.fill_input_tile(clocks, inputs);
        self.fill_noise_tiles(clocks);
        self.run_loop_filter(clocks, bits);
    }

    /// Converts `clocks` modulator cycles on every lane in lockstep with
    /// every lane held at a constant input for the whole block — the
    /// settled-mux frame case. Semantically identical to
    /// [`SigmaDelta2Bank::step_block`] with all-[`LaneInput::Constant`]
    /// inputs, but takes a plain `&[f64]` so callers converting settled
    /// frames need no per-frame `LaneInput` buffer at all.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` or `bits` length differs from the lane count.
    pub fn step_block_constant(&mut self, clocks: usize, inputs: &[f64], bits: &mut [PackedBits]) {
        let k = self.lanes();
        assert_eq!(inputs.len(), k, "one input per lane");
        assert_eq!(bits.len(), k, "one bit sink per lane");
        if clocks == 0 || k == 0 {
            return;
        }
        self.grow_scratch(clocks);
        self.fill_input_tile_constant(clocks, inputs);
        self.fill_noise_tiles(clocks);
        self.run_loop_filter(clocks, bits);
    }

    /// Grows the block scratch to `clocks` (no-op once warm).
    fn grow_scratch(&mut self, clocks: usize) {
        let k = self.lanes();
        let tile = clocks * k;
        for t in [
            &mut self.u_tile,
            &mut self.z1_tile,
            &mut self.z2_tile,
            &mut self.zc_tile,
            &mut self.zr_tile,
        ] {
            if t.len() < tile {
                t.resize(tile, 0.0);
            }
        }
        if self.row.len() < clocks {
            self.row.resize(clocks, 0.0);
        }
        if self.words.len() < k {
            self.words.resize(k, 0);
        }
        if self.zero_row.len() < k {
            self.zero_row.resize(k, 0.0);
        }
    }

    /// Pass 1: per-lane sampled-input impairments into the clock-major
    /// input tile — the same draws, in the same order, as the scalar
    /// `step_block` input pass.
    fn fill_input_tile(&mut self, clocks: usize, inputs: &[LaneInput]) {
        for (lane, input) in inputs.iter().enumerate() {
            match *input {
                LaneInput::Constant(x) => self.fill_lane_constant(lane, clocks, x),
                LaneInput::Samples(xs) => self.fill_lane_samples(lane, clocks, xs),
            }
        }
    }

    /// Fills the whole input tile for an all-constant block. Clock 0 is
    /// per-lane scalar (it carries the frame-boundary slew and its
    /// conditional jitter draw); when every lane has input noise, clocks
    /// `1..` advance all K input streams in lockstep through one biased
    /// tile fill instead of lane-at-a-time rows.
    fn fill_input_tile_constant(&mut self, clocks: usize, inputs: &[f64]) {
        let k = self.lanes();
        if clocks > 1 && self.input_sigma[..k].iter().all(|&s| s != 0.0) {
            for (lane, &x) in inputs.iter().enumerate() {
                let sigma = self.input_sigma[lane];
                let gain = self.jitter_gain[lane];
                let src = &mut self.cold[lane].input_noise;
                let jitter = gain * (x - self.prev_input[lane]);
                self.u_tile[lane] = x + src.gaussian(sigma) + src.gaussian(jitter.abs());
                self.prev_input[lane] = x;
            }
            self.fill.begin(k);
            for c in self.cold.iter() {
                self.fill.load(&c.input_noise);
            }
            self.fill.fill_biased(
                inputs,
                &self.input_sigma[..k],
                clocks - 1,
                &mut self.u_tile[k..clocks * k],
            );
            for (j, c) in self.cold.iter_mut().enumerate() {
                self.fill.store(j, &mut c.input_noise);
            }
        } else {
            for (lane, &x) in inputs.iter().enumerate() {
                self.fill_lane_constant(lane, clocks, x);
            }
        }
    }

    /// Fills one lane's input-tile column for a constant-input block.
    fn fill_lane_constant(&mut self, lane: usize, clocks: usize, x: f64) {
        let k = self.lanes();
        let sigma = self.input_sigma[lane];
        let gain = self.jitter_gain[lane];
        let src = &mut self.cold[lane].input_noise;
        // Clock 0 sees the frame-boundary slew (scalar semantics,
        // including the conditional jitter draw); every later clock has
        // zero slew, so the jitter term is exactly `+ 0.0` and consumes
        // nothing.
        let jitter = gain * (x - self.prev_input[lane]);
        self.u_tile[lane] = x + src.gaussian(sigma) + src.gaussian(jitter.abs());
        self.prev_input[lane] = x;
        if sigma != 0.0 {
            let row = &mut self.row[..clocks - 1];
            src.fill_standard(row);
            for (n, &z) in row.iter().enumerate() {
                self.u_tile[(n + 1) * k + lane] = x + z * sigma + 0.0;
            }
        } else {
            for n in 1..clocks {
                self.u_tile[n * k + lane] = x + 0.0 + 0.0;
            }
        }
    }

    /// Fills one lane's input-tile column from explicit per-clock
    /// samples (the still-settling mux transient).
    fn fill_lane_samples(&mut self, lane: usize, clocks: usize, xs: &[f64]) {
        let k = self.lanes();
        assert_eq!(xs.len(), clocks, "one sample per clock");
        let sigma = self.input_sigma[lane];
        let gain = self.jitter_gain[lane];
        let src = &mut self.cold[lane].input_noise;
        for (n, &x) in xs.iter().enumerate() {
            let jitter = gain * (x - self.prev_input[lane]);
            self.prev_input[lane] = x;
            self.u_tile[n * k + lane] = x + src.gaussian(sigma) + src.gaussian(jitter.abs());
        }
    }

    /// Pass 2: pre-draw every unconditional per-clock noise stream into
    /// pre-multiplied clock-major tiles. A zero-sigma stream draws
    /// nothing (its tile entries are exactly `0.0`, matching the scalar
    /// `gaussian(0.0)` short-circuit). Three tile classes, cheapest
    /// first: all lanes zero-sigma → the tile is dead (the loop filter
    /// reads `zero_row`); all lanes noisy → one lockstep fill advances
    /// every stream side by side; mixed → lane-at-a-time rows.
    fn fill_noise_tiles(&mut self, clocks: usize) {
        let k = self.lanes();
        let clean = self.zero_clean;
        let all_zero = self.all_zero;
        let SigmaDelta2Bank {
            int1_sigma,
            int2_sigma,
            comp_sigma,
            dac_sigma,
            cold,
            z1_tile,
            z2_tile,
            zc_tile,
            zr_tile,
            row,
            fill,
            ..
        } = self;
        type Pick = fn(&mut LaneCold) -> &mut NoiseSource;
        let tiles: [(&mut Vec<f64>, &Vec<f64>, Pick); 4] = [
            (z1_tile, int1_sigma, |c| &mut c.n1),
            (z2_tile, int2_sigma, |c| &mut c.n2),
            (zc_tile, comp_sigma, |c| &mut c.nc),
            (zr_tile, dac_sigma, |c| &mut c.nd),
        ];
        for (t, (tile, sigmas, pick)) in tiles.into_iter().enumerate() {
            if all_zero[t] {
                continue;
            }
            if sigmas[..k].iter().all(|&s| s != 0.0) {
                fill.begin(k);
                for c in cold.iter_mut() {
                    fill.load(pick(c));
                }
                fill.fill_scaled(&sigmas[..k], clocks, &mut tile[..clocks * k]);
                for (j, c) in cold.iter_mut().enumerate() {
                    fill.store(j, pick(c));
                }
                continue;
            }
            for (lane, c) in cold.iter_mut().enumerate() {
                let sigma = sigmas[lane];
                if sigma == 0.0 {
                    // Once zeroed for this layout, the column stays
                    // zero — the loop filter only reads the tiles.
                    if clean[t] < clocks {
                        for n in 0..clocks {
                            tile[n * k + lane] = 0.0;
                        }
                    }
                } else {
                    let r = &mut row[..clocks];
                    pick(c).fill_standard(r);
                    for (n, &z) in r.iter().enumerate() {
                        tile[n * k + lane] = z * sigma;
                    }
                }
            }
        }
        for (t, c) in self.zero_clean.iter_mut().enumerate() {
            if !all_zero[t] {
                *c = clean[t].max(clocks);
            }
        }
    }

    /// Pass 3: the lockstep loop filter — clock-outer, lane-inner, every
    /// lane access unit-stride, every expression associated exactly as
    /// in the scalar `SigmaDelta2::step`.
    ///
    /// Every per-lane field is hoisted into a `k`-length slice before the
    /// clock loop: the inner lane loop then runs over equal-length slices
    /// with no bounds checks, and every branch in the body is a select on
    /// lane-local data — the shape LLVM turns into vector min/max/blend
    /// over the lanes.
    fn run_loop_filter(&mut self, clocks: usize, bits: &mut [PackedBits]) {
        let k = self.lanes();
        self.words[..k].fill(0);
        let words = &mut self.words[..k];
        let x1 = &mut self.x1[..k];
        let x2 = &mut self.x2[..k];
        let leak = &self.leak[..k];
        let sat = &self.sat[..k];
        let comp_offset = &self.comp_offset[..k];
        let comp_hyst = &self.comp_hyst[..k];
        let comp_last = &mut self.comp_last[..k];
        let dac_mismatch = &self.dac_mismatch[..k];
        let dac_isi = &self.dac_isi[..k];
        let dac_last = &mut self.dac_last[..k];
        let b1 = &self.b1[..k];
        let a1 = &self.a1[..k];
        let c1 = &self.c1[..k];
        let a2 = &self.a2[..k];
        let sat_events = &mut self.saturation_events[..k];
        // All-zero tiles collapse to one shared zero row: `x + 0.0` from
        // the row is bit-identical to reading a zeroed tile entry, and
        // the block working set shrinks to the tiles that carry noise.
        let zero_row = &self.zero_row[..k];
        let [z1_zero, z2_zero, zc_zero, zr_zero] = self.all_zero;
        for n in 0..clocks {
            let base = n * k;
            let u_row = &self.u_tile[base..base + k];
            let z1_row = if z1_zero {
                zero_row
            } else {
                &self.z1_tile[base..base + k]
            };
            let z2_row = if z2_zero {
                zero_row
            } else {
                &self.z2_tile[base..base + k]
            };
            let zc_row = if zc_zero {
                zero_row
            } else {
                &self.zc_tile[base..base + k]
            };
            let zr_row = if zr_zero {
                zero_row
            } else {
                &self.zr_tile[base..base + k]
            };
            let bit_mask = 1u64 << (n & 63);
            for lane in 0..k {
                // Comparator decision from the previous x2 (delaying
                // loop): threshold = offset − h·last + noise.
                let threshold =
                    comp_offset[lane] - comp_hyst[lane] * comp_last[lane] + zc_row[lane];
                let vpos = x2[lane] >= threshold;
                let v = if vpos { 1.0 } else { -1.0 };
                // 1-bit DAC: positive-level mismatch, rising-edge ISI,
                // multiplicative reference noise.
                let level = if vpos { 1.0 + dac_mismatch[lane] } else { -1.0 };
                let rising = v > dac_last[lane];
                let level = if rising {
                    level * (1.0 - dac_isi[lane])
                } else {
                    level
                };
                comp_last[lane] = v;
                dac_last[lane] = v;
                let vf = level * (1.0 + zr_row[lane]);
                // Both integrators, saturating exactly like the scalar
                // ScIntegrator::update.
                let x1_old = x1[lane];
                let s = sat[lane];
                let next1 =
                    leak[lane] * x1_old + (b1[lane] * u_row[lane] - a1[lane] * vf) + z1_row[lane];
                let sat1 = next1 > s || next1 < -s;
                x1[lane] = next1.clamp(-s, s);
                let next2 =
                    leak[lane] * x2[lane] + (c1[lane] * x1_old - a2[lane] * vf) + z2_row[lane];
                let sat2 = next2 > s || next2 < -s;
                x2[lane] = next2.clamp(-s, s);
                sat_events[lane] += u64::from(sat1 || sat2);
                words[lane] |= if vpos { bit_mask } else { 0 };
            }
            if n & 63 == 63 {
                for lane in 0..k {
                    bits[lane].push_bits(words[lane], 64);
                }
                words.fill(0);
            }
        }
        let tail = clocks & 63;
        if tail != 0 {
            for lane in 0..k {
                bits[lane].push_bits(words[lane], tail);
            }
        }
        for s in self.steps[..k].iter_mut() {
            *s += clocks as u64;
        }
    }
}

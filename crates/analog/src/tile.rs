//! Fixed-width lane **tiles**: the data layout and per-clock kernels
//! behind the bank's tiled execution (see [`crate::bank`]).
//!
//! A tile is [`TILE`] (= 8) f64 lanes in one cache-line-aligned row
//! ([`F64Tile`]). The bank stores every kernel-touched state and
//! coefficient row as a sequence of tiles and steps full tiles with
//! `step_tile`, which exists in two bit-identical bodies:
//!
//! * the **portable scalar tile loop** (always compiled — the oracle
//!   and the default), eight `step_lane` calls in lane order; and
//! * the **explicit wide-ops kernel** behind the `wide-lanes` cargo
//!   feature: straight-line `core::simd`-style passes over whole tiles
//!   (splat / blend / lane-mask compares / sign-bit selects), with the
//!   comparator and DAC histories carried as packed `u8` lane masks so
//!   quantize/feedback is mask arithmetic, not per-lane branches.
//!
//! Both bodies evaluate every floating-point expression with the exact
//! association of the scalar `SigmaDelta2::step`,
//! so either kernel is bit-identical to the scalar modulator — the
//! property `tests/bank_oracle.rs` proves across both feature sets.

/// Lanes per tile: one 64-byte cache line of f64s, and the unroll width
/// of the wide kernel.
pub const TILE: usize = 8;

/// One cache-line-aligned row of [`TILE`] f64 lanes — the vector type of
/// the tiled bank, with the handful of `core::simd`-style wide ops the
/// loop filter needs.
///
/// Arithmetic helpers are plain lane-wise loops: on the scalar path they
/// document the semantics, on the `wide-lanes` path their fixed width
/// and branch-free bodies are the shape LLVM turns into vector
/// instructions. Lane masks are `u8` words, bit `i` = lane `i`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[repr(align(64))]
pub struct F64Tile(pub [f64; TILE]);

impl F64Tile {
    /// All lanes exactly `0.0`.
    pub const ZERO: F64Tile = F64Tile([0.0; TILE]);

    /// Every lane set to `v`.
    #[inline(always)]
    #[must_use]
    pub fn splat(v: f64) -> Self {
        F64Tile([v; TILE])
    }

    /// Copies a possibly-unaligned row into an aligned tile.
    #[inline(always)]
    #[must_use]
    pub fn from_row(row: &[f64; TILE]) -> Self {
        F64Tile(*row)
    }

    /// Lane mask of `self > o` (strict).
    #[inline(always)]
    #[must_use]
    pub fn gt_mask(self, o: Self) -> u8 {
        let mut m = 0u8;
        for i in 0..TILE {
            m |= u8::from(self.0[i] > o.0[i]) << i;
        }
        m
    }

    /// Lane mask of `self < o` (strict).
    #[inline(always)]
    #[must_use]
    pub fn lt_mask(self, o: Self) -> u8 {
        let mut m = 0u8;
        for i in 0..TILE {
            m |= u8::from(self.0[i] < o.0[i]) << i;
        }
        m
    }

    /// Lane mask of `self >= o`.
    #[inline(always)]
    #[must_use]
    pub fn ge_mask(self, o: Self) -> u8 {
        let mut m = 0u8;
        for i in 0..TILE {
            m |= u8::from(self.0[i] >= o.0[i]) << i;
        }
        m
    }

    /// Per-lane select: `on` where the mask bit is set, `off` elsewhere.
    #[inline(always)]
    #[must_use]
    pub fn blend(mask: u8, on: Self, off: Self) -> Self {
        let mut out = off;
        for i in 0..TILE {
            if mask >> i & 1 == 1 {
                out.0[i] = on.0[i];
            }
        }
        out
    }

    /// Exact sign flip (bitwise, so `-0.0` and infinities behave like
    /// IEEE negation) on every lane whose mask bit is **clear** — the
    /// wide form of multiplying by a ±1 history word.
    #[inline(always)]
    #[must_use]
    pub fn neg_where_clear(self, mask: u8) -> Self {
        let mut out = self;
        for i in 0..TILE {
            let sign = u64::from(!mask >> i & 1) << 63;
            out.0[i] = f64::from_bits(out.0[i].to_bits() ^ sign);
        }
        out
    }
}

// Lane-wise arithmetic. Operator association in the wide kernel is
// chosen to mirror the scalar loop-filter expressions exactly, so the
// elementwise semantics here must stay plain `a ⊕ b` per lane.
impl std::ops::Add for F64Tile {
    type Output = Self;
    #[inline(always)]
    fn add(mut self, o: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(&o.0) {
            *a += b;
        }
        self
    }
}

impl std::ops::Sub for F64Tile {
    type Output = Self;
    #[inline(always)]
    fn sub(mut self, o: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(&o.0) {
            *a -= b;
        }
        self
    }
}

impl std::ops::Mul for F64Tile {
    type Output = Self;
    #[inline(always)]
    fn mul(mut self, o: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(&o.0) {
            *a *= b;
        }
        self
    }
}

/// The per-tile loop-filter constants, hoisted out of the clock loop
/// once per chunk.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TileConsts {
    pub leak: F64Tile,
    pub sat: F64Tile,
    pub off: F64Tile,
    pub hyst: F64Tile,
    pub mis: F64Tile,
    pub isi: F64Tile,
    pub b1: F64Tile,
    pub a1: F64Tile,
    pub c1: F64Tile,
    pub a2: F64Tile,
}

/// The per-clock rows a tile step consumes: the impaired input and the
/// four pre-multiplied noise rows.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TileRows {
    pub u: F64Tile,
    pub z1: F64Tile,
    pub z2: F64Tile,
    pub zc: F64Tile,
    pub zr: F64Tile,
}

/// One scalar lane through one modulator clock — the exact expression
/// tree of `SigmaDelta2::step` (and therefore of both tile kernels).
/// Returns `(comparator_positive, saturated_either_stage)`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_lane(
    x1: &mut f64,
    x2: &mut f64,
    leak: f64,
    sat: f64,
    off: f64,
    hyst: f64,
    mis: f64,
    isi: f64,
    b1: f64,
    a1: f64,
    c1: f64,
    a2: f64,
    u: f64,
    z1: f64,
    z2: f64,
    zc: f64,
    zr: f64,
    comp_last_pos: bool,
    dac_last_pos: bool,
) -> (bool, bool) {
    // Comparator decision from the previous x2 (delaying loop):
    // threshold = offset − h·last + noise, with last = ±1.0.
    let last = if comp_last_pos { 1.0 } else { -1.0 };
    let threshold = off - hyst * last + zc;
    let vpos = *x2 >= threshold;
    // 1-bit DAC: positive-level mismatch, rising-edge ISI,
    // multiplicative reference noise.
    let level = if vpos { 1.0 + mis } else { -1.0 };
    let rising = vpos && !dac_last_pos;
    let level = if rising { level * (1.0 - isi) } else { level };
    let vf = level * (1.0 + zr);
    // Both integrators, saturating exactly like ScIntegrator::update.
    let x1_old = *x1;
    let next1 = leak * x1_old + (b1 * u - a1 * vf) + z1;
    let sat1 = next1 > sat || next1 < -sat;
    *x1 = next1.clamp(-sat, sat);
    let next2 = leak * *x2 + (c1 * x1_old - a2 * vf) + z2;
    let sat2 = next2 > sat || next2 < -sat;
    *x2 = next2.clamp(-sat, sat);
    (vpos, sat1 || sat2)
}

/// The portable scalar tile body: [`TILE`] lanes through [`step_lane`]
/// in lane order. Always compiled — it is the oracle the wide kernel is
/// tested against, and the default [`step_tile`].
#[cfg_attr(feature = "wide-lanes", allow(dead_code))]
pub(crate) fn step_tile_scalar(
    x1: &mut F64Tile,
    x2: &mut F64Tile,
    c: &TileConsts,
    rows: &TileRows,
    comp_last: u8,
    dac_last: u8,
) -> (u8, u8) {
    let mut vpos8 = 0u8;
    let mut sat8 = 0u8;
    for i in 0..TILE {
        let (vpos, satd) = step_lane(
            &mut x1.0[i],
            &mut x2.0[i],
            c.leak.0[i],
            c.sat.0[i],
            c.off.0[i],
            c.hyst.0[i],
            c.mis.0[i],
            c.isi.0[i],
            c.b1.0[i],
            c.a1.0[i],
            c.c1.0[i],
            c.a2.0[i],
            rows.u.0[i],
            rows.z1.0[i],
            rows.z2.0[i],
            rows.zc.0[i],
            rows.zr.0[i],
            comp_last >> i & 1 == 1,
            dac_last >> i & 1 == 1,
        );
        vpos8 |= u8::from(vpos) << i;
        sat8 |= u8::from(satd) << i;
    }
    (vpos8, sat8)
}

/// The explicit wide-ops tile body (`wide-lanes`): branch-free
/// whole-tile passes, with the ±1 histories and comparator decisions as
/// packed `u8` lane masks. Bit-identical to [`step_tile_scalar`] —
/// every select is a mask blend over values computed with the same
/// association, and the ±1 multiplies become exact sign flips.
#[cfg_attr(not(feature = "wide-lanes"), allow(dead_code))]
pub(crate) fn step_tile_wide(
    x1: &mut F64Tile,
    x2: &mut F64Tile,
    c: &TileConsts,
    rows: &TileRows,
    comp_last: u8,
    dac_last: u8,
) -> (u8, u8) {
    let one = F64Tile::splat(1.0);
    // threshold = off − hyst·(±1) + zc: the ±1 multiply is an exact
    // sign flip on the lanes whose history bit is clear.
    let h = c.hyst.neg_where_clear(comp_last);
    let threshold = c.off - h + rows.zc;
    let vpos8 = x2.ge_mask(threshold);
    // DAC level: +1+mismatch on positive lanes, −1 elsewhere; rising
    // edges (positive now, negative last) additionally scale by 1−isi.
    let rising = vpos8 & !dac_last;
    let level = F64Tile::blend(vpos8, one + c.mis, F64Tile::splat(-1.0));
    let level = F64Tile::blend(rising, level * (one - c.isi), level);
    let vf = level * (one + rows.zr);
    // First integrator: next = leak·x1 + (b1·u − a1·vf) + z1, then the
    // clamp written as compare+blend (identical to f64::clamp for every
    // finite and NaN input).
    let x1_old = *x1;
    let next1 = c.leak * x1_old + (c.b1 * rows.u - c.a1 * vf) + rows.z1;
    let neg_sat = c.sat.neg_where_clear(0);
    let hi1 = next1.gt_mask(c.sat);
    let lo1 = next1.lt_mask(neg_sat);
    *x1 = F64Tile::blend(hi1, c.sat, F64Tile::blend(lo1, neg_sat, next1));
    // Second integrator, fed by the *previous* first-stage output.
    let next2 = c.leak * *x2 + (c.c1 * x1_old - c.a2 * vf) + rows.z2;
    let hi2 = next2.gt_mask(c.sat);
    let lo2 = next2.lt_mask(neg_sat);
    *x2 = F64Tile::blend(hi2, c.sat, F64Tile::blend(lo2, neg_sat, next2));
    (vpos8, hi1 | lo1 | hi2 | lo2)
}

#[cfg(not(feature = "wide-lanes"))]
pub(crate) use step_tile_scalar as step_tile;
/// The tile kernel the bank's loop filter runs on full tiles: the wide
/// body with `--features wide-lanes`, the scalar tile loop otherwise.
#[cfg(feature = "wide-lanes")]
pub(crate) use step_tile_wide as step_tile;

/// True when this build steps full tiles with the explicit wide-ops
/// kernel (`--features wide-lanes`); false when it runs the portable
/// scalar tile loop.
#[must_use]
pub const fn wide_lanes() -> bool {
    cfg!(feature = "wide-lanes")
}

/// One hot state or coefficient row stored as aligned tiles. Logical
/// length is the bank's lane count; the slack lanes of a partial final
/// tile hold `0.0` and are never stepped (the loop filter handles them
/// with scalar [`step_lane`] calls on the real lanes only).
#[derive(Debug, Clone, Default)]
pub(crate) struct TileRow {
    tiles: Vec<F64Tile>,
    len: usize,
}

impl TileRow {
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "lane {i} out of range ({} lanes)", self.len);
        self.tiles[i / TILE].0[i % TILE]
    }

    pub fn set(&mut self, i: usize, v: f64) {
        assert!(i < self.len, "lane {i} out of range ({} lanes)", self.len);
        self.tiles[i / TILE].0[i % TILE] = v;
    }

    pub fn push(&mut self, v: f64) {
        if self.len.is_multiple_of(TILE) {
            self.tiles.push(F64Tile::ZERO);
        }
        self.tiles[self.len / TILE].0[self.len % TILE] = v;
        self.len += 1;
    }

    /// Removes lane `i`, shifting every later lane down by one (exactly
    /// `Vec::remove` on the flattened row) and re-padding the vacated
    /// slot with `0.0`.
    pub fn remove(&mut self, i: usize) -> f64 {
        let out = self.get(i);
        for j in i..self.len - 1 {
            let next = self.tiles[(j + 1) / TILE].0[(j + 1) % TILE];
            self.tiles[j / TILE].0[j % TILE] = next;
        }
        self.len -= 1;
        if self.len.is_multiple_of(TILE) {
            self.tiles.pop();
        } else {
            self.tiles[self.len / TILE].0[self.len % TILE] = 0.0;
        }
        out
    }

    /// Tile `t` (lanes `t*TILE .. (t+1)*TILE`).
    #[inline(always)]
    pub fn tile(&self, t: usize) -> &F64Tile {
        &self.tiles[t]
    }

    /// Stores a whole tile back (the chunk loop's register write-back).
    #[inline(always)]
    pub fn set_tile(&mut self, t: usize, v: F64Tile) {
        self.tiles[t] = v;
    }
}

/// One bit-sliced ±1 history row: bit `lane % 64` of word `lane / 64`
/// is set when that lane's last value was +1. Bits at or above the
/// logical length are always zero.
#[derive(Debug, Clone, Default)]
pub(crate) struct BitRow {
    words: Vec<u64>,
    len: usize,
}

impl BitRow {
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "lane {i} out of range ({} lanes)", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "lane {i} out of range ({} lanes)", self.len);
        let bit = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= bit;
        } else {
            self.words[i / 64] &= !bit;
        }
    }

    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if v {
            self.words[self.len / 64] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Removes lane `i`: every higher lane's bit shifts down one
    /// position, across word boundaries.
    pub fn remove(&mut self, i: usize) -> bool {
        let out = self.get(i);
        let w = i / 64;
        let b = i % 64;
        let low = self.words[w] & ((1u64 << b) - 1);
        let high = if b < 63 {
            (self.words[w] >> (b + 1)) << b
        } else {
            0
        };
        self.words[w] = low | high;
        for j in w + 1..self.words.len() {
            self.words[j - 1] |= (self.words[j] & 1) << 63;
            self.words[j] >>= 1;
        }
        self.len -= 1;
        if self.words.len() > self.len.div_ceil(64) {
            self.words.pop();
        }
        out
    }

    /// The 8-lane mask byte of tile `t` (only meaningful for full
    /// tiles).
    #[inline(always)]
    pub fn byte(&self, t: usize) -> u8 {
        (self.words[t / 8] >> (8 * (t % 8))) as u8
    }

    /// Stores tile `t`'s 8-lane mask byte (full tiles only: all eight
    /// bits must be real lanes, or zero bits above the length would be
    /// clobbered).
    #[inline(always)]
    pub fn set_byte(&mut self, t: usize, v: u8) {
        let w = t / 8;
        let shift = 8 * (t % 8);
        self.words[w] = self.words[w] & !(0xffu64 << shift) | (u64::from(v) << shift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic value stream for kernel cross-checks.
    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Small magnitudes around zero, the loop filter's regime.
            ((self.0 >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        }
        fn tile(&mut self, scale: f64) -> F64Tile {
            let mut t = F64Tile::ZERO;
            for v in &mut t.0 {
                *v = self.next_f64() * scale;
            }
            t
        }
    }

    #[test]
    fn wide_and_scalar_tile_kernels_are_bit_identical() {
        let mut rng = Lcg(0xfeed_beef);
        for case in 0..200 {
            let consts = TileConsts {
                leak: rng.tile(0.05) + F64Tile::splat(0.95),
                sat: rng.tile(0.2) + F64Tile::splat(1.0),
                off: rng.tile(0.01),
                hyst: rng.tile(0.01),
                mis: rng.tile(0.01),
                isi: rng.tile(0.01),
                b1: rng.tile(0.5),
                a1: rng.tile(0.5),
                c1: rng.tile(0.5),
                a2: rng.tile(0.5),
            };
            let mut x1a = rng.tile(2.0);
            let mut x2a = rng.tile(2.0);
            let mut x1b = x1a;
            let mut x2b = x2a;
            let mut cl = (case % 251) as u8;
            let mut dl = (case % 241) as u8;
            for _ in 0..32 {
                let rows = TileRows {
                    u: rng.tile(0.8),
                    z1: rng.tile(0.001),
                    z2: rng.tile(0.001),
                    zc: rng.tile(0.001),
                    zr: rng.tile(0.001),
                };
                let (va, sa) = step_tile_scalar(&mut x1a, &mut x2a, &consts, &rows, cl, dl);
                let (vb, sb) = step_tile_wide(&mut x1b, &mut x2b, &consts, &rows, cl, dl);
                assert_eq!(va, vb, "comparator masks diverged");
                assert_eq!(sa, sb, "saturation masks diverged");
                for i in 0..TILE {
                    assert_eq!(x1a.0[i].to_bits(), x1b.0[i].to_bits(), "x1 lane {i}");
                    assert_eq!(x2a.0[i].to_bits(), x2b.0[i].to_bits(), "x2 lane {i}");
                }
                cl = va;
                dl = va;
            }
        }
    }

    #[test]
    fn tile_row_push_remove_matches_vec_semantics() {
        let mut row = TileRow::default();
        let mut model: Vec<f64> = Vec::new();
        for i in 0..23 {
            row.push(i as f64);
            model.push(i as f64);
        }
        for &at in &[22usize, 0, 7, 8, 10, 3] {
            assert_eq!(row.remove(at), model.remove(at));
            for (i, &v) in model.iter().enumerate() {
                assert_eq!(row.get(i), v, "lane {i} after removing {at}");
            }
        }
        // Slack lanes of the final partial tile stay zero-padded.
        let tiles = model.len().div_ceil(TILE);
        for slack in model.len()..tiles * TILE {
            assert_eq!(row.tile(slack / TILE).0[slack % TILE], 0.0);
        }
    }

    #[test]
    fn bit_row_remove_shifts_across_word_boundaries() {
        let mut row = BitRow::default();
        let mut model: Vec<bool> = Vec::new();
        for i in 0..150 {
            let v = i % 3 == 0 || i % 7 == 0;
            row.push(v);
            model.push(v);
        }
        for &at in &[149usize, 0, 63, 64, 65, 100, 1] {
            assert_eq!(row.remove(at), model.remove(at));
            for (i, &v) in model.iter().enumerate() {
                assert_eq!(row.get(i), v, "lane {i} after removing {at}");
            }
        }
        // The invariant the loop filter relies on: bits above the
        // logical length are zero, so tile byte extraction needs no
        // masking.
        for (w, &word) in row.words.iter().enumerate() {
            let valid = model.len().saturating_sub(w * 64).min(64);
            if valid < 64 {
                assert_eq!(word >> valid, 0, "stray bits above the length");
            }
        }
    }
}

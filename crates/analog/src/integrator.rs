//! Switched-capacitor integrator with finite-gain leak, saturation, and
//! sampled noise.
//!
//! Each ΣΔ stage (paper Fig. 6) is a fully-differential SC integrator. In
//! the discrete-time behavioral model one clock period performs
//!
//! ```text
//! x[n] = p · x[n−1] + gain · u[n−1] + noise,   p = A / (A + 1)
//! ```
//!
//! where `A` is the op-amp DC gain (`p → 1` for an ideal op-amp: the
//! familiar "leaky integrator" model of finite gain) and the output is
//! clamped at the supply-limited saturation level.

use crate::noise::NoiseSource;

/// A leaky, saturating, noisy discrete-time integrator.
#[derive(Debug, Clone)]
pub struct ScIntegrator {
    pub(crate) state: f64,
    /// Pole location `p = A/(A+1)`.
    pub(crate) leak: f64,
    /// Output clamp in full-scale units.
    pub(crate) saturation: f64,
    /// Per-sample additive noise sigma (input-referred, FS units).
    pub(crate) noise_sigma: f64,
    pub(crate) noise: NoiseSource,
    /// Set when the last update hit the clamp.
    pub(crate) saturated: bool,
}

impl ScIntegrator {
    /// Creates an integrator.
    ///
    /// `dc_gain` may be `f64::INFINITY` for a lossless integrator.
    ///
    /// # Panics
    ///
    /// Panics if `dc_gain <= 1` or `saturation <= 0` (static circuit
    /// sizing errors; user-facing validation happens in
    /// [`crate::nonideal::NonIdealities::validate`]).
    pub fn new(dc_gain: f64, saturation: f64, noise_sigma: f64, noise: NoiseSource) -> Self {
        assert!(dc_gain > 1.0, "DC gain must exceed 1");
        assert!(saturation > 0.0, "saturation must be positive");
        let leak = if dc_gain.is_infinite() {
            1.0
        } else {
            dc_gain / (dc_gain + 1.0)
        };
        ScIntegrator {
            state: 0.0,
            leak,
            saturation,
            noise_sigma,
            noise,
            saturated: false,
        }
    }

    /// Integrates one weighted input sample and returns the new state.
    pub fn update(&mut self, input: f64) -> f64 {
        let mut next = self.leak * self.state + input + self.noise.gaussian(self.noise_sigma);
        if next > self.saturation {
            next = self.saturation;
            self.saturated = true;
        } else if next < -self.saturation {
            next = -self.saturation;
            self.saturated = true;
        } else {
            self.saturated = false;
        }
        self.state = next;
        next
    }

    /// Current integrator state.
    pub fn state(&self) -> f64 {
        self.state
    }

    /// True when the most recent update clipped at the rails.
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Pole location `p` (1.0 = ideal).
    pub fn leak(&self) -> f64 {
        self.leak
    }

    /// Resets the state (keeps the noise stream position).
    pub fn reset(&mut self) {
        self.state = 0.0;
        self.saturated = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(dc_gain: f64, sat: f64) -> ScIntegrator {
        ScIntegrator::new(dc_gain, sat, 0.0, NoiseSource::from_seed(0))
    }

    #[test]
    fn ideal_integrator_accumulates_exactly() {
        let mut int = quiet(f64::INFINITY, 100.0);
        for _ in 0..10 {
            int.update(0.5);
        }
        assert!((int.state() - 5.0).abs() < 1e-12);
        assert!(!int.is_saturated());
    }

    #[test]
    fn finite_gain_leaks_to_a_plateau() {
        // With pole p and constant input u the state converges to
        // u / (1 - p) = u (A + 1).
        let a = 100.0;
        let mut int = quiet(a, 1e6);
        let mut last = 0.0;
        for _ in 0..20_000 {
            last = int.update(0.01);
        }
        let expected = 0.01 * (a + 1.0);
        assert!(
            (last - expected).abs() / expected < 1e-6,
            "{last} vs {expected}"
        );
    }

    #[test]
    fn leak_value_matches_formula() {
        let int = quiet(4000.0, 1.0);
        assert!((int.leak() - 4000.0 / 4001.0).abs() < 1e-15);
        assert_eq!(quiet(f64::INFINITY, 1.0).leak(), 1.0);
    }

    #[test]
    fn saturation_clamps_and_flags() {
        let mut int = quiet(f64::INFINITY, 1.0);
        for _ in 0..5 {
            int.update(0.6);
        }
        assert_eq!(int.state(), 1.0);
        assert!(int.is_saturated());
        // Recovers once the drive reverses.
        int.update(-0.4);
        assert!(!int.is_saturated());
        assert!((int.state() - 0.6).abs() < 1e-12);
        // Negative rail too.
        for _ in 0..10 {
            int.update(-0.9);
        }
        assert_eq!(int.state(), -1.0);
        assert!(int.is_saturated());
    }

    #[test]
    fn noise_is_injected_per_sample() {
        let mut noisy = ScIntegrator::new(f64::INFINITY, 1e9, 0.1, NoiseSource::from_seed(4));
        let mut sum_sq = 0.0;
        let n = 50_000;
        let mut prev = 0.0;
        for _ in 0..n {
            let s = noisy.update(0.0);
            let inc = s - prev;
            prev = s;
            sum_sq += inc * inc;
        }
        let sigma = (sum_sq / n as f64).sqrt();
        assert!((sigma - 0.1).abs() < 0.005, "per-step noise sigma {sigma}");
    }

    #[test]
    fn reset_clears_state_only() {
        let mut int = quiet(f64::INFINITY, 1.0);
        int.update(0.9);
        int.update(0.9);
        assert!(int.is_saturated());
        int.reset();
        assert_eq!(int.state(), 0.0);
        assert!(!int.is_saturated());
    }

    #[test]
    #[should_panic(expected = "DC gain")]
    fn unit_gain_is_rejected() {
        let _ = quiet(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "saturation")]
    fn zero_saturation_is_rejected() {
        let _ = quiet(10.0, 0.0);
    }
}

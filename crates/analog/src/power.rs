//! Supply- and clock-scaled power model of the sensor chip.
//!
//! The paper reports a single operating point: **11.5 mW at 5 V supply and
//! 128 kHz sampling frequency** (§3.1). The behavioral model splits that
//! into a bias (static) part proportional to `Vdd` and a switched-
//! capacitor (dynamic) part proportional to `Vdd²·fs`, the standard
//! first-order scaling of an SC circuit:
//!
//! ```text
//! P(fs, Vdd) = I_bias · Vdd + C_eff · Vdd² · fs
//! ```
//!
//! The split at the anchor point is 60 % bias / 40 % dynamic — typical for
//! a 0.8 µm fully-differential SC design whose op-amp bias dominates. The
//! A2 ablation uses this model to price the paper's "increased conversion
//! rate would be desirable" against its power cost.

use tonos_mems::units::Volts;

use crate::AnalogError;

/// Anchored power model of the readout chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Total bias current in amperes.
    bias_current: f64,
    /// Effective switched capacitance in farads.
    switched_capacitance: f64,
}

/// The paper's measured operating point.
pub const PAPER_POWER_W: f64 = 11.5e-3;
/// The paper's supply voltage.
pub const PAPER_SUPPLY_V: f64 = 5.0;
/// The paper's sampling frequency.
pub const PAPER_SAMPLING_HZ: f64 = 128_000.0;

impl PowerModel {
    /// Builds a model anchored at a measured `(power, vdd, fs)` point with
    /// a given static-power fraction at that point.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] unless all quantities are
    /// positive and the static fraction lies in `[0, 1]`.
    pub fn anchored(
        power_w: f64,
        vdd: Volts,
        fs_hz: f64,
        static_fraction: f64,
    ) -> Result<Self, AnalogError> {
        if !(power_w > 0.0 && vdd.value() > 0.0 && fs_hz > 0.0) {
            return Err(AnalogError::InvalidParameter(
                "anchor power, supply, and frequency must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&static_fraction) {
            return Err(AnalogError::InvalidParameter(format!(
                "static fraction {static_fraction} must be in [0, 1]"
            )));
        }
        Ok(PowerModel {
            bias_current: static_fraction * power_w / vdd.value(),
            switched_capacitance: (1.0 - static_fraction) * power_w
                / (vdd.value() * vdd.value() * fs_hz),
        })
    }

    /// The paper's chip: 11.5 mW at 5 V / 128 kHz, 60 % bias.
    pub fn paper_default() -> Self {
        PowerModel::anchored(PAPER_POWER_W, Volts(PAPER_SUPPLY_V), PAPER_SAMPLING_HZ, 0.6)
            .expect("paper anchor is valid")
    }

    /// Power draw in watts at an operating point.
    pub fn power(&self, fs_hz: f64, vdd: Volts) -> f64 {
        let v = vdd.value();
        self.bias_current * v + self.switched_capacitance * v * v * fs_hz
    }

    /// Supply current in amperes at an operating point.
    pub fn supply_current(&self, fs_hz: f64, vdd: Volts) -> f64 {
        self.power(fs_hz, vdd) / vdd.value()
    }

    /// Energy per conversion (one modulator clock) in joules.
    pub fn energy_per_sample(&self, fs_hz: f64, vdd: Volts) -> f64 {
        self.power(fs_hz, vdd) / fs_hz
    }

    /// Energy in joules consumed by `cycles` modulator clocks at an
    /// operating point — the accounting hook the telemetry layer uses to
    /// integrate chip energy over a session without per-cycle bookkeeping.
    pub fn energy_for_cycles(&self, cycles: u64, fs_hz: f64, vdd: Volts) -> f64 {
        self.energy_per_sample(fs_hz, vdd) * cycles as f64
    }

    /// The effective switched capacitance in farads (model introspection).
    pub fn switched_capacitance(&self) -> f64 {
        self.switched_capacitance
    }

    /// The bias current in amperes (model introspection).
    pub fn bias_current(&self) -> f64 {
        self.bias_current
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_anchor_point() {
        let m = PowerModel::paper_default();
        let p = m.power(PAPER_SAMPLING_HZ, Volts(PAPER_SUPPLY_V));
        assert!((p - PAPER_POWER_W).abs() < 1e-12, "{p}");
        let i = m.supply_current(PAPER_SAMPLING_HZ, Volts(PAPER_SUPPLY_V));
        assert!((i - 2.3e-3).abs() < 1e-6, "2.3 mA at the anchor, got {i}");
    }

    #[test]
    fn power_scales_linearly_with_clock_beyond_static() {
        let m = PowerModel::paper_default();
        let p1 = m.power(128_000.0, Volts(5.0));
        let p2 = m.power(256_000.0, Volts(5.0));
        // Doubling fs adds exactly the dynamic share once more.
        let dynamic = 0.4 * PAPER_POWER_W;
        assert!((p2 - p1 - dynamic).abs() < 1e-9);
        // And never *less* power at a faster clock.
        assert!(p2 > p1);
    }

    #[test]
    fn power_drops_at_lower_supply() {
        let m = PowerModel::paper_default();
        assert!(m.power(128_000.0, Volts(3.3)) < m.power(128_000.0, Volts(5.0)));
    }

    #[test]
    fn energy_per_sample_is_tens_of_nanojoules() {
        let m = PowerModel::paper_default();
        let e = m.energy_per_sample(PAPER_SAMPLING_HZ, Volts(PAPER_SUPPLY_V));
        // 11.5 mW / 128 kHz ≈ 90 nJ per modulator clock.
        assert!((e - 89.8e-9).abs() < 1e-9, "{e}");
    }

    #[test]
    fn energy_for_cycles_integrates_the_per_sample_energy() {
        let m = PowerModel::paper_default();
        let fs = PAPER_SAMPLING_HZ;
        let vdd = Volts(PAPER_SUPPLY_V);
        // One second of modulator clocks consumes exactly the power draw.
        let e = m.energy_for_cycles(fs as u64, fs, vdd);
        assert!((e - PAPER_POWER_W).abs() < 1e-12, "{e}");
        assert_eq!(m.energy_for_cycles(0, fs, vdd), 0.0);
    }

    #[test]
    fn static_only_model_ignores_clock() {
        let m = PowerModel::anchored(10e-3, Volts(5.0), 100e3, 1.0).unwrap();
        assert_eq!(m.power(100e3, Volts(5.0)), m.power(1e6, Volts(5.0)));
        assert_eq!(m.switched_capacitance(), 0.0);
    }

    #[test]
    fn dynamic_only_model_is_proportional_to_fs() {
        let m = PowerModel::anchored(10e-3, Volts(5.0), 100e3, 0.0).unwrap();
        assert_eq!(m.bias_current(), 0.0);
        let p1 = m.power(100e3, Volts(5.0));
        let p2 = m.power(200e3, Volts(5.0));
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_anchors_are_rejected() {
        assert!(PowerModel::anchored(0.0, Volts(5.0), 1e5, 0.5).is_err());
        assert!(PowerModel::anchored(1e-3, Volts(0.0), 1e5, 0.5).is_err());
        assert!(PowerModel::anchored(1e-3, Volts(5.0), 0.0, 0.5).is_err());
        assert!(PowerModel::anchored(1e-3, Volts(5.0), 1e5, 1.5).is_err());
        assert!(PowerModel::anchored(1e-3, Volts(5.0), 1e5, -0.1).is_err());
    }
}

//! Single-bit ΣΔ modulators: the paper's 2nd-order converter and a
//! 1st-order baseline.
//!
//! The paper's converter (Fig. 6) is a fully-differential switched-
//! capacitor **second-order single-bit ΣΔ-modulator** clocked at 128 kHz.
//! The behavioral model is the standard Boser–Wooley discrete-time loop
//! with two delaying integrators and half-scale coefficients:
//!
//! ```text
//! x1[n] = p·x1[n−1] + b1·u[n−1] − a1·v[n−1]
//! x2[n] = p·x2[n−1] + c1·x1[n−1] − a2·v[n−1]
//! v[n]  = sign(x2[n])                       (±1, the output bit)
//! ```
//!
//! with `b1 = a1 = c1 = a2 = 0.5`. Charge balance forces the bitstream
//! mean to equal the input (`b1/a1 = 1`), and the quantization noise is
//! shaped by `(1 − z⁻¹)²`.
//!
//! All non-idealities come from [`NonIdealities`]: integrator leak (finite
//! op-amp gain), saturation, input-referred sampled noise, comparator
//! offset/hysteresis, and clock jitter.

use tonos_dsp::bits::PackedBits;

use crate::dac::FeedbackDac;
use crate::integrator::ScIntegrator;
use crate::noise::NoiseSource;
use crate::nonideal::NonIdealities;
use crate::quantizer::Comparator;
use crate::AnalogError;

/// The paper's modulator clock rate in Hz.
pub const PAPER_SAMPLE_RATE_HZ: f64 = 128_000.0;

/// Common interface of the single-bit modulators.
///
/// The output is always ±1 (`i8`), the value the 1-bit DAC feeds back.
pub trait DeltaSigmaModulator {
    /// Converts one input sample (full-scale ±1.0) to one output bit.
    fn step(&mut self, input: f64) -> i8;

    /// Resets all loop state (integrators, comparator, input history) but
    /// not the noise stream positions.
    fn reset(&mut self);

    /// The modulator order (noise-shaping order).
    fn order(&self) -> usize;

    /// Converts a block of samples.
    fn process(&mut self, input: &[f64]) -> Vec<i8> {
        let mut out = Vec::with_capacity(input.len());
        self.process_into(input, &mut out);
        out
    }

    /// Converts a block, appending the ±1 bits to caller-owned `out`
    /// (not cleared first) — no allocation beyond `out`'s own growth.
    fn process_into(&mut self, input: &[f64], out: &mut Vec<i8>) {
        out.extend(input.iter().map(|&u| self.step(u)));
    }

    /// Converts a block into ±1.0 floats ready for the decimation chain.
    fn process_to_f64(&mut self, input: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(input.len());
        self.process_to_f64_into(input, &mut out);
        out
    }

    /// Converts a block, appending ±1.0 floats to caller-owned `out`
    /// (not cleared first).
    fn process_to_f64_into(&mut self, input: &[f64], out: &mut Vec<f64>) {
        out.extend(input.iter().map(|&u| f64::from(self.step(u))));
    }

    /// Converts a block into a packed single-bit stream — the
    /// modulator's native output density (one bit per clock, 64 clocks
    /// per word) and the fast path into
    /// `tonos_dsp::decimator::TwoStageDecimator::process_packed`.
    fn process_packed(&mut self, input: &[f64]) -> PackedBits {
        let mut bits = PackedBits::with_capacity(input.len());
        let mut noise = Vec::new();
        self.step_block(input, &mut noise, &mut bits);
        bits
    }

    /// Converts a block, appending bits to a caller-owned packed stream
    /// (not cleared first).
    fn process_packed_into(&mut self, input: &[f64], bits: &mut PackedBits) {
        for &u in input {
            bits.push(self.step(u) > 0);
        }
    }

    /// Block conversion into caller-owned scratch — the allocation-free
    /// hot path. `noise` is a reusable buffer implementations may fill
    /// with per-block pre-drawn noisy inputs (its contents on return are
    /// unspecified); `bits` receives the packed output (appended, not
    /// cleared).
    ///
    /// **Bit-identical** to calling [`DeltaSigmaModulator::step`] per
    /// sample: implementations may reorder *independent* noise-stream
    /// draws across the block, but every stream is consumed in the same
    /// per-sample order, so the emitted bits and the final modulator
    /// state are exactly those of the scalar path. The default simply
    /// forwards to [`DeltaSigmaModulator::process_packed_into`].
    fn step_block(&mut self, input: &[f64], noise: &mut Vec<f64>, bits: &mut PackedBits) {
        let _ = noise;
        self.process_packed_into(input, bits);
    }
}

/// Loop coefficients of the 2nd-order modulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficients {
    /// First-stage input gain.
    pub b1: f64,
    /// First-stage DAC feedback gain.
    pub a1: f64,
    /// Inter-stage gain.
    pub c1: f64,
    /// Second-stage DAC feedback gain.
    pub a2: f64,
}

impl Coefficients {
    /// The classic Boser–Wooley half-scale coefficient set.
    pub fn boser_wooley() -> Self {
        Coefficients {
            b1: 0.5,
            a1: 0.5,
            c1: 0.5,
            a2: 0.5,
        }
    }

    /// Validates the coefficient set.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for non-positive or
    /// non-finite coefficients, or when `b1 != a1` (which would produce a
    /// systematic gain error between input and bitstream mean).
    pub fn validate(&self) -> Result<(), AnalogError> {
        for (name, v) in [
            ("b1", self.b1),
            ("a1", self.a1),
            ("c1", self.c1),
            ("a2", self.a2),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(AnalogError::InvalidParameter(format!(
                    "coefficient {name} = {v} must be positive and finite"
                )));
            }
        }
        if (self.b1 - self.a1).abs() > 1e-12 {
            return Err(AnalogError::InvalidParameter(format!(
                "b1 ({}) must equal a1 ({}) for unity signal gain",
                self.b1, self.a1
            )));
        }
        Ok(())
    }
}

impl Default for Coefficients {
    fn default() -> Self {
        Coefficients::boser_wooley()
    }
}

/// Second-order single-bit ΣΔ modulator (the paper's converter).
#[derive(Debug, Clone)]
pub struct SigmaDelta2 {
    pub(crate) coeffs: Coefficients,
    pub(crate) int1: ScIntegrator,
    pub(crate) int2: ScIntegrator,
    pub(crate) comparator: Comparator,
    pub(crate) dac: FeedbackDac,
    pub(crate) input_noise: NoiseSource,
    pub(crate) nonideal: NonIdealities,
    pub(crate) prev_input: f64,
    pub(crate) last_bit: i8,
    pub(crate) saturation_events: u64,
    pub(crate) steps: u64,
}

impl SigmaDelta2 {
    /// Builds the modulator with Boser–Wooley coefficients and the given
    /// non-idealities.
    ///
    /// # Errors
    ///
    /// Propagates [`NonIdealities::validate`] failures.
    pub fn new(nonideal: NonIdealities) -> Result<Self, AnalogError> {
        SigmaDelta2::with_coefficients(Coefficients::boser_wooley(), nonideal)
    }

    /// Builds the modulator with explicit loop coefficients.
    ///
    /// # Errors
    ///
    /// Propagates coefficient and non-ideality validation failures.
    pub fn with_coefficients(
        coeffs: Coefficients,
        nonideal: NonIdealities,
    ) -> Result<Self, AnalogError> {
        coeffs.validate()?;
        nonideal.validate()?;
        let mut root = NoiseSource::from_seed(nonideal.seed);
        let n1 = root.split();
        let n2 = root.split();
        let nc = root.split();
        let nd = root.split();
        let input_noise = root.split();
        Ok(SigmaDelta2 {
            coeffs,
            // First-stage noise is input-referred; the second stage's own
            // noise is shaped away by the first integrator's gain, so it
            // gets a much smaller share (10 %).
            int1: ScIntegrator::new(
                nonideal.opamp_dc_gain,
                nonideal.integrator_saturation,
                0.0,
                n1,
            ),
            int2: ScIntegrator::new(
                nonideal.opamp_dc_gain,
                nonideal.integrator_saturation,
                nonideal.input_noise_sigma * 0.1,
                n2,
            ),
            comparator: Comparator::new(
                nonideal.comparator_offset,
                nonideal.comparator_hysteresis,
                0.0,
                nc,
            ),
            dac: FeedbackDac::new(
                nonideal.dac_level_mismatch,
                nonideal.dac_isi,
                nonideal.reference_noise_sigma,
                nd,
            ),
            input_noise,
            nonideal,
            prev_input: 0.0,
            last_bit: 1,
            saturation_events: 0,
            steps: 0,
        })
    }

    /// The loop coefficients in use.
    pub fn coefficients(&self) -> Coefficients {
        self.coeffs
    }

    /// The configured non-idealities.
    pub fn nonidealities(&self) -> &NonIdealities {
        &self.nonideal
    }

    /// Number of integrator saturation events since construction/reset —
    /// the overload telltale (a healthy modulator shows none for inputs
    /// within the stable range).
    pub fn saturation_events(&self) -> u64 {
        self.saturation_events
    }

    /// Total converted samples since construction/reset.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Fraction of steps that saturated an integrator.
    pub fn overload_ratio(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.saturation_events as f64 / self.steps as f64
        }
    }
}

impl DeltaSigmaModulator for SigmaDelta2 {
    fn step(&mut self, input: f64) -> i8 {
        // Sampled-input impairments: kT/C-class noise plus jitter error
        // proportional to the per-sample slew.
        let jitter = self.nonideal.jitter_slew_gain * (input - self.prev_input);
        let u = input
            + self.input_noise.gaussian(self.nonideal.input_noise_sigma)
            + self.input_noise.gaussian(jitter.abs());
        self.prev_input = input;

        // Decision from the *previous* second-integrator state (delaying
        // loop), then state updates using the old x1.
        let v = self.comparator.decide(self.int2.state());
        let vf = self.dac.convert(v);
        let x1_old = self.int1.state();
        self.int1.update(self.coeffs.b1 * u - self.coeffs.a1 * vf);
        self.int2
            .update(self.coeffs.c1 * x1_old - self.coeffs.a2 * vf);
        if self.int1.is_saturated() || self.int2.is_saturated() {
            self.saturation_events += 1;
        }
        self.steps += 1;
        self.last_bit = v;
        v
    }

    fn reset(&mut self) {
        self.int1.reset();
        self.int2.reset();
        self.comparator.reset();
        self.dac.reset();
        self.prev_input = 0.0;
        self.last_bit = 1;
        self.saturation_events = 0;
        self.steps = 0;
    }

    fn order(&self) -> usize {
        2
    }

    /// Two-pass block conversion, bit-identical to the per-sample path.
    ///
    /// Pass 1 pre-draws the sampled-input impairments (kT/C noise and
    /// jitter error) into `noise`; pass 2 runs the loop filter over the
    /// noisy inputs and packs the bits a word at a time. The reordering
    /// is sound because every component owns an *independent* split
    /// noise stream: the input-noise stream is consumed in the same
    /// per-sample order in pass 1 as `step` consumes it, and the
    /// integrator/DAC streams are consumed in the same order in pass 2 —
    /// so all draws, bits, and final state match the scalar path exactly
    /// (asserted in this module's tests).
    fn step_block(&mut self, input: &[f64], noise: &mut Vec<f64>, bits: &mut PackedBits) {
        noise.clear();
        noise.reserve(input.len());
        let sigma = self.nonideal.input_noise_sigma;
        let slew_gain = self.nonideal.jitter_slew_gain;
        for &x in input {
            let jitter = slew_gain * (x - self.prev_input);
            self.prev_input = x;
            noise.push(
                x + self.input_noise.gaussian(sigma) + self.input_noise.gaussian(jitter.abs()),
            );
        }
        let Coefficients { b1, a1, c1, a2 } = self.coeffs;
        let mut word = 0u64;
        let mut filled = 0usize;
        let mut saturations = 0u64;
        for &u in noise.iter() {
            let v = self.comparator.decide(self.int2.state());
            let vf = self.dac.convert(v);
            let x1_old = self.int1.state();
            self.int1.update(b1 * u - a1 * vf);
            self.int2.update(c1 * x1_old - a2 * vf);
            if self.int1.is_saturated() || self.int2.is_saturated() {
                saturations += 1;
            }
            self.last_bit = v;
            if v > 0 {
                word |= 1 << filled;
            }
            filled += 1;
            if filled == 64 {
                bits.push_bits(word, 64);
                word = 0;
                filled = 0;
            }
        }
        bits.push_bits(word, filled);
        self.saturation_events += saturations;
        self.steps += input.len() as u64;
    }
}

/// First-order single-bit ΣΔ modulator — the classical baseline the
/// 2nd-order design is compared against (ablation A3).
#[derive(Debug, Clone)]
pub struct SigmaDelta1 {
    int: ScIntegrator,
    comparator: Comparator,
    dac: FeedbackDac,
    input_noise: NoiseSource,
    nonideal: NonIdealities,
    prev_input: f64,
}

impl SigmaDelta1 {
    /// Builds the first-order modulator.
    ///
    /// # Errors
    ///
    /// Propagates [`NonIdealities::validate`] failures.
    pub fn new(nonideal: NonIdealities) -> Result<Self, AnalogError> {
        nonideal.validate()?;
        let mut root = NoiseSource::from_seed(nonideal.seed ^ 0x1111_1111);
        let n1 = root.split();
        let nc = root.split();
        let nd = root.split();
        let input_noise = root.split();
        Ok(SigmaDelta1 {
            int: ScIntegrator::new(
                nonideal.opamp_dc_gain,
                nonideal.integrator_saturation,
                0.0,
                n1,
            ),
            comparator: Comparator::new(
                nonideal.comparator_offset,
                nonideal.comparator_hysteresis,
                0.0,
                nc,
            ),
            dac: FeedbackDac::new(
                nonideal.dac_level_mismatch,
                nonideal.dac_isi,
                nonideal.reference_noise_sigma,
                nd,
            ),
            input_noise,
            nonideal,
            prev_input: 0.0,
        })
    }
}

impl DeltaSigmaModulator for SigmaDelta1 {
    fn step(&mut self, input: f64) -> i8 {
        let jitter = self.nonideal.jitter_slew_gain * (input - self.prev_input);
        let u = input
            + self.input_noise.gaussian(self.nonideal.input_noise_sigma)
            + self.input_noise.gaussian(jitter.abs());
        self.prev_input = input;
        let v = self.comparator.decide(self.int.state());
        let vf = self.dac.convert(v);
        self.int.update(u - vf);
        v
    }

    fn reset(&mut self) {
        self.int.reset();
        self.comparator.reset();
        self.dac.reset();
        self.prev_input = 0.0;
    }

    fn order(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tonos_dsp::decimator::DecimatorConfig;
    use tonos_dsp::metrics::DynamicMetrics;
    use tonos_dsp::signal::sine_wave;
    use tonos_dsp::spectrum::Spectrum;
    use tonos_dsp::window::Window;

    fn bitstream_mean(bits: &[i8]) -> f64 {
        bits.iter().map(|&b| f64::from(b)).sum::<f64>() / bits.len() as f64
    }

    #[test]
    fn dc_charge_balance_tracks_input() {
        let mut dsm = SigmaDelta2::new(NonIdealities::ideal()).unwrap();
        for &u in &[-0.7, -0.3, 0.0, 0.2, 0.5, 0.8] {
            dsm.reset();
            let bits = dsm.process(&vec![u; 100_000]);
            let mean = bitstream_mean(&bits[1000..]);
            assert!((mean - u).abs() < 0.01, "input {u}: mean {mean}");
        }
    }

    #[test]
    fn first_order_also_tracks_dc() {
        let mut dsm = SigmaDelta1::new(NonIdealities::ideal()).unwrap();
        let bits = dsm.process(&vec![0.4; 100_000]);
        let mean = bitstream_mean(&bits[1000..]);
        assert!((mean - 0.4).abs() < 0.01, "mean {mean}");
        assert_eq!(dsm.order(), 1);
    }

    #[test]
    fn stable_for_large_but_legal_inputs() {
        let mut dsm = SigmaDelta2::new(NonIdealities::typical()).unwrap();
        let _ = dsm.process(&vec![0.85; 50_000]);
        assert!(
            dsm.overload_ratio() < 0.001,
            "overload ratio {} at 0.85 FS",
            dsm.overload_ratio()
        );
    }

    #[test]
    fn overload_is_detected_beyond_full_scale() {
        let mut dsm = SigmaDelta2::new(NonIdealities::typical()).unwrap();
        let _ = dsm.process(&vec![1.4; 20_000]);
        assert!(
            dsm.overload_ratio() > 0.05,
            "expected saturation at 1.4 FS, ratio {}",
            dsm.overload_ratio()
        );
    }

    /// End-to-end SNR through the paper's decimator for a given modulator.
    fn measured_snr<M: DeltaSigmaModulator>(dsm: &mut M, amplitude: f64) -> f64 {
        let fs = PAPER_SAMPLE_RATE_HZ;
        let n_out = 4096;
        let n_in = 128 * (n_out + 64);
        let f = Window::coherent_frequency(1000.0, n_out, 15.625);
        let stimulus = sine_wave(fs, f, amplitude, 0.0, n_in);
        let bits = dsm.process_to_f64(&stimulus);
        let mut dec = DecimatorConfig {
            output_bits: None,
            ..DecimatorConfig::paper_default()
        }
        .build()
        .unwrap();
        let out = dec.process(&bits);
        let settled = &out[out.len() - n_out..];
        let spectrum = Spectrum::from_signal(settled, 1000.0, Window::Hann).unwrap();
        DynamicMetrics::from_spectrum(&spectrum).unwrap().snr_db
    }

    #[test]
    fn ideal_second_order_beats_80_db_at_osr_128() {
        let mut dsm = SigmaDelta2::new(NonIdealities::ideal()).unwrap();
        let snr = measured_snr(&mut dsm, 0.5);
        assert!(snr > 80.0, "ideal 2nd-order SNR {snr} dB");
    }

    #[test]
    fn second_order_outperforms_first_order() {
        let mut d2 = SigmaDelta2::new(NonIdealities::ideal()).unwrap();
        let mut d1 = SigmaDelta1::new(NonIdealities::ideal()).unwrap();
        let snr2 = measured_snr(&mut d2, 0.5);
        let snr1 = measured_snr(&mut d1, 0.5);
        assert!(
            snr2 > snr1 + 15.0,
            "2nd order {snr2} dB should beat 1st order {snr1} dB by the OSR advantage"
        );
    }

    #[test]
    fn typical_nonidealities_cost_a_few_db_only() {
        let mut ideal = SigmaDelta2::new(NonIdealities::ideal()).unwrap();
        let mut typical = SigmaDelta2::new(NonIdealities::typical()).unwrap();
        let snr_i = measured_snr(&mut ideal, 0.5);
        let snr_t = measured_snr(&mut typical, 0.5);
        assert!(snr_t < snr_i, "noise must cost something");
        assert!(
            snr_t > 72.0,
            "typical chain must still beat the paper's 72 dB floor, got {snr_t}"
        );
    }

    #[test]
    fn same_seed_reproduces_bitstreams() {
        let mk = || SigmaDelta2::new(NonIdealities::typical().with_seed(77)).unwrap();
        let stim = sine_wave(PAPER_SAMPLE_RATE_HZ, 100.0, 0.5, 0.0, 4096);
        let a = mk().process(&stim);
        let b = mk().process(&stim);
        assert_eq!(a, b);
        let c = SigmaDelta2::new(NonIdealities::typical().with_seed(78))
            .unwrap()
            .process(&stim);
        assert_ne!(a, c);
    }

    #[test]
    fn reset_restores_tracking() {
        let mut dsm = SigmaDelta2::new(NonIdealities::ideal()).unwrap();
        let _ = dsm.process(&vec![0.9; 10_000]);
        dsm.reset();
        assert_eq!(dsm.saturation_events(), 0);
        assert_eq!(dsm.steps(), 0);
        let bits = dsm.process(&vec![-0.25; 50_000]);
        let mean = bitstream_mean(&bits[1000..]);
        assert!((mean + 0.25).abs() < 0.01);
    }

    #[test]
    fn invalid_coefficients_are_rejected() {
        let bad = Coefficients {
            b1: 0.5,
            a1: 0.4,
            c1: 0.5,
            a2: 0.5,
        };
        assert!(SigmaDelta2::with_coefficients(bad, NonIdealities::ideal()).is_err());
        let bad = Coefficients {
            b1: 0.0,
            a1: 0.0,
            c1: 0.5,
            a2: 0.5,
        };
        assert!(bad.validate().is_err());
        let bad = Coefficients {
            b1: f64::NAN,
            a1: f64::NAN,
            c1: 0.5,
            a2: 0.5,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn invalid_nonidealities_are_rejected_at_construction() {
        assert!(SigmaDelta2::new(NonIdealities::ideal().with_opamp_gain(0.1)).is_err());
        assert!(SigmaDelta1::new(NonIdealities::ideal().with_input_noise(-1.0)).is_err());
    }

    #[test]
    fn comparator_offset_is_suppressed_by_the_loop() {
        // A comparator offset of several mV must not shift the bitstream
        // mean measurably (it is attenuated by the loop gain).
        let base = NonIdealities::ideal();
        let offset = NonIdealities::ideal().with_comparator_offset(0.01);
        let mut clean = SigmaDelta2::new(base).unwrap();
        let mut offs = SigmaDelta2::new(offset).unwrap();
        let m_clean = bitstream_mean(&clean.process(&vec![0.3; 200_000])[1000..]);
        let m_offs = bitstream_mean(&offs.process(&vec![0.3; 200_000])[1000..]);
        assert!(
            (m_clean - m_offs).abs() < 0.002,
            "offset leaked to the output: {m_clean} vs {m_offs}"
        );
    }

    #[test]
    fn dac_isi_is_a_real_distortion_mechanism() {
        // Heavy ISI must cost tens of dB of SNR; pure level mismatch must
        // not (a 1-bit DAC is linear under static level errors).
        let mut clean = SigmaDelta2::new(NonIdealities::ideal()).unwrap();
        let mut isi = SigmaDelta2::new(NonIdealities::ideal().with_dac_isi(0.05)).unwrap();
        let mut mismatch =
            SigmaDelta2::new(NonIdealities::ideal().with_dac_level_mismatch(0.05)).unwrap();
        let snr_clean = measured_snr(&mut clean, 0.5);
        let snr_isi = measured_snr(&mut isi, 0.5);
        let snr_mismatch = measured_snr(&mut mismatch, 0.5);
        assert!(
            snr_isi < snr_clean - 10.0,
            "5% ISI must visibly degrade: {snr_clean} -> {snr_isi}"
        );
        assert!(
            snr_mismatch > snr_clean - 3.0,
            "static level mismatch is benign: {snr_clean} -> {snr_mismatch}"
        );
    }

    #[test]
    fn dac_level_mismatch_is_only_a_gain_error() {
        // DC tracking with mismatched levels: mean shifts by a gain
        // factor, not a nonlinearity — verify two DC points scale
        // consistently.
        let ni = NonIdealities::ideal().with_dac_level_mismatch(0.02);
        let mean_at = |u: f64| {
            let mut dsm = SigmaDelta2::new(ni).unwrap();
            let bits = dsm.process(&vec![u; 120_000]);
            bitstream_mean(&bits[2000..])
        };
        let m1 = mean_at(0.2);
        let m2 = mean_at(0.4);
        // Affine map: m = a·u + b; check by comparing slopes over two
        // intervals.
        let m3 = mean_at(0.6);
        let slope_a = (m2 - m1) / 0.2;
        let slope_b = (m3 - m2) / 0.2;
        assert!(
            (slope_a - slope_b).abs() < 0.03,
            "nonlinear response under pure level mismatch: {slope_a} vs {slope_b}"
        );
    }

    #[test]
    fn packed_output_matches_the_i8_bitstream() {
        let stim = sine_wave(PAPER_SAMPLE_RATE_HZ, 120.0, 0.6, 0.0, 10_000);
        let mut a = SigmaDelta2::new(NonIdealities::typical().with_seed(9)).unwrap();
        let mut b = SigmaDelta2::new(NonIdealities::typical().with_seed(9)).unwrap();
        let unpacked = a.process(&stim);
        let packed = b.process_packed(&stim);
        assert_eq!(packed.len(), unpacked.len());
        assert_eq!(
            packed,
            tonos_dsp::bits::PackedBits::from_bitstream(&unpacked)
        );
    }

    #[test]
    fn step_block_is_bit_identical_to_per_sample_steps() {
        // The block path reorders only independent noise streams, so the
        // bits must match the scalar path exactly — under full typical
        // non-idealities (all noise sources active), across multiple
        // blocks of word-unaligned lengths, with identical state left
        // behind (checked by continuing both modulators afterwards).
        let stim = sine_wave(PAPER_SAMPLE_RATE_HZ, 90.0, 0.7, 0.0, 2048 + 77);
        let mut scalar = SigmaDelta2::new(NonIdealities::typical().with_seed(41)).unwrap();
        let mut block = SigmaDelta2::new(NonIdealities::typical().with_seed(41)).unwrap();
        let mut noise = Vec::new();
        let mut got = PackedBits::new();
        // Word-unaligned split points exercise the packed splice too.
        for chunk in stim.chunks(129) {
            block.step_block(chunk, &mut noise, &mut got);
        }
        let expect = PackedBits::from_bitstream(&scalar.process(&stim));
        assert_eq!(got, expect);
        assert_eq!(block.steps(), scalar.steps());
        assert_eq!(block.saturation_events(), scalar.saturation_events());
        // Continue per-sample on both: any hidden state divergence
        // (integrators, RNG positions, prev_input) would show up here.
        let tail = sine_wave(PAPER_SAMPLE_RATE_HZ, 90.0, 0.7, 0.3, 512);
        assert_eq!(scalar.process(&tail), block.process(&tail));
    }

    #[test]
    fn into_variants_match_allocating_defaults() {
        let stim = sine_wave(PAPER_SAMPLE_RATE_HZ, 150.0, 0.5, 0.0, 1000);
        let mk = || SigmaDelta2::new(NonIdealities::typical().with_seed(3)).unwrap();
        let expect_i8 = mk().process(&stim);
        let mut got_i8 = Vec::new();
        mk().process_into(&stim, &mut got_i8);
        assert_eq!(got_i8, expect_i8);
        let expect_f64 = mk().process_to_f64(&stim);
        let mut got_f64 = Vec::new();
        mk().process_to_f64_into(&stim, &mut got_f64);
        assert_eq!(got_f64, expect_f64);
        let expect_packed = mk().process_packed(&stim);
        let mut got_packed = PackedBits::new();
        mk().process_packed_into(&stim, &mut got_packed);
        assert_eq!(got_packed, expect_packed);
        // The first-order modulator exercises the trait-default block
        // path (no override).
        let mut d1a = SigmaDelta1::new(NonIdealities::typical().with_seed(3)).unwrap();
        let mut d1b = SigmaDelta1::new(NonIdealities::typical().with_seed(3)).unwrap();
        let mut bits = PackedBits::new();
        d1b.step_block(&stim, &mut Vec::new(), &mut bits);
        assert_eq!(bits, PackedBits::from_bitstream(&d1a.process(&stim)));
    }

    #[test]
    fn accessors_expose_configuration() {
        let dsm = SigmaDelta2::new(NonIdealities::typical()).unwrap();
        assert_eq!(dsm.coefficients(), Coefficients::boser_wooley());
        assert_eq!(dsm.nonidealities(), &NonIdealities::typical());
        assert_eq!(dsm.order(), 2);
        assert_eq!(dsm.overload_ratio(), 0.0, "no steps yet");
    }
}

//! Static (DC) characterization of a ΣΔ converter.
//!
//! The paper's chip has the auxiliary voltage input specifically so "a
//! full characterization of the analog to digital conversion … can be
//! accomplished" (§3). Dynamic metrics (SNR/ENOB) live in
//! `tonos_dsp::metrics`; this module provides the *static* side every
//! datasheet reports: the DC transfer curve, best-fit gain and offset,
//! and integral nonlinearity (INL).
//!
//! The measurement procedure mirrors hardware practice: hold a DC input,
//! let the decimation chain settle, average the settled output, repeat
//! across the range, then fit a least-squares line and report residuals.

use crate::modulator::DeltaSigmaModulator;
use crate::AnalogError;

/// One point of the DC transfer curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferPoint {
    /// Applied DC input, full-scale units.
    pub input: f64,
    /// Averaged settled output, full-scale units.
    pub output: f64,
    /// Deviation from the best-fit line, in output LSB.
    pub inl_lsb: f64,
}

/// A measured DC transfer curve with its line fit.
#[derive(Debug, Clone, PartialEq)]
pub struct DcTransfer {
    /// Measured points in input order.
    pub points: Vec<TransferPoint>,
    /// Best-fit gain (ideal 1.0).
    pub gain: f64,
    /// Best-fit offset in full-scale units.
    pub offset: f64,
    /// Worst |INL| across the range, in LSB.
    pub worst_inl_lsb: f64,
    /// The LSB weight used for INL scaling.
    pub lsb: f64,
}

impl DcTransfer {
    /// Measures the transfer curve of a modulator through a caller-
    /// supplied decimation function.
    ///
    /// `decimate` receives the ±1.0 bitstream for one DC point and must
    /// return the *settled mean output* (full-scale units) — typically a
    /// `tonos_dsp` two-stage decimator with the transient discarded. The
    /// modulator is reset before every point so points are independent.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for fewer than 3 points,
    /// a non-positive range or samples count, a non-positive LSB, or a
    /// degenerate fit.
    pub fn measure<M, F>(
        dsm: &mut M,
        points: usize,
        range: f64,
        samples_per_point: usize,
        lsb: f64,
        mut decimate: F,
    ) -> Result<Self, AnalogError>
    where
        M: DeltaSigmaModulator,
        F: FnMut(&[f64]) -> f64,
    {
        if points < 3 {
            return Err(AnalogError::InvalidParameter(
                "need at least 3 transfer points".into(),
            ));
        }
        if !(range > 0.0 && range < 1.0) {
            return Err(AnalogError::InvalidParameter(format!(
                "range {range} must be in (0, 1)"
            )));
        }
        if samples_per_point == 0 {
            return Err(AnalogError::InvalidParameter(
                "samples per point must be positive".into(),
            ));
        }
        if !(lsb > 0.0) {
            return Err(AnalogError::InvalidParameter("LSB must be positive".into()));
        }

        let mut inputs = Vec::with_capacity(points);
        let mut outputs = Vec::with_capacity(points);
        // One stimulus and one bitstream buffer reused across all points
        // (the non-allocating `process_to_f64_into` path).
        let mut stimulus = vec![0.0; samples_per_point];
        let mut bits = Vec::with_capacity(samples_per_point);
        for i in 0..points {
            let u = -range + 2.0 * range * i as f64 / (points - 1) as f64;
            dsm.reset();
            stimulus.fill(u);
            bits.clear();
            dsm.process_to_f64_into(&stimulus, &mut bits);
            inputs.push(u);
            outputs.push(decimate(&bits));
        }

        // Least-squares line fit.
        let n = points as f64;
        let sx: f64 = inputs.iter().sum();
        let sy: f64 = outputs.iter().sum();
        let sxx: f64 = inputs.iter().map(|x| x * x).sum();
        let sxy: f64 = inputs.iter().zip(&outputs).map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-18 {
            return Err(AnalogError::InvalidParameter(
                "degenerate input spacing".into(),
            ));
        }
        let gain = (n * sxy - sx * sy) / denom;
        let offset = (sy - gain * sx) / n;

        let mut worst = 0.0_f64;
        let measured: Vec<TransferPoint> = inputs
            .iter()
            .zip(&outputs)
            .map(|(&input, &output)| {
                let inl_lsb = (output - (gain * input + offset)) / lsb;
                worst = worst.max(inl_lsb.abs());
                TransferPoint {
                    input,
                    output,
                    inl_lsb,
                }
            })
            .collect();

        Ok(DcTransfer {
            points: measured,
            gain,
            offset,
            worst_inl_lsb: worst,
            lsb,
        })
    }

    /// Offset expressed in LSB.
    pub fn offset_lsb(&self) -> f64 {
        self.offset / self.lsb
    }

    /// Gain error relative to unity, in percent.
    pub fn gain_error_percent(&self) -> f64 {
        (self.gain - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulator::SigmaDelta2;
    use crate::nonideal::NonIdealities;

    /// Decimation stand-in for unit tests: the mean of the bitstream tail
    /// (charge balance makes it the converter's DC output).
    fn tail_mean(bits: &[f64]) -> f64 {
        let tail = &bits[bits.len() / 4..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    #[test]
    fn ideal_loop_measures_near_unity_gain_and_zero_offset() {
        let mut dsm = SigmaDelta2::new(NonIdealities::ideal()).unwrap();
        let t = DcTransfer::measure(&mut dsm, 9, 0.8, 60_000, 1.0 / 2048.0, tail_mean).unwrap();
        assert!((t.gain - 1.0).abs() < 0.01, "gain {}", t.gain);
        assert!(t.offset_lsb().abs() < 6.0, "offset {} LSB", t.offset_lsb());
        assert!(t.worst_inl_lsb < 6.0, "INL {} LSB", t.worst_inl_lsb);
        assert_eq!(t.points.len(), 9);
        // Points span the requested range symmetrically.
        assert!((t.points[0].input + 0.8).abs() < 1e-12);
        assert!((t.points[8].input - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dac_level_mismatch_appears_as_gain_or_offset_not_inl() {
        let mut dsm =
            SigmaDelta2::new(NonIdealities::ideal().with_dac_level_mismatch(0.02)).unwrap();
        let t = DcTransfer::measure(&mut dsm, 9, 0.8, 60_000, 1.0 / 2048.0, tail_mean).unwrap();
        // The 2 % level error must show up in the affine terms…
        assert!(
            (t.gain - 1.0).abs() > 0.005 || t.offset_lsb().abs() > 10.0,
            "mismatch hidden: gain {} offset {} LSB",
            t.gain,
            t.offset_lsb()
        );
        // …while the INL stays at the quantization scale (1-bit linearity).
        assert!(t.worst_inl_lsb < 8.0, "INL {} LSB", t.worst_inl_lsb);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut dsm = SigmaDelta2::new(NonIdealities::ideal()).unwrap();
        let lsb = 1.0 / 2048.0;
        assert!(DcTransfer::measure(&mut dsm, 2, 0.8, 100, lsb, tail_mean).is_err());
        assert!(DcTransfer::measure(&mut dsm, 5, 0.0, 100, lsb, tail_mean).is_err());
        assert!(DcTransfer::measure(&mut dsm, 5, 1.5, 100, lsb, tail_mean).is_err());
        assert!(DcTransfer::measure(&mut dsm, 5, 0.8, 0, lsb, tail_mean).is_err());
        assert!(DcTransfer::measure(&mut dsm, 5, 0.8, 100, 0.0, tail_mean).is_err());
    }

    #[test]
    fn accessors_are_consistent() {
        let mut dsm = SigmaDelta2::new(NonIdealities::ideal()).unwrap();
        let t = DcTransfer::measure(&mut dsm, 5, 0.5, 30_000, 1.0 / 2048.0, tail_mean).unwrap();
        assert!((t.offset_lsb() - t.offset / t.lsb).abs() < 1e-15);
        assert!((t.gain_error_percent() - (t.gain - 1.0) * 100.0).abs() < 1e-12);
    }
}

//! The synchronized 2:1 row/column analog multiplexers (paper Fig. 4).
//!
//! "The transducer elements of a sensor array are connected via two
//! synchronized analog multiplexers to the readout circuit … This enables
//! a modular design, which can be easily extended to larger array sizes.
//! The settling when switching between different sensor elements is
//! limited by the signal bandwidth of the ΣΔ-AD-converter." (§2.2)
//!
//! Electrically, switching channels leaves charge from the previous
//! element on the shared readout node; the model applies a first-order
//! exponential blend between the previous and the newly selected
//! capacitance with a configurable time constant in modulator clocks.
//! (The *system-level* settling — how many decimated output samples to
//! discard — is dominated by the decimation filter's memory and handled
//! by the scan controller in `tonos-core`.)

use tonos_mems::units::Farads;

use crate::AnalogError;

/// Row/column analog multiplexer pair with a settling transient.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogMux {
    rows: usize,
    cols: usize,
    selected: (usize, usize),
    /// First-order settling time constant in modulator clock periods.
    tau_clocks: f64,
    /// Residual weight of the previously selected channel (decays by
    /// `exp(-1/tau)` each clock).
    residual: f64,
    /// Capacitance of the previously selected channel at switch time.
    previous_cap: Farads,
    /// Number of actual channel switches (no-op re-selects excluded).
    switch_events: u64,
}

impl AnalogMux {
    /// Creates the mux for an array of the given dimensions.
    ///
    /// `tau_clocks` is the analog settling time constant in modulator
    /// clocks; 0.0 models an ideally fast mux.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for an empty array or a
    /// negative/non-finite time constant.
    pub fn new(rows: usize, cols: usize, tau_clocks: f64) -> Result<Self, AnalogError> {
        if rows == 0 || cols == 0 {
            return Err(AnalogError::InvalidParameter(
                "mux needs at least one row and column".into(),
            ));
        }
        if !(tau_clocks >= 0.0 && tau_clocks.is_finite()) {
            return Err(AnalogError::InvalidParameter(format!(
                "settling time constant {tau_clocks} must be finite and >= 0"
            )));
        }
        Ok(AnalogMux {
            rows,
            cols,
            selected: (0, 0),
            tau_clocks,
            residual: 0.0,
            previous_cap: Farads(0.0),
            switch_events: 0,
        })
    }

    /// The paper's mux: 2×2 with a sub-clock settling constant (the SC
    /// readout samples after half a clock, so the analog transient is
    /// short but not zero).
    pub fn paper_default() -> Self {
        AnalogMux::new(2, 2, 0.5).expect("paper mux is valid")
    }

    /// Currently selected `(row, col)`.
    pub fn selected(&self) -> (usize, usize) {
        self.selected
    }

    /// Array dimensions `(rows, cols)`.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Selects a channel; starts the settling transient from the readout
    /// node's current capacitance.
    ///
    /// `current_caps` is the row-major capacitance snapshot of the array,
    /// used to freeze the previous channel's value into the transient.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::ChannelOutOfRange`] for indices outside the
    /// array, or [`AnalogError::InvalidParameter`] for a wrong snapshot
    /// length.
    pub fn select(
        &mut self,
        row: usize,
        col: usize,
        current_caps: &[Farads],
    ) -> Result<(), AnalogError> {
        if row >= self.rows || col >= self.cols {
            return Err(AnalogError::ChannelOutOfRange {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        if current_caps.len() != self.rows * self.cols {
            return Err(AnalogError::InvalidParameter(format!(
                "capacitance snapshot has {} entries, array has {}",
                current_caps.len(),
                self.rows * self.cols
            )));
        }
        if (row, col) == self.selected {
            return Ok(());
        }
        self.previous_cap = current_caps[self.selected.0 * self.cols + self.selected.1];
        self.selected = (row, col);
        self.residual = if self.tau_clocks > 0.0 { 1.0 } else { 0.0 };
        self.switch_events += 1;
        Ok(())
    }

    /// Number of actual channel switches performed so far (re-selecting
    /// the already-routed element does not count).
    pub fn switch_events(&self) -> u64 {
        self.switch_events
    }

    /// Samples the routed capacitance for one modulator clock: the
    /// selected element's capacitance blended with the decaying residue
    /// of the previous channel. Call once per modulator clock.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a wrong snapshot
    /// length.
    pub fn sample(&mut self, caps: &[Farads]) -> Result<Farads, AnalogError> {
        if caps.len() != self.rows * self.cols {
            return Err(AnalogError::InvalidParameter(format!(
                "capacitance snapshot has {} entries, array has {}",
                caps.len(),
                self.rows * self.cols
            )));
        }
        let target = caps[self.selected.0 * self.cols + self.selected.1];
        if self.residual == 0.0 {
            return Ok(target);
        }
        let blended =
            Farads(target.value() + self.residual * (self.previous_cap.value() - target.value()));
        self.residual *= (-1.0 / self.tau_clocks).exp();
        if self.residual < 1e-12 {
            self.residual = 0.0;
        }
        Ok(blended)
    }

    /// True when the analog transient has fully decayed.
    pub fn is_settled(&self) -> bool {
        self.residual == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> Vec<Farads> {
        vec![
            Farads::from_femtofarads(60.0),
            Farads::from_femtofarads(65.0),
            Farads::from_femtofarads(70.0),
            Farads::from_femtofarads(75.0),
        ]
    }

    #[test]
    fn routes_the_selected_element() {
        let mut mux = AnalogMux::new(2, 2, 0.0).unwrap();
        let c = caps();
        assert_eq!(mux.sample(&c).unwrap(), c[0]);
        mux.select(1, 1, &c).unwrap();
        assert_eq!(mux.sample(&c).unwrap(), c[3]);
        assert_eq!(mux.selected(), (1, 1));
    }

    #[test]
    fn switching_produces_a_decaying_transient() {
        let mut mux = AnalogMux::new(2, 2, 2.0).unwrap();
        let c = caps();
        let _ = mux.sample(&c).unwrap();
        mux.select(1, 0, &c).unwrap();
        assert!(!mux.is_settled());
        // First sample is pulled toward the old channel's 60 fF.
        let first = mux.sample(&c).unwrap();
        assert!(first < c[2], "first sample {first} shows the old charge");
        // Monotone convergence toward the new value.
        let mut last = first;
        // exp(-1/2) per clock: ~56 clocks to decay below the 1e-12 cutoff.
        for _ in 0..60 {
            let v = mux.sample(&c).unwrap();
            assert!(v >= last, "transient must decay monotonically");
            last = v;
        }
        assert!((last.value() - c[2].value()).abs() < 1e-20);
        assert!(mux.is_settled());
    }

    #[test]
    fn reselecting_the_same_channel_is_free() {
        let mut mux = AnalogMux::new(2, 2, 3.0).unwrap();
        let c = caps();
        let _ = mux.sample(&c).unwrap();
        mux.select(0, 0, &c).unwrap();
        assert!(mux.is_settled(), "no transient for a no-op select");
        assert_eq!(mux.switch_events(), 0, "no-op selects are not switches");
    }

    #[test]
    fn switch_events_count_real_switches_only() {
        let mut mux = AnalogMux::paper_default();
        let c = caps();
        mux.select(0, 1, &c).unwrap();
        mux.select(0, 1, &c).unwrap(); // no-op
        mux.select(1, 1, &c).unwrap();
        assert!(mux.select(5, 0, &c).is_err()); // rejected, not counted
        assert_eq!(mux.switch_events(), 2);
    }

    #[test]
    fn zero_tau_settles_instantly() {
        let mut mux = AnalogMux::new(2, 2, 0.0).unwrap();
        let c = caps();
        mux.select(0, 1, &c).unwrap();
        assert!(mux.is_settled());
        assert_eq!(mux.sample(&c).unwrap(), c[1]);
    }

    #[test]
    fn out_of_range_selection_is_rejected() {
        let mut mux = AnalogMux::paper_default();
        let c = caps();
        assert!(matches!(
            mux.select(2, 0, &c),
            Err(AnalogError::ChannelOutOfRange { .. })
        ));
        assert!(matches!(
            mux.select(0, 5, &c),
            Err(AnalogError::ChannelOutOfRange { .. })
        ));
    }

    #[test]
    fn wrong_snapshot_length_is_rejected() {
        let mut mux = AnalogMux::paper_default();
        assert!(mux.select(0, 1, &caps()[..3]).is_err());
        assert!(mux.sample(&caps()[..2]).is_err());
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert!(AnalogMux::new(0, 2, 1.0).is_err());
        assert!(AnalogMux::new(2, 0, 1.0).is_err());
        assert!(AnalogMux::new(2, 2, -1.0).is_err());
        assert!(AnalogMux::new(2, 2, f64::NAN).is_err());
    }

    #[test]
    fn larger_arrays_are_supported() {
        let mut mux = AnalogMux::new(4, 4, 1.0).unwrap();
        let c: Vec<Farads> = (0..16)
            .map(|i| Farads::from_femtofarads(50.0 + i as f64))
            .collect();
        mux.select(3, 2, &c).unwrap();
        assert_eq!(mux.dimensions(), (4, 4));
        // Settle fully and verify routing.
        let mut v = Farads(0.0);
        for _ in 0..60 {
            v = mux.sample(&c).unwrap();
        }
        assert!((v.value() - c[14].value()).abs() < 1e-20);
    }
}

//! Process-wide kernel-selection override shared by the tiled loop
//! filter ([`crate::bank`]) and the wide noise fill (`noise_wide`).
//!
//! CI (and anyone debugging a dispatch-dependent difference) can pin
//! the runtime kernel choice with the `TONOS_FORCE_KERNEL` environment
//! variable so the portable oracle bodies and the explicit-SIMD bodies
//! are both exercised regardless of what the host CPU advertises:
//!
//! | value | effect |
//! |---|---|
//! | `scalar-tile` | portable scalar bodies everywhere (tile loop *and* lockstep noise rows) |
//! | `wide-avx2` | pin dispatch to the AVX2 kernels (requires a CPU with AVX2) |
//! | `wide-avx512f` | pin dispatch to the AVX-512F kernels (requires a CPU with AVX-512F) |
//!
//! Forcing a wide kernel the build (`--features wide-lanes`) or the
//! CPU cannot run falls back to the normal runtime probe — the
//! override can never select an unsupported instruction set, so it is
//! never unsound. The resolved choice is visible through
//! [`crate::bank::kernel_name`] and [`crate::noise::kernel_name`].
//! The variable is read once per process and cached.

use std::sync::OnceLock;

/// Parsed value of `TONOS_FORCE_KERNEL`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ForcedKernel {
    /// Portable scalar bodies everywhere.
    Scalar,
    /// Pin dispatch to the AVX2 kernels.
    Avx2,
    /// Pin dispatch to the AVX-512F kernels.
    Avx512,
}

/// The cached `TONOS_FORCE_KERNEL` override, if set.
///
/// # Panics
///
/// Panics (once, on first dispatch) when the variable is set to an
/// unknown kernel name — a forced-selection typo must fail loudly, not
/// silently benchmark or test the wrong body.
pub(crate) fn forced_kernel() -> Option<ForcedKernel> {
    static FORCED: OnceLock<Option<ForcedKernel>> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("TONOS_FORCE_KERNEL") {
        Err(_) => None,
        Ok(v) => match v.as_str() {
            "" => None,
            "scalar-tile" | "scalar-lockstep" | "scalar" => Some(ForcedKernel::Scalar),
            "wide-avx2" => Some(ForcedKernel::Avx2),
            "wide-avx512f" => Some(ForcedKernel::Avx512),
            other => panic!(
                "TONOS_FORCE_KERNEL={other:?} names no kernel; use \
                 scalar-tile, wide-avx2, or wide-avx512f"
            ),
        },
    })
}

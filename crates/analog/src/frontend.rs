//! Capacitive front end: converting (Csense − Cref) into the modulator's
//! normalized input.
//!
//! In the paper's first stage (Fig. 6), a constant voltage applied to the
//! sensor and reference capacitors integrates a charge proportional to
//! their difference; the single-bit DAC balances it against the feedback
//! capacitors `Cfb`. In normalized full-scale terms the modulator input
//! is therefore
//!
//! ```text
//! u = (Csense − Cref) / Cfb
//! ```
//!
//! with `|ΔC| = Cfb` mapping to full scale. The paper's *future work*
//! ("an improvement of the resolution … by adjusting the feedback
//! capacitors of the first modulator stage") is precisely a reduction of
//! `Cfb`: a smaller feedback capacitor magnifies the same ΔC into a larger
//! fraction of full scale. [`CapacitiveFrontEnd::with_feedback_capacitance`]
//! is that knob, exercised by ablation A2.

use tonos_mems::units::{Farads, Volts};

use crate::AnalogError;

/// The differential charge-integrating front end of the first stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitiveFrontEnd {
    reference: Farads,
    feedback: Farads,
    vref: Volts,
}

impl CapacitiveFrontEnd {
    /// Creates the front end.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for non-positive
    /// reference/feedback capacitance or reference voltage.
    pub fn new(reference: Farads, feedback: Farads, vref: Volts) -> Result<Self, AnalogError> {
        if !(reference.value() > 0.0) {
            return Err(AnalogError::InvalidParameter(
                "reference capacitance must be positive".into(),
            ));
        }
        if !(feedback.value() > 0.0) {
            return Err(AnalogError::InvalidParameter(
                "feedback capacitance must be positive".into(),
            ));
        }
        if !(vref.value() > 0.0) {
            return Err(AnalogError::InvalidParameter(
                "reference voltage must be positive".into(),
            ));
        }
        Ok(CapacitiveFrontEnd {
            reference,
            feedback,
            vref,
        })
    }

    /// Paper-scale defaults: the reference matches the membrane rest
    /// capacitance (≈ 67 fF with the default geometry), `Cfb = 100 fF`
    /// (a comfortable full-scale range of ±100 fF), `Vref = 2.5 V`
    /// (mid-supply of the 5 V chip).
    pub fn paper_default(reference: Farads) -> Self {
        CapacitiveFrontEnd::new(reference, Farads::from_femtofarads(100.0), Volts(2.5))
            .expect("paper defaults are valid")
    }

    /// The reference capacitance.
    pub fn reference(&self) -> Farads {
        self.reference
    }

    /// The first-stage feedback capacitance (full-scale ΔC).
    pub fn feedback(&self) -> Farads {
        self.feedback
    }

    /// The reference voltage.
    pub fn vref(&self) -> Volts {
        self.vref
    }

    /// Returns a copy with a different feedback capacitance — the paper's
    /// resolution knob.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive value.
    pub fn with_feedback_capacitance(self, feedback: Farads) -> Result<Self, AnalogError> {
        CapacitiveFrontEnd::new(self.reference, feedback, self.vref)
    }

    /// Normalized modulator input for a sensed capacitance:
    /// `(Csense − Cref) / Cfb`. Values beyond ±1 overload the modulator
    /// (which detects and reports that itself).
    pub fn input_fraction(&self, sensed: Farads) -> f64 {
        (sensed.value() - self.reference.value()) / self.feedback.value()
    }

    /// The capacitance difference corresponding to one modulator
    /// full-scale unit (equals `Cfb`).
    pub fn full_scale_delta(&self) -> Farads {
        self.feedback
    }
}

/// The auxiliary differential voltage interface used for electrical
/// characterization (paper §3: "a differential voltage interface, so a
/// full characterization of the analog to digital conversion … can be
/// accomplished, independent of the connected transducer").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageInput {
    vref: Volts,
}

impl VoltageInput {
    /// Creates the voltage test input with the given reference.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a non-positive
    /// reference.
    pub fn new(vref: Volts) -> Result<Self, AnalogError> {
        if !(vref.value() > 0.0) {
            return Err(AnalogError::InvalidParameter(
                "reference voltage must be positive".into(),
            ));
        }
        Ok(VoltageInput { vref })
    }

    /// The paper's mid-supply reference (2.5 V on the 5 V chip).
    pub fn paper_default() -> Self {
        VoltageInput::new(Volts(2.5)).expect("paper default is valid")
    }

    /// The reference voltage.
    pub fn vref(&self) -> Volts {
        self.vref
    }

    /// Normalized modulator input for a differential test voltage.
    pub fn input_fraction(&self, differential: Volts) -> f64 {
        differential.value() / self.vref.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe() -> CapacitiveFrontEnd {
        CapacitiveFrontEnd::paper_default(Farads::from_femtofarads(67.0))
    }

    #[test]
    fn balanced_bridge_gives_zero_input() {
        let fe = fe();
        assert_eq!(fe.input_fraction(Farads::from_femtofarads(67.0)), 0.0);
    }

    #[test]
    fn full_scale_is_cfb() {
        let fe = fe();
        let u = fe.input_fraction(Farads::from_femtofarads(167.0));
        assert!((u - 1.0).abs() < 1e-12, "{u}");
        let u = fe.input_fraction(Farads::from_femtofarads(17.0));
        assert!((u + 0.5).abs() < 1e-12, "{u}");
        assert!((fe.full_scale_delta().to_femtofarads() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_cfb_magnifies_the_same_delta() {
        // The paper's future-work knob: reducing Cfb improves resolution.
        let base = fe();
        let tuned = base
            .with_feedback_capacitance(Farads::from_femtofarads(20.0))
            .unwrap();
        let sensed = Farads::from_femtofarads(68.0); // ΔC = 1 fF
        assert!((base.input_fraction(sensed) - 0.01).abs() < 1e-12);
        assert!((tuned.input_fraction(sensed) - 0.05).abs() < 1e-12);
        assert!(tuned.input_fraction(sensed) > base.input_fraction(sensed));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(CapacitiveFrontEnd::new(Farads(0.0), Farads(1e-13), Volts(2.5)).is_err());
        assert!(CapacitiveFrontEnd::new(Farads(1e-13), Farads(-1e-13), Volts(2.5)).is_err());
        assert!(CapacitiveFrontEnd::new(Farads(1e-13), Farads(1e-13), Volts(0.0)).is_err());
        assert!(fe().with_feedback_capacitance(Farads(0.0)).is_err());
        assert!(VoltageInput::new(Volts(-1.0)).is_err());
    }

    #[test]
    fn voltage_interface_normalizes_to_vref() {
        let vi = VoltageInput::paper_default();
        assert_eq!(vi.vref(), Volts(2.5));
        assert!((vi.input_fraction(Volts(2.5)) - 1.0).abs() < 1e-15);
        assert!((vi.input_fraction(Volts(-1.25)) + 0.5).abs() < 1e-15);
        assert_eq!(vi.input_fraction(Volts(0.0)), 0.0);
    }

    #[test]
    fn accessors_report_configuration() {
        let fe = fe();
        assert!((fe.reference().to_femtofarads() - 67.0).abs() < 1e-12);
        assert!((fe.feedback().to_femtofarads() - 100.0).abs() < 1e-12);
        assert_eq!(fe.vref(), Volts(2.5));
    }
}

//! The per-stream scalar draw is the **bit-exact oracle** for the
//! lockstep noise fill: every lane of a [`LockstepFill`] tile — whether
//! produced by the portable rows or the explicit-SIMD `wide-lanes`
//! kernel the build dispatched to — must hold exactly
//! `standard() * sigma` (or `bias + standard() * sigma + 0.0`) draw for
//! draw, across random K (spanning the 4- and 8-lane vector-width
//! boundaries, including partial tails), random seeds, zero and nonzero
//! sigmas, and multi-block fills whose carried generator state
//! straddles rejection events. Run in both the default and `wide-lanes`
//! CI legs; `TONOS_FORCE_KERNEL` additionally pins which body the
//! dispatched path takes.

use proptest::prelude::*;
use tonos_analog::noise::{kernel_name, LockstepFill, NoiseSource};

/// Per-lane scalar reference: the draw sequence and scale expression
/// stated exactly as the fill paths state them.
struct Oracle {
    streams: Vec<NoiseSource>,
    biases: Vec<f64>,
    sigmas: Vec<f64>,
}

impl Oracle {
    fn new(seeds: &[u64], biased: bool) -> Self {
        // Deterministic sigma/bias mix: zero sigmas interleaved with
        // nonzero ones, so disabled lanes ride in the same tile as
        // drawing lanes (every lane still consumes its draw — the
        // zero-sigma short-circuit lives above this layer).
        let sigmas: Vec<f64> = seeds
            .iter()
            .enumerate()
            .map(|(j, &s)| {
                if j % 3 == 2 {
                    0.0
                } else {
                    1e-4 + (s % 1000) as f64 * 1e-3
                }
            })
            .collect();
        let biases: Vec<f64> = if biased {
            seeds
                .iter()
                .enumerate()
                .map(|(j, &s)| (s % 97) as f64 * 0.01 - 0.48 + j as f64 * 1e-3)
                .collect()
        } else {
            vec![0.0; seeds.len()]
        };
        Oracle {
            streams: seeds.iter().map(|&s| NoiseSource::from_seed(s)).collect(),
            biases,
            sigmas,
        }
    }

    /// One clock-major reference tile, drawn per stream with scalar
    /// `standard()` calls — the most primitive formulation.
    fn tile(&mut self, biased: bool, clocks: usize) -> Vec<f64> {
        let k = self.streams.len();
        let mut out = vec![0.0; clocks * k];
        for n in 0..clocks {
            for j in 0..k {
                let z = self.streams[j].standard();
                out[n * k + j] = if biased {
                    self.biases[j] + z * self.sigmas[j] + 0.0
                } else {
                    z * self.sigmas[j]
                };
            }
        }
        out
    }
}

/// Asserts two tiles are bit-for-bit identical (sign of zero included —
/// a zero-sigma lane must keep the draw's sign exactly like the scalar
/// expression does).
fn assert_tiles_identical(got: &[f64], want: &[f64], k: usize, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: tile sizes");
    for (idx, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: clock {} lane {} of {k}: {g:e} vs {w:e}",
            idx / k,
            idx % k,
        );
    }
}

/// Drives the dispatched fill, the portable-pinned fill, and the
/// per-stream scalar oracle through the same block sequence and demands
/// three-way bit identity, then checks the carried generator state by
/// storing the lockstep slots back into fresh sources and drawing on.
fn check_fill(seeds: &[u64], blocks: &[usize], biased: bool) {
    let k = seeds.len();
    let mut oracle = Oracle::new(seeds, biased);
    let sources: Vec<NoiseSource> = seeds.iter().map(|&s| NoiseSource::from_seed(s)).collect();

    let mut dispatched = LockstepFill::new();
    dispatched.begin(k);
    let mut portable = LockstepFill::new();
    portable.begin(k);
    for src in &sources {
        dispatched.load(src);
        portable.load(src);
    }

    for (bi, &clocks) in blocks.iter().enumerate() {
        let want = oracle.tile(biased, clocks);
        let mut got_d = vec![0.0; clocks * k];
        let mut got_p = vec![0.0; clocks * k];
        if biased {
            dispatched.fill_biased(&oracle.biases, &oracle.sigmas, clocks, &mut got_d);
            portable.fill_biased_portable(&oracle.biases, &oracle.sigmas, clocks, &mut got_p);
        } else {
            dispatched.fill_scaled(&oracle.sigmas, clocks, &mut got_d);
            portable.fill_scaled_portable(&oracle.sigmas, clocks, &mut got_p);
        }
        assert_tiles_identical(&got_d, &want, k, &format!("dispatched block {bi}"));
        assert_tiles_identical(&got_p, &want, k, &format!("portable block {bi}"));
    }

    // The advanced generator state must match the oracle streams
    // word-for-word: a stored-back source continues the exact sequence.
    for (j, oracle_src) in oracle.streams.iter_mut().enumerate() {
        let mut resumed = NoiseSource::from_seed(0);
        dispatched.store(j, &mut resumed);
        for d in 0..8 {
            let a = resumed.standard();
            let b = oracle_src.standard();
            assert_eq!(a.to_bits(), b.to_bits(), "lane {j} post-fill draw {d}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit identity of the dispatched fill (wide kernel when the build
    /// and CPU provide one) and the portable rows against per-stream
    /// scalar draws, across K spanning vector-width boundaries (1..=40
    /// crosses the 4- and 8-lane group sizes with every partial-tail
    /// remainder), random seeds, zero/nonzero sigma mixes, and
    /// multi-block fills with carried state.
    #[test]
    fn lockstep_fill_is_bit_identical_to_scalar_streams(
        seeds in prop::collection::vec(any::<u64>(), 1..=40),
        blocks in prop::collection::vec(1usize..96, 1..=4),
        biased in any::<bool>(),
    ) {
        check_fill(&seeds, &blocks, biased);
    }
}

/// Long fills certainly straddle ziggurat rejection events (the
/// accept-without-density region covers ~98.5 % of draws, so 12k draws
/// reject ~180 times): the lane-mask replay path must keep every stream
/// aligned within the block and across block boundaries.
#[test]
fn rejection_straddling_blocks_stay_bit_identical() {
    for &k in &[1usize, 3, 4, 5, 8, 11, 16, 23] {
        let seeds: Vec<u64> = (0..k as u64)
            .map(|i| 0x5EED_0000_0000_0000 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        // 12k+ draws per lane set, deliberately odd block lengths so
        // rejection events land mid-block and at block edges.
        check_fill(&seeds, &[513, 127, 640, 1], false);
        check_fill(&seeds, &[255, 500, 257], true);
    }
}

/// Every vector-width remainder 0..=8 as an explicit partial tail, with
/// a single-clock block (the smallest tile the kernel sees).
#[test]
fn partial_tail_lane_counts_stay_bit_identical() {
    for k in 1usize..=17 {
        let seeds: Vec<u64> = (0..k as u64).map(|i| 7 + i * 31).collect();
        check_fill(&seeds, &[1, 64, 3], true);
    }
}

/// The reported noise kernel is one of the documented names, and wide
/// names only appear when the wide feature is compiled in.
#[test]
fn noise_kernel_name_is_documented() {
    let name = kernel_name();
    assert!(
        ["scalar-lockstep", "wide-avx2", "wide-avx512f"].contains(&name),
        "unknown noise kernel {name:?}"
    );
    if cfg!(not(all(feature = "wide-lanes", target_arch = "x86_64"))) {
        assert_eq!(name, "scalar-lockstep");
    }
}

//! The scalar ΣΔ modulator is the **bit-exact oracle** for the SoA lane
//! bank: every lane of [`SigmaDelta2Bank`] must produce the same
//! bitstream, the same counters, and the same carried state as a scalar
//! [`SigmaDelta2`] with the same seed fed the same inputs — across
//! random lane counts, seeds, block boundaries, and mid-run lane
//! perturbations (reset / retire / late join).

use proptest::prelude::*;
use tonos_analog::bank::{LaneInput, SigmaDelta2Bank};
use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta2};
use tonos_analog::nonideal::NonIdealities;
use tonos_dsp::bits::PackedBits;

/// A scalar reference lane: the oracle modulator plus its accumulated
/// bitstream.
struct Oracle {
    dsm: SigmaDelta2,
    bits: Vec<i8>,
}

impl Oracle {
    fn new(dsm: SigmaDelta2) -> Self {
        Oracle {
            dsm,
            bits: Vec::new(),
        }
    }

    /// Steps the scalar oracle per sample (the reference path — *not*
    /// `step_block`, so the bank is checked against the most primitive
    /// formulation).
    fn feed(&mut self, samples: &[f64]) {
        for &x in samples {
            self.bits.push(self.dsm.step(x));
        }
    }

    fn packed(&self) -> PackedBits {
        PackedBits::from_bitstream(&self.bits)
    }
}

/// Builds one modulator per seed; even lanes get the full `typical()`
/// impairment set, odd lanes run ideal (every noise sigma zero), so both
/// the drawing and the `+ 0.0` zero-sigma tile paths are exercised in
/// the same bank.
fn build_lanes(seeds: &[u64]) -> Vec<SigmaDelta2> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let cfg = if i % 2 == 0 {
                NonIdealities::typical().with_seed(seed)
            } else {
                NonIdealities::ideal().with_seed(seed)
            };
            SigmaDelta2::new(cfg).unwrap()
        })
        .collect()
}

/// The per-lane input for one block: constant lanes exercise the bank's
/// pre-fill fast path, sampled lanes the general path (with a varying
/// waveform so the slew-jitter draw actually fires).
fn block_samples(lane: usize, block: usize, base: f64, clocks: usize) -> Option<Vec<f64>> {
    if (lane + block).is_multiple_of(2) {
        None // constant input
    } else {
        Some(
            (0..clocks)
                .map(|n| base + 0.1 * ((n + lane) as f64 * 0.37).sin())
                .collect(),
        )
    }
}

/// Drives the bank and its scalar oracles through one mixed
/// constant/sampled block (the same input-shape mix as
/// [`block_samples`]), keeping both sides step-for-step aligned.
fn drive(
    bank: &mut SigmaDelta2Bank,
    oracles: &mut [Oracle],
    bits: &mut [PackedBits],
    block: usize,
    base: f64,
    clocks: usize,
) {
    let k = oracles.len();
    let sampled: Vec<Option<Vec<f64>>> = (0..k)
        .map(|lane| block_samples(lane, block, base, clocks))
        .collect();
    let inputs: Vec<LaneInput> = sampled
        .iter()
        .map(|s| match s {
            Some(xs) => LaneInput::Samples(xs),
            None => LaneInput::Constant(base),
        })
        .collect();
    bank.step_block(clocks, &inputs, bits);
    for (lane, oracle) in oracles.iter_mut().enumerate() {
        match &sampled[lane] {
            Some(xs) => oracle.feed(xs),
            None => oracle.feed(&vec![base; clocks]),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Lane-for-lane bit identity with the scalar path across random K,
    /// seeds, block lengths, and block boundaries (including blocks that
    /// are not multiples of the 64-bit packing word).
    #[test]
    fn bank_is_bit_identical_to_scalar_lanes(
        seeds in prop::collection::vec(any::<u64>(), 1..=9),
        lens in prop::collection::vec(1usize..200, 1..=4),
        base in -0.6_f64..0.6,
    ) {
        let k = seeds.len();
        let mods = build_lanes(&seeds);
        let mut oracles: Vec<Oracle> =
            mods.iter().cloned().map(Oracle::new).collect();
        let mut bank = SigmaDelta2Bank::from_modulators(mods);
        let mut bank_bits = vec![PackedBits::new(); k];

        for (block, &clocks) in lens.iter().enumerate() {
            let sampled: Vec<Option<Vec<f64>>> = (0..k)
                .map(|lane| block_samples(lane, block, base, clocks))
                .collect();
            let inputs: Vec<LaneInput> = sampled
                .iter()
                .map(|s| match s {
                    Some(xs) => LaneInput::Samples(xs),
                    None => LaneInput::Constant(base),
                })
                .collect();
            bank.step_block(clocks, &inputs, &mut bank_bits);
            for (lane, oracle) in oracles.iter_mut().enumerate() {
                match &sampled[lane] {
                    Some(xs) => oracle.feed(xs),
                    None => oracle.feed(&vec![base; clocks]),
                }
            }
        }

        for (lane, oracle) in oracles.iter().enumerate() {
            prop_assert_eq!(&bank_bits[lane], &oracle.packed(), "lane {} bits", lane);
            prop_assert_eq!(bank.steps(lane), oracle.dsm.steps(), "lane {} steps", lane);
            prop_assert_eq!(
                bank.saturation_events(lane),
                oracle.dsm.saturation_events(),
                "lane {} saturations",
                lane
            );
        }

        // Retiring a lane must hand back the scalar modulator with its
        // exact state (loop filter, histories, noise positions): the
        // retired modulator and the oracle must agree on a further run.
        let tail: Vec<f64> = (0..96).map(|n| base + 0.05 * (n as f64 * 0.21).cos()).collect();
        for lane in (0..k).rev() {
            let mut retired = bank.retire_lane(lane);
            let mut oracle = oracles.remove(lane);
            for &x in &tail {
                prop_assert_eq!(retired.step(x), oracle.dsm.step(x), "retired lane {}", lane);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Absorbing a session into a partially-full tail tile and then
    /// retiring one from the middle of the bank leaves every
    /// neighbour's bitstream — and the noise-stream position it depends
    /// on — bit-identical to the scalar oracle. Lane counts span the
    /// 8-lane tile boundaries (1..=20 crosses one, two, and three
    /// tiles), so the join lands in a partially-full tile whenever
    /// `k % 8 != 0` and the retire compacts across tile edges.
    #[test]
    fn join_into_partial_tile_then_middle_retire_is_bit_identical(
        k in 1usize..=20,
        seed0 in any::<u64>(),
        pre in 1usize..160,
        mid in 1usize..160,
        post in 1usize..160,
        base in -0.5_f64..0.5,
    ) {
        let seeds: Vec<u64> = (0..k as u64)
            .map(|i| seed0 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mods = build_lanes(&seeds);
        let mut oracles: Vec<Oracle> = mods.iter().cloned().map(Oracle::new).collect();
        let mut bank = SigmaDelta2Bank::from_modulators(mods);
        let mut bits = vec![PackedBits::new(); k];

        // Phase 1: run the initial lane set up to an arbitrary clock
        // (deliberately not 64-aligned) so the join happens mid-word.
        drive(&mut bank, &mut oracles, &mut bits, 0, base, pre);

        // Phase 2: a session joins into the (usually partially-full)
        // tail tile, mid-run.
        let joiner =
            SigmaDelta2::new(NonIdealities::typical().with_seed(seed0 ^ 0xDEAD_BEEF)).unwrap();
        oracles.push(Oracle::new(joiner.clone()));
        prop_assert_eq!(bank.push_lane(joiner), k);
        bits.push(PackedBits::new());
        drive(&mut bank, &mut oracles, &mut bits, 1, base, mid);

        // Phase 3: retire a lane from the middle. The handed-back
        // scalar modulator must carry its exact state — loop filter,
        // comparator history, and noise-stream position — so it keeps
        // agreeing with its oracle bit for bit.
        let victim = k / 2;
        let mut retired = bank.retire_lane(victim);
        let mut gone = oracles.remove(victim);
        bits.remove(victim);
        for n in 0..96 {
            let x = base + 0.04 * (n as f64 * 0.31).sin();
            prop_assert_eq!(retired.step(x), gone.dsm.step(x), "retired lane at clock {}", n);
        }

        // Phase 4: the survivors (including the joiner, now shifted
        // down) keep converting in their compacted slots.
        drive(&mut bank, &mut oracles, &mut bits, 2, base, post);

        for (lane, oracle) in oracles.iter().enumerate() {
            prop_assert_eq!(&bits[lane], &oracle.packed(), "survivor slot {} bits", lane);
            prop_assert_eq!(bank.steps(lane), oracle.dsm.steps(), "survivor slot {} steps", lane);
            prop_assert_eq!(
                bank.saturation_events(lane),
                oracle.dsm.saturation_events(),
                "survivor slot {} saturations",
                lane
            );
        }
        // The joiner only saw the clocks since it joined; the victim
        // (k/2 < k) sat ahead of it, so it now sits one slot lower.
        prop_assert_eq!(bank.steps(k - 1), (mid + post) as u64);
    }
}

#[test]
fn resetting_one_lane_leaves_the_others_bit_identical() {
    let seeds = [11u64, 22, 33, 44];
    let mods = build_lanes(&seeds);
    let mut oracles: Vec<Oracle> = mods.iter().cloned().map(Oracle::new).collect();
    let mut bank = SigmaDelta2Bank::from_modulators(mods);
    let mut bits = vec![PackedBits::new(); 4];
    let inputs = vec![LaneInput::Constant(0.3); 4];

    bank.step_block(150, &inputs, &mut bits);
    for o in &mut oracles {
        o.feed(&[0.3; 150]);
    }

    // Mid-run reset of lane 2, mirrored on its scalar reference.
    bank.reset_lane(2);
    oracles[2].dsm.reset();

    bank.step_block(130, &inputs, &mut bits);
    for o in &mut oracles {
        o.feed(&[0.3; 130]);
    }

    for (lane, o) in oracles.iter().enumerate() {
        assert_eq!(bits[lane], o.packed(), "lane {lane}");
    }
    // The reset lane's counters restarted, like the scalar path.
    assert_eq!(bank.steps(2), 130);
    assert_eq!(bank.steps(0), 280);
}

#[test]
fn retiring_a_finished_lane_leaves_survivors_bit_identical() {
    let seeds = [5u64, 6, 7, 8, 9];
    let mods = build_lanes(&seeds);
    let mut oracles: Vec<Oracle> = mods.iter().cloned().map(Oracle::new).collect();
    let mut bank = SigmaDelta2Bank::from_modulators(mods);
    let mut bits = vec![PackedBits::new(); 5];

    bank.step_block(99, &[LaneInput::Constant(0.2); 5], &mut bits);
    for o in &mut oracles {
        o.feed(&[0.2; 99]);
    }

    // Lane 1 finishes early and is retired; it must continue exactly
    // like its scalar reference.
    let mut done = bank.retire_lane(1);
    let mut done_oracle = oracles.remove(1);
    for _ in 0..64 {
        assert_eq!(done.step(0.1), done_oracle.dsm.step(0.1));
    }
    bits.remove(1);

    // Survivors keep converting, still bit-identical.
    bank.step_block(77, &[LaneInput::Constant(0.2); 4], &mut bits);
    for o in &mut oracles {
        o.feed(&[0.2; 77]);
    }
    for (lane, o) in oracles.iter().enumerate() {
        assert_eq!(bits[lane], o.packed(), "survivor slot {lane}");
    }
}

#[test]
fn late_joining_lane_is_bit_identical_from_its_join_point() {
    let seeds = [101u64, 102, 103];
    let mods = build_lanes(&seeds);
    let mut oracles: Vec<Oracle> = mods.iter().cloned().map(Oracle::new).collect();
    let mut bank = SigmaDelta2Bank::from_modulators(mods);
    let mut bits = vec![PackedBits::new(); 3];

    bank.step_block(120, &[LaneInput::Constant(-0.25); 3], &mut bits);
    for o in &mut oracles {
        o.feed(&[-0.25; 120]);
    }

    // A fourth session joins mid-run.
    let joiner = SigmaDelta2::new(NonIdealities::typical().with_seed(0xBEEF)).unwrap();
    oracles.push(Oracle::new(joiner.clone()));
    let lane = bank.push_lane(joiner);
    assert_eq!(lane, 3);
    bits.push(PackedBits::new());

    bank.step_block(130, &[LaneInput::Constant(-0.25); 4], &mut bits);
    for o in &mut oracles {
        o.feed(&[-0.25; 130]);
    }

    for (lane, o) in oracles.iter().enumerate() {
        assert_eq!(bits[lane], o.packed(), "lane {lane}");
    }
    assert_eq!(bank.steps(3), 130, "joiner only saw its own clocks");
}

#[test]
fn constant_block_path_is_bit_identical_to_scalar() {
    // `step_block_constant` (the allocation-free settled-frame path)
    // must match the scalar oracle exactly, like the general path.
    let seeds = [71u64, 72, 73, 74, 75, 76];
    let mods = build_lanes(&seeds);
    let mut oracles: Vec<Oracle> = mods.iter().cloned().map(Oracle::new).collect();
    let mut bank = SigmaDelta2Bank::from_modulators(mods);
    let mut bits = vec![PackedBits::new(); 6];
    let levels = [0.1, -0.3, 0.45, 0.0, -0.52, 0.27];

    for block in 0..3 {
        let clocks = [128usize, 77, 200][block];
        bank.step_block_constant(clocks, &levels, &mut bits);
        for (o, &x) in oracles.iter_mut().zip(&levels) {
            o.feed(&vec![x; clocks]);
        }
    }
    for (lane, o) in oracles.iter().enumerate() {
        assert_eq!(bits[lane], o.packed(), "lane {lane}");
        assert_eq!(bank.steps(lane), o.dsm.steps());
    }
}

#[test]
fn saturating_input_counts_overloads_like_scalar() {
    // Inputs outside the stable range overload the loop; the bank must
    // count saturation events exactly like the scalar modulator.
    let m = SigmaDelta2::new(NonIdealities::typical().with_seed(404)).unwrap();
    let mut oracle = Oracle::new(m.clone());
    let mut bank = SigmaDelta2Bank::from_modulators([m]);
    let mut bits = vec![PackedBits::new()];
    bank.step_block(400, &[LaneInput::Constant(1.6)], &mut bits);
    oracle.feed(&[1.6; 400]);
    assert_eq!(bits[0], oracle.packed());
    assert!(oracle.dsm.saturation_events() > 0, "stimulus must overload");
    assert_eq!(bank.saturation_events(0), oracle.dsm.saturation_events());
}

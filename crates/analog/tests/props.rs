//! Property-based tests of the analog readout invariants.

use proptest::prelude::*;
use tonos_analog::frontend::{CapacitiveFrontEnd, VoltageInput};
use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta1, SigmaDelta2};
use tonos_analog::mux::AnalogMux;
use tonos_analog::nonideal::NonIdealities;
use tonos_analog::power::PowerModel;
use tonos_mems::units::{Farads, Volts};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Charge balance: the bitstream mean equals the DC input for any
    /// input inside the stable range (ideal loop).
    #[test]
    fn second_order_tracks_any_dc(u in -0.8_f64..0.8) {
        let mut dsm = SigmaDelta2::new(NonIdealities::ideal()).unwrap();
        let bits = dsm.process(&vec![u; 30_000]);
        let mean: f64 =
            bits[2000..].iter().map(|&b| f64::from(b)).sum::<f64>() / (bits.len() - 2000) as f64;
        prop_assert!((mean - u).abs() < 0.02, "input {u}, mean {mean}");
    }

    /// Same for the first-order baseline.
    #[test]
    fn first_order_tracks_any_dc(u in -0.8_f64..0.8) {
        let mut dsm = SigmaDelta1::new(NonIdealities::ideal()).unwrap();
        let bits = dsm.process(&vec![u; 30_000]);
        let mean: f64 =
            bits[2000..].iter().map(|&b| f64::from(b)).sum::<f64>() / (bits.len() - 2000) as f64;
        prop_assert!((mean - u).abs() < 0.02, "input {u}, mean {mean}");
    }

    /// Modulators are bit-reproducible for any seed.
    #[test]
    fn modulator_is_deterministic(seed in any::<u64>()) {
        let stim: Vec<f64> = (0..512).map(|i| 0.4 * ((i as f64) * 0.1).sin()).collect();
        let a = SigmaDelta2::new(NonIdealities::typical().with_seed(seed))
            .unwrap()
            .process(&stim);
        let b = SigmaDelta2::new(NonIdealities::typical().with_seed(seed))
            .unwrap()
            .process(&stim);
        prop_assert_eq!(a, b);
    }

    /// The capacitive front end is exactly affine in the sensed
    /// capacitance, with slope 1/Cfb.
    #[test]
    fn frontend_is_affine(
        cref_ff in 10.0_f64..200.0,
        cfb_ff in 1.0_f64..200.0,
        c1_ff in 0.0_f64..400.0,
        dc_ff in 0.1_f64..50.0,
    ) {
        let fe = CapacitiveFrontEnd::new(
            Farads::from_femtofarads(cref_ff),
            Farads::from_femtofarads(cfb_ff),
            Volts(2.5),
        )
        .unwrap();
        let u1 = fe.input_fraction(Farads::from_femtofarads(c1_ff));
        let u2 = fe.input_fraction(Farads::from_femtofarads(c1_ff + dc_ff));
        let slope = (u2 - u1) / (dc_ff * 1e-15);
        prop_assert!((slope - 1.0 / (cfb_ff * 1e-15)).abs() < 1e-3 * slope.abs());
        // Balanced bridge reads zero regardless of Cfb.
        prop_assert!(fe.input_fraction(Farads::from_femtofarads(cref_ff)).abs() < 1e-12);
    }

    /// The voltage interface is exactly linear with slope 1/Vref.
    #[test]
    fn voltage_input_is_linear(vref in 0.5_f64..5.0, v in -5.0_f64..5.0) {
        let vi = VoltageInput::new(Volts(vref)).unwrap();
        prop_assert!((vi.input_fraction(Volts(v)) - v / vref).abs() < 1e-12);
    }

    /// Mux transients always decay monotonically toward the new channel.
    #[test]
    fn mux_transient_decays(tau in 0.1_f64..8.0, c_old_ff in 40.0_f64..80.0, c_new_ff in 40.0_f64..80.0) {
        prop_assume!((c_old_ff - c_new_ff).abs() > 0.5);
        let mut mux = AnalogMux::new(2, 2, tau).unwrap();
        let caps = vec![
            Farads::from_femtofarads(c_old_ff),
            Farads::from_femtofarads(c_new_ff),
            Farads::from_femtofarads(50.0),
            Farads::from_femtofarads(50.0),
        ];
        let _ = mux.sample(&caps).unwrap();
        mux.select(0, 1, &caps).unwrap();
        let mut last_err = f64::INFINITY;
        // Residual decays as exp(-n/tau); the 1e-12 settling cutoff needs
        // n > 27.6*tau, so 300 samples cover the tau <= 8 range.
        for _ in 0..300 {
            let v = mux.sample(&caps).unwrap();
            let err = (v.value() - caps[1].value()).abs();
            prop_assert!(err <= last_err + 1e-30, "transient must not grow");
            last_err = err;
        }
        prop_assert!(mux.is_settled());
    }

    /// Power is monotone in both clock rate and supply voltage.
    #[test]
    fn power_is_monotone(fs1 in 1e4_f64..1e6, dfs in 1e3_f64..1e6, v in 1.0_f64..6.0, dv in 0.1_f64..3.0) {
        let m = PowerModel::paper_default();
        prop_assert!(m.power(fs1 + dfs, Volts(v)) > m.power(fs1, Volts(v)));
        prop_assert!(m.power(fs1, Volts(v + dv)) > m.power(fs1, Volts(v)));
    }

    /// Overload detection: inputs beyond ~1.2 FS always trip the
    /// saturation telltale; inputs below 0.5 FS never do.
    #[test]
    fn overload_detection_thresholds(u_hi in 1.3_f64..2.0, u_lo in 0.0_f64..0.5) {
        let mut hot = SigmaDelta2::new(NonIdealities::typical()).unwrap();
        let _ = hot.process(&vec![u_hi; 20_000]);
        prop_assert!(hot.overload_ratio() > 0.01, "no overload at {u_hi}");
        let mut cold = SigmaDelta2::new(NonIdealities::typical()).unwrap();
        let _ = cold.process(&vec![u_lo; 20_000]);
        prop_assert!(cold.overload_ratio() < 1e-4, "false overload at {u_lo}");
    }
}

//! Criterion bench: ΣΔ-modulator throughput.
//!
//! The fabricated chip converts at 128 kS/s in real time; the behavioral
//! model must run far faster than that to make the session experiments
//! practical. This bench measures modulator steps/second for the ideal
//! and typical (noise-bearing) configurations and the 1st-order baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta1, SigmaDelta2};
use tonos_analog::nonideal::NonIdealities;
use tonos_dsp::signal::sine_wave;

fn bench_modulators(c: &mut Criterion) {
    let n = 128_000; // one real-time second of modulator clocks
    let stim = sine_wave(128_000.0, 100.0, 0.5, 0.0, n);
    let mut group = c.benchmark_group("modulator");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::new("sigma_delta2", "ideal"), |b| {
        let mut dsm = SigmaDelta2::new(NonIdealities::ideal()).unwrap();
        b.iter(|| black_box(dsm.process_to_f64(black_box(&stim))));
    });
    group.bench_function(BenchmarkId::new("sigma_delta2", "typical"), |b| {
        let mut dsm = SigmaDelta2::new(NonIdealities::typical()).unwrap();
        b.iter(|| black_box(dsm.process_to_f64(black_box(&stim))));
    });
    group.bench_function(BenchmarkId::new("sigma_delta1", "ideal"), |b| {
        let mut dsm = SigmaDelta1::new(NonIdealities::ideal()).unwrap();
        b.iter(|| black_box(dsm.process_to_f64(black_box(&stim))));
    });
    group.finish();
}

criterion_group!(benches, bench_modulators);
criterion_main!(benches);

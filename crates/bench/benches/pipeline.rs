//! Criterion bench: end-to-end pipeline throughput.
//!
//! Measures how much faster than real time the full chain runs: pressure
//! frames through chip + mux + ΣΔ + decimation (1 kS/s output), and the
//! electrical-characterization voltage path. The capacitive path is
//! benched with telemetry disabled and enabled, to keep the per-frame
//! flush honest about its cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tonos_core::config::SystemConfig;
use tonos_core::readout::ReadoutSystem;
use tonos_core::stream::{AlarmLimits, OnlineAnalyzer};
use tonos_mems::units::{MillimetersHg, Pascals, Volts};
use tonos_physio::patient::PatientProfile;
use tonos_telemetry::Registry;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");

    // One real-time second of capacitive acquisition = 1000 frames.
    let frames: Vec<Vec<Pascals>> = (0..1000)
        .map(|i| {
            let mmhg = 90.0 + 30.0 * ((i as f64) * 0.0075).sin();
            vec![Pascals::from_mmhg(MillimetersHg(mmhg)); 4]
        })
        .collect();
    group.throughput(Throughput::Elements(1000));
    group.bench_function("capacitive_1s_realtime", |b| {
        let mut sys = ReadoutSystem::new(SystemConfig::paper_default()).unwrap();
        b.iter(|| black_box(sys.push_frames(black_box(&frames)).unwrap()));
    });
    group.bench_function("capacitive_1s_realtime_telemetry", |b| {
        let registry = Registry::new();
        let mut sys =
            ReadoutSystem::with_telemetry(SystemConfig::paper_default(), registry.telemetry())
                .unwrap();
        b.iter(|| black_box(sys.push_frames(black_box(&frames)).unwrap()));
    });

    // One real-time second of voltage characterization = 128k samples.
    let volts: Vec<Volts> = (0..128_000)
        .map(|i| Volts(1.25 * ((i as f64) * 0.001).sin()))
        .collect();
    group.throughput(Throughput::Elements(128_000));
    group.bench_function("voltage_1s_realtime", |b| {
        let mut sys = ReadoutSystem::new(SystemConfig::characterization_default()).unwrap();
        b.iter(|| black_box(sys.acquire_voltage(black_box(&volts))));
    });

    // One real-time minute of streaming beat analysis at 1 kS/s.
    let record = PatientProfile::normotensive().record(1000.0, 60.0).unwrap();
    let stream: Vec<f64> = record.samples.iter().map(|p| p.value()).collect();
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("online_analyzer_60s_realtime", |b| {
        b.iter(|| {
            let mut analyzer = OnlineAnalyzer::new(1000.0, AlarmLimits::adult()).unwrap();
            black_box(analyzer.push_block(black_box(&stream)))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

//! Criterion bench: decimation-filter throughput (the "FPGA" stage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tonos_dsp::cic::{CicDecimator, CicDecimatorF64};
use tonos_dsp::decimator::DecimatorConfig;
use tonos_dsp::fpga::FixedPointDecimator;

fn bench_decimators(c: &mut Criterion) {
    let n = 128_000;
    let bits_f: Vec<f64> = (0..n)
        .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
        .collect();
    let bits_i: Vec<i64> = bits_f.iter().map(|&v| v as i64).collect();

    let mut group = c.benchmark_group("decimator");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::new("two_stage", "paper"), |b| {
        let mut dec = DecimatorConfig::paper_default().build().unwrap();
        b.iter(|| black_box(dec.process(black_box(&bits_f))));
    });
    group.bench_function(BenchmarkId::new("two_stage", "unquantized"), |b| {
        let mut dec = DecimatorConfig {
            output_bits: None,
            ..DecimatorConfig::paper_default()
        }
        .build()
        .unwrap();
        b.iter(|| black_box(dec.process(black_box(&bits_f))));
    });
    group.bench_function(BenchmarkId::new("cic", "f64_order3_r32"), |b| {
        let mut cic = CicDecimatorF64::new(3, 32).unwrap();
        b.iter(|| black_box(cic.process(black_box(&bits_f))));
    });
    group.bench_function(BenchmarkId::new("cic", "i64_order3_r32"), |b| {
        let mut cic = CicDecimator::new(3, 32).unwrap();
        b.iter(|| black_box(cic.process(black_box(&bits_i))));
    });
    let bits_i8: Vec<i8> = bits_f
        .iter()
        .map(|&v| if v > 0.0 { 1 } else { -1 })
        .collect();
    group.bench_function(BenchmarkId::new("fpga", "bit_exact_paper"), |b| {
        let mut fpga = FixedPointDecimator::paper_default();
        b.iter(|| black_box(fpga.process(black_box(&bits_i8))));
    });
    group.finish();
}

criterion_group!(benches, bench_decimators);
criterion_main!(benches);

//! Criterion bench: MEMS model evaluation cost.
//!
//! Justifies the chip's capacitance lookup table: exact Simpson
//! integration per query vs the interpolated LUT path used at frame rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tonos_core::chip::SensorChip;
use tonos_core::config::ChipConfig;
use tonos_mems::capacitor::MembraneCapacitor;
use tonos_mems::units::{MillimetersHg, Pascals};

fn bench_mems(c: &mut Criterion) {
    let mut group = c.benchmark_group("mems");

    for &grid in &[8_usize, 16, 32, 64] {
        let cap = MembraneCapacitor::paper_default().with_grid(grid);
        let p = Pascals::from_mmhg(MillimetersHg(120.0));
        group.bench_function(BenchmarkId::new("exact_capacitance", grid), |b| {
            b.iter(|| black_box(cap.capacitance(black_box(p)).unwrap()));
        });
    }

    let chip = SensorChip::new(ChipConfig::paper_default()).unwrap();
    let frame = vec![Pascals::from_mmhg(MillimetersHg(120.0)); 4];
    group.bench_function("chip_lut_capacitances_4_elements", |b| {
        b.iter(|| black_box(chip.capacitances(black_box(&frame)).unwrap()));
    });

    let plate = tonos_mems::plate::SquarePlate::paper_default();
    group.bench_function("plate_deflection_solve", |b| {
        b.iter(|| {
            black_box(
                plate
                    .center_deflection(black_box(Pascals(20_000.0)))
                    .unwrap(),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_mems);
criterion_main!(benches);

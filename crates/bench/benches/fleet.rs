//! Criterion bench: fleet session throughput and the packed-bit hot
//! path.
//!
//! Two questions: (a) how much does packing the ΣΔ bitstream into u64
//! words buy over shuttling ±1.0 f64s into the decimator, and (b) how
//! does fleet throughput scale with pool width on this host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tonos_dsp::bits::PackedBits;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_fleet::{FleetConfig, FleetEngine, SessionSpec};
use tonos_physio::patient::PatientProfile;

fn bench_packed_path(c: &mut Criterion) {
    let n = 128_000; // one second of modulator output
    let bools: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let floats: Vec<f64> = bools.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
    let packed: PackedBits = bools.iter().copied().collect();

    let mut group = c.benchmark_group("packed_bits");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("decimate", "f64_legacy"), |b| {
        let mut dec = DecimatorConfig::paper_default().build().unwrap();
        b.iter(|| black_box(dec.process(black_box(&floats))));
    });
    group.bench_function(BenchmarkId::new("decimate", "packed_u64"), |b| {
        let mut dec = DecimatorConfig::paper_default().build().unwrap();
        b.iter(|| black_box(dec.process_packed(black_box(&packed))));
    });
    group.bench_function(BenchmarkId::new("pack", "from_bools"), |b| {
        b.iter(|| black_box(bools.iter().copied().collect::<PackedBits>()));
    });
    group.finish();
}

fn bench_fleet_scaling(c: &mut Criterion) {
    // Short real sessions so one bench iteration stays tractable.
    let spec = SessionSpec::new("bench", PatientProfile::normotensive())
        .with_duration(4.0)
        .with_scan_window(150);
    let sessions = 4usize;

    let mut group = c.benchmark_group("fleet");
    group.throughput(Throughput::Elements(sessions as u64));
    for workers in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("sessions", format!("{workers}w")), |b| {
            b.iter(|| {
                let mut fleet = FleetEngine::spawn(FleetConfig { workers });
                for _ in 0..sessions {
                    fleet.push(spec.clone());
                }
                black_box(fleet.drain())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packed_path, bench_fleet_scaling);
criterion_main!(benches);

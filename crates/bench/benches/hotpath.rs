//! Criterion bench: per-stage costs of the 128 kS/s hot path.
//!
//! One real-time second of the paper's signal chain is 128 000 modulator
//! clocks, 4 000 CIC outputs, and 1 000 delivered samples. This bench
//! isolates each stage — modulator clocking (scalar vs block), the CIC
//! first stage (scalar per-bit vs word-parallel kernel), the FIR second
//! stage, and the assembled per-frame readout — so a regression in any
//! one of them is attributable. The headline numbers live in
//! `BENCH_hotpath.json` (emitted by the `hotpath_throughput` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta2};
use tonos_analog::nonideal::NonIdealities;
use tonos_core::readout::ReadoutSystem;
use tonos_dsp::bits::PackedBits;
use tonos_dsp::cic::CicDecimator;
use tonos_dsp::decimator::{DecimatorConfig, CIC_INPUT_FRAC_BITS};
use tonos_dsp::fir::FirDecimator;
use tonos_dsp::signal::sine_wave;
use tonos_mems::units::{MillimetersHg, Pascals};

/// One real-time second of modulator clocks.
const CLOCKS: usize = 128_000;

fn bench_modulator_block(c: &mut Criterion) {
    let stim = sine_wave(128_000.0, 100.0, 0.5, 0.0, CLOCKS);
    let mut group = c.benchmark_group("hotpath/modulator");
    group.throughput(Throughput::Elements(CLOCKS as u64));

    group.bench_function(BenchmarkId::new("typical", "per_sample"), |b| {
        let mut dsm = SigmaDelta2::new(NonIdealities::typical()).unwrap();
        let mut bits = PackedBits::with_capacity(CLOCKS);
        b.iter(|| {
            bits.clear();
            for &x in &stim {
                bits.push(dsm.step(black_box(x)) > 0);
            }
            black_box(bits.len())
        });
    });
    group.bench_function(BenchmarkId::new("typical", "step_block"), |b| {
        let mut dsm = SigmaDelta2::new(NonIdealities::typical()).unwrap();
        let mut noise = Vec::with_capacity(CLOCKS);
        let mut bits = PackedBits::with_capacity(CLOCKS);
        b.iter(|| {
            bits.clear();
            dsm.step_block(black_box(&stim), &mut noise, &mut bits);
            black_box(bits.len())
        });
    });
    group.finish();
}

fn bench_cic_kernel(c: &mut Criterion) {
    let bits: PackedBits = (0..CLOCKS).map(|i| i % 3 == 0).collect();
    let scale = 1_i64 << CIC_INPUT_FRAC_BITS;
    let mut group = c.benchmark_group("hotpath/cic");
    group.throughput(Throughput::Elements(CLOCKS as u64));

    group.bench_function(BenchmarkId::new("order3_r32", "per_bit"), |b| {
        let mut cic = CicDecimator::new(3, 32).unwrap();
        b.iter(|| {
            let mut acc = 0i64;
            for bit in bits.iter() {
                if let Some(v) = cic.push(if bit { scale } else { -scale }) {
                    acc = acc.wrapping_add(v);
                }
            }
            black_box(acc)
        });
    });
    group.bench_function(BenchmarkId::new("order3_r32", "word_parallel"), |b| {
        let mut cic = CicDecimator::new(3, 32).unwrap();
        let mut out = Vec::with_capacity(CLOCKS / 32 + 1);
        b.iter(|| {
            out.clear();
            cic.process_packed_into(black_box(&bits), scale, &mut out);
            black_box(out.len())
        });
    });
    group.finish();
}

fn bench_fir(c: &mut Criterion) {
    // The FIR sees the CIC's 4 kS/s intermediate rate.
    let n = CLOCKS / 32;
    let xs = sine_wave(4_000.0, 100.0, 0.5, 0.0, n);
    let mut group = c.benchmark_group("hotpath/fir");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("hamming32_r4", "push"), |b| {
        let mut fir = FirDecimator::paper_default();
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &xs {
                if let Some(y) = fir.push(black_box(x)) {
                    acc += y;
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_frame(c: &mut Criterion) {
    // The assembled readout: one pressure frame → one output sample,
    // after the mux has settled and the scratch has grown (the
    // steady-state cost of every frame in a session).
    let mut sys = ReadoutSystem::paper_default().unwrap();
    let frame = vec![Pascals::from_mmhg(MillimetersHg(100.0)); 4];
    for _ in 0..16 {
        sys.push_frame(&frame).unwrap();
    }
    let osr = sys.osr() as u64;
    let mut group = c.benchmark_group("hotpath/frame");
    group.throughput(Throughput::Elements(osr));
    group.bench_function(BenchmarkId::new("readout", "settled_push_frame"), |b| {
        b.iter(|| black_box(sys.push_frame(black_box(&frame)).unwrap()))
    });
    // Full decimator over one second of packed bits — the chain the
    // packed-throughput headline measures.
    let bits: PackedBits = (0..CLOCKS).map(|i| i % 3 == 0).collect();
    let mut dec = DecimatorConfig::paper_default().build().unwrap();
    let mut out = Vec::with_capacity(CLOCKS / 128 + 1);
    group.throughput(Throughput::Elements(CLOCKS as u64));
    group.bench_function(BenchmarkId::new("decimator", "packed_into"), |b| {
        b.iter(|| {
            out.clear();
            dec.process_packed_into(black_box(&bits), &mut out);
            black_box(out.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_modulator_block,
    bench_cic_kernel,
    bench_fir,
    bench_frame
);
criterion_main!(benches);

//! Criterion bench: FFT and spectral-metric extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tonos_dsp::fft::{fft, Complex};
use tonos_dsp::metrics::DynamicMetrics;
use tonos_dsp::signal::sine_wave;
use tonos_dsp::spectrum::Spectrum;
use tonos_dsp::window::Window;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[1024_usize, 4096, 16_384] {
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("radix2", n), |b| {
            b.iter(|| {
                let mut buf = signal.clone();
                fft(black_box(&mut buf)).unwrap();
                black_box(buf)
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("spectral_metrics");
    let n = 4096;
    let f = Window::coherent_frequency(1000.0, n, 15.625);
    let x = sine_wave(1000.0, f, 0.5, 0.0, n);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("spectrum_plus_metrics_4096", |b| {
        b.iter(|| {
            let s = Spectrum::from_signal(black_box(&x), 1000.0, Window::Hann).unwrap();
            black_box(DynamicMetrics::from_spectrum(&s).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);

//! Experiment E4 — §2.2 / Fig. 4: multiplexer switching and settling.
//!
//! "The settling when switching between different sensor elements is
//! limited by the signal bandwidth of the ΣΔ-AD-converter." — i.e. the
//! decimation filter's memory, not the analog mux, dominates. This
//! harness switches between a lightly and a heavily loaded element and
//! measures the residual error versus the number of discarded output
//! samples, confirming the scan controller's discard count.

use tonos_bench::{fmt, print_table};
use tonos_core::config::SystemConfig;
use tonos_core::readout::ReadoutSystem;
use tonos_mems::units::{MillimetersHg, Pascals};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E4 / Fig. 4: element switching settling ==");

    let mut system = ReadoutSystem::new(SystemConfig::paper_default())?;
    // Element (0,0) unloaded, element (1,1) at 200 mmHg.
    let mut frame = vec![Pascals(0.0); 4];
    frame[3] = Pascals::from_mmhg(MillimetersHg(200.0));

    // Settle fully on (0,0).
    system.select_element(0, 0, &frame)?;
    let warm = system.settling_frames() + 40;
    let _ = system.push_frames(&vec![frame.clone(); warm])?;

    // Switch to (1,1) and record the transient.
    system.select_element(1, 1, &frame)?;
    let transient = system.push_frames(&vec![frame.clone(); system.settling_frames() + 60])?;
    // Final value = mean of the last 20 samples.
    let final_v: f64 = transient[transient.len() - 20..].iter().sum::<f64>() / 20.0;
    let first_err = (transient[0] - final_v).abs();

    let lsb = 1.0 / 2048.0; // 12-bit output LSB
    let mut rows = Vec::new();
    for (discard, &sample) in transient
        .iter()
        .enumerate()
        .take(system.settling_frames() + 5)
    {
        let err = (sample - final_v).abs();
        rows.push(vec![
            discard.to_string(),
            fmt(discard as f64 / system.output_rate_hz() * 1e3, 2),
            fmt(err / lsb, 2),
            if err <= 2.0 * lsb {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    print_table(
        "Residual error after switching (0,0) -> (1,1) vs discarded output samples",
        &[
            "discarded samples",
            "elapsed [ms]",
            "error [LSB @ 12 bit]",
            "settled (<=2 LSB)",
        ],
        &rows,
    );

    println!(
        "\nScan-controller discard count: {} output samples ({:.1} ms at 1 kS/s).",
        system.settling_frames(),
        system.settling_frames() as f64 / system.output_rate_hz() * 1e3
    );
    println!(
        "First post-switch sample error: {:.1} LSB -> settling is entirely decimation-filter \
         memory, matching the paper's bandwidth-limited settling remark.",
        first_err / lsb
    );
    Ok(())
}

//! Experiment E7 — §2: "localizing blood vessels, buried in tissue".
//!
//! Procedure:
//!
//! 1. **Sensitivity calibration**: scan the array once under a spatially
//!    *uniform* pulsating pressure (a pressure bath on the PDMS surface).
//!    Fabrication mismatch makes nominally identical elements report
//!    slightly different pulsatile scores; the per-element gains from
//!    this scan normalize all later measurements. (Real tactile arrays
//!    ship with exactly this kind of factory calibration.)
//! 2. **Vessel sweep**: place the vessel at several lateral offsets,
//!    scan, normalize the scores by the calibration gains, select the
//!    strongest element and estimate the vessel position from the score
//!    centroid.
//!
//! Two configurations:
//!
//! * the paper's **2×2** array over the 2.5 mm-deep radial artery, where
//!   the surface kernel (σ ≈ 2 mm) is an order of magnitude wider than
//!   the 150 µm pitch — localization contrast is ~1 %, so only a coarse
//!   tendency is measurable; the experiment *quantifies* why the 2×2
//!   array relaxes placement accuracy (all elements see the pulse) but
//!   cannot triangulate a deep artery;
//! * an extended **4×4** array (the paper: the mux design "can be easily
//!   extended to larger array sizes") over a superficial vessel, where
//!   the kernel is comparable to the array span and the estimate tracks
//!   the true position monotonically.

use tonos_bench::{fmt, print_table};
use tonos_core::config::SystemConfig;
use tonos_core::localize::localize_vessel;
use tonos_core::readout::ReadoutSystem;
use tonos_core::select::{scan_strongest, ScanResult};
use tonos_mems::array::ArrayLayout;
use tonos_mems::contact::PressureField;
use tonos_mems::units::{Meters, MillimetersHg, Pascals};
use tonos_physio::patient::PatientProfile;
use tonos_physio::tissue::TissueModel;
use tonos_physio::waveform::WaveformRecord;

/// Scans a fresh system against a surface pressure field given as
/// `field_at(arterial, x, y)`.
fn scan_field<F>(
    config: SystemConfig,
    truth: &WaveformRecord,
    window: usize,
    field_at: F,
) -> Result<ScanResult, Box<dyn std::error::Error>>
where
    F: Fn(MillimetersHg, f64, f64) -> Pascals + 'static,
{
    let mut system = ReadoutSystem::new(config)?;
    let layout = system.chip().array().layout();
    let contact = config.contact;
    let samples = truth.samples.clone();
    let mut t = 0usize;
    let scan = scan_strongest(
        &mut system,
        move || {
            let arterial = samples[t % samples.len()];
            t += 1;
            let mut frame = Vec::with_capacity(layout.len());
            for row in 0..layout.rows {
                for col in 0..layout.cols {
                    let (x, y) = layout.position(row, col);
                    frame.push(contact.net_element_pressure(field_at(arterial, x, y)));
                }
            }
            frame
        },
        window,
    )?;
    Ok(scan)
}

/// Divides scan scores by per-element calibration gains and re-derives
/// the winner.
fn normalize(scan: &ScanResult, calibration: &ScanResult) -> ScanResult {
    let mut scores = Vec::with_capacity(scan.scores.len());
    let mut best = scan.best;
    let mut best_score = f64::MIN;
    for (&(rc, s), &(_, g)) in scan.scores.iter().zip(&calibration.scores) {
        let norm = if g > 0.0 { s / g } else { 0.0 };
        scores.push((rc, norm));
        if norm > best_score {
            best_score = norm;
            best = rc;
        }
    }
    ScanResult { scores, best }
}

fn run_sweep(
    label: &str,
    config: SystemConfig,
    tissue_base: TissueModel,
    offsets_um: &[f64],
    window: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let truth = PatientProfile::normotensive().record(1000.0, 40.0)?;
    let layout = {
        let system = ReadoutSystem::new(config)?;
        system.chip().array().layout()
    };

    // Step 1: sensitivity calibration under a uniform pressure bath.
    let calibration = scan_field(config, &truth, window, |arterial, _x, _y| {
        // Uniform: the full pulse everywhere (no tissue kernel).
        Pascals::from_mmhg(arterial) * 0.25
    })?;
    let cal_spread = {
        let vals: Vec<f64> = calibration.scores.iter().map(|&(_, s)| s).collect();
        let max = vals.iter().copied().fold(f64::MIN, f64::max);
        let min = vals.iter().copied().fold(f64::MAX, f64::min);
        (max - min) / max
    };

    let mut rows = Vec::new();
    let mut estimates = Vec::new();
    for &offset_um in offsets_um {
        let tissue = tissue_base.with_vessel_offset(offset_um * 1e-6);
        let scan = scan_field(config, &truth, window, move |arterial, x, y| {
            tissue.field(arterial).pressure_at(x, y)
        })?;
        let normalized = normalize(&scan, &calibration);
        let estimate = localize_vessel(&normalized, layout)?;
        estimates.push(estimate.x);
        let best_x = layout.position(normalized.best.0, normalized.best.1).0;
        rows.push(vec![
            fmt(offset_um, 0),
            format!("({},{})", normalized.best.0, normalized.best.1),
            fmt(best_x * 1e6, 0),
            fmt(estimate.x * 1e6, 1),
            fmt(estimate.confidence, 3),
        ]);
    }
    print_table(
        label,
        &[
            "true offset [um]",
            "selected element",
            "element x [um]",
            "estimated x [um]",
            "confidence",
        ],
        &rows,
    );
    // Rank correlation between true offsets and estimates.
    let mut concordant = 0usize;
    let mut total = 0usize;
    for i in 0..estimates.len() {
        for j in i + 1..estimates.len() {
            total += 1;
            if (offsets_um[j] - offsets_um[i]) * (estimates[j] - estimates[i]) > 0.0 {
                concordant += 1;
            }
        }
    }
    println!(
        "per-element sensitivity spread (pre-calibration): {:.1} %; \
         estimate/true rank concordance: {}/{}",
        cal_spread * 100.0,
        concordant,
        total
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E7: vessel localization from the array scan ==");

    run_sweep(
        "Part 1 — paper 2x2 array, radial artery at 2.5 mm depth (kernel >> pitch)",
        SystemConfig::paper_default(),
        TissueModel::radial_artery(),
        &[-400.0, -150.0, 0.0, 150.0, 400.0],
        600,
    )?;

    let mut config = SystemConfig::paper_default();
    config.chip.layout = ArrayLayout {
        rows: 4,
        cols: 4,
        pitch: Meters::from_microns(150.0),
    };
    let shallow = TissueModel::new(Meters(0.6e-3), 0.0, 0.6, Meters(4.0e-3), Meters(0.1e-3))?;
    run_sweep(
        "Part 2 — extended 4x4 array, superficial vessel at 0.6 mm depth",
        config,
        shallow,
        &[
            -300.0, -225.0, -150.0, -75.0, 0.0, 75.0, 150.0, 225.0, 300.0,
        ],
        600,
    )?;

    println!(
        "\nShape check vs paper: with the deep radial artery the kernel floods the whole \
         2x2 array — exactly why the paper's element selection 'relaxes the necessary \
         accuracy of sensor placement' — while the extended array over a shallow vessel \
         turns the same scan into a monotone position estimate, 'localizing blood vessels, \
         buried in tissue' (Section 2)."
    );
    Ok(())
}

//! Experiment E5 — §2.1 / Fig. 2: membrane transduction characterization.
//!
//! The paper specifies the structure (100 µm × 3 µm CMOS membrane, poly
//! bottom electrode) but publishes no transduction curve. This harness
//! characterizes the model: deflection and capacitance versus pressure,
//! small-signal sensitivity, and the collapse margin — the numbers a
//! user of the sensor would need.

use tonos_bench::{fmt, print_table};
use tonos_mems::capacitor::MembraneCapacitor;
use tonos_mems::dynamics::MembraneDynamics;
use tonos_mems::units::{MillimetersHg, Pascals};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E5 / Fig. 2: membrane pressure-to-capacitance transduction ==");

    let cap = MembraneCapacitor::paper_default();
    let plate = cap.plate();
    let c0 = cap.rest_capacitance();

    println!(
        "\nmembrane: side {:.0} um, stack {:.1} um, rigidity D = {:.3e} N*m, \
         residual tension N0 = {:.1} N/m",
        plate.side().to_microns(),
        plate.laminate().total_thickness().to_microns(),
        plate.laminate().flexural_rigidity(),
        plate.laminate().membrane_tension()
    );
    println!(
        "electrode: rest capacitance {:.2} fF, collapse load {:.0} mmHg",
        c0.to_femtofarads(),
        cap.collapse_pressure().to_mmhg().value()
    );

    let mut rows = Vec::new();
    for mmhg in [
        -200.0, -100.0, -50.0, 0.0, 25.0, 50.0, 100.0, 150.0, 200.0, 300.0, 500.0,
    ] {
        let p = Pascals::from_mmhg(MillimetersHg(mmhg));
        let w = plate.center_deflection(p)?;
        let c = cap.capacitance(p)?;
        let s = cap.pressure_sensitivity(p)?;
        rows.push(vec![
            fmt(mmhg, 0),
            fmt(w.to_nanometers(), 2),
            fmt(c.to_femtofarads(), 3),
            fmt((c - c0).to_femtofarads() * 1000.0, 2),
            fmt(s * 1e18 * 133.322, 3), // aF per mmHg
        ]);
    }
    print_table(
        "Load-deflection-capacitance sweep (positive = toward bottom electrode)",
        &[
            "pressure [mmHg]",
            "center deflection [nm]",
            "capacitance [fF]",
            "dC from rest [aF]",
            "sensitivity [aF/mmHg]",
        ],
        &rows,
    );

    // Dynamics: justify the quasi-static treatment quantitatively.
    let dynamics = MembraneDynamics::paper_default();
    println!(
        "\ndynamics: f0 = {:.2} MHz, Q = {:.3}, response time {:.2} us -> quasi-static over \
         the 500 Hz band: {}",
        dynamics.natural_frequency_hz() / 1e6,
        dynamics.quality_factor(),
        dynamics.response_time_s() * 1e6,
        dynamics.is_quasi_static_for(500.0, 1e-3)
    );

    // Linearity over the clinical range: max deviation from the secant.
    let p_lo = Pascals::from_mmhg(MillimetersHg(0.0));
    let p_hi = Pascals::from_mmhg(MillimetersHg(250.0));
    let c_lo = cap.capacitance(p_lo)?.value();
    let c_hi = cap.capacitance(p_hi)?.value();
    let mut worst = 0.0_f64;
    for i in 1..25 {
        let f = i as f64 / 25.0;
        let p = Pascals(p_lo.value() + f * (p_hi.value() - p_lo.value()));
        let c = cap.capacitance(p)?.value();
        let linear = c_lo + f * (c_hi - c_lo);
        worst = worst.max((c - linear).abs() / (c_hi - c_lo));
    }
    println!(
        "\nlinearity 0..250 mmHg: worst deviation {:.2} % of span -> the two-point cuff \
         calibration of Fig. 9 is justified.",
        worst * 100.0
    );
    Ok(())
}

//! Storage-plane cost measurement — the numbers behind
//! `BENCH_historian.json`.
//!
//! Three questions, one JSON document:
//!
//! 1. **Append throughput**: sustained MB/s through
//!    [`Historian::append`] with sealing and journaling on, at the
//!    paper's record shape (1 kHz tier-0 stream, 1024-sample records).
//! 2. **Ranged-read latency**: p50/p99 of [`read_range`] against a
//!    multi-segment recording, plus proof that the returned point
//!    count stays within the caller's budget no matter how long the
//!    recording is — the bounded-resampled-read gate.
//! 3. **Recovery time**: wall-clock to reopen the store after a torn
//!    tail, with and without the index journal (the journal-less
//!    reopen is the full segment re-scan, the worst case).
//!
//! Run with: `cargo run --release -p tonos-bench --bin historian_throughput`
//! (`--quick` shrinks the workload for CI smoke runs.)
//!
//! [`read_range`]: tonos_historian::HistorianReader::read_range

use std::time::Instant;

use tonos_historian::{Historian, StoreConfig};
use tonos_mems::units::MillimetersHg;
use tonos_telemetry::Telemetry;

/// Samples per appended record: one second of the paper's 1 kHz
/// decimated output, rounded to the tier grid.
const SAMPLES_PER_RECORD: u64 = 1024;

/// Tier-0 sample rate the records claim (paper default output rate).
const RATE_HZ: f64 = 1000.0;

/// Bytes a record's samples occupy on the wire (raw + calibrated
/// lanes at 8 B each — envelope overhead excluded on purpose so the
/// MB/s number is payload, not framing).
const PAYLOAD_BYTES_PER_RECORD: u64 = SAMPLES_PER_RECORD * 16;

/// The ranged-read point budget the gate checks against.
const MAX_POINTS: usize = 512;

/// Deterministic sample truth so gate reads can sanity-check values.
fn truth(clock: u64) -> (f64, f64) {
    let raw = (clock % 4096) as f64 * 0.25;
    (raw, 80.0 + raw * 0.01)
}

/// Appends `records` records to `h` for `(device, session)` and
/// returns the wall-clock seconds spent inside `append`.
fn fill(h: &Historian, device: u64, session: u64, records: u64) -> f64 {
    let mut raw = vec![0.0f64; SAMPLES_PER_RECORD as usize];
    let mut cal = vec![MillimetersHg(0.0); SAMPLES_PER_RECORD as usize];
    let t = Instant::now();
    for k in 0..records {
        let start = k * SAMPLES_PER_RECORD;
        for i in 0..SAMPLES_PER_RECORD {
            let (r, m) = truth(start + i);
            raw[i as usize] = r;
            cal[i as usize] = MillimetersHg(m);
        }
        h.append(device, session, start, RATE_HZ, &raw, &cal)
            .expect("bench append");
    }
    t.elapsed().as_secs_f64()
}

/// Sorted latencies -> (p50, p99) in milliseconds.
fn percentiles_ms(latencies: &mut [f64]) -> (f64, f64) {
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize] * 1e3;
    (pick(0.50), pick(0.99))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Records per phase: enough to cross several 8 MiB segment seals
    // in the full run; quick mode still rolls at least one segment by
    // shrinking the segment size instead of the workload shape.
    let (records, reads) = if quick { (256, 400) } else { (2_048, 2_000) };
    let config = StoreConfig {
        segment_bytes: if quick { 1 << 21 } else { 1 << 23 },
        ..StoreConfig::default()
    };
    eprintln!(
        "measuring on {cores} hardware thread(s){}...",
        if quick { " (quick)" } else { "" }
    );

    let dir = tonos_historian::scratch_dir("bench-historian");
    let t = Telemetry::disabled();
    let (historian, _) = Historian::open(&dir, config, &t).expect("open store");

    // 1. Append throughput, journaled and sealing as it goes.
    let append_secs = fill(&historian, 1, 1, records);
    let payload_mb = (records * PAYLOAD_BYTES_PER_RECORD) as f64 / 1e6;
    let append_mb_s = payload_mb / append_secs;
    let segments = {
        let snap = historian.snapshot();
        snap.entries().last().map_or(1, |e| e.segment + 1)
    };
    eprintln!(
        "  append: {append_mb_s:.1} MB/s ({records} records, {payload_mb:.1} MB payload, {segments} segments)"
    );

    // Build the downsampled tiers once so ranged reads have coarse
    // levels to land on, the way a deployment's compaction loop would.
    let compact_t = Instant::now();
    let report = historian.compact().expect("compact");
    let compact_secs = compact_t.elapsed().as_secs_f64();
    eprintln!(
        "  compact: {} tier records over {} source samples in {compact_secs:.3} s",
        report.tier_records, report.source_samples
    );

    // 2. Ranged-read latency over the full recording, mixed spans.
    let total = records * SAMPLES_PER_RECORD;
    let reader = historian.reader();
    let mut latencies = Vec::with_capacity(reads);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut worst_points = 0usize;
    for _ in 0..reads {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let from = x % total;
        let span = 1 + (x >> 32) % total.max(2);
        let to = (from + span).min(total);
        let t0 = Instant::now();
        let wave = reader
            .read_range(1, 1, from, to, MAX_POINTS)
            .expect("ranged read");
        latencies.push(t0.elapsed().as_secs_f64());
        worst_points = worst_points.max(wave.points.len());
    }
    let (p50_ms, p99_ms) = percentiles_ms(&mut latencies);
    eprintln!("  read_range: p50 {p50_ms:.3} ms, p99 {p99_ms:.3} ms, worst {worst_points} points");

    // The bounded-read gate's strongest form: a full-recording read at
    // the same budget. The recording is `records` seconds long; the
    // response must not scale with it.
    let full = reader
        .read_range(1, 1, 0, total, MAX_POINTS)
        .expect("full-span read");
    let full_points = full.points.len();
    for p in &full.points {
        assert!(p.mmhg.is_finite(), "resampled read produced junk");
    }
    drop(reader);

    // 3. Recovery time: tear the youngest segment, reopen twice —
    // once with the journal (fast replay) and once without (full
    // segment scan, the floor a cold rebuild pays).
    let before = historian.snapshot().entries().len() as u64;
    drop(historian);
    let mut segs: Vec<_> = std::fs::read_dir(&dir)
        .expect("list store dir")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            p.extension().is_some_and(|x| x == "tseg").then_some(p)
        })
        .collect();
    segs.sort();
    let last = segs.last().expect("store has segments");
    let len = std::fs::metadata(last).expect("segment metadata").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(last)
        .expect("open segment")
        .set_len(len - 137.min(len / 2))
        .expect("tear tail");

    let t0 = Instant::now();
    let (h2, rep_journal) = Historian::open(&dir, config, &t).expect("journaled reopen");
    let recover_journal_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(h2);
    std::fs::remove_file(dir.join("index.jnl")).expect("drop journal");
    let t0 = Instant::now();
    let (h3, rep_scan) = Historian::open(&dir, config, &t).expect("scanned reopen");
    let recover_scan_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "  recovery: {recover_journal_ms:.2} ms journaled / {recover_scan_ms:.2} ms full scan \
         ({} of {before} records survive the torn tail)",
        rep_journal.records
    );
    drop(h3);
    std::fs::remove_dir_all(&dir).ok();

    println!("{{");
    println!("  \"bench\": \"historian_throughput\",");
    println!("  \"quick\": {quick},");
    println!("  \"host_hardware_threads\": {cores},");
    println!("  \"append\": {{");
    println!("    \"records\": {records},");
    println!("    \"samples_per_record\": {SAMPLES_PER_RECORD},");
    println!("    \"payload_mb\": {payload_mb:.2},");
    println!("    \"segments\": {segments},");
    println!("    \"mb_per_s\": {append_mb_s:.2}");
    println!("  }},");
    println!("  \"compaction\": {{");
    println!("    \"tier_records\": {},", report.tier_records);
    println!("    \"source_samples\": {},", report.source_samples);
    println!("    \"seconds\": {compact_secs:.4}");
    println!("  }},");
    println!("  \"ranged_read\": {{");
    println!("    \"reads\": {reads},");
    println!("    \"max_points\": {MAX_POINTS},");
    println!("    \"p50_ms\": {p50_ms:.4},");
    println!("    \"p99_ms\": {p99_ms:.4},");
    println!("    \"worst_points\": {worst_points},");
    println!("    \"full_span_points\": {full_points}");
    println!("  }},");
    println!("  \"recovery\": {{");
    println!("    \"records_before\": {before},");
    println!("    \"records_recovered\": {},", rep_journal.records);
    println!("    \"journaled_ms\": {recover_journal_ms:.3},");
    println!("    \"full_scan_ms\": {recover_scan_ms:.3}");
    println!("  }},");
    println!(
        "  \"gate\": \"every ranged read within the {MAX_POINTS}-point budget regardless of span; \
         journal-less recovery agrees with journaled recovery; torn tail loses at most one record\""
    );
    println!("}}");

    let mut failed = false;
    // The bounded-resampled-read gate: no read — including the
    // full-recording span — may exceed the caller's point budget.
    if worst_points > MAX_POINTS || full_points > MAX_POINTS {
        eprintln!(
            "FAIL: ranged read exceeded its budget \
             (worst {worst_points}, full-span {full_points}, budget {MAX_POINTS})"
        );
        failed = true;
    }
    if full_points == 0 {
        eprintln!("FAIL: full-span resampled read returned no points");
        failed = true;
    }
    // Recovery correctness: both paths agree, and the torn tail cost
    // at most one record (the cut was 137 bytes into the last one).
    if rep_journal.records != rep_scan.records {
        eprintln!(
            "FAIL: journaled recovery found {} records but the full scan found {}",
            rep_journal.records, rep_scan.records
        );
        failed = true;
    }
    if rep_journal.records + 1 < before {
        eprintln!(
            "FAIL: torn tail lost {} records; at most 1 may be torn",
            before - rep_journal.records
        );
        failed = true;
    }
    if append_mb_s <= 0.0 || !append_mb_s.is_finite() {
        eprintln!("FAIL: append throughput did not measure ({append_mb_s})");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

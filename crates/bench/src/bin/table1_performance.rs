//! Experiment E2 — §3.1 performance summary.
//!
//! The paper has no numbered table; its electrical results are scalar
//! claims in the text and abstract. This harness regenerates each one
//! from the models and prints them side by side with the paper values.

use tonos_analog::nonideal::NonIdealities;
use tonos_analog::power::PowerModel;
use tonos_bench::{characterize_adc, fmt, print_table};
use tonos_core::config::SystemConfig;
use tonos_core::readout::ReadoutSystem;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_mems::units::Volts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E2: performance summary (paper §3.1 / abstract) ==");

    let system = ReadoutSystem::new(SystemConfig::characterization_default())?;
    let adc = characterize_adc(
        NonIdealities::typical(),
        DecimatorConfig::paper_default(),
        0.85,
        15.625,
        4096,
    )?;
    let power = PowerModel::paper_default();

    let rows = vec![
        vec![
            "modulator sampling rate".into(),
            "128 kS/s".into(),
            fmt(system.config().chip.sample_rate_hz / 1e3, 0) + " kS/s",
        ],
        vec![
            "oversampling ratio".into(),
            "128".into(),
            system.osr().to_string(),
        ],
        vec![
            "conversion (output) rate".into(),
            "1 kS/s".into(),
            fmt(system.output_rate_hz() / 1e3, 0) + " kS/s",
        ],
        vec![
            "output resolution".into(),
            "12 bit".into(),
            format!(
                "{} bit",
                system
                    .config()
                    .decimator
                    .output_bits
                    .expect("paper config has a quantizer")
            ),
        ],
        vec![
            "decimation filter".into(),
            "SINC3 + 32-tap FIR".into(),
            format!(
                "SINC{} / {}-tap FIR",
                system.config().decimator.cic_order,
                system.config().decimator.fir_taps
            ),
        ],
        vec![
            "filter cutoff".into(),
            "500 Hz".into(),
            fmt(system.config().decimator.cutoff_hz, 0) + " Hz",
        ],
        vec![
            "SNR (sine test, Fig. 7)".into(),
            "> 72 dB".into(),
            fmt(adc.metrics.snr_db, 1) + " dB",
        ],
        vec![
            "ENOB".into(),
            "~12 bit (implied)".into(),
            fmt(adc.metrics.enob, 2) + " bit",
        ],
        vec![
            "supply voltage".into(),
            "5 V".into(),
            fmt(system.config().chip.supply.value(), 1) + " V",
        ],
        vec![
            "power @ 5 V, 128 kHz".into(),
            "11.5 mW".into(),
            fmt(power.power(128_000.0, Volts(5.0)) * 1e3, 2) + " mW",
        ],
        vec![
            "array size / pitch".into(),
            "2x2 / 150 um".into(),
            format!(
                "{}x{} / {:.0} um",
                system.config().chip.layout.rows,
                system.config().chip.layout.cols,
                system.config().chip.layout.pitch.to_microns()
            ),
        ],
        vec![
            "membrane side / thickness".into(),
            "100 um / 3 um".into(),
            {
                let e = system.chip().array().element(0, 0)?;
                format!(
                    "{:.0} um / {:.1} um",
                    e.capacitor().plate().side().to_microns(),
                    e.capacitor()
                        .plate()
                        .laminate()
                        .total_thickness()
                        .to_microns()
                )
            },
        ],
    ];

    print_table(
        "Performance summary: paper vs this reproduction",
        &["metric", "paper", "measured (model)"],
        &rows,
    );

    println!(
        "\nAll structural parameters match by construction; SNR/ENOB/power are measured \
         from the behavioral chain."
    );
    Ok(())
}

//! Ablation A1 — SNR vs oversampling ratio and vs input amplitude.
//!
//! Theory anchors the shape: a 2nd-order single-bit ΣΔ gains ~15 dB per
//! OSR octave until other limits dominate, and SNR grows dB-for-dB with
//! input level up to the overload knee. The paper's operating point
//! (OSR 128, 12-bit output) sits where the output quantizer caps the
//! budget — the reason "adjusting the feedback capacitors" (future work)
//! or a wider output word would be needed for more resolution.

use tonos_analog::nonideal::NonIdealities;
use tonos_bench::{characterize_adc, fmt, print_table, snr_at};
use tonos_dsp::decimator::DecimatorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== A1: SNR vs OSR and vs input amplitude ==");
    let n_out = 2048;

    // --- OSR sweep ---
    let mut rows = Vec::new();
    let mut prev_unq: Option<f64> = None;
    for osr in [32_usize, 64, 128, 256, 512] {
        let ideal_unq = snr_at(NonIdealities::ideal(), osr, 0.5, None, n_out)?;
        let typ_unq = snr_at(NonIdealities::typical(), osr, 0.5, None, n_out)?;
        let typ_12b = snr_at(NonIdealities::typical(), osr, 0.5, Some(12), n_out)?;
        let octave_gain = prev_unq
            .map(|p| fmt(ideal_unq - p, 1))
            .unwrap_or("-".into());
        prev_unq = Some(ideal_unq);
        rows.push(vec![
            osr.to_string(),
            fmt(128_000.0 / osr as f64, 0),
            fmt(ideal_unq, 1),
            octave_gain,
            fmt(typ_unq, 1),
            fmt(typ_12b, 1),
        ]);
    }
    print_table(
        "SNR vs OSR (-6 dBFS sine; theory: ~15 dB/octave for a 2nd-order loop)",
        &[
            "OSR",
            "output rate [S/s]",
            "ideal SNR [dB]",
            "gain/octave [dB]",
            "typical SNR [dB]",
            "typical + 12-bit out [dB]",
        ],
        &rows,
    );

    // --- Amplitude sweep (dynamic range) at the paper's OSR 128 ---
    let mut rows = Vec::new();
    for &db in &[-60.0, -40.0, -20.0, -12.0, -6.0, -3.0, -1.0, 0.0] {
        let amp = 10.0_f64.powf(db / 20.0);
        let r = characterize_adc(
            NonIdealities::typical(),
            DecimatorConfig::paper_default(),
            amp,
            15.625,
            n_out,
        )?;
        rows.push(vec![
            fmt(db, 0),
            fmt(r.metrics.signal_dbfs, 1),
            fmt(r.metrics.snr_db, 1),
            fmt(r.metrics.sndr_db, 1),
        ]);
    }
    print_table(
        "Dynamic range at OSR 128, 12-bit output (input level sweep)",
        &[
            "input [dBFS]",
            "measured level [dBFS]",
            "SNR [dB]",
            "SNDR [dB]",
        ],
        &rows,
    );

    println!(
        "\nShape check: SNR rises ~1 dB/dB with level until the overload knee near 0 dBFS, \
         and ~15 dB/octave with OSR until the 12-bit output word saturates the budget (~74 dB)."
    );
    Ok(())
}

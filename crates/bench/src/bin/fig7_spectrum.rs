//! Experiment E1 — paper Fig. 7: measured spectrum of the 12-bit ΣΔ-ADC.
//!
//! Reproduces §3.1: the modulator's auxiliary differential voltage input
//! is driven with a sine wave near 15.625 Hz, the modulator runs at
//! 128 kHz with OSR 128 (SINC³ + 32-tap FIR, 500 Hz cutoff, 12-bit
//! output, 1 kS/s), and the output spectrum is analyzed.
//!
//! Paper result: "a signal-to-noise ratio better than 72 dB was
//! achieved" at 12-bit output resolution.

use tonos_analog::nonideal::NonIdealities;
use tonos_bench::{ascii_plot, characterize_adc, fmt, print_table};
use tonos_dsp::decimator::DecimatorConfig;
use tonos_dsp::metrics::ideal_quantizer_snr_db;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E1 / Fig. 7: SD-ADC output spectrum (15.625 Hz sine, fs 128 kHz, OSR 128) ==");
    let n_out = 4096;
    // The paper drives the ADC near full scale (its '>72 dB' against the
    // 74 dB ideal-12-bit bound implies a -1..-2 dBFS tone); 0.85 FS is
    // comfortably inside the 2nd-order loop's stable input range.
    let amplitude = 0.85;

    let runs = [
        ("ideal modulator, 12-bit output", NonIdealities::ideal()),
        (
            "typical non-idealities, 12-bit output (the paper's chip)",
            NonIdealities::typical(),
        ),
    ];

    let mut rows = Vec::new();
    let mut paper_run = None;
    for (label, nonideal) in runs {
        let r = characterize_adc(
            nonideal,
            DecimatorConfig::paper_default(),
            amplitude,
            15.625,
            n_out,
        )?;
        rows.push(vec![
            label.to_string(),
            fmt(r.tone_hz, 3),
            fmt(r.metrics.signal_dbfs, 2),
            fmt(r.metrics.snr_db, 2),
            fmt(r.metrics.sndr_db, 2),
            fmt(r.metrics.enob, 2),
        ]);
        if label.contains("paper") {
            paper_run = Some(r);
        }
    }
    // Reference rows.
    rows.push(vec![
        "paper, measured (Fig. 7)".into(),
        "15.625".into(),
        "near FS".into(),
        "> 72".into(),
        "-".into(),
        "~12 (output word)".into(),
    ]);
    rows.push(vec![
        "ideal 12-bit quantizer bound".into(),
        "-".into(),
        "0".into(),
        fmt(ideal_quantizer_snr_db(12), 2),
        fmt(ideal_quantizer_snr_db(12), 2),
        "12.00".into(),
    ]);

    print_table(
        "Fig. 7 reproduction: dynamic performance at 1 kS/s output",
        &[
            "configuration",
            "tone [Hz]",
            "level [dBFS]",
            "SNR [dB]",
            "SNDR [dB]",
            "ENOB [bit]",
        ],
        &rows,
    );

    // The spectrum itself (dBFS vs frequency), as the paper plots it.
    let r = paper_run.expect("paper run present");
    let db = r.spectrum.to_dbfs();
    ascii_plot(
        "Output spectrum, DC..500 Hz (dBFS; tone at 15.625 Hz)",
        &db[1..],
        100,
        18,
    );
    println!("\nSpectrum samples (every 16th bin):");
    let mut rows = Vec::new();
    for (i, v) in db.iter().enumerate().step_by(16) {
        rows.push(vec![fmt(r.spectrum.bin_frequency(i), 2), fmt(*v, 1)]);
    }
    print_table("bin levels", &["f [Hz]", "level [dBFS]"], &rows);

    println!(
        "\nShape check vs paper: SNR {:.1} dB {} the 72 dB floor; output resolution 12 bit.",
        r.metrics.snr_db,
        if r.metrics.snr_db > 72.0 {
            "clears"
        } else {
            "MISSES"
        }
    );
    Ok(())
}

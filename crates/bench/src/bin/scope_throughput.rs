//! Telemetry-plane cost measurement — the numbers behind
//! `BENCH_scope.json`.
//!
//! Three questions, one JSON document:
//!
//! 1. **Hot-path overhead**: the packed host pipeline (decode + gap
//!    tracking + decimation) run telemetry-off vs telemetry-on, same
//!    wire, chunked like a socket reader. The gate: telemetry may cost
//!    at most 3% of the telemetry-off throughput — observability that
//!    taxes the signal path more than that doesn't ship.
//! 2. **Scrape latency**: `GET /metrics` against a live scope endpoint
//!    over a registry + link directory sized like N ∈ {1, 8, 64}
//!    ingest sessions.
//! 3. **Flight-recorder memory**: `approx_bytes` of a saturated
//!    1 s × 120 s ring over a fleet-shaped registry, and proof it stops
//!    growing once the ring is full.
//!
//! Run with: `cargo run --release -p tonos-bench --bin scope_throughput`
//! (`--quick` shrinks the workload for CI smoke runs.)

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tonos_dsp::bits::PackedBits;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_link::{
    DecoderStats, FrameEncoder, GapPolicy, HostPipeline, LinkCalibration, LinkDirectory, LinkHealth,
};
use tonos_scope::{FlightRecorder, RecorderConfig, ScopeServer, ScopeSources};
use tonos_telemetry::{names, FakeClock, Registry};

/// Payload bits per frame (device packet size at the paper OSR).
const FRAME_BITS: usize = 1024;

/// Socket-reader chunk size: telemetry cost lands once per chunk, so
/// the chunking, not the frame count, sets how often spans fire.
const CHUNK: usize = 8 * 1024;

/// The hot-path overhead gate: telemetry-on may cost at most this
/// fraction of telemetry-off throughput.
const OVERHEAD_GATE: f64 = 0.03;

fn wire_stream(frames: usize) -> Vec<u8> {
    let mut enc = FrameEncoder::new(0);
    let mut wire = Vec::new();
    for f in 0..frames {
        let bits: PackedBits = (0..FRAME_BITS)
            .map(|i| (f * FRAME_BITS + i).count_ones() & 1 == 1)
            .collect();
        enc.encode_into(&bits, &mut wire).unwrap();
    }
    wire
}

/// Runs the packed hot path over `wire` in reader-sized chunks,
/// telemetry off and on in *interleaved* best-of reps — clock-speed
/// drift between an off block and an on block measured minutes apart
/// would otherwise swamp a few-percent overhead. Returns the best
/// (off, on) wall-clock seconds.
fn hot_path_pair(reps: usize, frames: usize, wire: &[u8], registry: &Registry) -> (f64, f64) {
    let mut samples = Vec::new();
    let mut run = |registry: Option<&Registry>| -> f64 {
        samples.clear();
        let mut pipe = HostPipeline::new(
            &DecimatorConfig::paper_default(),
            LinkCalibration::identity(),
            GapPolicy::HoldLast,
        )
        .unwrap();
        if let Some(registry) = registry {
            pipe = pipe.with_telemetry(&registry.telemetry());
        }
        let t = Instant::now();
        for chunk in wire.chunks(CHUNK) {
            pipe.push_bytes(chunk, &mut samples);
        }
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(samples.len(), frames * FRAME_BITS / 128);
        secs
    };
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        off = off.min(run(None));
        on = on.min(run(Some(registry)));
    }
    (off, on)
}

/// A registry + directory shaped like `n` ingest sessions' worth of
/// live telemetry: canonical link counters, span histograms with
/// recorded durations, and one published directory entry per session.
fn fleet_shaped_sources(n: usize) -> (Registry, Arc<LinkDirectory>) {
    let registry = Registry::new();
    let t = registry.telemetry();
    for i in 0..n as u64 {
        t.counter(names::LINK_FRAMES_RX).add(4_000 + i);
        t.counter(names::LINK_BYTES_RX).add(600_000 + i);
        t.counter(names::LINK_SAMPLES_CLEAN).add(30_000 + i);
        t.counter(names::LINK_GAP_EVENTS).add(i % 3);
        t.counter(names::FLEET_SESSIONS_COMPLETED).inc();
        t.counter(names::MONITOR_BEATS).add(70 + i % 20);
        let decode = t.span(names::SPAN_LINK_DECODE);
        let beat = t.histogram(names::MONITOR_BEAT_INTERVAL_S, &[0.5, 0.8, 1.0, 1.5, 2.0]);
        for j in 0..50u64 {
            decode.record(Duration::from_micros(40 + (i * 7 + j) % 30));
            beat.record(0.7 + ((i + j) % 10) as f64 * 0.05);
        }
    }
    let directory = Arc::new(LinkDirectory::new());
    for i in 0..n as u64 {
        let entry =
            directory.register(format!("10.0.0.{}:{}", i % 250, 40_000 + i), Duration::ZERO);
        entry.publish(LinkHealth {
            decoder: DecoderStats {
                frames: 4_000 + i,
                bytes: 600_000 + i,
                ..DecoderStats::default()
            },
            clean_samples: 30_000 + i,
            beats: 70 + i % 20,
            pulse_rate_bpm: 72.0,
            ..LinkHealth::default()
        });
    }
    (registry, directory)
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "scrape failed");
    response
}

/// Mean `/metrics` scrape latency (connect + request + full response)
/// against an endpoint over `n` sessions' telemetry; also returns the
/// payload size.
fn scrape_latency_ms(n: usize, scrapes: usize) -> (f64, usize) {
    let (registry, directory) = fleet_shaped_sources(n);
    let server = ScopeServer::bind(
        "127.0.0.1:0",
        ScopeSources::registry(registry).with_directory(directory),
    )
    .unwrap();
    let addr = server.local_addr();
    let payload = http_get(addr, "/metrics").len(); // warm-up + size
    let t = Instant::now();
    for _ in 0..scrapes {
        http_get(addr, "/metrics");
    }
    let ms = t.elapsed().as_secs_f64() * 1e3 / scrapes as f64;
    server.shutdown();
    (ms, payload)
}

/// Saturates a 1 s × 120 s recorder over a fleet-shaped registry and
/// returns (bytes at ring-full, bytes after 2x more ticks) — the
/// second value not exceeding the first proves the ceiling holds.
/// (It can legitimately shrink: the first tick records every series,
/// so evicting that dense frame trims the ring slightly.)
fn recorder_memory_bytes(sessions: usize) -> (usize, usize) {
    const RETENTION_S: u64 = 120;
    let clock = Arc::new(FakeClock::new());
    let registry = Registry::with_clock(clock.clone());
    let t = registry.telemetry();
    // Same instrument population as the scrape benchmark, plus churn:
    // every canonical link counter moves every tick.
    let (seed, _) = fleet_shaped_sources(sessions);
    for c in seed.snapshot().counters {
        t.counter(&c.name).add(c.value);
    }
    let frames = t.counter(names::LINK_FRAMES_RX);
    let clean = t.counter(names::LINK_SAMPLES_CLEAN);
    let beats = t.counter(names::MONITOR_BEATS);
    let mut recorder = FlightRecorder::new(registry, RecorderConfig::default());
    let tick = |rec: &mut FlightRecorder| {
        frames.add(1_000 * sessions as u64);
        clean.add(960 * sessions as u64);
        beats.add(sessions as u64);
        rec.tick();
        clock.advance(Duration::from_secs(1));
    };
    for _ in 0..RETENTION_S {
        tick(&mut recorder);
    }
    let at_full = recorder.approx_bytes();
    for _ in 0..2 * RETENTION_S {
        tick(&mut recorder);
    }
    (at_full, recorder.approx_bytes())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Quick mode still needs enough wire and reps for the best-of
    // minimum to settle: at 2k frames a run is ~3 ms and scheduler
    // noise alone can swing the overhead ratio past the gate.
    let (reps, hot_frames, scrapes) = if quick {
        (9, 6_000, 20)
    } else {
        (9, 20_000, 100)
    };
    eprintln!(
        "measuring on {cores} hardware thread(s){}...",
        if quick { " (quick)" } else { "" }
    );

    // 1. Hot-path overhead, telemetry off vs on.
    let wire = wire_stream(hot_frames);
    let registry = Registry::new();
    let (off_secs, on_secs) = hot_path_pair(reps, hot_frames, &wire, &registry);
    let bits = (hot_frames * FRAME_BITS) as f64;
    let off_mbps = bits / off_secs / 1e6;
    let on_mbps = bits / on_secs / 1e6;
    let overhead = on_secs / off_secs - 1.0;
    eprintln!(
        "  hot path: {off_mbps:.1} Mbit/s off, {on_mbps:.1} Mbit/s on ({:+.2}% overhead)",
        overhead * 100.0
    );
    // The instruments actually fired: the on-run is not a no-op. The
    // registry is shared across the best-of reps, so totals are reps×.
    let s = registry.snapshot();
    assert_eq!(
        s.counter(names::LINK_FRAMES_RX),
        Some((reps * hot_frames) as u64)
    );
    let decode_spans = s.histogram(names::SPAN_LINK_DECODE).unwrap();
    assert_eq!(
        decode_spans.count,
        (reps * wire.len().div_ceil(CHUNK)) as u64
    );

    // 2. Scrape latency at fleet sizes.
    let session_counts = [1usize, 8, 64];
    let mut scrape = Vec::with_capacity(session_counts.len());
    for &n in &session_counts {
        let (ms, payload) = scrape_latency_ms(n, scrapes);
        eprintln!("  /metrics N={n}: {ms:.3} ms/scrape, {payload} B payload");
        scrape.push((n, ms, payload));
    }

    // 3. Recorder memory ceiling.
    let (rec_full, rec_after) = recorder_memory_bytes(8);
    eprintln!("  recorder: {rec_full} B at ring-full, {rec_after} B after 2x more ticks");

    println!("{{");
    println!("  \"bench\": \"scope_throughput\",");
    println!("  \"quick\": {quick},");
    println!("  \"host_hardware_threads\": {cores},");
    println!("  \"hot_path\": {{");
    println!("    \"frames\": {hot_frames},");
    println!("    \"telemetry_off_mbit_per_s\": {off_mbps:.2},");
    println!("    \"telemetry_on_mbit_per_s\": {on_mbps:.2},");
    println!("    \"overhead_fraction\": {overhead:.5},");
    println!("    \"gate_fraction\": {OVERHEAD_GATE}");
    println!("  }},");
    println!("  \"metrics_scrape\": [");
    for (i, (n, ms, payload)) in scrape.iter().enumerate() {
        let comma = if i + 1 < scrape.len() { "," } else { "" };
        println!(
            "    {{ \"sessions\": {n}, \"latency_ms\": {ms:.4}, \"payload_bytes\": {payload} }}{comma}"
        );
    }
    println!("  ],");
    println!("  \"flight_recorder\": {{");
    println!("    \"interval_s\": 1, \"retention_s\": 120, \"sessions\": 8,");
    println!("    \"bytes_at_ring_full\": {rec_full},");
    println!("    \"bytes_after_2x_more_ticks\": {rec_after}");
    println!("  }},");
    println!(
        "  \"gate\": \"telemetry-on hot path within {:.0}% of telemetry-off; recorder memory flat once the ring is full\"",
        OVERHEAD_GATE * 100.0
    );
    println!("}}");

    let mut failed = false;
    if overhead > OVERHEAD_GATE {
        eprintln!(
            "FAIL: telemetry costs {:.2}% of the hot path; the gate is {:.0}%",
            overhead * 100.0,
            OVERHEAD_GATE * 100.0
        );
        failed = true;
    }
    if rec_after > rec_full {
        eprintln!("FAIL: recorder grew past ring-full ({rec_full} B -> {rec_after} B)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

//! Experiment E10 — DC transfer linearity of the complete converter.
//!
//! The paper claims "12 bit" output resolution; a datasheet would back
//! that with static metrics: offset, gain error, INL and DNL. This
//! harness sweeps the differential voltage input across the usable range
//! using [`tonos_analog::characterize::DcTransfer`] with the paper's
//! decimation chain — the standard static ADC characterization the
//! paper's test setup (voltage input + FPGA) could have run.

use tonos_analog::characterize::DcTransfer;
use tonos_analog::modulator::SigmaDelta2;
use tonos_analog::nonideal::NonIdealities;
use tonos_bench::{fmt, print_table};
use tonos_dsp::decimator::DecimatorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E10: static (DC) linearity of the 12-bit converter ==");

    let mut dsm = SigmaDelta2::new(NonIdealities::typical())?;
    let lsb = 1.0 / 2048.0;
    // Decimation function: the paper chain, settled-mean output.
    let decimate = |bits: &[f64]| -> f64 {
        let mut dec = DecimatorConfig::paper_default()
            .build()
            .expect("paper decimator is valid");
        let out = dec.process(bits);
        let settled = &out[dec.settling_output_samples() + 4..];
        settled.iter().sum::<f64>() / settled.len() as f64
    };
    let transfer = DcTransfer::measure(&mut dsm, 41, 0.85, 128 * 120, lsb, decimate)?;

    let mut rows = Vec::new();
    for point in transfer.points.iter().step_by(5) {
        rows.push(vec![
            fmt(point.input, 3),
            fmt(point.output, 6),
            fmt(point.inl_lsb, 2),
        ]);
    }
    print_table(
        "DC transfer (every 5th point shown)",
        &["input [FS]", "mean output [FS]", "INL [LSB]"],
        &rows,
    );

    print_table(
        "Static summary",
        &["metric", "value", "note"],
        &[
            vec![
                "gain".into(),
                fmt(transfer.gain, 5),
                format!("error {:+.3} %", transfer.gain_error_percent()),
            ],
            vec![
                "offset".into(),
                fmt(transfer.offset_lsb(), 2) + " LSB",
                "comparator offset suppressed by loop gain".into(),
            ],
            vec![
                "worst INL".into(),
                fmt(transfer.worst_inl_lsb, 2) + " LSB",
                "|INL| <= 1 LSB backs the 12-bit claim".into(),
            ],
        ],
    );

    println!(
        "\nShape check: a single-bit SD converter is inherently linear — the measured INL \
         stays at the LSB scale across the range, supporting the paper's 12-bit resolution \
         claim with the static metric the text leaves implicit."
    );
    Ok(())
}

//! Experiment E6 — §1 motivation: hand-cuff baseline vs continuous
//! tonometric monitoring.
//!
//! The paper's case for the sensor is that cuffs cannot record a
//! waveform. This harness quantifies that on a hypertensive episode
//! (+35/+15 mmHg over ~70 s): how many samples each modality delivers,
//! how quickly each detects the excursion, and how well each tracks the
//! systolic trend.

use tonos_bench::{fmt, print_table};
use tonos_core::config::SystemConfig;
use tonos_core::monitor::BloodPressureMonitor;
use tonos_physio::cuff::CuffDevice;
use tonos_physio::patient::PressureTransient;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E6: conventional cuff vs continuous tonometry during a BP episode ==");

    let scenario = PressureTransient::episode();
    let duration = 160.0;
    let truth = scenario.record(1000.0, duration)?;

    // --- Baseline: the cuff alone. ---
    let mut cuff = CuffDevice::clinical(0xE6);
    let cuff_readings = cuff.monitor(&truth);

    // --- The paper's system. ---
    let mut monitor = BloodPressureMonitor::new(SystemConfig::paper_default(), scenario.profile)?;
    let session = monitor.run_record(truth.clone())?;

    // Episode detection: first time each modality reports systolic above
    // baseline + 15 mmHg. Truth onset of that level: envelope = 15/35.
    let threshold = scenario.profile.params.systolic.value() + 15.0;
    let true_cross = scenario.onset_s + scenario.ramp_s * (15.0 / scenario.sys_delta.value());

    let cuff_detect = cuff_readings
        .iter()
        .find(|r| r.systolic.value() >= threshold)
        .map(|r| r.time_s);
    let fs = session.sample_rate;
    let cont_detect = session.analysis.beats.iter().find_map(|b| {
        (b.systolic >= threshold).then(|| (session.acquisition_start + b.peak_index) as f64 / fs)
    });

    // Systolic-trend tracking error for both modalities: compare against
    // the truth beat nearest each report.
    let nearest_truth_sys = |t: f64| -> f64 {
        truth
            .beats
            .iter()
            .min_by(|a, b| {
                (a.onset_s - t)
                    .abs()
                    .partial_cmp(&(b.onset_s - t).abs())
                    .expect("finite")
            })
            .map(|b| b.systolic.value())
            .expect("beats exist")
    };
    let cuff_mae: f64 = cuff_readings
        .iter()
        .map(|r| (r.systolic.value() - nearest_truth_sys(r.time_s)).abs())
        .sum::<f64>()
        / cuff_readings.len().max(1) as f64;
    let cont_mae = session.errors.systolic_mae;

    // Coverage: worst gap between consecutive systolic reports.
    let mut cuff_gap = 0.0_f64;
    let mut last = 0.0;
    for r in &cuff_readings {
        cuff_gap = cuff_gap.max(r.time_s - last);
        last = r.time_s;
    }
    cuff_gap = cuff_gap.max(duration - last);

    let cont_reports = session.analysis.beats.len();
    let rows = vec![
        vec![
            "pressure reports in 160 s".into(),
            cuff_readings.len().to_string(),
            format!(
                "{cont_reports} beats ({} samples)",
                session.calibrated.len()
            ),
        ],
        vec![
            "worst reporting gap".into(),
            fmt(cuff_gap, 1) + " s",
            fmt(60.0 / session.analysis.pulse_rate_bpm, 2) + " s (one beat)",
        ],
        vec![
            "episode detection latency vs truth".into(),
            cuff_detect
                .map(|t| fmt(t - true_cross, 1) + " s")
                .unwrap_or_else(|| "MISSED".into()),
            cont_detect
                .map(|t| fmt(t - true_cross, 1) + " s")
                .unwrap_or_else(|| "MISSED".into()),
        ],
        vec![
            "systolic tracking MAE".into(),
            fmt(cuff_mae, 2) + " mmHg",
            fmt(cont_mae, 2) + " mmHg",
        ],
        vec![
            "waveform morphology (dicrotic etc.)".into(),
            "not available".into(),
            "full 1 kS/s waveform".into(),
        ],
    ];
    print_table(
        "Hypertensive episode (+35 mmHg over 20 s at t=60 s): cuff vs continuous",
        &[
            "metric",
            "hand cuff (30 s cycle)",
            "this sensor (continuous)",
        ],
        &rows,
    );

    println!(
        "\nShape check vs paper: the cuff reports ~{} values in 160 s while the tonometric \
         channel resolves every beat — the paper's core motivation, now with measured latency \
         and tracking numbers.",
        cuff_readings.len()
    );
    Ok(())
}

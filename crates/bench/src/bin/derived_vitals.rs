//! Experiment E14 — derived vitals: respiratory rate from the waveform.
//!
//! The paper's case for continuous monitoring is the waveform; one
//! dividend it never mentions is that the waveform's baseline carries the
//! *respiratory* modulation, so the same sensor reports breathing rate —
//! something neither a cuff nor a beat-rate-only monitor can do. This
//! harness sweeps the simulated patient's breathing rate and recovers it
//! from the sensor's calibrated output, plus an apnea case where the
//! estimator must refuse to hallucinate.

use tonos_bench::{fmt, print_table};
use tonos_core::config::SystemConfig;
use tonos_core::monitor::BloodPressureMonitor;
use tonos_core::vitals::respiratory_rate;
use tonos_physio::patient::PatientProfile;
use tonos_physio::variability::RespiratoryModulation;
use tonos_physio::waveform::{ArterialParams, PulseWaveform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E14: respiratory rate recovered from the blood-pressure waveform ==");

    let mut rows = Vec::new();
    // Breathing and heart rate scale together physiologically — and the
    // beat-domain estimator *requires* HR > 2x the breathing rate
    // (diastole is sampled once per beat), so fast breathing is paired
    // with its natural tachycardia.
    for &(breaths_per_min, amp_mmhg, heart_rate) in &[
        (10.0, 2.0, 72.0),
        (15.0, 2.0, 72.0),
        (24.0, 3.0, 95.0),
        (30.0, 2.5, 120.0),
        (0.0, 0.0, 72.0),
    ] {
        let params = ArterialParams {
            heart_rate_bpm: heart_rate,
            respiration: if breaths_per_min > 0.0 {
                RespiratoryModulation {
                    rate_hz: breaths_per_min / 60.0,
                    amplitude_mmhg: amp_mmhg,
                }
            } else {
                RespiratoryModulation::none()
            },
            ..ArterialParams::normotensive()
        };
        let profile = PatientProfile {
            name: "sweep",
            params,
        };
        let truth = PulseWaveform::new(params)?.record(1000.0, 75.0)?;
        let mut monitor = BloodPressureMonitor::new(SystemConfig::paper_default(), profile)?;
        let session = monitor.run_record(truth)?;
        let est = respiratory_rate(&session.analysis.beats, session.sample_rate)?;
        let truth_label = if breaths_per_min > 0.0 {
            fmt(breaths_per_min, 0)
        } else {
            "apnea".into()
        };
        rows.push(vec![
            truth_label,
            fmt(heart_rate, 0),
            fmt(amp_mmhg, 1),
            fmt(est.rate_per_min, 1),
            fmt(est.amplitude, 2),
            fmt(est.confidence, 2),
        ]);
    }
    print_table(
        "Breathing-rate sweep through the full sensor chain (75 s sessions)",
        &[
            "true rate [/min]",
            "heart rate [bpm]",
            "true modulation [mmHg]",
            "measured rate [/min]",
            "measured modulation [mmHg]",
            "confidence",
        ],
        &rows,
    );

    println!(
        "\nShape check: the recovered rate tracks the true breathing rate across the \
         clinical range with the modulation amplitude in mmHg, while the apnea case \
         collapses to low confidence and sub-mmHg phantom amplitude — the same 12-bit \
         waveform stream yields a second vital sign at zero hardware cost."
    );
    Ok(())
}

//! Fleet throughput measurement — the numbers behind `BENCH_fleet.json`.
//!
//! Measures three things and prints them as one JSON document:
//!
//! 1. Packed-bit vs legacy f64 decimation throughput (Mbit/s through
//!    the paper-default two-stage chain).
//! 2. Single-thread session throughput: monitoring sessions run
//!    back-to-back on the calling thread.
//! 3. Fleet session throughput at several pool widths.
//!
//! The `gates` block carries the numeric scaling gate this binary
//! asserts, scaled by the detected core count: the 4x target assumes
//! an 8-core host; multi-core hosts with fewer cores get a
//! proportionally lower bar and a single-core host only sanity-checks
//! that the pool does not lose to the single thread.
//!
//! Run with: `cargo run --release -p tonos-bench --bin fleet_throughput`

use std::time::Instant;

use tonos_dsp::bits::PackedBits;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_fleet::{FleetConfig, FleetEngine, SessionSpec};
use tonos_physio::patient::PatientProfile;

/// Sessions per throughput measurement.
const SESSIONS: usize = 8;
/// Simulated monitoring duration per session, seconds.
const DURATION_S: f64 = 8.0;

fn spec(i: usize) -> SessionSpec {
    let profiles = PatientProfile::all();
    SessionSpec::new(
        format!("bench-{i}"),
        profiles[i % profiles.len()].with_seed(1000 + i as u64),
    )
    .with_duration(DURATION_S)
    .with_scan_window(150)
}

fn decimation_mbps(packed: bool) -> f64 {
    let n = 128_000 * 8; // eight seconds of modulator bits
    let bools: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let mut dec = DecimatorConfig::paper_default().build().unwrap();
    if packed {
        let bits: PackedBits = bools.iter().copied().collect();
        let t = Instant::now();
        let out = dec.process_packed(&bits);
        let dt = t.elapsed().as_secs_f64();
        assert!(!out.is_empty());
        n as f64 / dt / 1e6
    } else {
        let floats: Vec<f64> = bools.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let t = Instant::now();
        let out = dec.process(&floats);
        let dt = t.elapsed().as_secs_f64();
        assert!(!out.is_empty());
        n as f64 / dt / 1e6
    }
}

fn fleet_sessions_per_s(workers: usize) -> f64 {
    let mut fleet = FleetEngine::spawn(FleetConfig { workers });
    let t = Instant::now();
    for i in 0..SESSIONS {
        fleet.push(spec(i));
    }
    let report = fleet.drain();
    let dt = t.elapsed().as_secs_f64();
    assert!(report.failures().is_empty(), "bench sessions must complete");
    SESSIONS as f64 / dt
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("measuring on {cores} hardware thread(s)...");

    let f64_mbps = decimation_mbps(false);
    let packed_mbps = decimation_mbps(true);
    let single = fleet_sessions_per_s(1);
    let widths: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w == 1 || w <= 2 * cores)
        .collect();
    let fleet: Vec<(usize, f64)> = widths
        .iter()
        .map(|&w| {
            eprintln!("  fleet width {w}...");
            (w, fleet_sessions_per_s(w))
        })
        .collect();
    let best = fleet
        .iter()
        .cloned()
        .fold((1, single), |acc, x| if x.1 > acc.1 { x } else { acc });

    // Core-scaled gate: the 4x target assumes an 8-core host; fewer
    // cores lower the bar proportionally (floor 1.2x on any multi-core
    // host) and a single core only sanity-checks for pool overhead.
    let best_speedup = best.1 / single;
    let gate_best = if cores >= 2 {
        (4.0 * (cores.min(8) as f64) / 8.0).max(1.2)
    } else {
        0.8
    };

    println!("{{");
    println!("  \"bench\": \"fleet_throughput\",");
    println!("  \"host_hardware_threads\": {cores},");
    println!("  \"session_duration_s\": {DURATION_S},");
    println!("  \"sessions_per_measurement\": {SESSIONS},");
    println!("  \"decimation\": {{");
    println!("    \"host_hardware_threads\": {cores},");
    println!("    \"f64_path_mbit_per_s\": {f64_mbps:.2},");
    println!("    \"packed_path_mbit_per_s\": {packed_mbps:.2},");
    println!("    \"packed_speedup\": {:.3}", packed_mbps / f64_mbps);
    println!("  }},");
    println!("  \"single_thread_sessions_per_s\": {single:.3},");
    println!("  \"fleet_sessions_per_s\": {{");
    println!("    \"host_hardware_threads\": {cores},");
    for (i, (w, rate)) in fleet.iter().enumerate() {
        let comma = if i + 1 < fleet.len() { "," } else { "" };
        println!("    \"{w}_workers\": {rate:.3}{comma}");
    }
    println!("  }},");
    println!("  \"best_fleet_speedup_vs_single_thread\": {best_speedup:.3},");
    println!("  \"best_fleet_width\": {},", best.0);
    println!("  \"gates\": {{");
    println!("    \"host_hardware_threads\": {cores},");
    println!("    \"gate_best_fleet_speedup_min\": {gate_best:.3},");
    println!(
        "    \"note\": \"core-scaled: 4x assumes an 8-core host, proportionally less on narrower multi-core hosts (floor 1.2x), sanity floor on one core\""
    );
    println!("  }},");
    println!(
        "  \"note\": \"speedup is bounded by host_hardware_threads; the issue's 4x target assumes an 8-core host\""
    );
    println!("}}");

    if best_speedup < gate_best {
        eprintln!(
            "FAIL: best fleet speedup {best_speedup:.3}x is below the core-scaled gate of {gate_best:.3}x"
        );
        std::process::exit(1);
    }
}

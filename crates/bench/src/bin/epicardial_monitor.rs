//! Experiment E11 — §1: "an invasive application, e.g., on the beating
//! heart during surgery is also possible."
//!
//! The paper mentions the epicardial use-case in one sentence; this
//! harness runs it: the same chip pressed directly onto a coronary
//! vessel (near-unity tissue coupling, almost no covering tissue) under
//! surgical conditions — strong motion disturbance from the beating
//! heart and the surgeon's hands — versus the transcutaneous wrist
//! measurement. A hypotensive patient is used because intra-operative
//! hypotension is the event such a sensor would guard against.

use tonos_bench::{fmt, print_table};
use tonos_core::config::SystemConfig;
use tonos_core::monitor::BloodPressureMonitor;
use tonos_physio::artifact::ArtifactGenerator;
use tonos_physio::patient::PatientProfile;
use tonos_physio::tissue::TissueModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E11: invasive (epicardial) application vs the wrist measurement ==");

    let patient = PatientProfile::hypotensive();
    let duration = 20.0;

    struct Case {
        label: &'static str,
        tissue: TissueModel,
        artifacts: Option<ArtifactGenerator>,
    }
    let cases = vec![
        Case {
            label: "wrist, transcutaneous (paper Fig. 9 setup)",
            tissue: TissueModel::radial_artery(),
            artifacts: None,
        },
        Case {
            label: "epicardial, quiet field",
            tissue: TissueModel::epicardial(),
            artifacts: None,
        },
        Case {
            label: "epicardial, surgical motion (15 mmHg spikes)",
            tissue: TissueModel::epicardial(),
            artifacts: Some(ArtifactGenerator::new(0.25, 15.0, 0xE11)?),
        },
    ];

    let mut rows = Vec::new();
    for case in cases {
        let mut monitor = BloodPressureMonitor::new(SystemConfig::paper_default(), patient)?
            .with_tissue(case.tissue);
        if let Some(a) = case.artifacts {
            monitor = monitor.with_motion_artifacts(a);
        }
        let session = monitor.run(duration)?;
        let p2p = {
            let max = session.raw.iter().copied().fold(f64::MIN, f64::max);
            let min = session.raw.iter().copied().fold(f64::MAX, f64::min);
            (max - min) * 2048.0 // in 12-bit LSB
        };
        rows.push(vec![
            case.label.to_string(),
            fmt(p2p, 0),
            fmt(session.errors.systolic_mae, 2),
            fmt(session.errors.diastolic_mae, 2),
            fmt(session.analysis.pulse_rate_bpm, 1),
            session.errors.matched_beats.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Hypotensive patient ({:.0}/{:.0} mmHg), {duration:.0} s sessions",
            patient.params.systolic.value(),
            patient.params.diastolic.value()
        ),
        &[
            "configuration",
            "raw pulse swing [LSB]",
            "sys MAE [mmHg]",
            "dia MAE [mmHg]",
            "pulse [bpm]",
            "beats",
        ],
        &rows,
    );

    println!(
        "\nShape check: direct epicardial contact multiplies the usable signal (near-unity \
         coupling vs ~30 % through the wrist), which buys margin against the much harsher \
         motion environment — the quantitative case behind the paper's one-sentence claim \
         that the invasive application 'is also possible'."
    );
    Ok(())
}

//! Experiment E13 — waveform-morphology fidelity through the full chain.
//!
//! The paper's pitch is the *continuous waveform*, not just numbers: a
//! tonometric trace carries the reflected-wave shoulder and dicrotic
//! features clinicians read (arterial stiffness, augmentation). This
//! harness drives the complete sensor chain with young / adult / elderly
//! pulse morphologies and asks whether the *shape* survives membranes,
//! mux, ΣΔ, decimation, 12-bit quantization, and calibration:
//!
//! 1. synthesize each morphology (same 120/80 at 72 bpm);
//! 2. run the full monitoring pipeline;
//! 3. ensemble-average the calibrated beats;
//! 4. compare the reflected-wave shoulder metric against the same metric
//!    computed on the ground truth.

use tonos_bench::{ascii_plot, fmt, print_table};
use tonos_core::analyze::{detect_beats, EnsembleBeat};
use tonos_core::config::SystemConfig;
use tonos_core::monitor::BloodPressureMonitor;
use tonos_mems::units::Farads;
use tonos_physio::patient::PatientProfile;
use tonos_physio::waveform::{BeatMorphology, PulseWaveform};

fn shoulder_of(x: &[f64], fs: f64) -> Result<(f64, usize), Box<dyn std::error::Error>> {
    let beats = detect_beats(x, fs)?;
    let ensemble = EnsembleBeat::from_beats(x, &beats, 100)?;
    Ok((ensemble.half_height_width(), ensemble.beats_used))
}

fn run_cases(
    config: SystemConfig,
    label: &str,
    plot: bool,
) -> Result<bool, Box<dyn std::error::Error>> {
    let profile = PatientProfile::normotensive();
    let cases = [
        ("young (compliant)", BeatMorphology::radial_young()),
        ("adult (paper default)", BeatMorphology::radial_adult()),
        ("elderly (stiff)", BeatMorphology::radial_elderly()),
    ];
    let mut rows = Vec::new();
    let mut measured_widths = Vec::new();
    for (case, morphology) in &cases {
        // Ground truth with this morphology.
        let truth = PulseWaveform::with_morphology(profile.params, morphology.clone())?
            .record(1000.0, 30.0)?;
        let truth_x: Vec<f64> = truth.samples.iter().map(|p| p.value()).collect();
        let (truth_width, _) = shoulder_of(&truth_x, 1000.0)?;

        // Through the full sensor chain.
        let mut monitor = BloodPressureMonitor::new(config, profile)?;
        let session = monitor.run_record(truth)?;
        let cal_x: Vec<f64> = session.calibrated.iter().map(|p| p.value()).collect();
        let (measured_width, beats_used) = shoulder_of(&cal_x, session.sample_rate)?;
        measured_widths.push(measured_width);

        rows.push(vec![
            case.to_string(),
            fmt(morphology.reflection_index(), 3),
            fmt(truth_width, 3),
            fmt(measured_width, 3),
            fmt((measured_width - truth_width).abs(), 3),
            beats_used.to_string(),
        ]);

        if plot && *case == "elderly (stiff)" {
            let beats = detect_beats(&cal_x, session.sample_rate)?;
            let ensemble = EnsembleBeat::from_beats(&cal_x, &beats, 100)?;
            ascii_plot(
                "Ensemble-averaged elderly beat from the calibrated output (one period)",
                &ensemble.shape,
                100,
                12,
            );
        }
    }
    print_table(
        &format!("{label}: systolic-complex half-height width (fraction of period >= 0.5)"),
        &[
            "morphology",
            "template index",
            "truth width",
            "measured width",
            "|error|",
            "beats averaged",
        ],
        &rows,
    );
    Ok(measured_widths.windows(2).all(|w| w[0] < w[1]))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E13: pulse-morphology fidelity through the complete chain ==");

    // The paper's measurement configuration (Cfb = 10 fF, ~5 mmHg/LSB).
    let paper_ordered = run_cases(
        SystemConfig::paper_default(),
        "paper measurement setting (Cfb = 10 fF)",
        false,
    )?;

    // The future-work knob pushed further: Cfb = 2 fF (~1 mmHg/LSB).
    let mut sensitive = SystemConfig::paper_default();
    sensitive.chip.feedback_capacitance = Farads::from_femtofarads(2.0);
    let sensitive_ordered = run_cases(
        sensitive,
        "sensitivity-tuned (Cfb = 2 fF, the Section-4 adjustment)",
        true,
    )?;

    println!(
        "\nShape check: the young < adult < elderly width ordering {} at the paper's \
         setting (within 0.01 of truth despite ~5 mmHg/LSB quantization, thanks to \
         33-beat ensemble averaging) and {} at the sensitivity-tuned setting, where the \
         widths match truth exactly — the 12-bit / 1 kS/s output preserves the morphology \
         information the paper's continuous-waveform pitch depends on. (Methodological \
         note: ensembles must be peak-aligned; foot alignment smears under respiration.)",
        if paper_ordered { "survives" } else { "IS LOST" },
        if sensitive_ordered {
            "survives"
        } else {
            "IS LOST"
        }
    );
    Ok(())
}

//! Experiment E8 — §4 future work: "field tests have to be performed in
//! order \[to\] evaluate reliability and stability of blood pressure
//! monitoring."
//!
//! The dominant slow instability of a capacitive CMOS membrane sensor on
//! skin is thermal: the aluminum layer's CTE mismatch re-biases the
//! stack's residual stress as the die warms from bench to body
//! temperature, shifting a *calibrated* reading. This harness
//!
//! 1. characterizes the membrane's thermal drift (mmHg of equivalent
//!    input error per °C),
//! 2. runs a long monitoring session through a bench→body warm-up with
//!    the paper's single initial calibration,
//! 3. repeats it with periodic cuff recalibration,
//!
//! quantifying how much of the stability problem procedure alone solves.

use tonos_bench::{fmt, print_table};
use tonos_core::config::SystemConfig;
use tonos_core::monitor::{BloodPressureMonitor, RecalibrationPolicy, TemperatureProfile};
use tonos_mems::creep::CreepModel;
use tonos_mems::thermal::ThermalModel;
use tonos_mems::units::{MillimetersHg, Pascals};
use tonos_physio::cuff::CuffDevice;
use tonos_physio::patient::PatientProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E8: thermal stability of a calibrated session (paper future work) ==");

    // --- Part 1: membrane thermal characterization. ---
    let thermal = ThermalModel::paper_default();
    let bias = Pascals::from_mmhg(MillimetersHg(230.0)); // wrist operating point
    let mut rows = Vec::new();
    for temp in [10.0, 20.0, 25.0, 31.0, 37.0, 45.0, 60.0] {
        let shift = thermal.baseline_shift(temp, bias)?;
        let drift = thermal.equivalent_pressure_drift(temp, bias)?;
        rows.push(vec![
            fmt(temp, 0),
            fmt(shift.to_femtofarads() * 1000.0, 2),
            fmt(drift.to_mmhg().value(), 2),
        ]);
    }
    print_table(
        "Part 1 — membrane thermal drift vs 25 C reference (at the wrist bias point)",
        &[
            "die temp [C]",
            "capacitance shift [aF]",
            "equivalent error [mmHg]",
        ],
        &rows,
    );

    // --- Parts 2 & 3: warm-up sessions. ---
    // Accelerated stress profile: the die heats 25 -> 45 C over 40 s
    // (hot-environment test), producing a ~3 mmHg arterial-referred
    // drift after the initial calibration — large enough to separate the
    // procedure question from cuff noise.
    let profile = TemperatureProfile {
        start_c: 25.0,
        end_c: 45.0,
        ramp_s: 40.0,
    };
    let duration = 120.0;
    let run = |policy: RecalibrationPolicy,
               cuff: CuffDevice,
               label: &str|
     -> Result<Vec<String>, Box<dyn std::error::Error>> {
        let mut monitor = BloodPressureMonitor::new(
            SystemConfig::paper_default(),
            PatientProfile::normotensive(),
        )?
        .with_thermal_drift(ThermalModel::paper_default(), profile)
        .with_cuff(cuff)
        .with_recalibration(policy);
        let session = monitor.run(duration)?;
        // Late-session bias: mean error of the last 30 s of beats.
        let fs = session.sample_rate;
        let late: Vec<f64> = session
            .analysis
            .beats
            .iter()
            .filter(|b| (session.acquisition_start + b.peak_index) as f64 / fs > duration - 30.0)
            .map(|b| b.systolic)
            .collect();
        let late_mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
        Ok(vec![
            label.to_string(),
            session.calibrations.len().to_string(),
            fmt(session.errors.systolic_mae, 2),
            fmt(session.errors.diastolic_mae, 2),
            fmt(late_mean - 120.0, 2),
        ])
    };
    let clinical = || CuffDevice::new(20.0, 2.0, 1.5, 2.0, 0xE8);
    let reference = || CuffDevice::new(20.0, 0.5, 0.5, 0.5, 0xE8);
    let rows = vec![
        run(
            RecalibrationPolicy::initial_only(),
            clinical()?,
            "initial calibration only (paper)",
        )?,
        run(
            RecalibrationPolicy::periodic(30.0),
            clinical()?,
            "recal every 30 s, clinical cuff",
        )?,
        run(
            RecalibrationPolicy::periodic(30.0),
            reference()?,
            "recal every 30 s, reference-grade cuff",
        )?,
    ];
    print_table(
        "Parts 2/3 — 120 s session through a 25->45 C warm-up (truth 120/80 mmHg)",
        &[
            "procedure",
            "calibrations",
            "sys MAE [mmHg]",
            "dia MAE [mmHg]",
            "late systolic bias [mmHg]",
        ],
        &rows,
    );

    // --- Part 4: PDMS contact creep (mechanical drift). ---
    let creep = CreepModel::pdms_strap();
    println!(
        "\nPart 4 — PDMS strap-on creep: {:.0} % of the contact pressure relaxes with a \
         {:.0} s time constant; settle-to-1% time {:.0} s.",
        creep.relaxing_fraction() * 100.0,
        creep.tau_s(),
        creep.settle_time(0.01)
    );
    let run_creep = |policy: RecalibrationPolicy,
                     label: &str|
     -> Result<Vec<String>, Box<dyn std::error::Error>> {
        let mut monitor = BloodPressureMonitor::new(
            SystemConfig::paper_default(),
            PatientProfile::normotensive(),
        )?
        .with_contact_creep(creep)
        .with_cuff(CuffDevice::new(20.0, 0.5, 0.5, 0.5, 0xE8)?)
        .with_recalibration(policy);
        let session = monitor.run(240.0)?;
        let fs = session.sample_rate;
        let late: Vec<f64> = session
            .analysis
            .beats
            .iter()
            .filter(|b| (session.acquisition_start + b.peak_index) as f64 / fs > 200.0)
            .map(|b| b.systolic)
            .collect();
        let late_mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
        Ok(vec![
            label.to_string(),
            session.calibrations.len().to_string(),
            fmt(session.errors.systolic_mae, 2),
            fmt(late_mean - 120.0, 2),
        ])
    };
    let rows = vec![
        run_creep(
            RecalibrationPolicy::initial_only(),
            "calibrate at strap-on (paper)",
        )?,
        run_creep(
            RecalibrationPolicy::periodic(60.0),
            "recalibrate every 60 s",
        )?,
    ];
    print_table(
        "Part 4 — 240 s session under contact creep (truth 120/80 mmHg)",
        &[
            "procedure",
            "calibrations",
            "sys MAE [mmHg]",
            "late systolic bias [mmHg]",
        ],
        &rows,
    );

    println!(
        "\nShape check: both slow drift mechanisms — thermal (Parts 1-3) and mechanical \
         creep (Part 4) — bias a once-calibrated session by several mmHg on the timescale \
         the paper's outlook worries about, and periodic cuff recalibration (pure \
         procedure, no hardware change) removes the bias down to the cuff's own accuracy. \
         The 'reliability and stability' question is procedural as much as it is silicon."
    );
    Ok(())
}

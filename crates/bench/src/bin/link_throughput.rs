//! Host-link throughput measurement — the numbers behind
//! `BENCH_link.json`.
//!
//! Measures the wire codec and the loopback ingest server, and prints
//! one JSON document:
//!
//! 1. Frame codec throughput: encode and decode frames/s and payload
//!    Mbit/s for paper-sized bitstream frames.
//! 2. End-to-end host pipeline (decode + gap tracking + decimation)
//!    Mbit/s, against the bare decimator as the in-run baseline.
//! 3. Loopback TCP ingest: sessions/s at N ∈ {1, 4, 8} concurrent
//!    device streams, each checked against the in-process signal path.
//!
//! Exits nonzero if the fault-free wire path diverges from the
//! in-process path, if any loopback session fails, or if framing
//! overhead eats more than half the bare decimation throughput — the
//! CI perf-smoke gate.
//!
//! Run with: `cargo run --release -p tonos-bench --bin link_throughput`
//! (`--quick` shrinks the workload for CI smoke runs.)

use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use tonos_core::config::SystemConfig;
use tonos_dsp::bits::PackedBits;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_link::{
    DeviceSimulator, FrameDecoder, FrameEncoder, GapPolicy, HostPipeline, LinkCalibration,
    LinkServer, LinkServerConfig,
};
use tonos_physio::patient::PatientProfile;
use tonos_telemetry::names;

/// Payload bits per benchmark frame: 8 modulator-output frames' worth
/// at the paper OSR, the same packet size [`DeviceSimulator`] uses.
const FRAME_BITS: usize = 1024;

/// Best wall-clock seconds over `reps` runs of `f`.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn test_frames(n: usize) -> Vec<PackedBits> {
    (0..n)
        .map(|f| {
            (0..FRAME_BITS)
                .map(|i| (f * FRAME_BITS + i).count_ones() & 1 == 1)
                .collect()
        })
        .collect()
}

/// Encode throughput: (frames/s, payload Mbit/s, the encoded stream).
fn encode_rates(reps: usize, frames: usize) -> (f64, f64, Vec<u8>) {
    let chunks = test_frames(frames);
    let mut wire = Vec::new();
    let secs = best_of(reps, || {
        wire.clear();
        let mut enc = FrameEncoder::new(0);
        for c in &chunks {
            enc.encode_into(c, &mut wire).unwrap();
        }
    });
    let bits = (frames * FRAME_BITS) as f64;
    (frames as f64 / secs, bits / secs / 1e6, wire)
}

/// Decode throughput over an already-encoded stream.
fn decode_rates(reps: usize, frames: usize, wire: &[u8]) -> (f64, f64) {
    let mut events = Vec::new();
    let secs = best_of(reps, || {
        events.clear();
        let mut dec = FrameDecoder::new();
        dec.push(wire, &mut events);
        assert_eq!(dec.stats().frames, frames as u64);
    });
    let bits = (frames * FRAME_BITS) as f64;
    (frames as f64 / secs, bits / secs / 1e6)
}

/// Full host pipeline (decode + gap tracking + decimate) Mbit/s, and
/// the bare decimator on the identical payload as the in-run baseline.
fn pipeline_vs_bare_mbps(reps: usize, frames: usize, wire: &[u8]) -> (f64, f64) {
    let chunks = test_frames(frames);
    let bits = (frames * FRAME_BITS) as f64;

    let mut samples = Vec::new();
    let pipe_secs = best_of(reps, || {
        samples.clear();
        let mut pipe = HostPipeline::new(
            &DecimatorConfig::paper_default(),
            LinkCalibration::identity(),
            GapPolicy::HoldLast,
        )
        .unwrap();
        pipe.push_bytes(wire, &mut samples);
        assert_eq!(samples.len(), frames * FRAME_BITS / 128);
    });

    let mut out = Vec::new();
    let bare_secs = best_of(reps, || {
        out.clear();
        let mut dec = DecimatorConfig::paper_default().build().unwrap();
        for c in &chunks {
            dec.process_packed_into(c, &mut out);
        }
        assert_eq!(out.len(), frames * FRAME_BITS / 128);
    });

    // Fault-free equivalence: the hard correctness gate.
    for (w, d) in samples.iter().zip(&out) {
        assert_eq!(
            w.value_mmhg.to_bits(),
            d.to_bits(),
            "wire path diverged from the in-process path"
        );
    }
    (bits / pipe_secs / 1e6, bits / bare_secs / 1e6)
}

/// Loopback TCP ingest: N concurrent device sessions of `duration_s`
/// simulated seconds each; returns sessions/s of wall clock.
fn loopback_sessions_per_s(n: usize, duration_s: f64) -> f64 {
    let config = SystemConfig::paper_default();
    let server = LinkServer::bind(
        "127.0.0.1:0",
        LinkServerConfig {
            decimator: config.decimator,
            ..LinkServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let t = Instant::now();
    let clients: Vec<_> = (0..n)
        .map(|i| {
            thread::spawn(move || {
                let patient = PatientProfile::normotensive().with_seed(3000 + i as u64);
                let mut device = DeviceSimulator::new(&config, &patient, duration_s).unwrap();
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut frames = 0u64;
                while let Some(packet) = device.next_packet().unwrap() {
                    stream.write_all(&packet).unwrap();
                    frames += 1;
                }
                frames
            })
        })
        .collect();
    let frames_sent: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    while server.connections() < n {
        thread::sleep(Duration::from_millis(5));
    }
    thread::sleep(Duration::from_millis(200));
    let (report, snapshot) = server.shutdown();
    let wall = t.elapsed().as_secs_f64();

    assert_eq!(report.len(), n, "loopback accepted {} of {n}", report.len());
    assert!(
        report.failures().is_empty(),
        "loopback sessions failed: {:?}",
        report.failures()
    );
    let frames_rx = snapshot.counter(names::LINK_FRAMES_RX).unwrap_or(0);
    assert_eq!(frames_rx, frames_sent, "ingest lost frames on loopback");
    assert_eq!(snapshot.counter(names::LINK_CRC_FAIL).unwrap_or(0), 0);
    let expected_samples = (duration_s * 1000.0).round() as usize;
    for (_, summary) in report.completed() {
        assert_eq!(
            summary.samples, expected_samples,
            "session short of samples"
        );
    }
    n as f64 / wall
}

/// One step of the concurrency sweep: `n` simultaneous links, each
/// sending the same pre-encoded `frames_per_link`-frame blob, all
/// sockets held open together so the server really multiplexes `n`
/// live connections. Returns (io_threads, links/s, frames/s).
///
/// The payload is synthetic (no per-link device simulation) — the sweep
/// measures the *server*: accept, readiness loop, actor scheduling,
/// decode, decimation. The gate is structural: the IO-thread count the
/// server reports must not grow with `n`.
fn ingest_sweep_step(n: usize, frames_per_link: usize) -> (usize, f64, f64) {
    const WRITERS: usize = 8;
    let chunks = test_frames(frames_per_link);
    let mut blob = Vec::new();
    let mut enc = FrameEncoder::new(0);
    for c in &chunks {
        enc.encode_into(c, &mut blob).unwrap();
    }
    let blob = std::sync::Arc::new(blob);

    let server = LinkServer::bind(
        "127.0.0.1:0",
        LinkServerConfig {
            workers: 2,
            ..LinkServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let io_threads = server.io_threads();

    let t = Instant::now();
    // Open every socket before writing any payload: all n links are
    // concurrently established, so the server is provably multiplexing
    // n live connections on its one IO thread.
    let sockets: Vec<TcpStream> = (0..n).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let writers: Vec<_> = sockets
        .chunks((n / WRITERS).max(1))
        .map(|chunk| {
            let mut streams: Vec<TcpStream> =
                chunk.iter().map(|s| s.try_clone().unwrap()).collect();
            let blob = std::sync::Arc::clone(&blob);
            thread::spawn(move || {
                for s in &mut streams {
                    s.write_all(&blob).unwrap();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    // EOF every link only after every payload is on the wire.
    drop(sockets);

    while server.connections() < n {
        thread::sleep(Duration::from_millis(5));
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.directory().live_count() > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    let (report, snapshot) = server.shutdown();
    let wall = t.elapsed().as_secs_f64();

    assert_eq!(report.len(), n, "sweep accepted {} of {n}", report.len());
    assert!(
        report.failures().is_empty(),
        "sweep sessions failed: {:?}",
        report.failures()
    );
    let frames_sent = (n * frames_per_link) as u64;
    let frames_rx = snapshot.counter(names::LINK_FRAMES_RX).unwrap_or(0);
    assert_eq!(frames_rx, frames_sent, "sweep lost frames");
    assert_eq!(snapshot.counter(names::LINK_CRC_FAIL).unwrap_or(0), 0);
    let expected_samples = frames_per_link * FRAME_BITS / 128;
    for (_, summary) in report.completed() {
        assert_eq!(
            summary.samples, expected_samples,
            "session short of samples"
        );
    }
    (io_threads, n as f64 / wall, frames_sent as f64 / wall)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (reps, codec_frames, duration_s) = if quick {
        (3, 2_000, 2.0)
    } else {
        (5, 20_000, 4.0)
    };
    eprintln!(
        "measuring on {cores} hardware thread(s){}...",
        if quick { " (quick)" } else { "" }
    );

    let (enc_fps, enc_mbps, wire) = encode_rates(reps, codec_frames);
    let (dec_fps, dec_mbps) = decode_rates(reps, codec_frames, &wire);
    eprintln!("  codec: encode {enc_fps:.0} frames/s ({enc_mbps:.1} Mbit/s), decode {dec_fps:.0} frames/s ({dec_mbps:.1} Mbit/s)");
    let (pipe_mbps, bare_mbps) = pipeline_vs_bare_mbps(reps, codec_frames, &wire);
    let overhead_ratio = pipe_mbps / bare_mbps;
    eprintln!("  host pipeline: {pipe_mbps:.1} Mbit/s vs bare decimator {bare_mbps:.1} Mbit/s ({overhead_ratio:.2}x)");

    let session_counts = [1usize, 4, 8];
    let mut loopback = Vec::with_capacity(session_counts.len());
    for &n in &session_counts {
        let per_s = loopback_sessions_per_s(n, duration_s);
        eprintln!("  loopback N={n}: {per_s:.2} sessions/s");
        loopback.push((n, per_s));
    }

    // Concurrency sweep: the no-thread-per-connection gate. The link
    // counts are fixed (not shrunk by --quick) because the gate is the
    // whole point; only the per-link payload shrinks.
    let sweep_counts = [64usize, 256, 1024];
    let frames_per_link = if quick { 10 } else { 40 };
    let mut sweep = Vec::with_capacity(sweep_counts.len());
    for &n in &sweep_counts {
        let (io_threads, links_per_s, frames_per_s) = ingest_sweep_step(n, frames_per_link);
        eprintln!(
            "  ingest sweep N={n}: io_threads={io_threads}, {links_per_s:.1} links/s, {frames_per_s:.0} frames/s"
        );
        sweep.push((n, io_threads, links_per_s, frames_per_s));
    }

    println!("{{");
    println!("  \"bench\": \"link_throughput\",");
    println!("  \"quick\": {quick},");
    println!("  \"host_hardware_threads\": {cores},");
    println!("  \"frame_payload_bits\": {FRAME_BITS},");
    println!("  \"codec\": {{");
    println!("    \"encode_frames_per_s\": {enc_fps:.0},");
    println!("    \"encode_mbit_per_s\": {enc_mbps:.2},");
    println!("    \"decode_frames_per_s\": {dec_fps:.0},");
    println!("    \"decode_mbit_per_s\": {dec_mbps:.2}");
    println!("  }},");
    println!("  \"host_pipeline\": {{");
    println!("    \"wire_path_mbit_per_s\": {pipe_mbps:.2},");
    println!("    \"bare_decimator_mbit_per_s\": {bare_mbps:.2},");
    println!("    \"wire_over_bare_ratio\": {overhead_ratio:.3}");
    println!("  }},");
    println!("  \"loopback_tcp\": {{");
    println!("    \"session_duration_s\": {duration_s},");
    println!("    \"sessions_per_s\": [");
    for (i, (n, per_s)) in loopback.iter().enumerate() {
        let comma = if i + 1 < loopback.len() { "," } else { "" };
        println!("      {{ \"n\": {n}, \"sessions_per_s\": {per_s:.3} }}{comma}");
    }
    println!("    ]");
    println!("  }},");
    println!("  \"ingest_sweep\": {{");
    println!("    \"frames_per_link\": {frames_per_link},");
    println!("    \"links\": [");
    for (i, (n, io_threads, links_per_s, frames_per_s)) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        println!(
            "      {{ \"n\": {n}, \"io_threads\": {io_threads}, \"links_per_s\": {links_per_s:.2}, \"frames_per_s\": {frames_per_s:.0} }}{comma}"
        );
    }
    println!("    ]");
    println!("  }},");
    println!(
        "  \"gate\": \"fault-free wire path bit-identical to in-process; all loopback sessions complete with zero CRC failures; wire/bare decimation ratio >= 0.5; ingest-sweep IO-thread count constant (=1) across N in {{64,256,1024}}\""
    );
    println!("}}");

    // Perf gate: framing must not eat more than half the decimation
    // throughput. (The equivalence and session-completion gates are
    // hard asserts above — reaching here means they already passed.)
    if overhead_ratio < 0.5 {
        eprintln!(
            "FAIL: host pipeline at {pipe_mbps:.1} Mbit/s is {overhead_ratio:.2}x the bare \
             decimator ({bare_mbps:.1} Mbit/s); the framing-overhead gate is 0.5x"
        );
        std::process::exit(1);
    }
    // Structural gate: ingest must not spawn IO threads with link
    // count. One readiness loop serves 64 and 1024 links alike.
    if sweep.iter().any(|&(_, io, _, _)| io != sweep[0].1) || sweep[0].1 != 1 {
        eprintln!("FAIL: ingest-sweep IO-thread count varied with link count: {sweep:?}");
        std::process::exit(1);
    }
}

//! Experiment E3 — paper Fig. 9: continuous wrist blood-pressure waveform
//! with hand-cuff calibration.
//!
//! Runs the full pipeline (arterial source → tissue → contact → array →
//! mux → ΣΔ → decimation → element selection → cuff calibration → beat
//! analysis) and reports what the paper could only show qualitatively:
//! per-beat systolic/diastolic tracking error against ground truth.

use tonos_bench::{ascii_plot, fmt, print_table};
use tonos_core::config::SystemConfig;
use tonos_core::monitor::BloodPressureMonitor;
use tonos_physio::patient::PatientProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E3 / Fig. 9: continuous blood pressure measurement at the wrist ==");

    let mut rows = Vec::new();
    for profile in PatientProfile::all() {
        let mut monitor = BloodPressureMonitor::new(SystemConfig::paper_default(), profile)?;
        let session = monitor.run(20.0)?;
        rows.push(vec![
            profile.name.to_string(),
            format!(
                "{:.0}/{:.0}",
                profile.params.systolic.value(),
                profile.params.diastolic.value()
            ),
            format!(
                "{:.1}/{:.1}",
                session.analysis.mean_systolic, session.analysis.mean_diastolic
            ),
            format!(
                "{:.0}/{:.0}",
                session.cuff_reading.systolic.value(),
                session.cuff_reading.diastolic.value()
            ),
            fmt(session.errors.systolic_mae, 2),
            fmt(session.errors.diastolic_mae, 2),
            fmt(session.analysis.pulse_rate_bpm, 1),
            session.errors.matched_beats.to_string(),
            format!("({},{})", session.scan.best.0, session.scan.best.1),
        ]);

        if profile.name == "normotensive" {
            // The Fig. 9 plot itself: ~8 s of calibrated waveform.
            let vals: Vec<f64> = session
                .calibrated
                .iter()
                .take((8.0 * session.sample_rate) as usize)
                .map(|p| p.value())
                .collect();
            ascii_plot(
                "Calibrated blood pressure waveform, first 8 s (mmHg)",
                &vals,
                110,
                16,
            );
            println!(
                "calibration: gain {:.2} mmHg/FS-unit, offset {:.1} mmHg; cuff read {:.0}/{:.0} mmHg",
                session.calibration.gain,
                session.calibration.offset,
                session.cuff_reading.systolic.value(),
                session.cuff_reading.diastolic.value()
            );
        }
    }

    print_table(
        "Fig. 9 reproduction across patient profiles (20 s sessions)",
        &[
            "profile",
            "true sys/dia",
            "measured sys/dia",
            "cuff (calib.)",
            "sys MAE [mmHg]",
            "dia MAE [mmHg]",
            "pulse [bpm]",
            "beats",
            "element",
        ],
        &rows,
    );

    println!(
        "\nShape check vs paper: continuous beat-resolved waveform, absolute scale pinned by \
         the two cuff points — with beat-tracking errors of a few mmHg (the paper shows the \
         waveform qualitatively; errors here are measured against the synthetic ground truth)."
    );
    Ok(())
}

//! Ablation A3 — modulator order and per-impairment SNR budget.
//!
//! Quantifies two design decisions the paper takes silently: the choice
//! of a *second*-order loop (vs the simpler first-order modulator) and
//! the analog impairment budget that still clears the 72 dB spec.

use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta1, SigmaDelta2};
use tonos_analog::nonideal::NonIdealities;
use tonos_bench::{fmt, print_table};
use tonos_dsp::decimator::DecimatorConfig;
use tonos_dsp::metrics::DynamicMetrics;
use tonos_dsp::signal::sine_wave;
use tonos_dsp::spectrum::Spectrum;
use tonos_dsp::window::Window;

fn snr_of<M: DeltaSigmaModulator>(
    dsm: &mut M,
    output_bits: Option<u32>,
) -> Result<f64, Box<dyn std::error::Error>> {
    let n_out = 2048;
    let cfg = DecimatorConfig {
        output_bits,
        ..DecimatorConfig::paper_default()
    };
    let mut dec = cfg.build()?;
    let settle = dec.settling_output_samples() + 8;
    let tone = Window::coherent_frequency(1000.0, n_out, 15.625);
    let stim = sine_wave(128_000.0, tone, 0.85, 0.0, 128 * (n_out + settle));
    let out = dec.process(&dsm.process_to_f64(&stim));
    let spec = Spectrum::from_signal(&out[out.len() - n_out..], 1000.0, Window::Hann)?;
    Ok(DynamicMetrics::from_spectrum(&spec)?.snr_db)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== A3: modulator order and non-ideality budget ==");

    // --- Order comparison ---
    let mut rows = Vec::new();
    for (label, bits) in [
        ("unquantized output", None),
        ("12-bit output (paper)", Some(12)),
    ] {
        let s1 = snr_of(&mut SigmaDelta1::new(NonIdealities::ideal())?, bits)?;
        let s2 = snr_of(&mut SigmaDelta2::new(NonIdealities::ideal())?, bits)?;
        rows.push(vec![
            label.to_string(),
            fmt(s1, 1),
            fmt(s2, 1),
            fmt(s2 - s1, 1),
        ]);
    }
    print_table(
        "1st-order baseline vs the paper's 2nd-order loop (OSR 128, -1.4 dBFS)",
        &[
            "output",
            "1st order SNR [dB]",
            "2nd order SNR [dB]",
            "advantage [dB]",
        ],
        &rows,
    );

    // --- Impairment budget, one knob at a time ---
    let typical = NonIdealities::typical();
    let cases: Vec<(&str, NonIdealities)> = vec![
        ("ideal", NonIdealities::ideal()),
        (
            "+ finite op-amp gain (72 dB)",
            NonIdealities::ideal().with_opamp_gain(typical.opamp_dc_gain),
        ),
        (
            "+ input noise (kT/C + thermal)",
            NonIdealities::ideal().with_input_noise(typical.input_noise_sigma),
        ),
        (
            "+ comparator offset/hysteresis",
            NonIdealities::ideal()
                .with_comparator_offset(typical.comparator_offset)
                .with_comparator_hysteresis(typical.comparator_hysteresis),
        ),
        (
            "+ clock jitter",
            NonIdealities::ideal().with_jitter_slew_gain(typical.jitter_slew_gain),
        ),
        (
            "+ DAC mismatch/ISI/ref noise",
            NonIdealities::ideal()
                .with_dac_level_mismatch(typical.dac_level_mismatch)
                .with_dac_isi(typical.dac_isi)
                .with_reference_noise(typical.reference_noise_sigma),
        ),
        (
            "+ heavy DAC ISI (1 %)",
            NonIdealities::ideal().with_dac_isi(0.01),
        ),
        ("all (typical chip)", typical),
    ];
    let mut rows = Vec::new();
    for (label, ni) in cases {
        let unq = snr_of(&mut SigmaDelta2::new(ni)?, None)?;
        let q12 = snr_of(&mut SigmaDelta2::new(ni)?, Some(12))?;
        rows.push(vec![
            label.to_string(),
            fmt(unq, 1),
            fmt(q12, 1),
            if q12 > 72.0 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    print_table(
        "Per-impairment SNR budget (2nd order, OSR 128, -1.4 dBFS near full scale)",
        &[
            "impairment set",
            "SNR unquantized [dB]",
            "SNR 12-bit out [dB]",
            "clears 72 dB",
        ],
        &rows,
    );

    println!(
        "\nShape check: the 2nd-order loop buys tens of dB over 1st order at OSR 128; each \
         individual impairment costs a few dB at most, and the 12-bit output word is the \
         binding constraint at the paper's operating point — consistent with the measured \
         'better than 72 dB' against the 74 dB ideal-12-bit bound."
    );
    Ok(())
}

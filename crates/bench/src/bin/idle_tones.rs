//! Experiment E12 — idle tones at DC inputs (the ΣΔ failure mode the
//! application actually exercises).
//!
//! A blood-pressure signal is a small ripple on a large DC bias — the
//! worst case for a low-order single-bit ΣΔ modulator, whose quantizer
//! limit-cycles at rational DC inputs produce discrete *idle tones* that
//! can alias into the signal band and masquerade as pulse features.
//!
//! This harness parks the modulator at several DC levels, estimates the
//! decimated output's noise floor with Welch averaging, and reports the
//! strongest in-band spur: for the ideal loop (no dither) and for the
//! typical chip, whose thermal noise dithers the limit cycles away — one
//! quiet reason real modulators are *not* built noiseless.

use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta2};
use tonos_analog::nonideal::NonIdealities;
use tonos_bench::{fmt, print_table};
use tonos_dsp::decimator::DecimatorConfig;
use tonos_dsp::welch::WelchPsd;

/// Measures the strongest in-band spur (dBFS) and the total in-band
/// noise power (dBFS) at a DC input.
fn idle_floor(
    nonideal: NonIdealities,
    dc: f64,
) -> Result<(f64, f64, f64), Box<dyn std::error::Error>> {
    let mut dsm = SigmaDelta2::new(nonideal)?;
    let mut dec = DecimatorConfig {
        output_bits: None, // look below the 12-bit floor
        ..DecimatorConfig::paper_default()
    }
    .build()?;
    let n_out = 16_384;
    let settle = dec.settling_output_samples() + 8;
    let bits = dsm.process_to_f64(&vec![dc; 128 * (n_out + settle)]);
    let out = dec.process(&bits);
    let tail: Vec<f64> = out[out.len() - n_out..]
        .iter()
        .map(|v| v - dc) // remove the DC so the PSD shows only the error
        .collect();
    let psd = WelchPsd::estimate(&tail, 1000.0, 2048)?;
    let (spur_hz, spur_density) = psd.peak()?;
    // Spur power ≈ density × ENBW of the Hann segment (1.5 bins).
    let spur_power = spur_density * psd.resolution_hz() * 1.5;
    let band = psd.band_power(1.0, 500.0);
    let dbfs = |p: f64| 10.0 * (p / 0.5).max(1e-20).log10(); // vs FS sine power
    Ok((spur_hz, dbfs(spur_power), dbfs(band)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E12: idle tones at DC inputs (Welch-averaged noise floors) ==");

    let dc_levels = [0.0, 1.0 / 16.0, 0.1, 0.111, 0.25, 0.052];
    for (label, nonideal) in [
        ("ideal loop (no dither)", NonIdealities::ideal()),
        ("typical chip (thermal dither)", NonIdealities::typical()),
    ] {
        let mut rows = Vec::new();
        for &dc in &dc_levels {
            let (spur_hz, spur_dbfs, band_dbfs) = idle_floor(nonideal, dc)?;
            rows.push(vec![
                fmt(dc, 4),
                fmt(spur_hz, 1),
                fmt(spur_dbfs, 1),
                fmt(band_dbfs, 1),
            ]);
        }
        print_table(
            &format!("{label}: strongest in-band spur vs DC input"),
            &[
                "DC input [FS]",
                "spur freq [Hz]",
                "spur [dBFS]",
                "in-band error power [dBFS]",
            ],
            &rows,
        );
    }

    println!(
        "\nShape check: at exactly rational DC inputs the ideal loop's limit-cycle tones \
         park out of band (the decimation filter removes them entirely — error power \
         ~-200 dBFS), but at nearby irrational-ish biases the tones land *in band*, 10-20 dB \
         above the typical chip's dithered spur floor. The chip's own thermal noise (A3's \
         'input noise' impairment) whitens them into a tone-free -88 dBFS broadband floor — \
         one quiet reason real modulators are not built noiseless, and all of it sits below \
         the 12-bit output quantization anyway."
    );
    Ok(())
}

//! Ablation A2 — the paper's future work, quantified.
//!
//! "Future work will include an improvement of the resolution during
//! blood pressure measurements. This can be achieved by adjusting the
//! feedback capacitors of the first modulator stage. Also an increased
//! conversion rate would be desirable." (§4)
//!
//! Part 1 sweeps the first-stage feedback capacitance Cfb and reports the
//! pressure resolution (mmHg per output LSB) plus the measured tracking
//! error of a short monitoring session.
//! Part 2 sweeps the modulator clock at fixed OSR and prices the higher
//! conversion rate in power (anchored at the paper's 11.5 mW).

use tonos_analog::power::PowerModel;
use tonos_bench::{fmt, print_table};
use tonos_core::config::{ChipConfig, SystemConfig};
use tonos_core::monitor::BloodPressureMonitor;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_mems::units::{Farads, MillimetersHg, Pascals, Volts};
use tonos_physio::patient::PatientProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== A2: adjusting the feedback capacitors & raising the conversion rate ==");

    // Pressure-to-input gain of the front end at the wrist operating
    // point: ΔC per mmHg of arterial pressure (through tissue + contact).
    let contact = SystemConfig::paper_default().contact;
    let tissue = tonos_physio::tissue::TissueModel::radial_artery();
    let chip = tonos_core::chip::SensorChip::new(ChipConfig::paper_default())?;
    let dc_per_mmhg = {
        use tonos_mems::contact::PressureField;
        let p = |mmhg: f64| -> Result<f64, Box<dyn std::error::Error>> {
            let field = tissue.field(MillimetersHg(mmhg));
            let net = contact.net_element_pressure(field.pressure_at(0.0, 0.0));
            Ok(chip.capacitances(&[net; 4])?[0].value())
        };
        (p(110.0)? - p(90.0)?) / 20.0 // farads per mmHg around 100 mmHg
    };

    let mut rows = Vec::new();
    for cfb_ff in [100.0, 50.0, 20.0, 10.0, 5.0] {
        let mut config = SystemConfig::paper_default();
        config.chip.feedback_capacitance = Farads::from_femtofarads(cfb_ff);
        let lsb_dc = cfb_ff * 1e-15 / 2048.0; // ΔC per 12-bit LSB
        let mmhg_per_lsb = lsb_dc / dc_per_mmhg;

        let mut monitor = BloodPressureMonitor::new(config, PatientProfile::normotensive())?
            .with_scan_window(200);
        let session = monitor.run(10.0)?;
        rows.push(vec![
            fmt(cfb_ff, 0),
            fmt(mmhg_per_lsb, 2),
            fmt(session.errors.systolic_mae, 2),
            fmt(session.errors.diastolic_mae, 2),
            session.errors.matched_beats.to_string(),
        ]);
    }
    print_table(
        "Part 1 — Cfb sweep (arterial mmHg per 12-bit LSB and 10 s session tracking)",
        &[
            "Cfb [fF]",
            "resolution [mmHg/LSB]",
            "sys MAE [mmHg]",
            "dia MAE [mmHg]",
            "matched beats",
        ],
        &rows,
    );
    println!(
        "(front-end small-signal gain: {:.3} aF per arterial mmHg at the wrist operating point)",
        dc_per_mmhg * 1e18
    );

    // --- Part 2: conversion-rate increase at fixed OSR 128. ---
    let power = PowerModel::paper_default();
    let mut rows = Vec::new();
    for fs_khz in [128.0, 256.0, 512.0, 1024.0] {
        let fs = fs_khz * 1e3;
        let cfg = DecimatorConfig {
            input_rate: fs,
            cutoff_hz: (fs / 128.0) / 2.0,
            ..DecimatorConfig::paper_default()
        };
        rows.push(vec![
            fmt(fs_khz, 0),
            fmt(cfg.output_rate(), 0),
            fmt(power.power(fs, Volts(5.0)) * 1e3, 2),
            fmt(power.power(fs, Volts(3.3)) * 1e3, 2),
        ]);
    }
    print_table(
        "Part 2 — conversion-rate increase at OSR 128 (power from the anchored model)",
        &[
            "modulator clock [kHz]",
            "output rate [S/s]",
            "power @ 5 V [mW]",
            "power @ 3.3 V [mW]",
        ],
        &rows,
    );

    // Sanity anchor for the table: membrane load at the operating point.
    let field = tissue.field(MillimetersHg(100.0));
    use tonos_mems::contact::PressureField;
    let net: Pascals = contact.net_element_pressure(field.pressure_at(0.0, 0.0));
    println!(
        "\nShape check: halving Cfb halves mmHg/LSB (resolution doubles) until tracking \
         saturates at the waveform-analysis floor; faster clocks buy output rate linearly \
         at ~{:.1} uW/kHz. (Operating membrane load at 100 mmHg arterial: {:.0} mmHg.)",
        (power.power(256e3, Volts(5.0)) - power.power(128e3, Volts(5.0))) / 128.0 * 1e6,
        net.to_mmhg().value()
    );
    Ok(())
}

//! Experiment E9 — the decimation filter's frequency response.
//!
//! §3.1 specifies the filter (SINC³ + 32-tap FIR, 500 Hz cutoff) but does
//! not plot its response; any user of the sensor needs it — the passband
//! droop determines waveform fidelity and the stopband floor determines
//! how much shaped modulator noise aliases into the signal.
//!
//! The table prints the analytic magnitude of each stage and the cascade,
//! and cross-checks three points against tones measured through the
//! actual implementation.

use tonos_bench::{ascii_plot, fmt, print_table};
use tonos_dsp::cic::CicDecimatorF64;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_dsp::fir::{design_lowpass, magnitude_at};
use tonos_dsp::signal::sine_wave;
use tonos_dsp::window::Window;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E9: decimation-filter frequency response (SINC3/32 + FIR32/4) ==");

    let fs_in = 128_000.0;
    let fs_mid = 4_000.0;
    let cic = CicDecimatorF64::new(3, 32)?;
    let fir = design_lowpass(32, 500.0 / fs_mid, Window::Hamming)?;

    let chain_mag =
        |hz: f64| -> f64 { cic.magnitude_at(hz / fs_in) * magnitude_at(&fir, hz / fs_mid) };

    let mut rows = Vec::new();
    for hz in [
        1.0, 10.0, 50.0, 100.0, 200.0, 300.0, 400.0, 450.0, 500.0, 600.0, 800.0, 1_000.0, 1_500.0,
        2_000.0, 3_000.0, 4_000.0,
    ] {
        let c = cic.magnitude_at(hz / fs_in);
        let f = magnitude_at(&fir, hz / fs_mid);
        let t = c * f;
        let db = |v: f64| 20.0 * v.max(1e-12).log10();
        rows.push(vec![
            fmt(hz, 0),
            fmt(db(c), 2),
            fmt(db(f), 2),
            fmt(db(t), 2),
        ]);
    }
    print_table(
        "Cascade magnitude response (dB; output Nyquist = 500 Hz)",
        &["f [Hz]", "SINC3 stage", "FIR stage", "cascade"],
        &rows,
    );

    // Response curve for the plot: 0..2 kHz.
    let curve: Vec<f64> = (0..200)
        .map(|i| {
            let hz = i as f64 * 10.0;
            20.0 * chain_mag(hz).max(1e-6).log10()
        })
        .collect();
    ascii_plot("Cascade response, 0..2 kHz (dB)", &curve, 100, 14);

    // Cross-check against tones measured through the real implementation.
    let mut rows = Vec::new();
    for hz in [100.0, 450.0, 1_500.0] {
        let mut dec = DecimatorConfig {
            output_bits: None,
            ..DecimatorConfig::paper_default()
        }
        .build()?;
        let n = 128 * 4096;
        let tone = sine_wave(fs_in, hz, 0.5, 0.0, n);
        let out = dec.process(&tone);
        let settled = &out[dec.settling_output_samples()..];
        let rms = (settled.iter().map(|v| v * v).sum::<f64>() / settled.len() as f64).sqrt();
        // The decimated tone aliases when hz > 500; measure amplitude
        // regardless — the formula predicts the pre-alias magnitude.
        let measured = rms * 2.0_f64.sqrt() / 0.5;
        let predicted = chain_mag(hz);
        rows.push(vec![
            fmt(hz, 0),
            fmt(predicted, 5),
            fmt(measured, 5),
            fmt(
                (measured - predicted).abs() / predicted.max(1e-9) * 100.0,
                2,
            ),
        ]);
    }
    print_table(
        "Formula vs measured tone amplitude through the implementation",
        &["f [Hz]", "formula |H|", "measured |H|", "error [%]"],
        &rows,
    );

    println!(
        "\nShape check: flat passband (droop < 0.5 dB to 400 Hz), -6 dB-class edge at the \
         500 Hz cutoff, > 40 dB stopband beyond 1 kHz, and the deep SINC nulls at multiples \
         of 4 kHz — the response the paper's two-stage architecture was chosen for."
    );
    Ok(())
}

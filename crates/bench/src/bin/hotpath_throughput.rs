//! Hot-path throughput measurement — the numbers behind
//! `BENCH_hotpath.json`.
//!
//! Measures the zero-allocation packed-bit signal chain per stage and
//! end to end, and prints one JSON document:
//!
//! 1. Packed-bit (word-parallel CIC) vs legacy f64 decimation
//!    throughput, Mbit/s through the paper-default two-stage chain.
//! 2. Per-stage costs in ns: one modulator clock (block stepper), one
//!    banked clock-lane through the tiled K=16 kernel, one CIC input
//!    bit (word kernel), one FIR input sample, and one settled readout
//!    frame — plus the `noise` block: ns/draw for serial `standard()`,
//!    the portable lockstep rows, and the dispatched (wide) fill, with
//!    the noise kernel name and in-run same-rep speedup gates.
//! 3. Single-thread monitoring-session throughput (sessions/s), the
//!    single-core lane-bank K sweep, and the W × K pool sweep
//!    (`BatchEngine` on the fleet worker pool: W workers, K lanes
//!    each). Scalar and banked runs are interleaved rep by rep so host
//!    drift hits both sides of every ratio equally.
//!
//! Every gate is a numeric `gate_*` field in the JSON `gates` block and
//! is asserted by this binary (exit nonzero on miss) — the CI
//! perf-smoke gate. Gate levels scale with the detected core count
//! (the 4x pool target assumes an 8-core host; single-core hosts only
//! sanity-check the pool) and `--quick` relaxes every gate to 60% for
//! noisy CI runners.
//!
//! Run with: `cargo run --release -p tonos-bench --bin hotpath_throughput`
//! (`--quick` shrinks the workload for CI smoke runs). Build with
//! `--features wide-lanes` to measure the explicit wide-ops tile
//! kernel; the `kernel` JSON field records which one ran.

use std::time::Instant;

use tonos_analog::bank::{kernel_name, SigmaDelta2Bank};
use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta2};
use tonos_analog::noise::{kernel_name as noise_kernel_name, LockstepFill, NoiseSource};
use tonos_analog::nonideal::NonIdealities;
use tonos_core::batch::run_batch;
use tonos_core::config::SystemConfig;
use tonos_core::monitor::BloodPressureMonitor;
use tonos_core::readout::ReadoutSystem;
use tonos_dsp::bits::PackedBits;
use tonos_dsp::cic::CicDecimator;
use tonos_dsp::decimator::{DecimatorConfig, CIC_INPUT_FRAC_BITS};
use tonos_dsp::fir::FirDecimator;
use tonos_dsp::signal::sine_wave;
use tonos_fleet::{BatchConfig, BatchEngine, FleetConfig, FleetEngine, SessionSpec};
use tonos_mems::units::{MillimetersHg, Pascals};
use tonos_physio::patient::PatientProfile;

/// One real-time second of modulator clocks.
const CLOCKS: usize = 128_000;

/// The scalar single-thread figure recorded in `BENCH_hotpath.json`
/// before the lane bank landed (commit f5bd278, this host class,
/// 8 s sessions). Reported as data, not gated: absolute sessions/s
/// tracks the host's speed of the day as much as the code (observed
/// swinging ±40% on shared hosts), so every asserted gate is an
/// in-run ratio whose two sides are measured back to back instead.
const SEED_SCALAR_SESSIONS_PER_S: f64 = 18.203;

/// Best-of-N wall-clock seconds for a closure processing `items` items;
/// returns (items/s, ns/item).
fn rate(reps: usize, items: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (items as f64 / best, best * 1e9 / items as f64)
}

fn decimation_mbps(packed: bool, seconds: usize, reps: usize) -> f64 {
    let n = CLOCKS * seconds;
    let bools: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let mut dec = DecimatorConfig::paper_default().build().unwrap();
    if packed {
        let bits: PackedBits = bools.iter().copied().collect();
        let mut out = Vec::with_capacity(n / 128 + 1);
        let (per_s, _) = rate(reps, n, || {
            out.clear();
            dec.process_packed_into(&bits, &mut out);
            assert!(!out.is_empty());
        });
        per_s / 1e6
    } else {
        let floats: Vec<f64> = bools.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let mut out = Vec::with_capacity(n / 128 + 1);
        let (per_s, _) = rate(reps, n, || {
            out.clear();
            dec.process_into(&floats, &mut out);
            assert!(!out.is_empty());
        });
        per_s / 1e6
    }
}

fn modulator_ns_per_clock(reps: usize) -> f64 {
    let stim = sine_wave(128_000.0, 100.0, 0.5, 0.0, CLOCKS);
    let mut dsm = SigmaDelta2::new(NonIdealities::typical()).unwrap();
    let mut noise = Vec::with_capacity(CLOCKS);
    let mut bits = PackedBits::with_capacity(CLOCKS);
    let (_, ns) = rate(reps, CLOCKS, || {
        bits.clear();
        dsm.step_block(&stim, &mut noise, &mut bits);
        assert_eq!(bits.len(), CLOCKS);
    });
    ns
}

/// Banked modulator cost through the tiled chunk kernel: ns per
/// clock-lane for K lanes stepping one real-time second in lockstep.
/// The ratio against [`modulator_ns_per_clock`] is the clock-level
/// tiling win — the number the `gate_tiled_k16_clock_speedup_min` gate
/// tracks, independent of the scalar stages wrapped around a session.
fn bank_ns_per_clock_lane(reps: usize, k: usize) -> f64 {
    let mut bank = SigmaDelta2Bank::from_modulators((0..k).map(|i| {
        SigmaDelta2::new(NonIdealities::typical().with_seed(9000 + i as u64)).expect("valid config")
    }));
    let inputs = vec![0.2; k];
    let mut bits = vec![PackedBits::with_capacity(CLOCKS); k];
    // Step in cache-resident blocks, like the session path does (one
    // OSR frame per call): one giant block would grow the noise-tile
    // scratch past the cache and measure memory, not the kernel.
    let block = 5120; // 25 blocks of one real-time second, 64-clock aligned
    let (_, ns) = rate(reps, CLOCKS * k, || {
        for b in &mut bits {
            b.clear();
        }
        for _ in 0..CLOCKS / block {
            bank.step_block_constant(block, &inputs, &mut bits);
        }
        assert_eq!(bits[0].len(), CLOCKS);
    });
    ns
}

/// Noise-plane measurement: ns/draw for the serial per-stream
/// `standard()` loop, the portable lockstep rows, and the dispatched
/// fill (the explicit-SIMD wide kernel when the build and CPU provide
/// one — same body as portable otherwise). The three legs are
/// interleaved rep by rep, so the returned speedups are best *same-rep*
/// ratios (host drift cancels): `(serial_ns, lockstep_ns, wide_ns,
/// lockstep_vs_serial, wide_vs_lockstep)`.
fn noise_ns_per_draw(reps: usize) -> (f64, f64, f64, f64, f64) {
    const K: usize = 16;
    // Cache-resident tile (2048 x 16 x 8 B = 256 KiB), several passes
    // per timed leg so one leg is long enough to time.
    const TILE_CLOCKS: usize = 2048;
    const PASSES: usize = 8;
    let draws = K * TILE_CLOCKS * PASSES;
    let sigmas: Vec<f64> = (0..K).map(|j| 1e-3 + j as f64 * 1e-4).collect();
    let sources: Vec<NoiseSource> = (0..K)
        .map(|j| NoiseSource::from_seed(0x5EED + j as u64))
        .collect();
    let mut tile = vec![0.0_f64; K * TILE_CLOCKS];
    let mut serial_best = f64::INFINITY;
    let mut lockstep_best = f64::INFINITY;
    let mut wide_best = f64::INFINITY;
    let mut lockstep_vs_serial = 0.0_f64;
    let mut wide_vs_lockstep = 0.0_f64;
    for _ in 0..reps.max(2) {
        // Serial leg: per-draw scalar `standard()` calls, stream by
        // stream — the latency-bound baseline the lockstep fill beats.
        let mut srcs = sources.clone();
        let t = Instant::now();
        for _ in 0..PASSES {
            for n in 0..TILE_CLOCKS {
                for (j, src) in srcs.iter_mut().enumerate() {
                    tile[n * K + j] = src.standard() * sigmas[j];
                }
            }
        }
        let serial_ns = t.elapsed().as_secs_f64() * 1e9 / draws as f64;
        std::hint::black_box(&tile);

        // Portable lockstep rows, pinned (the always-compiled oracle).
        let mut fill = LockstepFill::new();
        fill.begin(K);
        for src in &sources {
            fill.load(src);
        }
        let t = Instant::now();
        for _ in 0..PASSES {
            fill.fill_scaled_portable(&sigmas, TILE_CLOCKS, &mut tile);
        }
        let lockstep_ns = t.elapsed().as_secs_f64() * 1e9 / draws as f64;
        std::hint::black_box(&tile);

        // Dispatched fill — the wide kernel when one is active.
        let mut fill = LockstepFill::new();
        fill.begin(K);
        for src in &sources {
            fill.load(src);
        }
        let t = Instant::now();
        for _ in 0..PASSES {
            fill.fill_scaled(&sigmas, TILE_CLOCKS, &mut tile);
        }
        let wide_ns = t.elapsed().as_secs_f64() * 1e9 / draws as f64;
        std::hint::black_box(&tile);

        serial_best = serial_best.min(serial_ns);
        lockstep_best = lockstep_best.min(lockstep_ns);
        wide_best = wide_best.min(wide_ns);
        lockstep_vs_serial = lockstep_vs_serial.max(serial_ns / lockstep_ns);
        wide_vs_lockstep = wide_vs_lockstep.max(lockstep_ns / wide_ns);
    }
    (
        serial_best,
        lockstep_best,
        wide_best,
        lockstep_vs_serial,
        wide_vs_lockstep,
    )
}

fn cic_ns_per_bit(reps: usize) -> f64 {
    let bits: PackedBits = (0..CLOCKS).map(|i| i % 3 == 0).collect();
    let scale = 1_i64 << CIC_INPUT_FRAC_BITS;
    let mut cic = CicDecimator::new(3, 32).unwrap();
    let mut out = Vec::with_capacity(CLOCKS / 32 + 1);
    let (_, ns) = rate(reps, CLOCKS, || {
        out.clear();
        cic.process_packed_into(&bits, scale, &mut out);
        assert!(!out.is_empty());
    });
    ns
}

fn fir_ns_per_sample(reps: usize) -> f64 {
    let n = CLOCKS / 32; // the CIC's 4 kS/s intermediate rate
    let xs = sine_wave(4_000.0, 100.0, 0.5, 0.0, n);
    let mut fir = FirDecimator::paper_default();
    let (_, ns) = rate(reps, n, || {
        let mut acc = 0.0;
        for &x in &xs {
            if let Some(y) = fir.push(x) {
                acc += y;
            }
        }
        std::hint::black_box(acc);
    });
    ns
}

fn frame_ns(reps: usize, frames: usize) -> f64 {
    let mut sys = ReadoutSystem::paper_default().unwrap();
    let frame = vec![Pascals::from_mmhg(MillimetersHg(100.0)); 4];
    for _ in 0..16 {
        sys.push_frame(&frame).unwrap();
    }
    let (_, ns) = rate(reps, frames, || {
        for _ in 0..frames {
            std::hint::black_box(sys.push_frame(&frame).unwrap());
        }
    });
    ns
}

fn single_thread_run(sessions: usize, duration_s: f64) -> f64 {
    let profiles = PatientProfile::all();
    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 1 });
    let t = Instant::now();
    for i in 0..sessions {
        fleet.push(
            SessionSpec::new(
                format!("hotpath-{i}"),
                profiles[i % profiles.len()].with_seed(1000 + i as u64),
            )
            .with_duration(duration_s)
            .with_scan_window(150),
        );
    }
    let report = fleet.drain();
    let dt = t.elapsed().as_secs_f64();
    assert!(report.failures().is_empty(), "bench sessions must complete");
    sessions as f64 / dt
}

/// Single-core sessions/s with K sessions banked on one SoA lane bank
/// (`tonos_core::batch::run_batch`). Monitor construction is inside the
/// timed region, matching the scalar measurement above.
fn banked_run(k: usize, duration_s: f64) -> f64 {
    let profiles = PatientProfile::all();
    let t = Instant::now();
    let mut monitors: Vec<BloodPressureMonitor> = (0..k)
        .map(|i| {
            BloodPressureMonitor::new(
                SystemConfig::paper_default(),
                profiles[i % profiles.len()].with_seed(2000 + i as u64),
            )
            .unwrap()
            .with_scan_window(150)
        })
        .collect();
    let sessions = run_batch(&mut monitors, duration_s).unwrap();
    let dt = t.elapsed().as_secs_f64();
    assert_eq!(sessions.len(), k, "bench batch must complete");
    for s in &sessions {
        assert!(s.analysis.pulse_rate_bpm > 40.0, "bench lane degenerated");
    }
    k as f64 / dt
}

/// Sessions/s through a [`BatchEngine`] of W fleet workers with K-lane
/// banks — one full group per worker, so the pool sweep exercises the
/// shard queues, work stealing, and per-worker scratch reuse.
fn pool_run(w: usize, k: usize, duration_s: f64) -> f64 {
    let profiles = PatientProfile::all();
    let total = w * k;
    let mut engine = BatchEngine::spawn(BatchConfig {
        workers: w,
        lanes: k,
    });
    let t = Instant::now();
    for i in 0..total {
        engine.push(
            SessionSpec::new(
                format!("pool-{w}x{k}-{i}"),
                profiles[i % profiles.len()].with_seed(3000 + i as u64),
            )
            .with_duration(duration_s)
            .with_scan_window(150),
        );
    }
    let report = engine.drain();
    let dt = t.elapsed().as_secs_f64();
    assert!(report.failures().is_empty(), "bench sessions must complete");
    total as f64 / dt
}

struct GateCheck {
    name: &'static str,
    measured: f64,
    min: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = kernel_name();
    let wide = kernel.starts_with("wide");
    let (reps, dec_seconds, sessions, duration_s) = if quick {
        (2, 2, 2, 6.0)
    } else {
        (5, 8, 8, 8.0)
    };
    eprintln!(
        "measuring on {cores} hardware thread(s), kernel {kernel}{}...",
        if quick { " (quick)" } else { "" }
    );

    let f64_mbps = decimation_mbps(false, dec_seconds, reps);
    let packed_mbps = decimation_mbps(true, dec_seconds, reps);
    eprintln!("  decimation: f64 {f64_mbps:.2} Mbit/s, packed {packed_mbps:.2} Mbit/s");
    let mod_ns = modulator_ns_per_clock(reps);
    let bank16_ns = bank_ns_per_clock_lane(reps, 16);
    let tiled_k16_clock_speedup = mod_ns / bank16_ns;
    let cic_ns = cic_ns_per_bit(reps);
    let fir_ns = fir_ns_per_sample(reps);
    let fr_ns = frame_ns(reps, if quick { 500 } else { 2000 });
    eprintln!(
        "  stages: modulator {mod_ns:.1} ns/clock, tiled K=16 {bank16_ns:.2} ns/clock-lane \
         ({tiled_k16_clock_speedup:.2}x), cic {cic_ns:.2} ns/bit, fir {fir_ns:.1} ns/sample, \
         frame {fr_ns:.0} ns"
    );
    let noise_kernel = noise_kernel_name();
    let noise_wide = noise_kernel.starts_with("wide");
    let (
        noise_serial_ns,
        noise_lockstep_ns,
        noise_wide_ns,
        noise_lockstep_speedup,
        noise_wide_speedup,
    ) = noise_ns_per_draw(reps);
    eprintln!(
        "  noise ({noise_kernel}): serial {noise_serial_ns:.2} ns/draw, lockstep \
         {noise_lockstep_ns:.2} ns/draw ({noise_lockstep_speedup:.2}x), wide \
         {noise_wide_ns:.2} ns/draw ({noise_wide_speedup:.2}x lockstep)"
    );

    // Session-level sweep, interleaved: each rep measures the scalar
    // baseline, every banked K, and every W x K pool cell back to back,
    // so slow host drift moves every side of a ratio together instead
    // of biasing whichever leg ran last. Speedups are computed within a
    // rep (best rep wins); absolute sessions/s are best-of-reps.
    let lane_counts: &[usize] = &[1, 2, 4, 8, 16];
    let pool_ws: &[usize] = &[1, 2, 4];
    let pool_ks: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16] };
    let session_reps = if quick { 1 } else { 3 };
    let mut scalar_reps = vec![0.0_f64; session_reps];
    let mut banked_reps = vec![vec![0.0_f64; session_reps]; lane_counts.len()];
    let mut pool_reps = vec![vec![vec![0.0_f64; session_reps]; pool_ks.len()]; pool_ws.len()];
    for rep in 0..session_reps {
        eprintln!("  session sweep rep {}/{}...", rep + 1, session_reps);
        scalar_reps[rep] = single_thread_run(sessions, duration_s);
        for (j, &k) in lane_counts.iter().enumerate() {
            banked_reps[j][rep] = banked_run(k, duration_s);
        }
        for (wi, &w) in pool_ws.iter().enumerate() {
            for (ki, &k) in pool_ks.iter().enumerate() {
                pool_reps[wi][ki][rep] = pool_run(w, k, duration_s);
            }
        }
    }
    let best = |xs: &[f64]| xs.iter().cloned().fold(0.0_f64, f64::max);
    // Drift-robust speedup: best same-rep ratio against the scalar leg.
    let ratio = |xs: &[f64]| {
        xs.iter()
            .zip(&scalar_reps)
            .map(|(&x, &s)| x / s)
            .fold(0.0_f64, f64::max)
    };
    let sessions_per_s = best(&scalar_reps);
    eprintln!("  single-thread sessions/s: {sessions_per_s:.3}");
    let banked: Vec<(usize, f64, f64)> = lane_counts
        .iter()
        .zip(&banked_reps)
        .map(|(&k, reps)| (k, best(reps), ratio(reps)))
        .collect();
    for &(k, per_s, speedup) in &banked {
        eprintln!("  banked K={k}: {per_s:.3} sessions/s ({speedup:.2}x scalar)");
    }
    let mut best_wxk = (pool_ws[0], pool_ks[0], 0.0_f64, 0.0_f64);
    for (wi, &w) in pool_ws.iter().enumerate() {
        for (ki, &k) in pool_ks.iter().enumerate() {
            let per_s = best(&pool_reps[wi][ki]);
            let speedup = ratio(&pool_reps[wi][ki]);
            eprintln!("  pool W={w} K={k}: {per_s:.3} sessions/s ({speedup:.2}x scalar)");
            if speedup > best_wxk.3 {
                best_wxk = (w, k, per_s, speedup);
            }
        }
    }

    let (_, k8_per_s, k8_speedup) = *banked.iter().find(|(k, ..)| *k == 8).unwrap();
    let k8_vs_seed = k8_per_s / SEED_SCALAR_SESSIONS_PER_S;
    let (_, k16_per_s, k16_speedup) = *banked.iter().find(|(k, ..)| *k == 16).unwrap();
    // "Single-core K=16": the direct banked run or the one-worker
    // K=16 pool cell, whichever same-rep ratio is better — both step
    // sixteen lanes on one core.
    let k16_single_core_speedup = pool_ws
        .iter()
        .position(|&w| w == 1)
        .and_then(|wi| {
            pool_ks
                .iter()
                .position(|&k| k == 16)
                .map(|ki| ratio(&pool_reps[wi][ki]))
        })
        .unwrap_or(0.0)
        .max(k16_speedup);
    let best_wxk_speedup = best_wxk.3;

    // --- Gates: numeric, core-scaled, quick-relaxed, all asserted. ---
    // The pool target encodes "4x assumes an 8-core host": full 4.0
    // only with >= 8 cores, 2.5 on any multi-core host, and a bare
    // sanity floor on a single core (where W > 1 cannot speed anything
    // up). The K=16 session gate (1.6x on any host) rides the wide
    // kernel at the clock level too, with a "tiling must not lose"
    // floor for the portable scalar-tile build.
    let relax = if quick { 0.6 } else { 1.0 };
    let gate_packed = 1.0 * relax;
    let gate_tiled_clock = relax * if wide { 1.25 } else { 0.9 };
    // Noise-plane gates, both in-run same-rep ratios: the wide kernel
    // must beat the portable lockstep rows by 1.5x when a wide ISA is
    // active (must-not-lose floor otherwise, where both legs run the
    // same body), and going lockstep must never lose to the serial
    // per-draw loop.
    let gate_noise_wide = relax * if noise_wide { 1.5 } else { 0.9 };
    let gate_noise_lockstep = 1.0 * relax;
    let gate_k16 = 1.6 * relax;
    let gate_k8_scalar = 1.2 * relax;
    let gate_pool = relax
        * if cores >= 8 {
            4.0
        } else if cores >= 2 {
            2.5
        } else {
            0.9
        };

    println!("{{");
    println!("  \"bench\": \"hotpath_throughput\",");
    println!("  \"quick\": {quick},");
    println!("  \"host_hardware_threads\": {cores},");
    println!("  \"kernel\": \"{kernel}\",");
    println!("  \"decimation\": {{");
    println!("    \"host_hardware_threads\": {cores},");
    println!("    \"f64_path_mbit_per_s\": {f64_mbps:.2},");
    println!("    \"packed_path_mbit_per_s\": {packed_mbps:.2},");
    println!("    \"packed_speedup\": {:.3}", packed_mbps / f64_mbps);
    println!("  }},");
    println!("  \"stages\": {{");
    println!("    \"host_hardware_threads\": {cores},");
    println!("    \"modulator_ns_per_clock\": {mod_ns:.2},");
    println!("    \"tiled_k16_ns_per_clock_lane\": {bank16_ns:.2},");
    println!("    \"tiled_k16_clock_speedup\": {tiled_k16_clock_speedup:.3},");
    println!("    \"cic_word_kernel_ns_per_bit\": {cic_ns:.3},");
    println!("    \"fir_ns_per_sample\": {fir_ns:.2},");
    println!("    \"settled_frame_ns\": {fr_ns:.0}");
    println!("  }},");
    println!("  \"noise\": {{");
    println!("    \"host_hardware_threads\": {cores},");
    println!("    \"kernel\": \"{noise_kernel}\",");
    println!("    \"serial_standard_ns_per_draw\": {noise_serial_ns:.3},");
    println!("    \"lockstep_portable_ns_per_draw\": {noise_lockstep_ns:.3},");
    println!("    \"wide_fill_ns_per_draw\": {noise_wide_ns:.3},");
    println!("    \"lockstep_speedup_vs_serial\": {noise_lockstep_speedup:.3},");
    println!("    \"wide_speedup_vs_lockstep\": {noise_wide_speedup:.3}");
    println!("  }},");
    println!("  \"session_duration_s\": {duration_s},");
    println!("  \"sessions_per_measurement\": {sessions},");
    println!("  \"single_thread_sessions_per_s\": {sessions_per_s:.3},");
    println!("  \"batch\": {{");
    println!("    \"host_hardware_threads\": {cores},");
    println!(
        "    \"description\": \"K whole sessions in lockstep on one SoA lane bank, single core; speedups are best same-rep ratios vs the interleaved scalar leg\","
    );
    println!("    \"lanes\": [");
    for (i, (k, per_s, speedup)) in banked.iter().enumerate() {
        let comma = if i + 1 < banked.len() { "," } else { "" };
        println!(
            "      {{ \"k\": {k}, \"sessions_per_s\": {per_s:.3}, \"speedup_vs_scalar\": {speedup:.3} }}{comma}"
        );
    }
    println!("    ],");
    println!("    \"k8_speedup_vs_in_run_scalar\": {k8_speedup:.3},");
    println!("    \"k16_speedup_vs_in_run_scalar\": {k16_speedup:.3},");
    println!("    \"k16_single_core_speedup\": {k16_single_core_speedup:.3},");
    println!("    \"seed_scalar_sessions_per_s\": {SEED_SCALAR_SESSIONS_PER_S},");
    println!("    \"k8_vs_seed_scalar\": {k8_vs_seed:.3},");
    println!("    \"k16_sessions_per_s\": {k16_per_s:.3}");
    println!("  }},");
    println!("  \"pool\": {{");
    println!("    \"host_hardware_threads\": {cores},");
    println!(
        "    \"description\": \"W x K sweep: BatchEngine on the fleet pool, W workers with K-lane banks, one group per worker\","
    );
    println!("    \"sweep\": [");
    let cells = pool_ws.len() * pool_ks.len();
    let mut cell = 0;
    for (wi, &w) in pool_ws.iter().enumerate() {
        for (ki, &k) in pool_ks.iter().enumerate() {
            cell += 1;
            let per_s = best(&pool_reps[wi][ki]);
            let speedup = ratio(&pool_reps[wi][ki]);
            let comma = if cell < cells { "," } else { "" };
            println!(
                "      {{ \"workers\": {w}, \"k\": {k}, \"sessions_per_s\": {per_s:.3}, \"speedup_vs_scalar\": {speedup:.3} }}{comma}"
            );
        }
    }
    println!("    ],");
    println!(
        "    \"best\": {{ \"workers\": {}, \"k\": {}, \"sessions_per_s\": {:.3}, \"speedup_vs_scalar\": {best_wxk_speedup:.3} }}",
        best_wxk.0, best_wxk.1, best_wxk.2
    );
    println!("  }},");
    println!("  \"gates\": {{");
    println!("    \"host_hardware_threads\": {cores},");
    println!("    \"gate_packed_speedup_min\": {gate_packed:.3},");
    println!("    \"gate_tiled_k16_clock_speedup_min\": {gate_tiled_clock:.3},");
    println!("    \"gate_noise_wide_vs_lockstep_min\": {gate_noise_wide:.3},");
    println!("    \"gate_noise_lockstep_vs_serial_min\": {gate_noise_lockstep:.3},");
    println!("    \"gate_k16_single_core_speedup_min\": {gate_k16:.3},");
    println!("    \"gate_k8_vs_in_run_scalar_min\": {gate_k8_scalar:.3},");
    println!("    \"gate_best_pool_speedup_min\": {gate_pool:.3},");
    println!(
        "    \"note\": \"all gates are in-run ratios measured back to back (host-speed drift cancels; the seed anchor is data only); core-scaled: the 4x pool target assumes an 8-core host (2.5x on any multi-core, sanity floor on one core); the 1.6x single-core K=16 session gate holds on any host; the clock-level gate tracks the wide-lanes kernel (tiling-must-not-lose floor for the portable build); the noise gates demand wide >= 1.5x the portable lockstep rows when a wide ISA is active and lockstep >= 1.0x the serial per-draw loop; --quick relaxes all gates to 60% for noisy CI runners\""
    );
    println!("  }},");
    println!(
        "  \"note\": \"pre-optimization baselines (BENCH_fleet.json, same host class): f64 157.65 Mbit/s, packed 217.56 Mbit/s, single-thread 9.147 sessions/s; targets were >= 2x packed (435.12) and >= 1.5x sessions/s (13.72)\""
    );
    println!("}}");

    let checks = [
        GateCheck {
            name: "packed decimation vs f64 baseline",
            measured: packed_mbps / f64_mbps,
            min: gate_packed,
        },
        GateCheck {
            name: "tiled K=16 clock-level speedup vs scalar modulator",
            measured: tiled_k16_clock_speedup,
            min: gate_tiled_clock,
        },
        GateCheck {
            name: "wide noise fill vs portable lockstep ns/draw",
            measured: noise_wide_speedup,
            min: gate_noise_wide,
        },
        GateCheck {
            name: "lockstep noise fill vs serial standard() ns/draw",
            measured: noise_lockstep_speedup,
            min: gate_noise_lockstep,
        },
        GateCheck {
            name: "single-core K=16 session speedup vs in-run scalar",
            measured: k16_single_core_speedup,
            min: gate_k16,
        },
        GateCheck {
            name: "banked K=8 vs in-run scalar sessions/s",
            measured: k8_speedup,
            min: gate_k8_scalar,
        },
        GateCheck {
            name: "best W x K pool speedup vs in-run scalar",
            measured: best_wxk_speedup,
            min: gate_pool,
        },
    ];
    let mut failed = false;
    for c in &checks {
        if c.measured < c.min {
            eprintln!(
                "FAIL: {} is {:.3}, below the gate of {:.3}",
                c.name, c.measured, c.min
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

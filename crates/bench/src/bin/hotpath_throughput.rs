//! Hot-path throughput measurement — the numbers behind
//! `BENCH_hotpath.json`.
//!
//! Measures the zero-allocation packed-bit signal chain per stage and
//! end to end, and prints one JSON document:
//!
//! 1. Packed-bit (word-parallel CIC) vs legacy f64 decimation
//!    throughput, Mbit/s through the paper-default two-stage chain.
//! 2. Per-stage costs in ns: one modulator clock (block stepper), one
//!    CIC input bit (word kernel), one FIR input sample, and one
//!    settled readout frame.
//! 3. Single-thread monitoring-session throughput (sessions/s).
//!
//! Exits nonzero if the packed path is slower than the f64 baseline —
//! the CI perf-smoke gate.
//!
//! Run with: `cargo run --release -p tonos-bench --bin hotpath_throughput`
//! (`--quick` shrinks the workload for CI smoke runs).

use std::time::Instant;

use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta2};
use tonos_analog::nonideal::NonIdealities;
use tonos_core::batch::run_batch;
use tonos_core::config::SystemConfig;
use tonos_core::monitor::BloodPressureMonitor;
use tonos_core::readout::ReadoutSystem;
use tonos_dsp::bits::PackedBits;
use tonos_dsp::cic::CicDecimator;
use tonos_dsp::decimator::{DecimatorConfig, CIC_INPUT_FRAC_BITS};
use tonos_dsp::fir::FirDecimator;
use tonos_dsp::signal::sine_wave;
use tonos_fleet::{FleetConfig, FleetEngine, SessionSpec};
use tonos_mems::units::{MillimetersHg, Pascals};
use tonos_physio::patient::PatientProfile;

/// One real-time second of modulator clocks.
const CLOCKS: usize = 128_000;

/// The scalar single-thread figure recorded in `BENCH_hotpath.json`
/// before the lane bank landed (commit f5bd278, this host class,
/// 8 s sessions). The K=8 gate is anchored here rather than to the
/// in-run scalar measurement: the same change set that added the bank
/// also sped the scalar path up ~40% (shared xoshiro256++/ziggurat
/// rewrite), and gating against a bar the PR itself raised would hide
/// the combined win. The in-run ratio is still reported as data.
const SEED_SCALAR_SESSIONS_PER_S: f64 = 18.203;

/// Best-of-N wall-clock seconds for a closure processing `items` items;
/// returns (items/s, ns/item).
fn rate(reps: usize, items: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (items as f64 / best, best * 1e9 / items as f64)
}

fn decimation_mbps(packed: bool, seconds: usize, reps: usize) -> f64 {
    let n = CLOCKS * seconds;
    let bools: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let mut dec = DecimatorConfig::paper_default().build().unwrap();
    if packed {
        let bits: PackedBits = bools.iter().copied().collect();
        let mut out = Vec::with_capacity(n / 128 + 1);
        let (per_s, _) = rate(reps, n, || {
            out.clear();
            dec.process_packed_into(&bits, &mut out);
            assert!(!out.is_empty());
        });
        per_s / 1e6
    } else {
        let floats: Vec<f64> = bools.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let mut out = Vec::with_capacity(n / 128 + 1);
        let (per_s, _) = rate(reps, n, || {
            out.clear();
            dec.process_into(&floats, &mut out);
            assert!(!out.is_empty());
        });
        per_s / 1e6
    }
}

fn modulator_ns_per_clock(reps: usize) -> f64 {
    let stim = sine_wave(128_000.0, 100.0, 0.5, 0.0, CLOCKS);
    let mut dsm = SigmaDelta2::new(NonIdealities::typical()).unwrap();
    let mut noise = Vec::with_capacity(CLOCKS);
    let mut bits = PackedBits::with_capacity(CLOCKS);
    let (_, ns) = rate(reps, CLOCKS, || {
        bits.clear();
        dsm.step_block(&stim, &mut noise, &mut bits);
        assert_eq!(bits.len(), CLOCKS);
    });
    ns
}

fn cic_ns_per_bit(reps: usize) -> f64 {
    let bits: PackedBits = (0..CLOCKS).map(|i| i % 3 == 0).collect();
    let scale = 1_i64 << CIC_INPUT_FRAC_BITS;
    let mut cic = CicDecimator::new(3, 32).unwrap();
    let mut out = Vec::with_capacity(CLOCKS / 32 + 1);
    let (_, ns) = rate(reps, CLOCKS, || {
        out.clear();
        cic.process_packed_into(&bits, scale, &mut out);
        assert!(!out.is_empty());
    });
    ns
}

fn fir_ns_per_sample(reps: usize) -> f64 {
    let n = CLOCKS / 32; // the CIC's 4 kS/s intermediate rate
    let xs = sine_wave(4_000.0, 100.0, 0.5, 0.0, n);
    let mut fir = FirDecimator::paper_default();
    let (_, ns) = rate(reps, n, || {
        let mut acc = 0.0;
        for &x in &xs {
            if let Some(y) = fir.push(x) {
                acc += y;
            }
        }
        std::hint::black_box(acc);
    });
    ns
}

fn frame_ns(reps: usize, frames: usize) -> f64 {
    let mut sys = ReadoutSystem::paper_default().unwrap();
    let frame = vec![Pascals::from_mmhg(MillimetersHg(100.0)); 4];
    for _ in 0..16 {
        sys.push_frame(&frame).unwrap();
    }
    let (_, ns) = rate(reps, frames, || {
        for _ in 0..frames {
            std::hint::black_box(sys.push_frame(&frame).unwrap());
        }
    });
    ns
}

fn single_thread_sessions_per_s(reps: usize, sessions: usize, duration_s: f64) -> f64 {
    let profiles = PatientProfile::all();
    let mut best = 0.0_f64;
    for _ in 0..reps {
        let mut fleet = FleetEngine::spawn(FleetConfig { workers: 1 });
        let t = Instant::now();
        for i in 0..sessions {
            fleet.push(
                SessionSpec::new(
                    format!("hotpath-{i}"),
                    profiles[i % profiles.len()].with_seed(1000 + i as u64),
                )
                .with_duration(duration_s)
                .with_scan_window(150),
            );
        }
        let report = fleet.drain();
        let dt = t.elapsed().as_secs_f64();
        assert!(report.failures().is_empty(), "bench sessions must complete");
        best = best.max(sessions as f64 / dt);
    }
    best
}

/// Single-core sessions/s with K sessions banked on one SoA lane bank
/// (`tonos_core::batch::run_batch`). Monitor construction is inside the
/// timed region, matching the scalar measurement above.
fn banked_sessions_per_s(reps: usize, k: usize, duration_s: f64) -> f64 {
    let profiles = PatientProfile::all();
    let mut best = 0.0_f64;
    for _ in 0..reps {
        let t = Instant::now();
        let mut monitors: Vec<BloodPressureMonitor> = (0..k)
            .map(|i| {
                BloodPressureMonitor::new(
                    SystemConfig::paper_default(),
                    profiles[i % profiles.len()].with_seed(2000 + i as u64),
                )
                .unwrap()
                .with_scan_window(150)
            })
            .collect();
        let sessions = run_batch(&mut monitors, duration_s).unwrap();
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(sessions.len(), k, "bench batch must complete");
        for s in &sessions {
            assert!(s.analysis.pulse_rate_bpm > 40.0, "bench lane degenerated");
        }
        best = best.max(k as f64 / dt);
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (reps, dec_seconds, sessions, duration_s) = if quick {
        (2, 2, 2, 6.0)
    } else {
        (5, 8, 8, 8.0)
    };
    eprintln!(
        "measuring on {cores} hardware thread(s){}...",
        if quick { " (quick)" } else { "" }
    );

    let f64_mbps = decimation_mbps(false, dec_seconds, reps);
    let packed_mbps = decimation_mbps(true, dec_seconds, reps);
    eprintln!("  decimation: f64 {f64_mbps:.2} Mbit/s, packed {packed_mbps:.2} Mbit/s");
    let mod_ns = modulator_ns_per_clock(reps);
    let cic_ns = cic_ns_per_bit(reps);
    let fir_ns = fir_ns_per_sample(reps);
    let fr_ns = frame_ns(reps, if quick { 500 } else { 2000 });
    eprintln!("  stages: modulator {mod_ns:.1} ns/clock, cic {cic_ns:.2} ns/bit, fir {fir_ns:.1} ns/sample, frame {fr_ns:.0} ns");
    // Session throughput fluctuates ~30% run to run on shared hosts,
    // so take best-of-N like the micro-benches above.
    let session_reps = if quick { 2 } else { 3 };
    let sessions_per_s = single_thread_sessions_per_s(session_reps, sessions, duration_s);
    eprintln!("  single-thread sessions/s: {sessions_per_s:.3}");

    // Lane-bank sweep: K whole sessions per instruction stream.
    let lane_counts = [1usize, 2, 4, 8, 16];
    let mut banked = Vec::with_capacity(lane_counts.len());
    for &k in &lane_counts {
        let per_s = banked_sessions_per_s(session_reps, k, duration_s);
        eprintln!(
            "  banked K={k}: {per_s:.3} sessions/s ({:.2}x scalar)",
            per_s / sessions_per_s
        );
        banked.push((k, per_s));
    }
    let k8_per_s = banked
        .iter()
        .find(|(k, _)| *k == 8)
        .map(|(_, v)| *v)
        .unwrap();
    let k8_speedup = k8_per_s / sessions_per_s;
    let k8_vs_seed = k8_per_s / SEED_SCALAR_SESSIONS_PER_S;

    println!("{{");
    println!("  \"bench\": \"hotpath_throughput\",");
    println!("  \"quick\": {quick},");
    println!("  \"host_hardware_threads\": {cores},");
    println!("  \"decimation\": {{");
    println!("    \"f64_path_mbit_per_s\": {f64_mbps:.2},");
    println!("    \"packed_path_mbit_per_s\": {packed_mbps:.2},");
    println!("    \"packed_speedup\": {:.3}", packed_mbps / f64_mbps);
    println!("  }},");
    println!("  \"stages\": {{");
    println!("    \"modulator_ns_per_clock\": {mod_ns:.2},");
    println!("    \"cic_word_kernel_ns_per_bit\": {cic_ns:.3},");
    println!("    \"fir_ns_per_sample\": {fir_ns:.2},");
    println!("    \"settled_frame_ns\": {fr_ns:.0}");
    println!("  }},");
    println!("  \"session_duration_s\": {duration_s},");
    println!("  \"sessions_per_measurement\": {sessions},");
    println!("  \"single_thread_sessions_per_s\": {sessions_per_s:.3},");
    println!("  \"batch\": {{");
    println!(
        "    \"description\": \"K whole sessions in lockstep on one SoA lane bank, single core\","
    );
    println!("    \"lanes\": [");
    for (i, (k, per_s)) in banked.iter().enumerate() {
        let comma = if i + 1 < banked.len() { "," } else { "" };
        println!(
            "      {{ \"k\": {k}, \"sessions_per_s\": {per_s:.3}, \"speedup_vs_scalar\": {:.3} }}{comma}",
            per_s / sessions_per_s
        );
    }
    println!("    ],");
    println!("    \"k8_speedup_vs_in_run_scalar\": {k8_speedup:.3},");
    println!("    \"seed_scalar_sessions_per_s\": {SEED_SCALAR_SESSIONS_PER_S},");
    println!("    \"k8_speedup_vs_seed_scalar\": {k8_vs_seed:.3},");
    println!("    \"gate\": \"K=8 >= 1.5x the seed scalar figure ({SEED_SCALAR_SESSIONS_PER_S}/s) and >= 0.9x the in-run scalar; both paths share the ~4 ns/draw noise floor on this host, so the in-run ratio tops out near 1.35x while the combined win vs the seed is what the gate tracks\"");
    println!("  }},");
    println!(
        "  \"note\": \"pre-optimization baselines (BENCH_fleet.json, same host class): f64 157.65 Mbit/s, packed 217.56 Mbit/s, single-thread 9.147 sessions/s; targets were >= 2x packed (435.12) and >= 1.5x sessions/s (13.72)\""
    );
    println!("}}");

    if packed_mbps < f64_mbps {
        eprintln!(
            "FAIL: packed path ({packed_mbps:.2} Mbit/s) slower than f64 baseline ({f64_mbps:.2} Mbit/s)"
        );
        std::process::exit(1);
    }
    if k8_vs_seed < 1.5 {
        eprintln!(
            "FAIL: K=8 lane bank at {k8_per_s:.3} sessions/s is only {k8_vs_seed:.2}x \
             the seed scalar figure ({SEED_SCALAR_SESSIONS_PER_S}); the gate is 1.5x"
        );
        std::process::exit(1);
    }
    // Sanity, not a target: banking must not materially lose to the
    // in-run scalar path. The 0.9 floor absorbs the ~30% run-to-run
    // swing shared 1-core hosts show; a real banking regression lands
    // far below it.
    if k8_speedup < 0.9 {
        eprintln!(
            "FAIL: K=8 lane bank at {k8_per_s:.3} sessions/s is materially slower \
             than the in-run scalar path ({sessions_per_s:.3})"
        );
        std::process::exit(1);
    }
}

//! Ablation A4 — decimation-filter architecture and word length.
//!
//! Why a *two-stage* SINC³+FIR filter (§3.1) instead of a single SINC³
//! decimating the full OSR? And how many coefficient bits does the FPGA
//! FIR actually need? Both answers come out of the same SNR harness.

use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta2};
use tonos_analog::nonideal::NonIdealities;
use tonos_bench::{fmt, print_table};
use tonos_dsp::cic::CicDecimatorF64;
use tonos_dsp::decimator::{DecimatorConfig, OutputQuantizer};
use tonos_dsp::fpga::FixedPointDecimator;
use tonos_dsp::metrics::DynamicMetrics;
use tonos_dsp::signal::sine_wave;
use tonos_dsp::spectrum::Spectrum;
use tonos_dsp::window::Window;

const N_OUT: usize = 2048;
const FS: f64 = 128_000.0;

fn stimulus_bits(n_out_plus_settle: usize) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    let tone = Window::coherent_frequency(1000.0, N_OUT, 15.625);
    let stim = sine_wave(FS, tone, 0.5, 0.0, 128 * n_out_plus_settle);
    let mut dsm = SigmaDelta2::new(NonIdealities::typical())?;
    Ok(dsm.process_to_f64(&stim))
}

fn snr_of_output(out: &[f64]) -> Result<f64, Box<dyn std::error::Error>> {
    let spec = Spectrum::from_signal(&out[out.len() - N_OUT..], 1000.0, Window::Hann)?;
    Ok(DynamicMetrics::from_spectrum(&spec)?.snr_db)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== A4: decimation architecture & FIR word length ==");

    // --- Architecture: SINC3 ÷128 alone vs SINC3 ÷32 + FIR ÷4 ---
    let bits = stimulus_bits(N_OUT + 64)?;

    // Single-stage SINC3 decimating by the full 128, then 12-bit output.
    let mut cic_only = CicDecimatorF64::new(3, 128)?;
    let q12 = OutputQuantizer::new(12)?;
    let out_cic: Vec<f64> = cic_only
        .process(&bits)
        .into_iter()
        .map(|v| q12.round_trip(v))
        .collect();
    let snr_cic = snr_of_output(&out_cic)?;

    // The paper's two-stage chain.
    let mut two_stage = DecimatorConfig::paper_default().build()?;
    let out_two = two_stage.process(&bits);
    let snr_two = snr_of_output(&out_two)?;

    // The fully integer FPGA datapath (bit-exact hardware model).
    let mut fpga = FixedPointDecimator::paper_default();
    let bits_i8: Vec<i8> = bits.iter().map(|&b| if b > 0.0 { 1 } else { -1 }).collect();
    let codes = fpga.process(&bits_i8);
    let out_fpga: Vec<f64> = codes.iter().map(|&c| fpga.dequantize(c)).collect();
    let snr_fpga = snr_of_output(&out_fpga)?;

    // Two-stage without the final FIR cleanup: SINC3 ÷32 then naive ÷4
    // (pick every 4th intermediate sample — aliases the 0.5..2 kHz band).
    let mut cic32 = CicDecimatorF64::new(3, 32)?;
    let mid = cic32.process(&bits);
    let out_naive: Vec<f64> = mid
        .iter()
        .skip(3)
        .step_by(4)
        .map(|&v| q12.round_trip(v))
        .collect();
    let snr_naive = snr_of_output(&out_naive)?;

    print_table(
        "Architecture comparison (typical modulator, OSR 128, 12-bit output)",
        &["architecture", "SNR [dB]"],
        &[
            vec!["SINC3 / 128 single stage".into(), fmt(snr_cic, 1)],
            vec!["SINC3 / 32 + naive / 4 (no FIR)".into(), fmt(snr_naive, 1)],
            vec![
                "SINC3 / 32 + 32-tap FIR / 4 (paper)".into(),
                fmt(snr_two, 1),
            ],
            vec![
                "fully integer FPGA datapath (Q14 coeffs)".into(),
                fmt(snr_fpga, 1),
            ],
        ],
    );

    // --- FIR coefficient word length ---
    let mut rows = Vec::new();
    for coeff_bits in [16_u32, 12, 10, 8, 6, 4] {
        let cfg = DecimatorConfig {
            coefficient_bits: Some(coeff_bits),
            ..DecimatorConfig::paper_default()
        };
        let mut dec = cfg.build()?;
        let out = dec.process(&bits);
        rows.push(vec![coeff_bits.to_string(), fmt(snr_of_output(&out)?, 1)]);
    }
    let mut ideal = DecimatorConfig::paper_default().build()?;
    let out = ideal.process(&bits);
    rows.push(vec!["f64 (reference)".into(), fmt(snr_of_output(&out)?, 1)]);
    print_table(
        "FIR coefficient word-length sweep (paper chain otherwise)",
        &["coefficient bits", "SNR [dB]"],
        &rows,
    );

    println!(
        "\nShape check: the naive ÷4 without the FIR folds the 0.5–2 kHz shaped noise into \
         the band and loses SNR; the paper's 32-tap FIR restores it, and ~10 coefficient \
         bits already reach the 12-bit output's budget — a cheap FPGA filter, as used."
    );
    Ok(())
}

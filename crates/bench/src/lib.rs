//! # tonos-bench — experiment harness for the paper's evaluation
//!
//! Shared plumbing for the binaries that regenerate every quantitative
//! artifact of the paper (see `DESIGN.md` §4 for the experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig7_spectrum` | Fig. 7 — ΣΔ-ADC output spectrum, SNR > 72 dB |
//! | `table1_performance` | §3.1 performance summary |
//! | `fig9_bp_waveform` | Fig. 9 — calibrated wrist BP waveform |
//! | `fig4_mux_settling` | §2.2 — mux switching settling |
//! | `fig2_membrane_characterization` | §2.1 — membrane transduction |
//! | `cuff_vs_continuous` | §1 — cuff baseline vs continuous monitoring |
//! | `vessel_localization` | §2 — localizing buried vessels |
//! | `ablation_osr_amplitude` | OSR & amplitude sweeps |
//! | `ablation_feedback_caps` | future work: Cfb tuning, faster clocks |
//! | `ablation_modulator` | modulator order & non-idealities |
//! | `ablation_decimation` | decimation architecture & word length |
//!
//! Each binary prints its table(s) to stdout; run them with
//! `cargo run --release -p tonos-bench --bin <name>`.

use tonos_analog::modulator::{DeltaSigmaModulator, SigmaDelta2};
use tonos_analog::nonideal::NonIdealities;
use tonos_dsp::decimator::DecimatorConfig;
use tonos_dsp::metrics::DynamicMetrics;
use tonos_dsp::signal::sine_wave;
use tonos_dsp::spectrum::Spectrum;
use tonos_dsp::window::Window;

/// Result of a sine-wave ADC characterization run (the Fig. 7 workflow).
#[derive(Debug, Clone)]
pub struct AdcCharacterization {
    /// Test-tone frequency actually used (snapped to a coherent bin).
    pub tone_hz: f64,
    /// Input amplitude in full-scale units.
    pub amplitude: f64,
    /// The decimated-output spectrum.
    pub spectrum: Spectrum,
    /// Extracted dynamic metrics.
    pub metrics: DynamicMetrics,
}

/// Runs the §3.1 electrical characterization: a coherent sine through a
/// 2nd-order ΣΔ modulator and a decimation chain, followed by spectral
/// analysis of `n_out` settled output samples.
///
/// # Errors
///
/// Propagates modulator/decimator construction and analysis failures.
pub fn characterize_adc(
    nonideal: NonIdealities,
    decimator: DecimatorConfig,
    amplitude: f64,
    target_tone_hz: f64,
    n_out: usize,
) -> Result<AdcCharacterization, Box<dyn std::error::Error>> {
    let fs = decimator.input_rate;
    let out_rate = decimator.output_rate();
    let tone = Window::coherent_frequency(out_rate, n_out, target_tone_hz);
    let mut dsm = SigmaDelta2::new(nonideal)?;
    let mut dec = decimator.build()?;
    let settle = dec.settling_output_samples() + 8;
    let n_in = decimator.osr * (n_out + settle);
    let stimulus = sine_wave(fs, tone, amplitude, 0.0, n_in);
    let bits = dsm.process_to_f64(&stimulus);
    let out = dec.process(&bits);
    let tail = &out[out.len() - n_out..];
    let spectrum = Spectrum::from_signal(tail, out_rate, Window::Hann)?;
    let metrics = DynamicMetrics::from_spectrum(&spectrum)?;
    Ok(AdcCharacterization {
        tone_hz: tone,
        amplitude,
        spectrum,
        metrics,
    })
}

/// SNR of the paper-default chain at a given amplitude and OSR; `None`
/// output bits bypasses the 12-bit quantizer (pure ΣΔ + filter).
///
/// # Errors
///
/// Propagates characterization failures.
pub fn snr_at(
    nonideal: NonIdealities,
    osr: usize,
    amplitude: f64,
    output_bits: Option<u32>,
    n_out: usize,
) -> Result<f64, Box<dyn std::error::Error>> {
    let input_rate = 128_000.0;
    let cfg = DecimatorConfig {
        input_rate,
        osr,
        cutoff_hz: (input_rate / osr as f64) / 2.0,
        output_bits,
        ..DecimatorConfig::paper_default()
    };
    Ok(characterize_adc(nonideal, cfg, amplitude, 15.625, n_out)?
        .metrics
        .snr_db)
}

/// Prints a fixed-width ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |c: char| {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&c.to_string().repeat(w + 2));
            s.push('+');
        }
        s
    };
    println!("\n{title}");
    println!("{}", line('-'));
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (cell, w) in cells.iter().zip(&widths) {
            s.push_str(&format!(" {cell:<w$} |"));
        }
        s
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!("{}", line('='));
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!("{}", line('-'));
}

/// Renders a series as a crude ASCII plot (rows = amplitude buckets).
pub fn ascii_plot(title: &str, ys: &[f64], width: usize, height: usize) {
    if ys.is_empty() || width == 0 || height == 0 {
        return;
    }
    let lo = ys.iter().copied().fold(f64::MAX, f64::min);
    let hi = ys.iter().copied().fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-12);
    // Downsample/upsample to `width` columns by averaging buckets.
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let lo_i = c * ys.len() / width;
            let hi_i = (((c + 1) * ys.len()) / width).max(lo_i + 1).min(ys.len());
            ys[lo_i..hi_i].iter().sum::<f64>() / (hi_i - lo_i) as f64
        })
        .collect();
    println!("\n{title}  [min {lo:.3}, max {hi:.3}]");
    for r in (0..height).rev() {
        let thresh = lo + span * (r as f64 + 0.5) / height as f64;
        let row: String = cols
            .iter()
            .map(|&v| if v >= thresh { '#' } else { ' ' })
            .collect();
        println!("|{row}|");
    }
    println!("+{}+", "-".repeat(width));
}

/// Formats a float with the given precision (helper for table rows).
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_reaches_the_paper_floor() {
        let r = characterize_adc(
            NonIdealities::typical(),
            DecimatorConfig::paper_default(),
            0.85,
            15.625,
            2048,
        )
        .unwrap();
        assert!(
            r.metrics.snr_db > 71.0,
            "paper-configuration SNR {:.1} dB",
            r.metrics.snr_db
        );
        assert!((r.tone_hz - 15.625).abs() < 1.0);
    }

    #[test]
    fn snr_improves_with_osr() {
        let lo = snr_at(NonIdealities::ideal(), 32, 0.5, None, 1024).unwrap();
        let hi = snr_at(NonIdealities::ideal(), 256, 0.5, None, 1024).unwrap();
        assert!(
            hi > lo + 20.0,
            "2nd-order ΣΔ gains ~15 dB/octave of OSR: {lo:.1} -> {hi:.1}"
        );
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "two".into()], vec!["3".into(), "4".into()]],
        );
        ascii_plot("demo", &[0.0, 1.0, 0.5, 0.2], 10, 4);
        ascii_plot("empty", &[], 10, 4);
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}

//! End-to-end fleet tests: real monitoring sessions on a real worker
//! pool, failure isolation, and telemetry rollup accounting.

use tonos_core::stream::AlarmLimits;
use tonos_fleet::{FleetConfig, FleetEngine, SessionOutcome, SessionSpec, SessionSummary};
use tonos_physio::patient::PatientProfile;
use tonos_telemetry::names;

/// A short-but-real session spec (150-frame scan, 4 s of monitoring)
/// that keeps debug-build test time reasonable.
fn quick(label: &str, patient: PatientProfile) -> SessionSpec {
    SessionSpec::new(label, patient)
        .with_duration(4.0)
        .with_scan_window(150)
}

#[test]
fn fleet_runs_real_sessions_and_rolls_up_telemetry() {
    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 2 });
    assert_eq!(fleet.workers(), 2);
    fleet.push(quick("bed-0", PatientProfile::normotensive()));
    // Sensitive limits so the hypertensive patient (165/105) reliably
    // alarms within a 4 s session.
    fleet.push(
        quick("bed-1", PatientProfile::hypertensive()).with_alarms(AlarmLimits {
            systolic_high: 140.0,
            systolic_low: 60.0,
            qualifying_beats: 2,
            signal_loss_s: 3.0,
        }),
    );
    assert_eq!(fleet.pending(), 2);

    let report = fleet.drain();
    assert_eq!(fleet.pending(), 0);
    assert_eq!(report.len(), 2);
    assert!(report.failures().is_empty(), "{report}");
    for (result, summary) in report.completed() {
        assert!(summary.beats >= 3, "#{} beats {}", result.id, summary.beats);
        assert!(summary.pulse_rate_bpm > 40.0 && summary.pulse_rate_bpm < 180.0);
        assert!(summary.samples > 1000, "4 s at 1 kS/s");
        assert!(summary.chip_power_w > 0.0);
    }
    // Alarm fan-in: the hypertensive bed screened positive.
    let hyper = report.get(1).unwrap().outcome.summary().unwrap();
    assert!(hyper.alarms > 0, "hypertensive session raised no alarms");
    assert_eq!(report.total_alarms(), hyper.alarms);

    // Fleet-level registry: engine accounting plus rolled-up session
    // instruments in one snapshot.
    let agg = fleet.snapshot();
    assert_eq!(agg.counter(names::FLEET_SESSIONS_STARTED), Some(2));
    assert_eq!(agg.counter(names::FLEET_SESSIONS_COMPLETED), Some(2));
    assert_eq!(agg.counter(names::FLEET_SESSIONS_FAILED), None);
    let frames = agg.counter(names::READOUT_FRAMES_IN).unwrap();
    assert!(frames > 8000, "two 4 s sessions at 1 kHz, got {frames}");
    assert_eq!(
        agg.counter(names::ANALYZER_ALARMS),
        Some(hyper.alarms as u64),
        "rolled-up alarm counter must match the report's fan-in"
    );
    let wall = agg.histogram(names::SPAN_FLEET_SESSION).unwrap();
    assert_eq!(wall.count, 2);
    // The fleet health report reads like a single session's, fleet-wide.
    let health = fleet.registry().health();
    assert_eq!(health.frames_in, frames);
    assert!(health.beats >= 6);
}

#[test]
fn session_criticals_reach_the_fleet_journal_with_their_timestamps() {
    use std::time::Duration;
    use tonos_telemetry::Severity;

    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 2 });
    fleet.push_task("bed-crit", |ctx| {
        // Journal with explicit session-clock timestamps so the test can
        // assert exact preservation through the rollup.
        ctx.telemetry.event_at(
            Duration::from_millis(1500),
            Severity::Critical,
            "analyzer",
            || "sustained hypertension".into(),
        );
        ctx.telemetry.event_at(
            Duration::from_millis(2750),
            Severity::Warning,
            "link",
            || "gap concealed".into(),
        );
        ctx.telemetry
            .event(Severity::Info, "monitor", || "chatter".into());
        Ok(SessionSummary::from_stream(0, 0.0, 0.0, 0.0, 0, 0.0, 0))
    });
    let report = fleet.drain();
    assert!(report.failures().is_empty(), "{report}");

    let agg = fleet.snapshot();
    assert_eq!(agg.counter(names::FLEET_CRITICAL_EVENTS), Some(1));
    assert_eq!(agg.counter(names::FLEET_WARNING_EVENTS), Some(1));
    // The events themselves were re-journaled — with session-clock
    // timestamps, sources, and messages intact — while the info-level
    // chatter was dropped at the fleet boundary.
    let crit = agg
        .events
        .iter()
        .find(|e| e.severity == tonos_telemetry::Severity::Critical)
        .expect("critical event in the fleet journal");
    assert_eq!(crit.at, Duration::from_millis(1500));
    assert_eq!(crit.source, "analyzer");
    assert_eq!(crit.message, "sustained hypertension");
    let warn = agg
        .events
        .iter()
        .find(|e| e.severity == tonos_telemetry::Severity::Warning)
        .expect("warning event in the fleet journal");
    assert_eq!(warn.at, Duration::from_millis(2750));
    assert!(!agg.events.iter().any(|e| e.message == "chatter"));
}

#[test]
fn a_poisoned_session_does_not_take_down_the_fleet() {
    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 2 });
    fleet.push(quick("bed-ok", PatientProfile::normotensive()));
    let panicker = fleet.push_task("bed-poisoned", |ctx| {
        ctx.telemetry.counter("poison.progress").add(7);
        panic!("simulated driver bug");
    });
    let failer = fleet.push_task(
        "bed-misconfigured",
        |_ctx| Err("cuff not found".to_string()),
    );

    let report = fleet.drain();
    assert_eq!(report.len(), 3);
    assert_eq!(report.completed().count(), 1);
    let failures = report.failures();
    assert_eq!(failures.len(), 2);
    match &report.get(panicker).unwrap().outcome {
        SessionOutcome::Panicked(msg) => assert!(msg.contains("simulated driver bug")),
        other => panic!("expected panic outcome, got {other:?}"),
    }
    assert_eq!(
        report.get(failer).unwrap().outcome.error(),
        Some("cuff not found")
    );

    let agg = fleet.snapshot();
    assert_eq!(agg.counter(names::FLEET_SESSIONS_COMPLETED), Some(1));
    assert_eq!(agg.counter(names::FLEET_SESSIONS_FAILED), Some(1));
    assert_eq!(agg.counter(names::FLEET_SESSIONS_PANICKED), Some(1));
    // Telemetry the panicking session recorded before dying still
    // reached the rollup — sessions are isolated, not discarded.
    assert_eq!(agg.counter("poison.progress"), Some(7));
    // And the pool is still healthy: it runs new work after the panic.
    fleet.push(quick("bed-after", PatientProfile::hypotensive()));
    let second = fleet.drain();
    assert_eq!(second.len(), 1);
    assert!(second.failures().is_empty());
}

#[test]
fn fleet_sessions_match_single_thread_runs_exactly() {
    // The same seeded spec through the pool and on the calling thread
    // must agree to the bit: parallelism adds no nondeterminism.
    let spec = quick("bed-x", PatientProfile::exercise());

    let mut monitor = tonos_core::monitor::BloodPressureMonitor::new(spec.config, spec.patient)
        .unwrap()
        .with_scan_window(150);
    let session = monitor.run(spec.duration_s).unwrap();
    let reference = SessionSummary::from_session(&session, 0);

    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 3 });
    for _ in 0..3 {
        fleet.push(spec.clone());
    }
    let report = fleet.drain();
    assert!(report.failures().is_empty());
    for (_, summary) in report.completed() {
        assert_eq!(summary, &reference);
    }
}

#[test]
fn ensure_workers_lets_blocking_sessions_exceed_the_initial_pool() {
    use std::sync::mpsc::channel;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    // Sessions that occupy a worker for their whole lifetime (the link
    // server's ingest shape): each one reports in, then blocks until
    // the test releases it — and a release only comes once *all* of
    // them have started. On a fixed pool smaller than the session count
    // this deadlocks; ensure_workers must grow the pool instead.
    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 1 });
    const SESSIONS: usize = 4;
    let (started_tx, started_rx) = channel();
    let (release_tx, release_rx) = channel::<()>();
    let release_rx = Arc::new(Mutex::new(release_rx));
    for i in 0..SESSIONS {
        fleet.poll_finished();
        fleet.ensure_workers(fleet.pending() + 1);
        let started = started_tx.clone();
        let release = Arc::clone(&release_rx);
        fleet.push_task(format!("conn-{i}"), move |_| {
            started.send(()).expect("test alive");
            release
                .lock()
                .expect("release lock")
                .recv()
                .map_err(|e| e.to_string())?;
            Err("released".to_string())
        });
    }
    for _ in 0..SESSIONS {
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("every session must start despite the 1-worker seed");
    }
    assert!(fleet.workers() >= SESSIONS);
    for _ in 0..SESSIONS {
        release_tx.send(()).expect("sessions alive");
    }
    let report = fleet.drain();
    assert_eq!(report.len(), SESSIONS);
    assert_eq!(report.failures().len(), SESSIONS);
}

#[test]
fn shutdown_drains_and_ids_stay_monotonic() {
    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 1 });
    let a = fleet.push_task("a", |_| Err("x".into()));
    let first = fleet.drain();
    assert_eq!(first.len(), 1);
    let b = fleet.push_task("b", |_| Err("y".into()));
    assert!(b > a, "ids keep increasing across drains");
    let report = fleet.shutdown();
    assert_eq!(report.len(), 1);
    assert_eq!(report.sessions[0].id, b);
}

#[test]
fn actors_preserve_chunk_order_and_summarize_at_close() {
    // Many actors, few workers: chunk actors must interleave on the
    // pool without losing per-actor ordering, and an idle actor must
    // not occupy a worker (with 64 actors on 2 workers, the test would
    // deadlock if it did).
    use tonos_fleet::ActorEvent;
    const ACTORS: usize = 64;
    const CHUNKS: u64 = 50;
    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 2 });
    let mut handles = Vec::new();
    for a in 0..ACTORS {
        let mut expect = 0u64;
        let handle = fleet.open_actor(format!("actor-{a}"), 8, move |event, ctx| {
            match event {
                ActorEvent::Chunk(bytes) => {
                    // Each chunk carries its sequence number; any
                    // reordering or cross-actor bleed trips this.
                    let got = u64::from_le_bytes(bytes.try_into().unwrap());
                    assert_eq!(got, expect, "chunks out of order");
                    expect += 1;
                    ctx.telemetry.counter("actor.chunks").inc();
                    None
                }
                ActorEvent::Closed => Some(Ok(SessionSummary::from_stream(
                    0,
                    0.0,
                    0.0,
                    0.0,
                    expect as usize,
                    1.0,
                    0,
                ))),
            }
        });
        handles.push(handle);
    }
    // Interleave pushes across actors; retry when a bounded queue is
    // momentarily full (that's backpressure doing its job).
    for seq in 0..CHUNKS {
        for handle in &handles {
            let mut chunk = seq.to_le_bytes().to_vec();
            while let Err(tonos_fleet::ChunkFull(back)) = handle.try_push_chunk(chunk) {
                chunk = back;
                std::thread::yield_now();
            }
        }
    }
    for handle in &handles {
        handle.close();
    }
    drop(handles);
    let report = fleet.drain();
    assert_eq!(report.len(), ACTORS);
    assert!(report.failures().is_empty(), "{:?}", report.failures());
    for (_, summary) in report.completed() {
        assert_eq!(summary.samples as u64, CHUNKS);
    }
    // Per-actor registries rolled up: every chunk counted exactly once.
    assert_eq!(
        fleet.snapshot().counter("actor.chunks"),
        Some(ACTORS as u64 * CHUNKS)
    );
}

#[test]
fn a_panicking_actor_is_contained_and_queue_rejects_afterwards() {
    use tonos_fleet::ActorEvent;
    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 1 });
    let bad = fleet.open_actor("bad", 4, |event, _ctx| match event {
        ActorEvent::Chunk(_) => panic!("poisoned chunk"),
        ActorEvent::Closed => Some(Err("unreachable".into())),
    });
    let good = fleet.open_actor("good", 4, |event, _ctx| match event {
        ActorEvent::Chunk(_) => None,
        ActorEvent::Closed => Some(Ok(SessionSummary::from_stream(0, 0.0, 0.0, 0.0, 1, 1.0, 0))),
    });
    bad.try_push_chunk(vec![1]).unwrap();
    // The panic lands asynchronously; pushes eventually bounce off the
    // finished actor instead of queueing into the void.
    let mut rejected = false;
    for _ in 0..1_000 {
        if bad.try_push_chunk(vec![2]).is_err() {
            rejected = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(rejected, "finished actor kept accepting chunks");
    good.try_push_chunk(vec![3]).unwrap();
    good.close();
    bad.close();
    drop((good, bad));
    let report = fleet.drain();
    assert_eq!(report.len(), 2);
    let outcomes: Vec<_> = report
        .sessions
        .iter()
        .map(|s| {
            (
                s.label.clone(),
                matches!(s.outcome, SessionOutcome::Panicked(_)),
            )
        })
        .collect();
    assert!(outcomes.contains(&("bad".to_string(), true)));
    assert!(outcomes.contains(&("good".to_string(), false)));
}

#[test]
fn dropping_an_actor_handle_closes_the_session() {
    use tonos_fleet::ActorEvent;
    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 1 });
    let handle = fleet.open_actor("dropped", 4, |event, _ctx| match event {
        ActorEvent::Chunk(_) => None,
        ActorEvent::Closed => Some(Ok(SessionSummary::from_stream(0, 0.0, 0.0, 0.0, 7, 1.0, 0))),
    });
    handle.try_push_chunk(vec![0]).unwrap();
    drop(handle); // no explicit close(): drop must stand in for it
    let report = fleet.drain();
    assert_eq!(report.len(), 1);
    assert_eq!(report.completed().next().unwrap().1.samples, 7);
}

//! Batch engine tests: banked lockstep sessions must report exactly
//! what the thread-pool engine reports, and a batch that cannot bank
//! must degrade to scalar sessions without losing anyone.

use tonos_core::stream::AlarmLimits;
use tonos_fleet::{BatchConfig, BatchEngine, FleetConfig, FleetEngine, SessionSpec};
use tonos_physio::patient::PatientProfile;
use tonos_telemetry::names;

/// A short-but-real session spec (150-frame scan, 4 s of monitoring).
fn quick(label: &str, seed: u64) -> SessionSpec {
    SessionSpec::new(label, PatientProfile::normotensive().with_seed(seed))
        .with_duration(4.0)
        .with_scan_window(150)
}

#[test]
fn banked_batches_report_exactly_what_the_fleet_engine_reports() {
    // Three lockstep-compatible patients, one with alarm screening.
    let limits = AlarmLimits {
        systolic_high: 100.0, // deliberately low: normotensive alarms too
        systolic_low: 40.0,
        qualifying_beats: 2,
        signal_loss_s: 3.0,
    };
    let specs = vec![
        quick("bed-0", 11),
        quick("bed-1", 22).with_alarms(limits),
        quick("bed-2", 33),
    ];

    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 1 });
    for spec in &specs {
        fleet.push(spec.clone());
    }
    let scalar = fleet.drain();

    let mut batch = BatchEngine::spawn(BatchConfig {
        workers: 1,
        lanes: 3,
    });
    assert_eq!(batch.lanes(), 3);
    for spec in specs {
        batch.push(spec);
    }
    // A full batch dispatches on push; nothing staged at drain time.
    let banked = batch.drain();
    assert_eq!(batch.pending(), 0);

    assert_eq!(banked.len(), scalar.len());
    assert!(banked.failures().is_empty(), "{banked}");
    for (b, s) in banked.sessions.iter().zip(&scalar.sessions) {
        assert_eq!(b.label, s.label);
        // Banked lanes are bit-identical to scalar sessions, so the
        // full summary — beats, pressures, errors, alarms — matches
        // exactly, not approximately.
        assert_eq!(b.outcome.summary(), s.outcome.summary(), "{}", b.label);
    }

    let agg = batch.snapshot();
    assert_eq!(agg.counter(names::FLEET_SESSIONS_STARTED), Some(3));
    assert_eq!(agg.counter(names::FLEET_SESSIONS_COMPLETED), Some(3));
    assert_eq!(agg.counter(names::FLEET_BATCHES_BANKED), Some(3));
    assert_eq!(agg.counter(names::FLEET_BATCHES_SCALAR), None);
    // Session-local telemetry still rolls up through the batch path.
    assert!(agg.counter(names::READOUT_SAMPLES_OUT).unwrap_or(0) > 0);
    assert!(agg.counter(names::ANALYZER_ALARMS).unwrap_or(0) > 0);
    // Every lane timed its banked conversion; the scalar engine, which
    // never touched a lane bank, has no such span.
    let bank_span = agg.histogram(names::SPAN_BANK_CONVERT).unwrap();
    assert_eq!(bank_span.count, 3, "one convert span per lane");
    assert!(bank_span.sum > 0.0);
    assert!(fleet
        .snapshot()
        .histogram(names::SPAN_BANK_CONVERT)
        .is_none());
}

#[test]
fn unbankable_batches_degrade_to_scalar_without_losing_sessions() {
    let mut batch = BatchEngine::spawn(BatchConfig {
        workers: 1,
        lanes: 3,
    });
    // Lane 1's scan window breaks lockstep compatibility; lane 2's
    // duration is below the monitor's 4 s floor, so it fails even
    // scalar. The bank must reject the group, rerun it scalar, and
    // report lane 2 as the only casualty.
    batch.push(quick("good-a", 1));
    batch.push(quick("odd-window", 2).with_scan_window(99));
    batch.push(quick("too-short", 3).with_duration(2.0));
    let report = batch.drain();

    assert_eq!(report.len(), 3);
    assert!(report.get(0).unwrap().outcome.is_ok(), "{report}");
    assert!(report.get(1).unwrap().outcome.is_ok(), "{report}");
    let failed = report.get(2).unwrap();
    assert!(!failed.outcome.is_ok());
    assert!(failed.outcome.error().unwrap().contains("too short"));

    let agg = batch.snapshot();
    assert_eq!(agg.counter(names::FLEET_BATCHES_BANKED), None);
    assert_eq!(agg.counter(names::FLEET_BATCHES_SCALAR), Some(3));
    assert_eq!(agg.counter(names::FLEET_SESSIONS_COMPLETED), Some(2));
    assert_eq!(agg.counter(names::FLEET_SESSIONS_FAILED), Some(1));
}

#[test]
fn partial_batches_flush_on_drain() {
    // Two sessions into four lanes: the batch never fills, so drain
    // must flush the staged partial batch itself.
    let mut batch = BatchEngine::spawn(BatchConfig {
        workers: 2,
        lanes: 4,
    });
    batch.push(quick("bed-0", 5));
    batch.push(quick("bed-1", 6));
    assert_eq!(batch.pending(), 2);
    let report = batch.drain();
    assert_eq!(report.len(), 2);
    assert!(report.failures().is_empty(), "{report}");
    assert_eq!(
        batch.snapshot().counter(names::FLEET_BATCHES_BANKED),
        Some(2)
    );

    // The engine stays usable for a second round.
    batch.push(quick("bed-2", 7));
    let second = batch.drain();
    assert_eq!(second.len(), 1);
    assert!(second.failures().is_empty(), "{second}");
}

//! Batch engine tests: banked lockstep sessions must report exactly
//! what the thread-pool engine reports, and a batch that cannot bank
//! must degrade to scalar sessions without losing anyone.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use tonos_core::stream::AlarmLimits;
use tonos_fleet::{
    ActorEvent, BatchConfig, BatchEngine, FleetConfig, FleetEngine, SessionSpec, SessionSummary,
};
use tonos_physio::patient::PatientProfile;
use tonos_telemetry::names;

/// A short-but-real session spec (150-frame scan, 4 s of monitoring).
fn quick(label: &str, seed: u64) -> SessionSpec {
    SessionSpec::new(label, PatientProfile::normotensive().with_seed(seed))
        .with_duration(4.0)
        .with_scan_window(150)
}

#[test]
fn banked_batches_report_exactly_what_the_fleet_engine_reports() {
    // Three lockstep-compatible patients, one with alarm screening.
    let limits = AlarmLimits {
        systolic_high: 100.0, // deliberately low: normotensive alarms too
        systolic_low: 40.0,
        qualifying_beats: 2,
        signal_loss_s: 3.0,
    };
    let specs = vec![
        quick("bed-0", 11),
        quick("bed-1", 22).with_alarms(limits),
        quick("bed-2", 33),
    ];

    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 1 });
    for spec in &specs {
        fleet.push(spec.clone());
    }
    let scalar = fleet.drain();

    let mut batch = BatchEngine::spawn(BatchConfig {
        workers: 1,
        lanes: 3,
    });
    assert_eq!(batch.lanes(), 3);
    for spec in specs {
        batch.push(spec);
    }
    // A full batch dispatches on push; nothing staged at drain time.
    let banked = batch.drain();
    assert_eq!(batch.pending(), 0);

    assert_eq!(banked.len(), scalar.len());
    assert!(banked.failures().is_empty(), "{banked}");
    for (b, s) in banked.sessions.iter().zip(&scalar.sessions) {
        assert_eq!(b.label, s.label);
        // Banked lanes are bit-identical to scalar sessions, so the
        // full summary — beats, pressures, errors, alarms — matches
        // exactly, not approximately.
        assert_eq!(b.outcome.summary(), s.outcome.summary(), "{}", b.label);
    }

    let agg = batch.snapshot();
    assert_eq!(agg.counter(names::FLEET_SESSIONS_STARTED), Some(3));
    assert_eq!(agg.counter(names::FLEET_SESSIONS_COMPLETED), Some(3));
    assert_eq!(agg.counter(names::FLEET_BATCHES_BANKED), Some(3));
    assert_eq!(agg.counter(names::FLEET_BATCHES_SCALAR), None);
    // Session-local telemetry still rolls up through the batch path.
    assert!(agg.counter(names::READOUT_SAMPLES_OUT).unwrap_or(0) > 0);
    assert!(agg.counter(names::ANALYZER_ALARMS).unwrap_or(0) > 0);
    // Every lane timed its banked conversion; the scalar engine, which
    // never touched a lane bank, has no such span.
    let bank_span = agg.histogram(names::SPAN_BANK_CONVERT).unwrap();
    assert_eq!(bank_span.count, 3, "one convert span per lane");
    assert!(bank_span.sum > 0.0);
    assert!(fleet
        .snapshot()
        .histogram(names::SPAN_BANK_CONVERT)
        .is_none());
}

#[test]
fn unbankable_batches_degrade_to_scalar_without_losing_sessions() {
    let mut batch = BatchEngine::spawn(BatchConfig {
        workers: 1,
        lanes: 3,
    });
    // Lane 1's scan window breaks lockstep compatibility; lane 2's
    // duration is below the monitor's 4 s floor, so it fails even
    // scalar. The bank must reject the group, rerun it scalar, and
    // report lane 2 as the only casualty.
    batch.push(quick("good-a", 1));
    batch.push(quick("odd-window", 2).with_scan_window(99));
    batch.push(quick("too-short", 3).with_duration(2.0));
    let report = batch.drain();

    assert_eq!(report.len(), 3);
    assert!(report.get(0).unwrap().outcome.is_ok(), "{report}");
    assert!(report.get(1).unwrap().outcome.is_ok(), "{report}");
    let failed = report.get(2).unwrap();
    assert!(!failed.outcome.is_ok());
    assert!(failed.outcome.error().unwrap().contains("too short"));

    let agg = batch.snapshot();
    assert_eq!(agg.counter(names::FLEET_BATCHES_BANKED), None);
    assert_eq!(agg.counter(names::FLEET_BATCHES_SCALAR), Some(3));
    assert_eq!(agg.counter(names::FLEET_SESSIONS_COMPLETED), Some(2));
    assert_eq!(agg.counter(names::FLEET_SESSIONS_FAILED), Some(1));
}

#[test]
fn pool_width_and_lane_count_never_change_results() {
    // The same six sessions through several W x K pool shapes: worker
    // count and lane-bank width are pure scheduling knobs, so every
    // shape must report summaries identical — exactly, not
    // approximately — to the single-worker scalar fleet.
    let specs: Vec<SessionSpec> = (0..6)
        .map(|i| quick(&format!("bed-{i}"), 100 + i as u64))
        .collect();

    let mut fleet = FleetEngine::spawn(FleetConfig { workers: 1 });
    for s in &specs {
        fleet.push(s.clone());
    }
    let reference = fleet.drain();
    assert!(reference.failures().is_empty(), "{reference}");

    for (workers, lanes) in [(1, 8), (2, 3), (4, 2)] {
        let mut batch = BatchEngine::spawn(BatchConfig { workers, lanes });
        for s in &specs {
            batch.push(s.clone());
        }
        let report = batch.drain();
        assert_eq!(report.len(), specs.len(), "W={workers} K={lanes}");
        assert!(
            report.failures().is_empty(),
            "W={workers} K={lanes}: {report}"
        );
        // Completion order varies with the sharding; match by label.
        for got in &report.sessions {
            let want = reference
                .sessions
                .iter()
                .find(|s| s.label == got.label)
                .unwrap_or_else(|| panic!("W={workers} K={lanes}: unknown label {}", got.label));
            assert_eq!(
                got.outcome.summary(),
                want.outcome.summary(),
                "W={workers} K={lanes} session {}",
                got.label
            );
        }
    }
}

#[test]
fn lane_rebalance_and_actor_scheduling_never_double_run_a_session() {
    // Stress loop: banked session groups and chunk actors contend for
    // the same four workers, with lane groups landing on per-worker
    // queues and getting stolen across them. Three invariants prove no
    // session ever runs on two workers concurrently:
    //   1. every actor handler flags reentry (the at-most-one-worker
    //      guarantee) — any violation fails the drain via a panic;
    //   2. every label reports exactly once;
    //   3. the occupancy histogram's sum equals the sessions pushed, so
    //      no lane group was claimed off two queues.
    const ROUNDS: usize = 2;
    const PER_ROUND: usize = 8;
    let mut batch = BatchEngine::spawn(BatchConfig {
        workers: 4,
        lanes: 2,
    });

    let reentered = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for a in 0..4 {
        let busy = Arc::new(AtomicBool::new(false));
        let reentered = Arc::clone(&reentered);
        let handle = batch
            .fleet_mut()
            .open_actor(format!("actor-{a}"), 64, move |event, _ctx| match event {
                ActorEvent::Chunk(_) => {
                    if busy.swap(true, Ordering::SeqCst) {
                        reentered.fetch_add(1, Ordering::SeqCst);
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    busy.store(false, Ordering::SeqCst);
                    None
                }
                ActorEvent::Closed => {
                    Some(Ok(SessionSummary::from_stream(0, 0.0, 0.0, 0.0, 0, 1.0, 0)))
                }
            });
        handles.push(handle);
    }

    let mut pushed = 0;
    for round in 0..ROUNDS {
        for i in 0..PER_ROUND {
            batch.push(quick(
                &format!("r{round}-s{i}"),
                500 + (round * PER_ROUND + i) as u64,
            ));
            pushed += 1;
            // Interleave actor chunks with session pushes so actor
            // dispatches and banked groups genuinely contend; a full
            // queue (backpressure) is fine here.
            for h in &handles {
                let _ = h.try_push_chunk(vec![round as u8, i as u8]);
            }
        }
        batch.fleet_mut().poll_finished();
    }
    for h in &handles {
        h.close();
    }
    drop(handles);
    let report = batch.drain();

    let total = pushed + 4; // sessions plus the four actors
    assert_eq!(report.len(), total);
    assert!(report.failures().is_empty(), "{report}");
    assert_eq!(
        reentered.load(Ordering::SeqCst),
        0,
        "an actor handler ran on two workers at once"
    );

    let mut labels: Vec<&str> = report.sessions.iter().map(|s| s.label.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), total, "a session reported twice");

    let agg = batch.snapshot();
    assert_eq!(
        agg.counter(names::FLEET_SESSIONS_STARTED),
        Some(total as u64)
    );
    assert_eq!(
        agg.counter(names::FLEET_SESSIONS_COMPLETED),
        Some(total as u64)
    );
    // Each claim records its group size into the occupancy histogram,
    // so the sum is the total lane-group memberships handed out: more
    // than `pushed` would mean a group was claimed off two queues.
    let occ = agg.histogram(names::FLEET_BATCH_OCCUPANCY).unwrap();
    assert_eq!(occ.sum as usize, pushed, "lane-group claims != sessions");
    // Steal volume is scheduling-dependent; surface it rather than
    // gate on it so the test stays deterministic.
    eprintln!(
        "lane steals under stress: {}",
        agg.counter(names::FLEET_LANE_STEALS).unwrap_or(0)
    );
}

#[test]
fn partial_batches_flush_on_drain() {
    // Two sessions into four lanes: the batch never fills, so drain
    // must flush the staged partial batch itself.
    let mut batch = BatchEngine::spawn(BatchConfig {
        workers: 2,
        lanes: 4,
    });
    batch.push(quick("bed-0", 5));
    batch.push(quick("bed-1", 6));
    assert_eq!(batch.pending(), 2);
    let report = batch.drain();
    assert_eq!(report.len(), 2);
    assert!(report.failures().is_empty(), "{report}");
    assert_eq!(
        batch.snapshot().counter(names::FLEET_BATCHES_BANKED),
        Some(2)
    );

    // The engine stays usable for a second round.
    batch.push(quick("bed-2", 7));
    let second = batch.drain();
    assert_eq!(second.len(), 1);
    assert!(second.failures().is_empty(), "{second}");
}

//! `tonos-fleet` — parallel multi-patient monitoring at scale.
//!
//! The paper's sensor monitors one artery. A ward monitors forty. This
//! crate runs many independent [`BloodPressureMonitor`] sessions
//! concurrently on a fixed pool of worker threads (std threads and
//! channels only — no runtime, no new dependencies), with three
//! guarantees the single-session stack cannot give:
//!
//! * **Isolation** — every session gets its own telemetry
//!   [`Registry`](tonos_telemetry::Registry) and owns all of its state;
//!   sessions cannot observe or corrupt each other.
//! * **Graceful failure** — a session that errors or outright panics is
//!   contained at the worker boundary and reported in the
//!   [`FleetReport`]; the rest of the fleet keeps monitoring.
//! * **Aggregate telemetry** — per-session registries are rolled up
//!   (counters summed, histograms pooled bucket-wise) into one
//!   fleet-level registry next to the engine's own session accounting,
//!   so ward-wide throughput, health ratios, and alarm fan-in read out
//!   of a single [`snapshot`](FleetEngine::snapshot).
//!
//! Two engines share that contract: [`FleetEngine`] runs one session per
//! worker thread, and [`BatchEngine`] runs K sessions per worker in
//! lockstep on a SoA lane bank ([`tonos_core::batch::run_batch`]) —
//! converting K patients per instruction stream when sessions outnumber
//! cores, with automatic scalar fallback per batch.
//!
//! # Example
//!
//! Submitting real monitoring sessions (a few seconds of simulated
//! patient each — build with `--release` for fleet-scale runs):
//!
//! ```no_run
//! use tonos_core::stream::AlarmLimits;
//! use tonos_fleet::{FleetConfig, FleetEngine, SessionSpec};
//! use tonos_physio::patient::PatientProfile;
//!
//! let mut fleet = FleetEngine::spawn(FleetConfig::default());
//! for (bed, patient) in PatientProfile::all().into_iter().enumerate() {
//!     fleet.push(
//!         SessionSpec::new(format!("bed-{bed}"), patient)
//!             .with_duration(8.0)
//!             .with_alarms(AlarmLimits::adult()),
//!     );
//! }
//! let report = fleet.drain();
//! assert!(report.failures().is_empty());
//! println!("{report}");
//! println!("{}", fleet.registry().health());
//! ```
//!
//! The engine accepts arbitrary workloads too, which is also how its
//! failure isolation is exercised:
//!
//! ```
//! use tonos_fleet::{FleetConfig, FleetEngine, SessionOutcome};
//!
//! let mut fleet = FleetEngine::spawn(FleetConfig { workers: 2 });
//! let good = fleet.push_task("good", |ctx| {
//!     ctx.telemetry.counter("demo.work").inc();
//!     Err("not a real session".to_string())
//! });
//! let bad = fleet.push_task("bad", |_ctx| panic!("poisoned session"));
//!
//! let report = fleet.drain();
//! assert_eq!(report.len(), 2);
//! assert_eq!(report.failures().len(), 2); // both reported, none fatal
//! assert!(matches!(
//!     report.get(bad).unwrap().outcome,
//!     SessionOutcome::Panicked(_)
//! ));
//! // The failed session's telemetry still reached the fleet rollup.
//! assert_eq!(fleet.snapshot().counter("demo.work"), Some(1));
//! # let _ = good;
//! ```
//!
//! [`BloodPressureMonitor`]: tonos_core::monitor::BloodPressureMonitor

#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod report;
pub mod session;

pub use batch::{BatchConfig, BatchEngine};
pub use engine::{
    ActorEvent, ActorHandle, ActorHandler, ChunkFull, FleetConfig, FleetEngine, SessionTask,
};
pub use report::{FleetReport, SessionResult};
pub use session::{SessionContext, SessionOutcome, SessionSpec, SessionSummary};

//! What one fleet session is: its specification, execution, and outcome.
//!
//! A *session* is one patient monitored end-to-end — array scan, cuff
//! calibration, continuous acquisition, beat analysis, and (optionally)
//! online alarm screening — exactly what [`BloodPressureMonitor::run`]
//! produces, condensed into a [`SessionSummary`] small enough to ship
//! across the fleet's result channel by value.

use tonos_core::config::SystemConfig;
use tonos_core::monitor::{BloodPressureMonitor, MonitoringSession};
use tonos_core::stream::{AlarmLimits, MonitorEvent, OnlineAnalyzer};
use tonos_physio::patient::PatientProfile;
use tonos_telemetry::Telemetry;

/// Specification of one monitoring session to run on the fleet.
///
/// Build with [`SessionSpec::new`] and the chained `with_*` setters;
/// every field also stays public for direct construction.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Operator-facing label (bed number, patient tag, ...).
    pub label: String,
    /// Physiological profile driving the ground-truth waveform.
    pub patient: PatientProfile,
    /// Full system configuration (chip, decimator, calibration).
    pub config: SystemConfig,
    /// Monitoring duration in seconds (the monitor requires ≥ 4 s).
    pub duration_s: f64,
    /// Array-scan window in frames; `None` keeps the monitor default.
    pub scan_window: Option<usize>,
    /// When set, the calibrated output is additionally screened by an
    /// [`OnlineAnalyzer`] with these limits, and raised alarms are
    /// counted into [`SessionSummary::alarms`] (and the session's
    /// telemetry registry, for fleet-level fan-in).
    pub alarm_limits: Option<AlarmLimits>,
}

impl SessionSpec {
    /// A session with the paper-default system configuration, 8 s of
    /// monitoring, no alarm screening.
    pub fn new(label: impl Into<String>, patient: PatientProfile) -> Self {
        SessionSpec {
            label: label.into(),
            patient,
            config: SystemConfig::paper_default(),
            duration_s: 8.0,
            scan_window: None,
            alarm_limits: None,
        }
    }

    /// Replaces the system configuration.
    #[must_use]
    pub fn with_config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the monitoring duration in seconds.
    #[must_use]
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Sets the array-scan window (smaller = faster startup; tests use
    /// 150 frames).
    #[must_use]
    pub fn with_scan_window(mut self, frames: usize) -> Self {
        self.scan_window = Some(frames);
        self
    }

    /// Enables online alarm screening with the given limits.
    #[must_use]
    pub fn with_alarms(mut self, limits: AlarmLimits) -> Self {
        self.alarm_limits = Some(limits);
        self
    }

    /// Runs the session to completion on the calling thread, reporting
    /// into the context's (session-local) telemetry. This is what fleet
    /// workers execute; errors come back as strings because they cross
    /// the fleet's result channel.
    ///
    /// Per-frame working memory is owned by the monitor's
    /// `ReadoutSystem` (one `ConversionScratch` per session, reused
    /// across every frame), so a worker's steady-state acquisition loop
    /// does not touch the heap — sessions scale across workers without
    /// contending on the allocator.
    pub(crate) fn run(self, ctx: &SessionContext) -> Result<SessionSummary, String> {
        let mut monitor = BloodPressureMonitor::new(self.config, self.patient)
            .map_err(|e| e.to_string())?
            .with_telemetry(ctx.telemetry.clone());
        if let Some(frames) = self.scan_window {
            monitor = monitor.with_scan_window(frames);
        }
        let session = monitor.run(self.duration_s).map_err(|e| e.to_string())?;
        summarize(&session, self.alarm_limits, &ctx.telemetry)
    }
}

/// Condenses a finished session, running the optional alarm screening
/// stage exactly as [`SessionSpec::run`] does — the batch engine calls
/// this per lane so banked and scalar sessions summarize identically.
pub(crate) fn summarize(
    session: &MonitoringSession,
    alarm_limits: Option<AlarmLimits>,
    telemetry: &Telemetry,
) -> Result<SessionSummary, String> {
    let alarms = match alarm_limits {
        None => 0,
        Some(limits) => {
            let mut analyzer = OnlineAnalyzer::new(session.sample_rate, limits)
                .map_err(|e| e.to_string())?
                .with_telemetry(telemetry.clone());
            let pressures: Vec<f64> = session.calibrated.iter().map(|p| p.value()).collect();
            analyzer
                .push_block(&pressures)
                .iter()
                .filter(|e| !matches!(e, MonitorEvent::Beat { .. }))
                .count()
        }
    };
    Ok(SessionSummary::from_session(session, alarms))
}

/// Per-session execution context handed to the workload by a worker.
///
/// The telemetry handle reaches a registry owned by *this session only*;
/// the engine snapshots and rolls it up after the session ends, so a
/// misbehaving session can never skew a neighbour's numbers.
#[derive(Debug, Clone)]
pub struct SessionContext {
    /// Engine-assigned session id (monotonic per engine).
    pub id: u64,
    /// The label the session was submitted under.
    pub label: String,
    /// Handle onto the session-local telemetry registry.
    pub telemetry: Telemetry,
}

/// Scalar results of one completed session — the part of a
/// [`MonitoringSession`] worth shipping across the fleet (the full
/// waveforms stay with the worker and are dropped).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    /// Beats accepted by waveform analysis.
    pub beats: usize,
    /// Mean pulse rate, beats per minute.
    pub pulse_rate_bpm: f64,
    /// Mean systolic pressure, mmHg.
    pub mean_systolic_mmhg: f64,
    /// Mean diastolic pressure, mmHg.
    pub mean_diastolic_mmhg: f64,
    /// Mean absolute systolic error vs. ground truth, mmHg.
    pub systolic_mae_mmhg: f64,
    /// Mean absolute diastolic error vs. ground truth, mmHg.
    pub diastolic_mae_mmhg: f64,
    /// Detected beats matched against truth beats.
    pub matched_beats: usize,
    /// Calibrated output samples delivered.
    pub samples: usize,
    /// Output sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Chip power draw during the session, watts.
    pub chip_power_w: f64,
    /// Alarms raised by the optional online screening stage.
    pub alarms: usize,
}

impl SessionSummary {
    /// A summary for a *streamed* session — one ingested from an
    /// external device over the host link (`tonos-link`) rather than
    /// simulated in-process. Such sessions have no ground truth to score
    /// against, so the error fields are zero and `matched_beats`
    /// mirrors `beats`; everything else carries the live analyzer's
    /// output, making link-ingested sessions first-class citizens of
    /// [`FleetReport`](crate::FleetReport).
    #[allow(clippy::too_many_arguments)]
    pub fn from_stream(
        beats: usize,
        pulse_rate_bpm: f64,
        mean_systolic_mmhg: f64,
        mean_diastolic_mmhg: f64,
        samples: usize,
        sample_rate_hz: f64,
        alarms: usize,
    ) -> Self {
        SessionSummary {
            beats,
            pulse_rate_bpm,
            mean_systolic_mmhg,
            mean_diastolic_mmhg,
            systolic_mae_mmhg: 0.0,
            diastolic_mae_mmhg: 0.0,
            matched_beats: beats,
            samples,
            sample_rate_hz,
            chip_power_w: 0.0,
            alarms,
        }
    }

    /// Condenses a completed [`MonitoringSession`].
    pub fn from_session(session: &MonitoringSession, alarms: usize) -> Self {
        SessionSummary {
            beats: session.analysis.beats.len(),
            pulse_rate_bpm: session.analysis.pulse_rate_bpm,
            mean_systolic_mmhg: session.analysis.mean_systolic,
            mean_diastolic_mmhg: session.analysis.mean_diastolic,
            systolic_mae_mmhg: session.errors.systolic_mae,
            diastolic_mae_mmhg: session.errors.diastolic_mae,
            matched_beats: session.errors.matched_beats,
            samples: session.calibrated.len(),
            sample_rate_hz: session.sample_rate,
            chip_power_w: session.chip_power_w,
            alarms,
        }
    }
}

/// How one session ended.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutcome {
    /// Ran to completion.
    Completed(SessionSummary),
    /// Returned an error (bad configuration, validation failure, ...).
    Failed(String),
    /// Panicked; the panic was caught at the worker boundary and the
    /// rest of the fleet kept running.
    Panicked(String),
}

impl SessionOutcome {
    /// Whether the session completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, SessionOutcome::Completed(_))
    }

    /// The summary, when completed.
    pub fn summary(&self) -> Option<&SessionSummary> {
        match self {
            SessionOutcome::Completed(s) => Some(s),
            _ => None,
        }
    }

    /// The error or panic message, when not completed.
    pub fn error(&self) -> Option<&str> {
        match self {
            SessionOutcome::Completed(_) => None,
            SessionOutcome::Failed(e) | SessionOutcome::Panicked(e) => Some(e),
        }
    }
}

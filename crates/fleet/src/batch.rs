//! The batch engine: B sessions per worker, converted on one lane bank,
//! scheduled on the fleet's shared worker pool.
//!
//! [`FleetEngine`] parallelizes across threads — one session per core.
//! On narrow hardware (or when cores are saturated) the next axis is
//! *within* the instruction stream:
//! [`tonos_core::batch::run_batch_with_scratch`] steps K modulators per
//! clock through one SoA lane bank, converting K patients per core.
//! [`BatchEngine`] wraps that mode in the same fleet contract:
//!
//! * **Same pool.** A batch engine is a facade over a [`FleetEngine`]:
//!   its lane groups run on the same workers as ordinary sessions and
//!   chunk actors, so batch conversion, scalar sessions, and live
//!   ingest share one fixed-size pool (a `Dispatch::Batch` kick in the
//!   engine's job queue). [`BatchEngine::fleet`] /
//!   [`BatchEngine::fleet_mut`] expose it.
//! * **Per-worker shards, work-stealing rebalance.** Submitted groups
//!   land on per-worker lane queues (round-robin). A worker drains its
//!   own queue first and steals from the longest other queue when dry —
//!   session join/retire churn rebalances instead of idling workers.
//!   [`names::FLEET_LANE_STEALS`] counts steals;
//!   [`names::FLEET_BATCH_OCCUPANCY`] records how many lanes each
//!   claimed group actually filled.
//! * **Per-worker noise-tile prefill.** Each fleet worker owns one
//!   [`BatchScratch`]: the lane bank's noise tiles are grown by the
//!   first batch a worker runs and reused for every later batch, so
//!   the steady state allocates nothing per group. The prefill routes
//!   through `LockstepFill`, so under `--features wide-lanes` every
//!   shard inherits the explicit-SIMD noise kernel (4/8 generator
//!   streams per vector register) with no change up here.
//! * **Same isolation.** Every session in a batch still gets its own
//!   telemetry [`Registry`]; lanes share an instruction stream, never a
//!   registry.
//! * **Same graceful failure.** A batch whose banked run errors or
//!   panics falls back to scalar sessions, one at a time under
//!   [`catch_unwind`] — the failing lane fails alone and is reported
//!   individually; healthy lanes still complete.
//! * **Same reporting.** Results come back as the familiar
//!   [`FleetReport`]. Banked lanes are bit-identical to scalar sessions,
//!   so the two engines produce the same summaries for the same specs.
//!
//! Per-session `wall_s` in a banked batch is the batch wall time divided
//! by the lane count — the fair per-patient share of the core.
//!
//! Pick [`BatchEngine`] over the plain thread-pool engine when sessions
//! outnumber cores and specs are lockstep-compatible (same config shape
//! and duration); see `ARCHITECTURE.md` § Lane bank for the full
//! guidance.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use tonos_core::batch::{run_batch_with_scratch, BatchScratch};
use tonos_core::monitor::BloodPressureMonitor;
use tonos_telemetry::{buckets, names, Registry, Telemetry, TelemetrySnapshot};

use crate::engine::{panic_message, FleetConfig, FleetEngine, RawResult};
use crate::report::FleetReport;
use crate::session::{summarize, SessionContext, SessionOutcome, SessionSpec};

/// Batch engine sizing.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Worker threads in the pool (clamped to at least 1).
    pub workers: usize,
    /// Sessions per batch — the lane count K of each worker's bank
    /// (clamped to at least 1).
    pub lanes: usize,
}

impl Default for BatchConfig {
    /// One worker per hardware thread, eight lanes per bank.
    fn default() -> Self {
        BatchConfig {
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
            lanes: 8,
        }
    }
}

/// Lane-bank work shared between a [`BatchEngine`] and the fleet
/// workers: one session queue per worker, drained `lanes` sessions at a
/// time.
///
/// All scheduling state lives under one mutex, so the wakeup protocol
/// has no lost-update window: a producer that enqueues work sees the
/// exact set of active runners (and kicks more workers if needed), and
/// a runner gives its slot back *in the same critical section* that
/// finds every queue empty.
pub(crate) struct BatchShard {
    /// Sessions per claimed group — the bank's lane count K.
    lanes: usize,
    state: Mutex<ShardState>,
    /// Fleet-level telemetry (the owning engine's registry): steal and
    /// occupancy instruments plus the per-session banked/scalar mode
    /// counters recorded worker-side.
    telemetry: Telemetry,
}

struct ShardState {
    /// One FIFO of staged sessions per worker index.
    queues: Vec<VecDeque<(u64, SessionSpec)>>,
    /// Round-robin cursor: which queue the next submitted group joins.
    next: usize,
    /// Workers currently kicked at (or draining) this shard.
    runners: usize,
}

impl std::fmt::Debug for BatchShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchShard")
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl BatchShard {
    fn new(workers: usize, lanes: usize, telemetry: Telemetry) -> Self {
        BatchShard {
            lanes: lanes.max(1),
            state: Mutex::new(ShardState {
                queues: (0..workers.max(1)).map(|_| VecDeque::new()).collect(),
                next: 0,
                runners: 0,
            }),
            telemetry,
        }
    }

    /// Places one submitted group on a worker queue (round-robin) and
    /// returns how many batch kicks the caller owes the pool: enough
    /// that every non-empty queue could have a runner, counting the
    /// runners already active.
    fn submit(&self, group: Vec<(u64, SessionSpec)>, workers: usize) -> usize {
        let mut s = self.state.lock().expect("shard state lock poisoned");
        let slot = s.next % s.queues.len();
        s.next = (s.next + 1) % s.queues.len();
        s.queues[slot].extend(group);
        let nonempty = s.queues.iter().filter(|q| !q.is_empty()).count();
        let kicks = nonempty.min(workers.max(1)).saturating_sub(s.runners);
        s.runners += kicks;
        kicks
    }

    /// Claims up to `lanes` sessions for worker `who`: its own queue
    /// first, otherwise stolen from the longest other queue (rebalance
    /// on join/retire churn). `None` means every queue is empty and the
    /// runner slot has been released — the caller stops draining; the
    /// next [`submit`](BatchShard::submit) re-kicks.
    fn claim(&self, who: usize) -> Option<Vec<(u64, SessionSpec)>> {
        let group = {
            let mut s = self.state.lock().expect("shard state lock poisoned");
            let n = s.queues.len();
            let own = who % n;
            let src = if s.queues[own].is_empty() {
                let victim = (0..n)
                    .filter(|&i| i != own && !s.queues[i].is_empty())
                    .max_by_key(|&i| s.queues[i].len());
                match victim {
                    Some(v) => v,
                    None => {
                        s.runners -= 1;
                        return None;
                    }
                }
            } else {
                own
            };
            if src != own {
                self.telemetry.counter(names::FLEET_LANE_STEALS).inc();
            }
            let take = s.queues[src].len().min(self.lanes);
            s.queues[src].drain(..take).collect::<Vec<_>>()
        };
        self.telemetry
            .histogram(names::FLEET_BATCH_OCCUPANCY, &occupancy_buckets(self.lanes))
            .record(group.len() as f64);
        Some(group)
    }

    /// Drains the shard on one fleet worker: claim, convert, report,
    /// repeat until dry. `Err` means the engine is gone.
    pub(crate) fn run_on_worker(
        &self,
        who: usize,
        scratch: &mut BatchScratch,
        results: &Sender<RawResult>,
    ) -> Result<(), ()> {
        while let Some(group) = self.claim(who) {
            for raw in run_group(group, scratch, &self.telemetry) {
                results.send(raw).map_err(|_| ())?;
            }
        }
        Ok(())
    }
}

/// Histogram bounds for lane occupancy: one bucket per lane count.
fn occupancy_buckets(lanes: usize) -> Vec<f64> {
    buckets::linear(1.0, 1.0, lanes.max(1))
}

/// A facade running monitoring sessions K-at-a-time on lane banks, with
/// scalar fallback per batch, on a shared [`FleetEngine`] worker pool.
///
/// Lifecycle mirrors [`FleetEngine`]: [`spawn`](BatchEngine::spawn) →
/// [`push`](BatchEngine::push) → [`drain`](BatchEngine::drain)
/// (repeatable). Sessions are grouped into batches of `lanes` in
/// submission order; a partial batch is flushed by the next drain.
#[derive(Debug)]
pub struct BatchEngine {
    fleet: FleetEngine,
    shard: Arc<BatchShard>,
    lanes: usize,
    staged: Vec<(u64, SessionSpec)>,
}

impl BatchEngine {
    /// Starts the worker pool (a plain [`FleetEngine`] underneath).
    pub fn spawn(config: BatchConfig) -> Self {
        let fleet = FleetEngine::spawn(FleetConfig {
            workers: config.workers,
        });
        let lanes = config.lanes.max(1);
        let shard = Arc::new(BatchShard::new(fleet.workers(), lanes, fleet.telemetry()));
        BatchEngine {
            fleet,
            shard,
            lanes,
            staged: Vec::new(),
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.fleet.workers()
    }

    /// Sessions per batch (the bank's lane count K).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The underlying fleet engine — batch groups, plain sessions
    /// ([`FleetEngine::push`]), and chunk actors
    /// ([`FleetEngine::open_actor`]) all share its worker pool, queue,
    /// and registry.
    pub fn fleet(&self) -> &FleetEngine {
        &self.fleet
    }

    /// Mutable access to the underlying fleet engine.
    pub fn fleet_mut(&mut self) -> &mut FleetEngine {
        &mut self.fleet
    }

    /// Submits a monitoring session; returns its engine-assigned id.
    /// The session is dispatched once a full batch of `lanes` specs has
    /// accumulated (or at the next [`drain`](BatchEngine::drain)).
    pub fn push(&mut self, spec: SessionSpec) -> u64 {
        let id = self.fleet.stage_batch_session();
        self.staged.push((id, spec));
        if self.staged.len() >= self.lanes {
            self.flush();
        }
        id
    }

    /// Dispatches any staged partial batch immediately.
    pub fn flush(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let group = std::mem::take(&mut self.staged);
        let kicks = self.shard.submit(group, self.fleet.workers());
        for _ in 0..kicks {
            self.fleet.send_batch(Arc::clone(&self.shard));
        }
    }

    /// Sessions submitted but not yet collected by a drain (staged
    /// sessions included).
    pub fn pending(&self) -> usize {
        self.fleet.pending()
    }

    /// Flushes the staged batch, blocks until every submitted session
    /// has finished, rolls telemetry into the fleet registry, and
    /// returns the outcomes ordered by session id. The engine stays
    /// usable afterwards.
    pub fn drain(&mut self) -> FleetReport {
        self.flush();
        self.fleet.drain()
    }

    /// The fleet-level registry: engine counters plus everything rolled
    /// up from drained sessions.
    pub fn registry(&self) -> &Registry {
        self.fleet.registry()
    }

    /// Handle onto the fleet-level registry.
    pub fn telemetry(&self) -> Telemetry {
        self.fleet.telemetry()
    }

    /// Snapshot of the fleet-level registry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.fleet.snapshot()
    }

    /// Drains outstanding sessions, stops the workers, and returns the
    /// final report.
    pub fn shutdown(mut self) -> FleetReport {
        self.flush();
        self.fleet.shutdown()
    }
}

/// Executes one claimed group: banked first, scalar fallback on any
/// error. Per-session mode counters land on the fleet registry here,
/// worker-side; outcome counters and the session span are recorded by
/// [`FleetEngine`] when it collects the results.
fn run_group(
    group: Vec<(u64, SessionSpec)>,
    scratch: &mut BatchScratch,
    telemetry: &Telemetry,
) -> Vec<RawResult> {
    if let Some(raws) = try_banked(&group, scratch) {
        telemetry
            .counter(names::FLEET_BATCHES_BANKED)
            .add(raws.len() as u64);
        return raws;
    }
    telemetry
        .counter(names::FLEET_BATCHES_SCALAR)
        .add(group.len() as u64);
    // Scalar fallback: the exact fleet-engine session path, one spec at
    // a time, each under its own registry and catch_unwind, so the lane
    // that poisoned the bank fails alone.
    group
        .into_iter()
        .map(|(id, spec)| {
            let registry = Registry::new();
            let ctx = SessionContext {
                id,
                label: spec.label.clone(),
                telemetry: registry.telemetry(),
            };
            let label = spec.label.clone();
            let started = Instant::now();
            let outcome = match catch_unwind(AssertUnwindSafe(|| spec.run(&ctx))) {
                Ok(Ok(summary)) => SessionOutcome::Completed(summary),
                Ok(Err(error)) => SessionOutcome::Failed(error),
                Err(payload) => SessionOutcome::Panicked(panic_message(payload.as_ref())),
            };
            RawResult {
                id,
                label,
                wall_s: started.elapsed().as_secs_f64(),
                outcome,
                snapshot: registry.snapshot(),
            }
        })
        .collect()
}

/// Attempts the banked lockstep run. `None` means "use the scalar
/// fallback" — heterogeneous durations, any construction/run error, or
/// a panic inside the bank. The registries built here are discarded on
/// fallback so a half-run banked attempt never double-counts telemetry.
fn try_banked(
    sessions: &[(u64, SessionSpec)],
    scratch: &mut BatchScratch,
) -> Option<Vec<RawResult>> {
    let k = sessions.len();
    let duration_s = sessions[0].1.duration_s;
    if sessions.iter().any(|(_, s)| s.duration_s != duration_s) {
        return None;
    }
    let registries: Vec<Registry> = (0..k).map(|_| Registry::new()).collect();
    let started = Instant::now();
    let run = catch_unwind(AssertUnwindSafe(|| -> Result<_, String> {
        let mut monitors = Vec::with_capacity(k);
        for ((_, spec), registry) in sessions.iter().zip(&registries) {
            let mut monitor = BloodPressureMonitor::new(spec.config, spec.patient)
                .map_err(|e| e.to_string())?
                .with_telemetry(registry.telemetry());
            if let Some(frames) = spec.scan_window {
                monitor = monitor.with_scan_window(frames);
            }
            monitors.push(monitor);
        }
        run_batch_with_scratch(&mut monitors, duration_s, scratch).map_err(|e| e.to_string())
    }));
    let completed = match run {
        Ok(Ok(completed)) => completed,
        // Error or panic: one lane (or the group shape) is bad. Rerun
        // scalar so the healthy lanes complete and the bad one is
        // isolated and reported with its own error.
        _ => return None,
    };
    let wall_each = started.elapsed().as_secs_f64() / k as f64;
    let mut raws = Vec::with_capacity(k);
    for (((id, spec), session), registry) in sessions.iter().zip(&completed).zip(&registries) {
        let outcome = match summarize(session, spec.alarm_limits, &registry.telemetry()) {
            Ok(summary) => SessionOutcome::Completed(summary),
            Err(error) => SessionOutcome::Failed(error),
        };
        raws.push(RawResult {
            id: *id,
            label: spec.label.clone(),
            wall_s: wall_each,
            outcome,
            snapshot: registry.snapshot(),
        });
    }
    Some(raws)
}

//! The batch engine: B sessions per worker, converted on one lane bank.
//!
//! [`FleetEngine`](crate::FleetEngine) parallelizes across threads — one
//! session per core. On narrow hardware (or when cores are saturated)
//! the next axis is *within* the instruction stream:
//! [`tonos_core::batch::run_batch`] steps K modulators per clock through
//! one SoA lane bank, converting K patients per core. [`BatchEngine`]
//! wraps that mode in the same fleet contract:
//!
//! * **Same isolation.** Every session in a batch still gets its own
//!   telemetry [`Registry`]; lanes share an instruction stream, never a
//!   registry.
//! * **Same graceful failure.** A batch whose banked run errors or
//!   panics falls back to scalar sessions, one at a time under
//!   [`catch_unwind`] — the failing lane fails alone and is reported
//!   individually; healthy lanes still complete.
//! * **Same reporting.** Results come back as the familiar
//!   [`FleetReport`]. Banked lanes are bit-identical to scalar sessions,
//!   so the two engines produce the same summaries for the same specs.
//!
//! Per-session `wall_s` in a banked batch is the batch wall time divided
//! by the lane count — the fair per-patient share of the core.
//!
//! Pick [`BatchEngine`] over the thread-pool engine when sessions
//! outnumber cores and specs are lockstep-compatible (same config shape
//! and duration); see `ARCHITECTURE.md` § Lane bank for the full
//! guidance.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tonos_core::batch::run_batch;
use tonos_core::monitor::BloodPressureMonitor;
use tonos_telemetry::{names, Registry, Rollup, Telemetry, TelemetrySnapshot};

use crate::report::{FleetReport, SessionResult};
use crate::session::{summarize, SessionContext, SessionOutcome, SessionSpec};

/// Batch engine sizing.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Worker threads in the pool (clamped to at least 1).
    pub workers: usize,
    /// Sessions per batch — the lane count K of each worker's bank
    /// (clamped to at least 1).
    pub lanes: usize,
}

impl Default for BatchConfig {
    /// One worker per hardware thread, eight lanes per bank.
    fn default() -> Self {
        BatchConfig {
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
            lanes: 8,
        }
    }
}

/// One batch of sessions travelling to a worker.
struct Dispatch {
    sessions: Vec<(u64, SessionSpec)>,
}

/// One finished session travelling back from a worker (batches are
/// unbundled worker-side so the drain path matches the fleet engine's).
struct RawResult {
    id: u64,
    label: String,
    wall_s: f64,
    banked: bool,
    outcome: SessionOutcome,
    snapshot: TelemetrySnapshot,
}

/// A pool of workers running monitoring sessions K-at-a-time on lane
/// banks, with scalar fallback per batch.
///
/// Lifecycle mirrors [`FleetEngine`](crate::FleetEngine):
/// [`spawn`](BatchEngine::spawn) → [`push`](BatchEngine::push) →
/// [`drain`](BatchEngine::drain) (repeatable). Sessions are grouped into
/// batches of `lanes` in submission order; a partial batch is flushed by
/// the next drain.
#[derive(Debug)]
pub struct BatchEngine {
    jobs: Option<Sender<Dispatch>>,
    results: Receiver<RawResult>,
    workers: Vec<JoinHandle<()>>,
    registry: Registry,
    rollup: Rollup,
    next_id: u64,
    lanes: usize,
    staged: Vec<(u64, SessionSpec)>,
    in_flight: usize,
}

impl BatchEngine {
    /// Starts the worker pool.
    pub fn spawn(config: BatchConfig) -> Self {
        let count = config.workers.max(1);
        let (job_tx, job_rx) = channel::<Dispatch>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel::<RawResult>();
        let workers = (0..count)
            .map(|_| {
                let jobs = Arc::clone(&job_rx);
                let results = result_tx.clone();
                thread::spawn(move || worker_loop(&jobs, &results))
            })
            .collect();
        let registry = Registry::new();
        BatchEngine {
            jobs: Some(job_tx),
            results: result_rx,
            workers,
            rollup: Rollup::into_registry(registry.clone()),
            registry,
            next_id: 0,
            lanes: config.lanes.max(1),
            staged: Vec::new(),
            in_flight: 0,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Sessions per batch (the bank's lane count K).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Submits a monitoring session; returns its engine-assigned id.
    /// The session is dispatched once a full batch of `lanes` specs has
    /// accumulated (or at the next [`drain`](BatchEngine::drain)).
    pub fn push(&mut self, spec: SessionSpec) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.telemetry()
            .counter(names::FLEET_SESSIONS_STARTED)
            .inc();
        self.staged.push((id, spec));
        if self.staged.len() >= self.lanes {
            self.flush();
        }
        id
    }

    /// Dispatches any staged partial batch immediately.
    pub fn flush(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let sessions = std::mem::take(&mut self.staged);
        self.in_flight += sessions.len();
        self.jobs
            .as_ref()
            .expect("job channel open while engine is alive")
            .send(Dispatch { sessions })
            .expect("workers alive while engine is alive");
    }

    /// Sessions submitted but not yet collected by a drain.
    pub fn pending(&self) -> usize {
        self.in_flight + self.staged.len()
    }

    /// Flushes the staged batch, blocks until every submitted session
    /// has finished, rolls telemetry into the fleet registry, and
    /// returns the outcomes ordered by session id. The engine stays
    /// usable afterwards.
    pub fn drain(&mut self) -> FleetReport {
        self.flush();
        let mut sessions = Vec::with_capacity(self.in_flight);
        while self.in_flight > 0 {
            let raw = self
                .results
                .recv()
                .expect("workers alive while sessions are in flight");
            self.in_flight -= 1;
            self.absorb(&raw);
            sessions.push(SessionResult {
                id: raw.id,
                label: raw.label,
                wall_s: raw.wall_s,
                outcome: raw.outcome,
            });
        }
        sessions.sort_by_key(|s| s.id);
        FleetReport { sessions }
    }

    fn absorb(&mut self, raw: &RawResult) {
        self.rollup.absorb(&raw.snapshot);
        let t = self.telemetry();
        let outcome_counter = match raw.outcome {
            SessionOutcome::Completed(_) => names::FLEET_SESSIONS_COMPLETED,
            SessionOutcome::Failed(_) => names::FLEET_SESSIONS_FAILED,
            SessionOutcome::Panicked(_) => names::FLEET_SESSIONS_PANICKED,
        };
        t.counter(outcome_counter).inc();
        let mode = if raw.banked {
            names::FLEET_BATCHES_BANKED
        } else {
            names::FLEET_BATCHES_SCALAR
        };
        t.counter(mode).inc();
        t.span(names::SPAN_FLEET_SESSION)
            .record(Duration::from_secs_f64(raw.wall_s));
    }

    /// The fleet-level registry: engine counters plus everything rolled
    /// up from drained sessions.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Handle onto the fleet-level registry.
    pub fn telemetry(&self) -> Telemetry {
        self.registry.telemetry()
    }

    /// Snapshot of the fleet-level registry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.registry.snapshot()
    }

    /// Drains outstanding sessions, stops the workers, and returns the
    /// final report.
    pub fn shutdown(mut self) -> FleetReport {
        let report = self.drain();
        self.close();
        report
    }

    fn close(&mut self) {
        self.jobs = None;
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.join();
        }
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        self.close();
    }
}

fn worker_loop(jobs: &Mutex<Receiver<Dispatch>>, results: &Sender<RawResult>) {
    loop {
        let dispatch = {
            let Ok(queue) = jobs.lock() else { return };
            match queue.recv() {
                Ok(d) => d,
                Err(_) => return,
            }
        };
        for raw in run_dispatch(dispatch) {
            if results.send(raw).is_err() {
                return;
            }
        }
    }
}

/// Executes one batch: banked first, scalar fallback on any error.
fn run_dispatch(dispatch: Dispatch) -> Vec<RawResult> {
    if let Some(raws) = try_banked(&dispatch.sessions) {
        return raws;
    }
    // Scalar fallback: the exact fleet-engine session path, one spec at
    // a time, each under its own registry and catch_unwind, so the lane
    // that poisoned the bank fails alone.
    dispatch
        .sessions
        .into_iter()
        .map(|(id, spec)| {
            let registry = Registry::new();
            let ctx = SessionContext {
                id,
                label: spec.label.clone(),
                telemetry: registry.telemetry(),
            };
            let label = spec.label.clone();
            let started = Instant::now();
            let outcome = match catch_unwind(AssertUnwindSafe(|| spec.run(&ctx))) {
                Ok(Ok(summary)) => SessionOutcome::Completed(summary),
                Ok(Err(error)) => SessionOutcome::Failed(error),
                Err(payload) => SessionOutcome::Panicked(panic_message(payload.as_ref())),
            };
            RawResult {
                id,
                label,
                wall_s: started.elapsed().as_secs_f64(),
                banked: false,
                outcome,
                snapshot: registry.snapshot(),
            }
        })
        .collect()
}

/// Attempts the banked lockstep run. `None` means "use the scalar
/// fallback" — heterogeneous durations, any construction/run error, or
/// a panic inside the bank. The registries built here are discarded on
/// fallback so a half-run banked attempt never double-counts telemetry.
fn try_banked(sessions: &[(u64, SessionSpec)]) -> Option<Vec<RawResult>> {
    let k = sessions.len();
    let duration_s = sessions[0].1.duration_s;
    if sessions.iter().any(|(_, s)| s.duration_s != duration_s) {
        return None;
    }
    let registries: Vec<Registry> = (0..k).map(|_| Registry::new()).collect();
    let started = Instant::now();
    let run = catch_unwind(AssertUnwindSafe(|| -> Result<_, String> {
        let mut monitors = Vec::with_capacity(k);
        for ((_, spec), registry) in sessions.iter().zip(&registries) {
            let mut monitor = BloodPressureMonitor::new(spec.config, spec.patient)
                .map_err(|e| e.to_string())?
                .with_telemetry(registry.telemetry());
            if let Some(frames) = spec.scan_window {
                monitor = monitor.with_scan_window(frames);
            }
            monitors.push(monitor);
        }
        run_batch(&mut monitors, duration_s).map_err(|e| e.to_string())
    }));
    let completed = match run {
        Ok(Ok(completed)) => completed,
        // Error or panic: one lane (or the group shape) is bad. Rerun
        // scalar so the healthy lanes complete and the bad one is
        // isolated and reported with its own error.
        _ => return None,
    };
    let wall_each = started.elapsed().as_secs_f64() / k as f64;
    let mut raws = Vec::with_capacity(k);
    for (((id, spec), session), registry) in sessions.iter().zip(&completed).zip(&registries) {
        let outcome = match summarize(session, spec.alarm_limits, &registry.telemetry()) {
            Ok(summary) => SessionOutcome::Completed(summary),
            Err(error) => SessionOutcome::Failed(error),
        };
        raws.push(RawResult {
            id: *id,
            label: spec.label.clone(),
            wall_s: wall_each,
            banked: true,
            outcome,
            snapshot: registry.snapshot(),
        });
    }
    Some(raws)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

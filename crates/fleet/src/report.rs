//! Fleet drain results: per-session outcomes plus aggregate accessors.

use std::fmt;

use crate::session::{SessionOutcome, SessionSummary};

/// One session's result as collected by a drain.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Engine-assigned session id.
    pub id: u64,
    /// The label the session was submitted under.
    pub label: String,
    /// Wall-clock seconds the session spent on its worker.
    pub wall_s: f64,
    /// How the session ended.
    pub outcome: SessionOutcome,
}

/// Everything a [`drain`](crate::FleetEngine::drain) collected, ordered
/// by session id.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-session results.
    pub sessions: Vec<SessionResult>,
}

impl FleetReport {
    /// Number of sessions in the report.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the drain collected nothing.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Looks up a session by id.
    pub fn get(&self, id: u64) -> Option<&SessionResult> {
        self.sessions.iter().find(|s| s.id == id)
    }

    /// The sessions that completed, with their summaries.
    pub fn completed(&self) -> impl Iterator<Item = (&SessionResult, &SessionSummary)> {
        self.sessions
            .iter()
            .filter_map(|s| s.outcome.summary().map(|summary| (s, summary)))
    }

    /// The sessions that failed or panicked — the fleet's graceful-
    /// degradation ledger. Empty means every patient was monitored.
    pub fn failures(&self) -> Vec<&SessionResult> {
        self.sessions
            .iter()
            .filter(|s| !s.outcome.is_ok())
            .collect()
    }

    /// Total beats across completed sessions.
    pub fn total_beats(&self) -> usize {
        self.completed().map(|(_, s)| s.beats).sum()
    }

    /// Total alarms across completed sessions (alarm fan-in).
    pub fn total_alarms(&self) -> usize {
        self.completed().map(|(_, s)| s.alarms).sum()
    }

    /// Total wall-clock worker time, seconds — compare against the
    /// drain's elapsed time to see the pool's effective parallelism.
    pub fn total_wall_s(&self) -> f64 {
        self.sessions.iter().map(|s| s.wall_s).sum()
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet report: {} sessions, {} failed, {} beats, {} alarms",
            self.len(),
            self.failures().len(),
            self.total_beats(),
            self.total_alarms(),
        )?;
        for s in &self.sessions {
            match &s.outcome {
                SessionOutcome::Completed(summary) => writeln!(
                    f,
                    "  #{:<3} {:<16} ok    {:>5.1} bpm, {}/{} mmHg, {} alarms ({:.2} s)",
                    s.id,
                    s.label,
                    summary.pulse_rate_bpm,
                    summary.mean_systolic_mmhg.round(),
                    summary.mean_diastolic_mmhg.round(),
                    summary.alarms,
                    s.wall_s,
                )?,
                SessionOutcome::Failed(e) => {
                    writeln!(f, "  #{:<3} {:<16} FAILED   {e}", s.id, s.label)?;
                }
                SessionOutcome::Panicked(e) => {
                    writeln!(f, "  #{:<3} {:<16} PANICKED {e}", s.id, s.label)?;
                }
            }
        }
        Ok(())
    }
}

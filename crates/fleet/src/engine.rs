//! The fleet engine: a fixed worker pool running isolated sessions.
//!
//! ## Design
//!
//! * **Fixed pool, shared queue.** [`FleetEngine::spawn`] starts
//!   `workers` OS threads up front; submissions go down one shared
//!   channel (`Mutex<Receiver>` hand-off, the classic pool shape) so a
//!   long session on one worker never blocks the queue for the others.
//! * **Session isolation.** Each session runs against its *own*
//!   [`Registry`]; the worker snapshots it when the session ends and
//!   ships the immutable snapshot back with the outcome. Sessions share
//!   no mutable state — not even instruments.
//! * **Graceful failure.** The workload runs under
//!   [`std::panic::catch_unwind`]; a poisoned session comes back as
//!   [`SessionOutcome::Panicked`] and its worker moves on to the next
//!   job. One bad patient model cannot take down the ward.
//! * **Aggregate telemetry.** [`FleetEngine::drain`] rolls every
//!   session snapshot into the engine's fleet-level registry (via
//!   [`Rollup`]), alongside the engine's own counters
//!   ([`names::FLEET_SESSIONS_STARTED`] and friends) and the per-session
//!   wall-clock span [`names::SPAN_FLEET_SESSION`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tonos_core::batch::BatchScratch;
use tonos_telemetry::{names, Registry, Rollup, Telemetry, TelemetrySnapshot};

use crate::batch::BatchShard;
use crate::report::{FleetReport, SessionResult};
use crate::session::{SessionContext, SessionOutcome, SessionSpec, SessionSummary};

/// A boxed session workload: what a worker actually executes.
///
/// [`FleetEngine::push`] wraps a [`SessionSpec`] into one of these;
/// [`FleetEngine::push_task`] accepts one directly, which is how tests
/// inject failing or panicking workloads.
pub type SessionTask =
    Box<dyn FnOnce(&SessionContext) -> Result<SessionSummary, String> + Send + 'static>;

/// Fleet sizing.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Worker threads in the pool (clamped to at least 1).
    pub workers: usize,
}

impl Default for FleetConfig {
    /// One worker per available hardware thread.
    fn default() -> Self {
        FleetConfig {
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// What a chunk actor's handler is invoked with.
///
/// See [`FleetEngine::open_actor`] for the actor lifecycle.
#[derive(Debug)]
pub enum ActorEvent<'a> {
    /// One chunk pushed via [`ActorHandle::try_push_chunk`], delivered
    /// in push order.
    Chunk(&'a [u8]),
    /// The handle was closed (or dropped); no further chunks follow.
    /// The handler must return its session summary now.
    Closed,
}

/// A chunk-actor workload: invoked once per [`ActorEvent`], always by
/// at most one worker at a time, in chunk order. Returning
/// `Some(result)` finishes the session (mandatory on
/// [`ActorEvent::Closed`]; allowed earlier to terminate the actor).
pub type ActorHandler = Box<
    dyn FnMut(ActorEvent<'_>, &SessionContext) -> Option<Result<SessionSummary, String>>
        + Send
        + 'static,
>;

/// A chunk failed to enqueue because the actor's queue is at capacity
/// (or the actor is closed); the chunk is handed back for the caller
/// to retry, buffer, or drop.
#[derive(Debug)]
pub struct ChunkFull(pub Vec<u8>);

/// Queue state shared between an [`ActorHandle`] and the workers.
struct ActorQueue {
    chunks: VecDeque<Vec<u8>>,
    closed: bool,
    /// Set once the final result has been shipped; late chunks and
    /// re-schedules become no-ops.
    finished: bool,
}

/// Per-actor execution state, entered by one worker at a time.
struct ActorState {
    handler: ActorHandler,
    registry: Registry,
    ctx: SessionContext,
    started: Instant,
}

/// Everything a parked chunk actor owns, shared between its handle and
/// whichever worker is currently scheduled to run it.
struct ActorShared {
    id: u64,
    label: String,
    cap: usize,
    queue: Mutex<ActorQueue>,
    /// At most one worker runs (or is queued to run) the actor at a
    /// time: set by the scheduler via compare-and-swap before
    /// dispatching, cleared by the worker when the queue looks empty.
    /// This is what preserves per-connection chunk ordering on a
    /// many-connection pool.
    scheduled: AtomicBool,
    state: Mutex<Option<ActorState>>,
}

/// The submitter's end of a chunk actor (not cloneable: one producer
/// per actor keeps the ordering story trivial). Dropping the handle
/// closes the actor.
pub struct ActorHandle {
    shared: Arc<ActorShared>,
    jobs: Weak<JobSender>,
}

impl std::fmt::Debug for ActorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorHandle")
            .field("id", &self.shared.id)
            .field("label", &self.shared.label)
            .finish()
    }
}

impl ActorHandle {
    /// The engine-assigned session id.
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Chunks currently queued and not yet handled.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().map_or(0, |q| q.chunks.len())
    }

    /// Enqueues a chunk for the actor's handler.
    ///
    /// # Errors
    ///
    /// Returns [`ChunkFull`] (handing the chunk back) when the queue is
    /// at capacity — the backpressure signal a readiness loop turns
    /// into "stop reading this socket" — or when the actor is already
    /// closed.
    pub fn try_push_chunk(&self, chunk: Vec<u8>) -> Result<(), ChunkFull> {
        {
            let Ok(mut queue) = self.shared.queue.lock() else {
                return Err(ChunkFull(chunk));
            };
            if queue.closed || queue.finished || queue.chunks.len() >= self.shared.cap {
                return Err(ChunkFull(chunk));
            }
            queue.chunks.push_back(chunk);
        }
        self.schedule();
        Ok(())
    }

    /// Closes the actor: its handler sees [`ActorEvent::Closed`] after
    /// the chunks already queued, returns the session summary, and the
    /// session is accounted like any other fleet session. Idempotent.
    pub fn close(&self) {
        if let Ok(mut queue) = self.shared.queue.lock() {
            if queue.closed {
                return;
            }
            queue.closed = true;
        }
        self.schedule();
    }

    /// Dispatches the actor to a worker unless one is already running
    /// (or queued to run) it.
    fn schedule(&self) {
        if self
            .shared
            .scheduled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            if let Some(jobs) = self.jobs.upgrade() {
                if jobs
                    .0
                    .send(Dispatch::Actor(Arc::clone(&self.shared)))
                    .is_ok()
                {
                    return;
                }
            }
            // Engine gone: nothing will run the actor.
            self.shared.scheduled.store(false, Ordering::Release);
        }
    }
}

impl Drop for ActorHandle {
    fn drop(&mut self) {
        self.close();
    }
}

/// Newtype so actor handles can hold a [`Weak`] reference to the job
/// channel: once the engine closes it, scheduling becomes a no-op
/// instead of keeping the worker pool alive forever.
struct JobSender(Sender<Dispatch>);

impl std::fmt::Debug for JobSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JobSender")
    }
}

/// One submission travelling to a worker.
enum Dispatch {
    /// A run-to-completion session occupying one worker.
    Task {
        id: u64,
        label: String,
        task: SessionTask,
    },
    /// A chunk actor with queued work (or a close) to process.
    Actor(Arc<ActorShared>),
    /// A kick at a batch shard: the worker claims lane groups from the
    /// shard (its own queue first, stealing otherwise) until the shard
    /// runs dry. One kick per awakened runner, not per group.
    Batch(Arc<BatchShard>),
}

/// One finished session travelling back from a worker.
pub(crate) struct RawResult {
    pub(crate) id: u64,
    pub(crate) label: String,
    pub(crate) wall_s: f64,
    pub(crate) outcome: SessionOutcome,
    pub(crate) snapshot: TelemetrySnapshot,
}

/// A pool of worker threads running monitoring sessions concurrently.
///
/// Lifecycle: [`spawn`](FleetEngine::spawn) →
/// [`push`](FleetEngine::push) / [`push_task`](FleetEngine::push_task) →
/// [`drain`](FleetEngine::drain) (repeatable) — workers stay alive
/// between drains and shut down when the engine drops.
#[derive(Debug)]
pub struct FleetEngine {
    jobs: Option<Arc<JobSender>>,
    results: Receiver<RawResult>,
    /// Kept for [`ensure_workers`](FleetEngine::ensure_workers): new
    /// workers need the shared job queue and the result channel.
    job_queue: Arc<Mutex<Receiver<Dispatch>>>,
    result_tx: Sender<RawResult>,
    workers: Vec<JoinHandle<()>>,
    registry: Registry,
    rollup: Rollup,
    next_id: u64,
    in_flight: usize,
    /// Finished sessions gathered early by
    /// [`poll_finished`](FleetEngine::poll_finished), held for the next
    /// drain's report.
    collected: Vec<SessionResult>,
}

impl FleetEngine {
    /// Starts the worker pool.
    pub fn spawn(config: FleetConfig) -> Self {
        let count = config.workers.max(1);
        let (job_tx, job_rx) = channel::<Dispatch>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel::<RawResult>();
        let workers = (0..count)
            .map(|who| {
                let jobs = Arc::clone(&job_rx);
                let results = result_tx.clone();
                thread::spawn(move || worker_loop(who, &jobs, &results))
            })
            .collect();
        let registry = Registry::new();
        FleetEngine {
            jobs: Some(Arc::new(JobSender(job_tx))),
            results: result_rx,
            job_queue: job_rx,
            result_tx,
            workers,
            rollup: Rollup::into_registry(registry.clone()),
            registry,
            next_id: 0,
            in_flight: 0,
            collected: Vec::new(),
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Grows the pool so at least `n` workers exist (never shrinks).
    ///
    /// For workloads whose sessions occupy a worker for their entire —
    /// possibly unbounded — lifetime (e.g. a live ingest connection),
    /// call this before each submission so a long session can never
    /// starve the queue: with one worker per in-flight session, every
    /// submitted task starts promptly.
    pub fn ensure_workers(&mut self, n: usize) {
        while self.workers.len() < n {
            let who = self.workers.len();
            let jobs = Arc::clone(&self.job_queue);
            let results = self.result_tx.clone();
            self.workers
                .push(thread::spawn(move || worker_loop(who, &jobs, &results)));
        }
    }

    /// Submits a monitoring session; returns its engine-assigned id.
    pub fn push(&mut self, spec: SessionSpec) -> u64 {
        let label = spec.label.clone();
        self.submit(label, Box::new(move |ctx| spec.run(ctx)))
    }

    /// Submits an arbitrary workload under a label — the escape hatch
    /// for custom session shapes and for exercising failure isolation
    /// (a panicking task is contained to its own session).
    pub fn push_task(
        &mut self,
        label: impl Into<String>,
        task: impl FnOnce(&SessionContext) -> Result<SessionSummary, String> + Send + 'static,
    ) -> u64 {
        self.submit(label.into(), Box::new(task))
    }

    fn submit(&mut self, label: String, task: SessionTask) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.telemetry()
            .counter(names::FLEET_SESSIONS_STARTED)
            .inc();
        self.jobs
            .as_ref()
            .expect("job channel open while engine is alive")
            .0
            .send(Dispatch::Task { id, label, task })
            .expect("workers alive while engine is alive");
        self.in_flight += 1;
        id
    }

    /// Assigns a session id and counts it started and in flight — the
    /// batch-shard flavour of `submit`: the session travels through a
    /// [`BatchShard`] lane queue rather than the dispatch channel, so
    /// nothing is sent here. The caller owes the pool enough batch
    /// kicks (via [`send_batch`](FleetEngine::send_batch)) for every
    /// staged session to eventually run.
    pub(crate) fn stage_batch_session(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.telemetry()
            .counter(names::FLEET_SESSIONS_STARTED)
            .inc();
        self.in_flight += 1;
        id
    }

    /// Kicks one worker at a batch shard. Workers that pick this up
    /// claim lane groups from the shard until it runs dry, so one kick
    /// per awakened runner suffices (the shard's runner accounting
    /// decides how many to send).
    pub(crate) fn send_batch(&self, shard: Arc<BatchShard>) {
        self.jobs
            .as_ref()
            .expect("job channel open while engine is alive")
            .0
            .send(Dispatch::Batch(shard))
            .expect("workers alive while engine is alive");
    }

    /// Opens a **chunk actor**: a session that does not occupy a worker
    /// while idle. Chunks pushed through the returned [`ActorHandle`]
    /// are queued (bounded by `queue_cap`) and the actor is dispatched
    /// to the pool only while it has work, so thousands of mostly-idle
    /// sessions — live ingest connections — share a fixed-size pool.
    ///
    /// Ordering: the handler runs under an at-most-one-worker guarantee
    /// and sees chunks strictly in push order. Panics are contained
    /// exactly like [`FleetEngine::push_task`] sessions
    /// ([`SessionOutcome::Panicked`]); the per-session registry
    /// snapshot is rolled up when the actor finishes.
    ///
    /// The session stays in flight — [`FleetEngine::drain`] will wait
    /// for it — until [`ActorHandle::close`] (or the handle's drop)
    /// lets the handler return its summary.
    pub fn open_actor(
        &mut self,
        label: impl Into<String>,
        queue_cap: usize,
        handler: impl FnMut(ActorEvent<'_>, &SessionContext) -> Option<Result<SessionSummary, String>>
            + Send
            + 'static,
    ) -> ActorHandle {
        let id = self.next_id;
        self.next_id += 1;
        self.telemetry()
            .counter(names::FLEET_SESSIONS_STARTED)
            .inc();
        self.in_flight += 1;
        let label = label.into();
        // Session isolation, actor flavour: the registry is created at
        // open time and lives until the actor closes, so telemetry from
        // every burst of chunks lands in one per-session registry.
        let registry = Registry::new();
        let ctx = SessionContext {
            id,
            label: label.clone(),
            telemetry: registry.telemetry(),
        };
        let shared = Arc::new(ActorShared {
            id,
            label,
            cap: queue_cap.max(1),
            queue: Mutex::new(ActorQueue {
                chunks: VecDeque::new(),
                closed: false,
                finished: false,
            }),
            scheduled: AtomicBool::new(false),
            state: Mutex::new(Some(ActorState {
                handler: Box::new(handler),
                registry,
                ctx,
                started: Instant::now(),
            })),
        });
        let jobs = self
            .jobs
            .as_ref()
            .expect("job channel open while engine is alive");
        ActorHandle {
            shared,
            jobs: Arc::downgrade(jobs),
        }
    }

    /// Sessions submitted but not yet collected by a
    /// [`poll_finished`](FleetEngine::poll_finished) or a drain.
    pub fn pending(&self) -> usize {
        self.in_flight
    }

    /// Collects every session that has already finished — without
    /// blocking — rolling their telemetry into the fleet registry and
    /// holding their results for the next [`drain`](FleetEngine::drain).
    /// Returns the number of sessions still in flight.
    ///
    /// This is what lets a long-lived submitter (an accept loop, a
    /// scheduler) keep an accurate in-flight count between drains.
    pub fn poll_finished(&mut self) -> usize {
        while let Ok(raw) = self.results.try_recv() {
            self.collect(raw);
        }
        self.in_flight
    }

    /// Blocks until every submitted session has finished, rolls their
    /// telemetry into the fleet registry, and returns the outcomes
    /// (ordered by session id). The engine stays usable afterwards.
    pub fn drain(&mut self) -> FleetReport {
        while self.in_flight > 0 {
            let raw = self
                .results
                .recv()
                .expect("workers alive while sessions are in flight");
            self.collect(raw);
        }
        let mut sessions = std::mem::take(&mut self.collected);
        sessions.sort_by_key(|s| s.id);
        FleetReport { sessions }
    }

    fn collect(&mut self, raw: RawResult) {
        self.in_flight -= 1;
        self.absorb(&raw);
        self.collected.push(SessionResult {
            id: raw.id,
            label: raw.label,
            wall_s: raw.wall_s,
            outcome: raw.outcome,
        });
    }

    fn absorb(&mut self, raw: &RawResult) {
        self.rollup.absorb(&raw.snapshot);
        let t = self.telemetry();
        let outcome_counter = match raw.outcome {
            SessionOutcome::Completed(_) => names::FLEET_SESSIONS_COMPLETED,
            SessionOutcome::Failed(_) => names::FLEET_SESSIONS_FAILED,
            SessionOutcome::Panicked(_) => names::FLEET_SESSIONS_PANICKED,
        };
        t.counter(outcome_counter).inc();
        t.span(names::SPAN_FLEET_SESSION)
            .record(Duration::from_secs_f64(raw.wall_s));
    }

    /// The fleet-level registry: engine counters plus everything rolled
    /// up from drained sessions.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Handle onto the fleet-level registry.
    pub fn telemetry(&self) -> Telemetry {
        self.registry.telemetry()
    }

    /// Snapshot of the fleet-level registry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.registry.snapshot()
    }

    /// Drains outstanding sessions, stops the workers, and returns the
    /// final report.
    pub fn shutdown(mut self) -> FleetReport {
        let report = self.drain();
        self.close();
        report
    }

    fn close(&mut self) {
        // Dropping the sender ends every worker's recv loop.
        self.jobs = None;
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.join();
        }
    }
}

impl Drop for FleetEngine {
    fn drop(&mut self) {
        self.close();
    }
}

fn worker_loop(who: usize, jobs: &Mutex<Receiver<Dispatch>>, results: &Sender<RawResult>) {
    // Worker-local bank scratch: noise tiles grown by the first batch
    // this worker runs stay grown for every later batch (per-worker
    // noise-tile prefill). Never holds session state, only capacity.
    let mut scratch = BatchScratch::default();
    loop {
        // Hold the lock only for the hand-off; a worker blocked in recv
        // under the mutex is equivalent to blocking on the mutex itself.
        let dispatch = {
            let Ok(queue) = jobs.lock() else { return };
            match queue.recv() {
                Ok(d) => d,
                Err(_) => return, // engine dropped the sender: shut down
            }
        };
        match dispatch {
            Dispatch::Task { id, label, task } => {
                if run_task(id, label, task, results).is_err() {
                    return; // engine gone; nothing left to report to
                }
            }
            Dispatch::Actor(shared) => {
                if run_actor(&shared, results).is_err() {
                    return;
                }
            }
            Dispatch::Batch(shard) => {
                if shard.run_on_worker(who, &mut scratch, results).is_err() {
                    return;
                }
            }
        }
    }
}

/// Runs one run-to-completion session on this worker.
fn run_task(
    id: u64,
    label: String,
    task: SessionTask,
    results: &Sender<RawResult>,
) -> Result<(), ()> {
    // Session isolation: a registry that lives and dies with this
    // session. Snapshotted below even on panic, so partial telemetry
    // from a failed session still reaches the fleet rollup.
    let registry = Registry::new();
    let ctx = SessionContext {
        id,
        label: label.clone(),
        telemetry: registry.telemetry(),
    };
    let started = Instant::now();
    let outcome = match catch_unwind(AssertUnwindSafe(|| task(&ctx))) {
        Ok(Ok(summary)) => SessionOutcome::Completed(summary),
        Ok(Err(error)) => SessionOutcome::Failed(error),
        Err(payload) => SessionOutcome::Panicked(panic_message(payload.as_ref())),
    };
    let raw = RawResult {
        id,
        label,
        wall_s: started.elapsed().as_secs_f64(),
        outcome,
        snapshot: registry.snapshot(),
    };
    results.send(raw).map_err(|_| ())
}

/// What one handler invocation decided.
enum ActorStep {
    Continue,
    Finished(SessionOutcome),
}

/// Drains a scheduled actor's queue on this worker.
///
/// The `scheduled` flag is cleared only after the queue looks empty,
/// and re-acquired (never double-queued, thanks to the CAS in
/// `ActorHandle::schedule`) if a racing producer slipped a chunk in
/// between the emptiness check and the clear.
fn run_actor(shared: &Arc<ActorShared>, results: &Sender<RawResult>) -> Result<(), ()> {
    loop {
        loop {
            enum Item {
                Chunk(Vec<u8>),
                Close,
                Empty,
            }
            let item = {
                let Ok(mut queue) = shared.queue.lock() else {
                    return Ok(());
                };
                if queue.finished {
                    // Late chunks after the handler already returned its
                    // summary (early finish): discard them.
                    queue.chunks.clear();
                    Item::Empty
                } else if let Some(chunk) = queue.chunks.pop_front() {
                    Item::Chunk(chunk)
                } else if queue.closed {
                    Item::Close
                } else {
                    Item::Empty
                }
            };
            match item {
                Item::Chunk(chunk) => match step_actor(shared, &ActorEvent::Chunk(&chunk)) {
                    ActorStep::Continue => {}
                    ActorStep::Finished(outcome) => finish_actor(shared, outcome, results)?,
                },
                Item::Close => {
                    let outcome = match step_actor(shared, &ActorEvent::Closed) {
                        ActorStep::Finished(outcome) => outcome,
                        ActorStep::Continue => SessionOutcome::Failed(
                            "actor handler returned no summary at close".to_string(),
                        ),
                    };
                    finish_actor(shared, outcome, results)?;
                    break;
                }
                Item::Empty => break,
            }
        }
        // Park the actor. A producer that enqueued after the emptiness
        // check above also ran its CAS; exactly one of us re-schedules.
        shared.scheduled.store(false, Ordering::Release);
        let more = {
            let Ok(queue) = shared.queue.lock() else {
                return Ok(());
            };
            !queue.finished && (!queue.chunks.is_empty() || queue.closed)
        };
        if !more {
            return Ok(());
        }
        if shared
            .scheduled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // A producer won the race and queued a fresh dispatch.
            return Ok(());
        }
        // We won: keep draining on this worker instead of re-queueing.
    }
}

/// Invokes the handler once, under panic containment.
fn step_actor(shared: &Arc<ActorShared>, event: &ActorEvent<'_>) -> ActorStep {
    let Ok(mut slot) = shared.state.lock() else {
        return ActorStep::Finished(SessionOutcome::Failed("actor state poisoned".to_string()));
    };
    let Some(state) = slot.as_mut() else {
        return ActorStep::Continue; // already finished
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        let ev = match event {
            ActorEvent::Chunk(c) => ActorEvent::Chunk(c),
            ActorEvent::Closed => ActorEvent::Closed,
        };
        (state.handler)(ev, &state.ctx)
    }));
    match result {
        Ok(None) => ActorStep::Continue,
        Ok(Some(Ok(summary))) => ActorStep::Finished(SessionOutcome::Completed(summary)),
        Ok(Some(Err(error))) => ActorStep::Finished(SessionOutcome::Failed(error)),
        Err(payload) => {
            ActorStep::Finished(SessionOutcome::Panicked(panic_message(payload.as_ref())))
        }
    }
}

/// Ships the actor's result and marks it finished (idempotent).
fn finish_actor(
    shared: &Arc<ActorShared>,
    outcome: SessionOutcome,
    results: &Sender<RawResult>,
) -> Result<(), ()> {
    let state = {
        let Ok(mut slot) = shared.state.lock() else {
            return Ok(());
        };
        slot.take()
    };
    let Some(state) = state else {
        return Ok(()); // a second finish (e.g. close after early finish)
    };
    if let Ok(mut queue) = shared.queue.lock() {
        queue.finished = true;
        queue.chunks.clear();
    }
    let raw = RawResult {
        id: shared.id,
        label: shared.label.clone(),
        wall_s: state.started.elapsed().as_secs_f64(),
        outcome,
        snapshot: state.registry.snapshot(),
    };
    results.send(raw).map_err(|_| ())
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

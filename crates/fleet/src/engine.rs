//! The fleet engine: a fixed worker pool running isolated sessions.
//!
//! ## Design
//!
//! * **Fixed pool, shared queue.** [`FleetEngine::spawn`] starts
//!   `workers` OS threads up front; submissions go down one shared
//!   channel (`Mutex<Receiver>` hand-off, the classic pool shape) so a
//!   long session on one worker never blocks the queue for the others.
//! * **Session isolation.** Each session runs against its *own*
//!   [`Registry`]; the worker snapshots it when the session ends and
//!   ships the immutable snapshot back with the outcome. Sessions share
//!   no mutable state — not even instruments.
//! * **Graceful failure.** The workload runs under
//!   [`std::panic::catch_unwind`]; a poisoned session comes back as
//!   [`SessionOutcome::Panicked`] and its worker moves on to the next
//!   job. One bad patient model cannot take down the ward.
//! * **Aggregate telemetry.** [`FleetEngine::drain`] rolls every
//!   session snapshot into the engine's fleet-level registry (via
//!   [`Rollup`]), alongside the engine's own counters
//!   ([`names::FLEET_SESSIONS_STARTED`] and friends) and the per-session
//!   wall-clock span [`names::SPAN_FLEET_SESSION`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tonos_telemetry::{names, Registry, Rollup, Telemetry, TelemetrySnapshot};

use crate::report::{FleetReport, SessionResult};
use crate::session::{SessionContext, SessionOutcome, SessionSpec, SessionSummary};

/// A boxed session workload: what a worker actually executes.
///
/// [`FleetEngine::push`] wraps a [`SessionSpec`] into one of these;
/// [`FleetEngine::push_task`] accepts one directly, which is how tests
/// inject failing or panicking workloads.
pub type SessionTask =
    Box<dyn FnOnce(&SessionContext) -> Result<SessionSummary, String> + Send + 'static>;

/// Fleet sizing.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Worker threads in the pool (clamped to at least 1).
    pub workers: usize,
}

impl Default for FleetConfig {
    /// One worker per available hardware thread.
    fn default() -> Self {
        FleetConfig {
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// One submission travelling to a worker.
struct Dispatch {
    id: u64,
    label: String,
    task: SessionTask,
}

/// One finished session travelling back from a worker.
struct RawResult {
    id: u64,
    label: String,
    wall_s: f64,
    outcome: SessionOutcome,
    snapshot: TelemetrySnapshot,
}

/// A pool of worker threads running monitoring sessions concurrently.
///
/// Lifecycle: [`spawn`](FleetEngine::spawn) →
/// [`push`](FleetEngine::push) / [`push_task`](FleetEngine::push_task) →
/// [`drain`](FleetEngine::drain) (repeatable) — workers stay alive
/// between drains and shut down when the engine drops.
#[derive(Debug)]
pub struct FleetEngine {
    jobs: Option<Sender<Dispatch>>,
    results: Receiver<RawResult>,
    /// Kept for [`ensure_workers`](FleetEngine::ensure_workers): new
    /// workers need the shared job queue and the result channel.
    job_queue: Arc<Mutex<Receiver<Dispatch>>>,
    result_tx: Sender<RawResult>,
    workers: Vec<JoinHandle<()>>,
    registry: Registry,
    rollup: Rollup,
    next_id: u64,
    in_flight: usize,
    /// Finished sessions gathered early by
    /// [`poll_finished`](FleetEngine::poll_finished), held for the next
    /// drain's report.
    collected: Vec<SessionResult>,
}

impl FleetEngine {
    /// Starts the worker pool.
    pub fn spawn(config: FleetConfig) -> Self {
        let count = config.workers.max(1);
        let (job_tx, job_rx) = channel::<Dispatch>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel::<RawResult>();
        let workers = (0..count)
            .map(|_| {
                let jobs = Arc::clone(&job_rx);
                let results = result_tx.clone();
                thread::spawn(move || worker_loop(&jobs, &results))
            })
            .collect();
        let registry = Registry::new();
        FleetEngine {
            jobs: Some(job_tx),
            results: result_rx,
            job_queue: job_rx,
            result_tx,
            workers,
            rollup: Rollup::into_registry(registry.clone()),
            registry,
            next_id: 0,
            in_flight: 0,
            collected: Vec::new(),
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Grows the pool so at least `n` workers exist (never shrinks).
    ///
    /// For workloads whose sessions occupy a worker for their entire —
    /// possibly unbounded — lifetime (e.g. a live ingest connection),
    /// call this before each submission so a long session can never
    /// starve the queue: with one worker per in-flight session, every
    /// submitted task starts promptly.
    pub fn ensure_workers(&mut self, n: usize) {
        while self.workers.len() < n {
            let jobs = Arc::clone(&self.job_queue);
            let results = self.result_tx.clone();
            self.workers
                .push(thread::spawn(move || worker_loop(&jobs, &results)));
        }
    }

    /// Submits a monitoring session; returns its engine-assigned id.
    pub fn push(&mut self, spec: SessionSpec) -> u64 {
        let label = spec.label.clone();
        self.submit(label, Box::new(move |ctx| spec.run(ctx)))
    }

    /// Submits an arbitrary workload under a label — the escape hatch
    /// for custom session shapes and for exercising failure isolation
    /// (a panicking task is contained to its own session).
    pub fn push_task(
        &mut self,
        label: impl Into<String>,
        task: impl FnOnce(&SessionContext) -> Result<SessionSummary, String> + Send + 'static,
    ) -> u64 {
        self.submit(label.into(), Box::new(task))
    }

    fn submit(&mut self, label: String, task: SessionTask) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.telemetry()
            .counter(names::FLEET_SESSIONS_STARTED)
            .inc();
        self.jobs
            .as_ref()
            .expect("job channel open while engine is alive")
            .send(Dispatch { id, label, task })
            .expect("workers alive while engine is alive");
        self.in_flight += 1;
        id
    }

    /// Sessions submitted but not yet collected by a
    /// [`poll_finished`](FleetEngine::poll_finished) or a drain.
    pub fn pending(&self) -> usize {
        self.in_flight
    }

    /// Collects every session that has already finished — without
    /// blocking — rolling their telemetry into the fleet registry and
    /// holding their results for the next [`drain`](FleetEngine::drain).
    /// Returns the number of sessions still in flight.
    ///
    /// This is what lets a long-lived submitter (an accept loop, a
    /// scheduler) keep an accurate in-flight count between drains.
    pub fn poll_finished(&mut self) -> usize {
        while let Ok(raw) = self.results.try_recv() {
            self.collect(raw);
        }
        self.in_flight
    }

    /// Blocks until every submitted session has finished, rolls their
    /// telemetry into the fleet registry, and returns the outcomes
    /// (ordered by session id). The engine stays usable afterwards.
    pub fn drain(&mut self) -> FleetReport {
        while self.in_flight > 0 {
            let raw = self
                .results
                .recv()
                .expect("workers alive while sessions are in flight");
            self.collect(raw);
        }
        let mut sessions = std::mem::take(&mut self.collected);
        sessions.sort_by_key(|s| s.id);
        FleetReport { sessions }
    }

    fn collect(&mut self, raw: RawResult) {
        self.in_flight -= 1;
        self.absorb(&raw);
        self.collected.push(SessionResult {
            id: raw.id,
            label: raw.label,
            wall_s: raw.wall_s,
            outcome: raw.outcome,
        });
    }

    fn absorb(&mut self, raw: &RawResult) {
        self.rollup.absorb(&raw.snapshot);
        let t = self.telemetry();
        let outcome_counter = match raw.outcome {
            SessionOutcome::Completed(_) => names::FLEET_SESSIONS_COMPLETED,
            SessionOutcome::Failed(_) => names::FLEET_SESSIONS_FAILED,
            SessionOutcome::Panicked(_) => names::FLEET_SESSIONS_PANICKED,
        };
        t.counter(outcome_counter).inc();
        t.span(names::SPAN_FLEET_SESSION)
            .record(Duration::from_secs_f64(raw.wall_s));
    }

    /// The fleet-level registry: engine counters plus everything rolled
    /// up from drained sessions.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Handle onto the fleet-level registry.
    pub fn telemetry(&self) -> Telemetry {
        self.registry.telemetry()
    }

    /// Snapshot of the fleet-level registry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.registry.snapshot()
    }

    /// Drains outstanding sessions, stops the workers, and returns the
    /// final report.
    pub fn shutdown(mut self) -> FleetReport {
        let report = self.drain();
        self.close();
        report
    }

    fn close(&mut self) {
        // Dropping the sender ends every worker's recv loop.
        self.jobs = None;
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.join();
        }
    }
}

impl Drop for FleetEngine {
    fn drop(&mut self) {
        self.close();
    }
}

fn worker_loop(jobs: &Mutex<Receiver<Dispatch>>, results: &Sender<RawResult>) {
    loop {
        // Hold the lock only for the hand-off; a worker blocked in recv
        // under the mutex is equivalent to blocking on the mutex itself.
        let dispatch = {
            let Ok(queue) = jobs.lock() else { return };
            match queue.recv() {
                Ok(d) => d,
                Err(_) => return, // engine dropped the sender: shut down
            }
        };
        // Session isolation: a registry that lives and dies with this
        // session. Snapshotted below even on panic, so partial telemetry
        // from a failed session still reaches the fleet rollup.
        let registry = Registry::new();
        let ctx = SessionContext {
            id: dispatch.id,
            label: dispatch.label.clone(),
            telemetry: registry.telemetry(),
        };
        let started = Instant::now();
        let outcome = match catch_unwind(AssertUnwindSafe(|| (dispatch.task)(&ctx))) {
            Ok(Ok(summary)) => SessionOutcome::Completed(summary),
            Ok(Err(error)) => SessionOutcome::Failed(error),
            Err(payload) => SessionOutcome::Panicked(panic_message(payload.as_ref())),
        };
        let raw = RawResult {
            id: dispatch.id,
            label: dispatch.label,
            wall_s: started.elapsed().as_secs_f64(),
            outcome,
            snapshot: registry.snapshot(),
        };
        if results.send(raw).is_err() {
            return; // engine gone; nothing left to report to
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

//! Analysis windows and coherent-sampling helpers.
//!
//! The measured spectrum of paper Fig. 7 is a windowed FFT of the
//! decimated ADC output. This module provides the classic cosine-sum
//! windows plus [`Window::coherent_frequency`], which snaps a test tone to
//! an integer number of FFT bins — the standard ADC-characterization trick
//! that removes spectral leakage entirely (and the reason the paper's test
//! frequency is the odd-looking 15.625 Hz = 1 kHz · 16/1024).

use crate::DspError;

/// Supported analysis windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No weighting (best for exactly coherent tones).
    Rectangular,
    /// Hann (raised cosine); -31.5 dB sidelobes, ENBW 1.5 bins.
    #[default]
    Hann,
    /// Hamming; -42 dB sidelobes.
    Hamming,
    /// Blackman; -58 dB sidelobes.
    Blackman,
    /// 4-term Blackman–Harris; -92 dB sidelobes (for ≥ 14-bit converters).
    BlackmanHarris,
}

impl Window {
    /// Generates the window coefficients for an `n`-point analysis.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when `n == 0`.
    pub fn coefficients(self, n: usize) -> Result<Vec<f64>, DspError> {
        if n == 0 {
            return Err(DspError::InvalidParameter(
                "window length must be positive".into(),
            ));
        }
        let m = n as f64;
        let tau = 2.0 * std::f64::consts::PI;
        let w = |terms: &[f64], i: usize| -> f64 {
            let x = i as f64 / m;
            terms
                .iter()
                .enumerate()
                .map(|(k, &a)| {
                    if k % 2 == 0 {
                        a * (tau * k as f64 * x).cos()
                    } else {
                        -a * (tau * k as f64 * x).cos()
                    }
                })
                .sum()
        };
        let coeffs = match self {
            Window::Rectangular => vec![1.0; n],
            Window::Hann => (0..n).map(|i| w(&[0.5, 0.5], i)).collect(),
            Window::Hamming => (0..n).map(|i| w(&[0.54, 0.46], i)).collect(),
            Window::Blackman => (0..n).map(|i| w(&[0.42, 0.5, 0.08], i)).collect(),
            Window::BlackmanHarris => (0..n)
                .map(|i| w(&[0.358_75, 0.488_29, 0.141_28, 0.011_68], i))
                .collect(),
        };
        Ok(coeffs)
    }

    /// Coherent (amplitude) gain: the mean of the window coefficients.
    /// Dividing a windowed spectrum by this restores tone amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when `n == 0`.
    pub fn coherent_gain(self, n: usize) -> Result<f64, DspError> {
        let c = self.coefficients(n)?;
        Ok(c.iter().sum::<f64>() / n as f64)
    }

    /// Number of adjacent bins on each side of a tone that carry
    /// significant window leakage and must be attributed to the tone when
    /// integrating signal power.
    pub fn leakage_bins(self) -> usize {
        match self {
            Window::Rectangular => 0,
            Window::Hann | Window::Hamming => 2,
            Window::Blackman => 3,
            Window::BlackmanHarris => 4,
        }
    }

    /// Snaps `target_hz` to the nearest frequency that is an integer (and,
    /// when possible, odd — avoiding shared factors with the record
    /// length) number of bins of an `n`-point FFT at sample rate `fs`:
    /// coherent sampling for leakage-free ADC tests.
    ///
    /// # Panics
    ///
    /// Panics if `fs` or `n` is zero (programming error in test setup).
    pub fn coherent_frequency(fs: f64, n: usize, target_hz: f64) -> f64 {
        assert!(fs > 0.0 && n > 0, "need a positive sample rate and length");
        let bin = fs / n as f64;
        let mut k = (target_hz / bin).round() as i64;
        if k < 1 {
            k = 1;
        }
        // Prefer an odd bin count (coprime with the power-of-two record),
        // so every sample phase is unique.
        if k % 2 == 0 {
            k += 1;
        }
        let max_k = (n as i64 / 2) - 1;
        if k > max_k {
            k = if max_k % 2 == 1 { max_k } else { max_k - 1 };
        }
        k as f64 * bin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_windows_have_correct_length_and_bounds() {
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
        ] {
            let c = w.coefficients(128).unwrap();
            assert_eq!(c.len(), 128);
            for (i, &v) in c.iter().enumerate() {
                assert!(
                    (-1e-6..=1.0 + 1e-12).contains(&v),
                    "{w:?}[{i}] = {v} out of range"
                );
            }
        }
    }

    #[test]
    fn hann_endpoints_and_peak() {
        let c = Window::Hann.coefficients(256).unwrap();
        assert!(c[0].abs() < 1e-12, "Hann starts at zero");
        assert!((c[128] - 1.0).abs() < 1e-9, "Hann peaks at the middle");
    }

    #[test]
    fn hann_coherent_gain_is_half() {
        let g = Window::Hann.coherent_gain(4096).unwrap();
        assert!((g - 0.5).abs() < 1e-3, "Hann gain {g}");
    }

    #[test]
    fn rectangular_gain_is_one() {
        assert_eq!(Window::Rectangular.coherent_gain(64).unwrap(), 1.0);
    }

    #[test]
    fn hamming_endpoints_are_eight_percent() {
        let c = Window::Hamming.coefficients(100).unwrap();
        assert!((c[0] - 0.08).abs() < 1e-12, "got {}", c[0]);
    }

    #[test]
    fn blackman_endpoints_are_zero() {
        let c = Window::Blackman.coefficients(64).unwrap();
        assert!(c[0].abs() < 1e-12);
    }

    #[test]
    fn zero_length_is_rejected() {
        assert!(Window::Hann.coefficients(0).is_err());
        assert!(Window::Hann.coherent_gain(0).is_err());
    }

    #[test]
    fn coherent_frequency_is_an_odd_bin() {
        let fs = 1000.0;
        let n = 1024;
        let f = Window::coherent_frequency(fs, n, 15.625);
        let bins = f / (fs / n as f64);
        assert!((bins - bins.round()).abs() < 1e-9, "non-integer bin {bins}");
        assert_eq!(bins.round() as i64 % 2, 1, "bin count {bins} not odd");
        // Must stay close to the requested tone.
        assert!((f - 15.625).abs() < 2.0 * fs / n as f64);
    }

    #[test]
    fn coherent_frequency_clamps_to_band() {
        let fs = 1000.0;
        let n = 64;
        // Asking for a tone above Nyquist clamps below it.
        let f = Window::coherent_frequency(fs, n, 10_000.0);
        assert!(f < fs / 2.0);
        // Asking for DC promotes to the first odd bin.
        let f = Window::coherent_frequency(fs, n, 0.0);
        assert!((f - fs / n as f64).abs() < 1e-9);
    }

    #[test]
    fn leakage_bins_ordering_matches_sidelobe_width() {
        assert!(Window::Rectangular.leakage_bins() < Window::Hann.leakage_bins());
        assert!(Window::Hann.leakage_bins() <= Window::Blackman.leakage_bins());
        assert!(Window::Blackman.leakage_bins() <= Window::BlackmanHarris.leakage_bins());
    }

    #[test]
    fn default_window_is_hann() {
        assert_eq!(Window::default(), Window::Hann);
    }
}

//! Goertzel single-bin tone detection.
//!
//! When only one frequency matters — the test tone of an ADC
//! characterization, a pilot, a suspected idle tone — a full FFT is
//! wasteful. The Goertzel recurrence evaluates one DFT bin in O(N) time
//! and O(1) memory, streaming:
//!
//! ```text
//! s[n] = x[n] + 2·cos(ω)·s[n−1] − s[n−2]
//! X(ω) = s[N−1] − e^{−jω}·s[N−2]
//! ```
//!
//! The detector reports the tone's amplitude and phase, and (windowless)
//! is exact for coherent tones.

use crate::DspError;

/// Streaming Goertzel detector for one frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct Goertzel {
    /// 2·cos(ω).
    coeff: f64,
    /// cos(ω), sin(ω) for the final rotation.
    cos_w: f64,
    sin_w: f64,
    s1: f64,
    s2: f64,
    n: usize,
}

impl Goertzel {
    /// Creates a detector for `freq_hz` at `sample_rate` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] unless
    /// `0 < freq < sample_rate / 2`.
    pub fn new(freq_hz: f64, sample_rate: f64) -> Result<Self, DspError> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter(
                "sample rate must be positive".into(),
            ));
        }
        if !(freq_hz > 0.0 && freq_hz < sample_rate / 2.0) {
            return Err(DspError::InvalidParameter(format!(
                "frequency {freq_hz} Hz outside (0, {})",
                sample_rate / 2.0
            )));
        }
        let omega = 2.0 * std::f64::consts::PI * freq_hz / sample_rate;
        Ok(Goertzel {
            coeff: 2.0 * omega.cos(),
            cos_w: omega.cos(),
            sin_w: omega.sin(),
            s1: 0.0,
            s2: 0.0,
            n: 0,
        })
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        let s = x + self.coeff * self.s1 - self.s2;
        self.s2 = self.s1;
        self.s1 = s;
        self.n += 1;
    }

    /// Feeds a block of samples.
    pub fn push_block(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Samples consumed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True before any sample has been consumed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The tone's amplitude estimate (peak, not RMS): `2|X|/N`.
    ///
    /// Exact when the observation spans an integer number of tone cycles;
    /// otherwise scalloped like any rectangular-window DFT bin.
    pub fn amplitude(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let re = self.s1 - self.s2 * self.cos_w;
        let im = self.s2 * self.sin_w;
        2.0 * (re * re + im * im).sqrt() / self.n as f64
    }

    /// The tone's power relative to a unit-amplitude sine (`amp²/2`).
    pub fn power(&self) -> f64 {
        let a = self.amplitude();
        a * a / 2.0
    }

    /// Resets the recurrence for a fresh observation.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
        self.n = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{multi_tone, sine_wave};

    #[test]
    fn recovers_a_coherent_tone_amplitude_exactly() {
        let fs = 1000.0;
        let f = 125.0; // exactly 8 samples/cycle
        let amp = 0.73;
        let mut g = Goertzel::new(f, fs).unwrap();
        g.push_block(&sine_wave(fs, f, amp, 0.3, 4000));
        assert!(
            (g.amplitude() - amp).abs() < 1e-9,
            "amplitude {}",
            g.amplitude()
        );
        assert!((g.power() - amp * amp / 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_other_tones() {
        let fs = 1000.0;
        let mut g = Goertzel::new(125.0, fs).unwrap();
        // A strong tone far away plus the small target tone.
        let x = multi_tone(fs, &[(250.0, 1.0, 0.0), (125.0, 0.05, 0.0)], 8000);
        g.push_block(&x);
        assert!(
            (g.amplitude() - 0.05).abs() < 1e-6,
            "leakage from the off-bin tone: {}",
            g.amplitude()
        );
    }

    #[test]
    fn matches_fft_bin_magnitude() {
        let fs = 1000.0;
        let n = 1024;
        let k = 37; // coherent bin
        let f = k as f64 * fs / n as f64;
        let x = sine_wave(fs, f, 0.4, 1.1, n);
        let mut g = Goertzel::new(f, fs).unwrap();
        g.push_block(&x);
        let spec = crate::fft::fft_real(&x).unwrap();
        let fft_amp = 2.0 * spec[k].abs() / n as f64;
        assert!((g.amplitude() - fft_amp).abs() < 1e-9);
    }

    #[test]
    fn streaming_and_block_agree() {
        let x = sine_wave(1000.0, 77.0, 0.5, 0.0, 500);
        let mut a = Goertzel::new(77.0, 1000.0).unwrap();
        let mut b = Goertzel::new(77.0, 1000.0).unwrap();
        for &v in &x {
            a.push(v);
        }
        b.push_block(&x);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(!a.is_empty());
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut g = Goertzel::new(100.0, 1000.0).unwrap();
        g.push_block(&[1.0, -1.0, 0.5]);
        g.reset();
        assert!(g.is_empty());
        assert_eq!(g.amplitude(), 0.0);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Goertzel::new(0.0, 1000.0).is_err());
        assert!(Goertzel::new(500.0, 1000.0).is_err());
        assert!(Goertzel::new(100.0, 0.0).is_err());
        assert!(Goertzel::new(-5.0, 1000.0).is_err());
    }
}

//! The paper's two-stage decimation filter with 12-bit output.
//!
//! Block diagram (paper Fig. 3 / §3.1):
//!
//! ```text
//! ΣΔ bitstream ──> SINC³ ÷(OSR/4) ──> FIR 32 taps ÷4 ──> 12-bit output
//!   128 kS/s          (÷32)             500 Hz cutoff       1 kS/s
//! ```
//!
//! The oversampling ratio is configurable (the paper uses 128) for the OSR
//! ablation; the split keeps the FIR's final ÷4 fixed, matching the usual
//! CIC+compensation partition and the paper's 32-tap second stage.

use crate::bits::PackedBits;
use crate::cic::CicDecimator;
use crate::fir::{design_lowpass, FirDecimator};
use crate::fixed::{quantize_coefficients, QFormat};
use crate::window::Window;
use crate::DspError;

/// Configuration of the two-stage decimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecimatorConfig {
    /// Modulator (input) sample rate in Hz.
    pub input_rate: f64,
    /// Total oversampling ratio; must be a multiple of 4 and ≥ 8.
    pub osr: usize,
    /// CIC order (paper: 3).
    pub cic_order: usize,
    /// FIR tap count (paper: 32).
    pub fir_taps: usize,
    /// Low-pass cutoff in Hz (paper: 500 Hz).
    pub cutoff_hz: f64,
    /// Output word length in bits; `None` keeps the unquantized float
    /// output (paper: 12).
    pub output_bits: Option<u32>,
    /// Optional coefficient word length for FPGA-style quantized FIR
    /// coefficients (ablation A4); `None` keeps f64 coefficients.
    pub coefficient_bits: Option<u32>,
}

impl DecimatorConfig {
    /// The paper's configuration: 128 kS/s input, OSR 128, SINC³ + 32-tap
    /// FIR, 500 Hz cutoff, 12-bit output.
    pub fn paper_default() -> Self {
        DecimatorConfig {
            input_rate: 128_000.0,
            osr: 128,
            cic_order: 3,
            fir_taps: 32,
            cutoff_hz: 500.0,
            output_bits: Some(12),
            coefficient_bits: None,
        }
    }

    /// Output sample rate in Hz.
    pub fn output_rate(&self) -> f64 {
        self.input_rate / self.osr as f64
    }

    /// Builds the streaming decimator.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when the OSR is not a
    /// multiple of 4 (≥ 8), the cutoff exceeds the output Nyquist rate, or
    /// any stage parameter is invalid.
    pub fn build(&self) -> Result<TwoStageDecimator, DspError> {
        if self.osr < 8 || !self.osr.is_multiple_of(4) {
            return Err(DspError::InvalidParameter(format!(
                "OSR {} must be a multiple of 4 and >= 8",
                self.osr
            )));
        }
        if self.input_rate <= 0.0 {
            return Err(DspError::InvalidParameter(
                "input rate must be positive".into(),
            ));
        }
        let cic_ratio = self.osr / 4;
        let intermediate_rate = self.input_rate / cic_ratio as f64;
        let normalized_cutoff = self.cutoff_hz / intermediate_rate;
        if !(normalized_cutoff > 0.0 && normalized_cutoff < 0.5) {
            return Err(DspError::InvalidParameter(format!(
                "cutoff {} Hz outside (0, {}) Hz at the intermediate rate",
                self.cutoff_hz,
                intermediate_rate / 2.0
            )));
        }
        let mut taps = design_lowpass(self.fir_taps, normalized_cutoff, Window::Hamming)?;
        if let Some(bits) = self.coefficient_bits {
            let width = bits.clamp(2, 63);
            let fmt = QFormat::new(width, width - 1)?;
            let (q, _) = quantize_coefficients(&taps, fmt);
            // Renormalize DC gain after quantization so amplitude scaling
            // stays exact (FPGA designs do the same with a gain stage).
            let sum: f64 = q.iter().sum();
            taps = q.into_iter().map(|t| t / sum).collect();
        }
        let quantizer = match self.output_bits {
            Some(bits) => Some(OutputQuantizer::new(bits)?),
            None => None,
        };
        let cic = CicDecimator::new(self.cic_order, cic_ratio)?;
        let cic_norm = cic.gain() as f64 * (1_i64 << CIC_INPUT_FRAC_BITS) as f64;
        Ok(TwoStageDecimator {
            cic,
            cic_norm,
            fir: FirDecimator::new(taps, 4)?,
            quantizer,
            samples_in: 0,
            samples_out: 0,
            flushes: 0,
            clip_events: 0,
        })
    }
}

impl Default for DecimatorConfig {
    fn default() -> Self {
        DecimatorConfig::paper_default()
    }
}

/// Uniform mid-tread output quantizer mapping ±1.0 full scale onto signed
/// `bits`-wide codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputQuantizer {
    bits: u32,
    scale: i64,
}

impl OutputQuantizer {
    /// Creates a quantizer of the given word length.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for widths outside 2..=31.
    pub fn new(bits: u32) -> Result<Self, DspError> {
        if !(2..=31).contains(&bits) {
            return Err(DspError::InvalidParameter(format!(
                "output bits {bits} must be in 2..=31"
            )));
        }
        Ok(OutputQuantizer {
            bits,
            scale: 1_i64 << (bits - 1),
        })
    }

    /// Word length in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantizes a ±1.0 full-scale value to an integer code, saturating.
    pub fn quantize(&self, x: f64) -> i32 {
        let code = (x * self.scale as f64).round();
        code.clamp(-(self.scale as f64), (self.scale - 1) as f64) as i32
    }

    /// Converts a code back to its full-scale value.
    pub fn dequantize(&self, code: i32) -> f64 {
        code as f64 / self.scale as f64
    }

    /// Quantize-and-dequantize in one step (the value the host computer
    /// sees).
    pub fn round_trip(&self, x: f64) -> f64 {
        self.dequantize(self.quantize(x))
    }

    /// The quantization step (1 LSB in full-scale units).
    pub fn lsb(&self) -> f64 {
        1.0 / self.scale as f64
    }

    /// Whether quantizing `x` would saturate at a full-scale code.
    pub fn clips(&self, x: f64) -> bool {
        let code = (x * self.scale as f64).round();
        !(code > -(self.scale as f64) - 0.5 && code < (self.scale - 1) as f64 + 0.5)
    }
}

/// Fractional bits used to quantize the CIC input. The first stage runs
/// in *integer* arithmetic like the FPGA it models: a floating-point CIC
/// would silently lose precision on long records, because its integrator
/// states grow without bound under any DC-biased input (the classic CIC
/// design relies on two's-complement wraparound, which `f64` cannot
/// provide). Q20 input quantization adds noise at ~-120 dBFS, far below
/// every other noise source in the chain.
pub const CIC_INPUT_FRAC_BITS: u32 = 20;

/// The Q-format CIC input word for a `+1` modulator bit (`−BIT_ONE` for
/// a `−1` bit) — exactly `(±1.0 · 2^20).round()`, which is what keeps the
/// packed path bit-identical to the `f64` path.
const BIT_ONE: i64 = 1_i64 << CIC_INPUT_FRAC_BITS;

/// Streaming two-stage decimator (CIC ÷(OSR/4), FIR ÷4, optional output
/// quantizer).
#[derive(Debug, Clone, PartialEq)]
pub struct TwoStageDecimator {
    cic: CicDecimator,
    /// Combined CIC gain and input-scaling normalization.
    cic_norm: f64,
    fir: FirDecimator,
    quantizer: Option<OutputQuantizer>,
    /// Modulator-rate samples consumed.
    samples_in: u64,
    /// Decimated samples produced.
    samples_out: u64,
    /// Full-state flushes via [`TwoStageDecimator::reset`].
    flushes: u64,
    /// Output-quantizer full-scale saturations.
    clip_events: u64,
}

impl TwoStageDecimator {
    /// The paper's decimator (see [`DecimatorConfig::paper_default`]).
    pub fn paper_default() -> Self {
        DecimatorConfig::paper_default()
            .build()
            .expect("paper configuration is valid")
    }

    /// Total decimation ratio.
    pub fn ratio(&self) -> usize {
        self.cic.ratio() * self.fir.ratio()
    }

    /// The output quantizer, when configured.
    pub fn quantizer(&self) -> Option<&OutputQuantizer> {
        self.quantizer.as_ref()
    }

    /// Pushes one modulator-rate sample (±1.0 for a single-bit stream);
    /// returns a decimated output sample every `ratio()`-th call.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let xi = (x * (1_i64 << CIC_INPUT_FRAC_BITS) as f64).round() as i64;
        self.push_fixed(xi)
    }

    /// Pushes one single-bit modulator sample directly, skipping the
    /// float scale-and-round of [`TwoStageDecimator::push`].
    ///
    /// Bit-exact against the `f64` path: a `true` bit enters the integer
    /// CIC as `+2^20`, exactly the value `(1.0 * 2^20).round()` yields
    /// (and symmetrically for `false`). The equivalence is property-
    /// tested in `tests/props.rs`.
    pub fn push_bit(&mut self, bit: bool) -> Option<f64> {
        self.push_fixed(if bit { BIT_ONE } else { -BIT_ONE })
    }

    /// Shared fixed-point entry: `xi` is the Q-format CIC input word.
    fn push_fixed(&mut self, xi: i64) -> Option<f64> {
        self.samples_in += 1;
        let mid = self.cic.push(xi)? as f64 / self.cic_norm;
        let out = self.fir.push(mid)?;
        self.samples_out += 1;
        Some(match &self.quantizer {
            Some(q) => {
                if q.clips(out) {
                    self.clip_events += 1;
                }
                q.round_trip(out)
            }
            None => out,
        })
    }

    /// Processes a block of modulator-rate samples.
    pub fn process(&mut self, xs: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(xs.len() / self.ratio() + 1);
        self.process_into(xs, &mut out);
        out
    }

    /// [`TwoStageDecimator::process`] appending into a caller-owned
    /// buffer — the allocation-free variant.
    pub fn process_into(&mut self, xs: &[f64], out: &mut Vec<f64>) {
        out.extend(xs.iter().filter_map(|&x| self.push(x)));
    }

    /// Processes a single-bit stream given as `true`(+1) / `false`(−1).
    pub fn process_bits(&mut self, bits: &[bool]) -> Vec<f64> {
        bits.iter().filter_map(|&b| self.push_bit(b)).collect()
    }

    /// Processes a packed single-bit stream ([`PackedBits`]), the
    /// modulator's native output format. One `u64` word carries 64
    /// modulator clocks; no intermediate `f64` expansion is made.
    pub fn process_packed(&mut self, bits: &PackedBits) -> Vec<f64> {
        let mut out = Vec::with_capacity(bits.len() / self.ratio() + 1);
        self.process_packed_into(bits, &mut out);
        out
    }

    /// Packed-stream entry point writing into caller-owned scratch — the
    /// zero-allocation hot path. Decimated outputs are appended to `out`
    /// (not cleared first, so callers can accumulate).
    ///
    /// The first stage runs word-parallel through
    /// [`CicDecimator::push_word`]: 64 modulator clocks per kernel call
    /// instead of one, with bit-identical results to the scalar
    /// [`TwoStageDecimator::push_bit`] loop (and therefore to the `f64`
    /// path — both equivalences are property-tested in `tests/props.rs`).
    pub fn process_packed_into(&mut self, bits: &PackedBits, out: &mut Vec<f64>) {
        self.samples_in += bits.len() as u64;
        // Split borrows: the emit closure drives the FIR, quantizer, and
        // counters while the CIC is exclusively borrowed by the kernel.
        let TwoStageDecimator {
            cic,
            cic_norm,
            fir,
            quantizer,
            samples_out,
            clip_events,
            ..
        } = self;
        let norm = *cic_norm;
        let mut remaining = bits.len();
        for &w in bits.words() {
            let take = remaining.min(64);
            remaining -= take;
            cic.push_word(w, take, BIT_ONE, &mut |v| {
                let mid = v as f64 / norm;
                if let Some(y) = fir.push(mid) {
                    *samples_out += 1;
                    out.push(match quantizer {
                        Some(q) => {
                            if q.clips(y) {
                                *clip_events += 1;
                            }
                            q.round_trip(y)
                        }
                        None => y,
                    });
                }
            });
        }
    }

    /// Clears all filter state. Throughput counters survive the flush —
    /// they describe the decimator's lifetime, not one stream segment —
    /// and the flush itself is counted.
    pub fn reset(&mut self) {
        self.cic.reset();
        self.fir.reset();
        self.flushes += 1;
    }

    /// Modulator-rate samples consumed over this decimator's lifetime.
    pub fn samples_in(&self) -> u64 {
        self.samples_in
    }

    /// Decimated output samples produced over this decimator's lifetime.
    pub fn samples_out(&self) -> u64 {
        self.samples_out
    }

    /// Number of [`TwoStageDecimator::reset`] flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Output samples that saturated the output quantizer (always 0 for
    /// an unquantized chain).
    pub fn clip_events(&self) -> u64 {
        self.clip_events
    }

    /// Number of output samples to discard after a source switch before
    /// the chain has fully settled: the combined impulse-response span of
    /// both stages, expressed in output samples (rounded up).
    ///
    /// This is the quantity behind the paper's remark that mux switching
    /// "is limited by the signal bandwidth of the ΣΔ-AD-converter" (§2.2).
    pub fn settling_output_samples(&self) -> usize {
        // CIC memory: order * ratio input samples; FIR memory: taps
        // intermediate samples = taps * cic_ratio input samples.
        let input_span =
            self.cic.order() * self.cic.ratio() + self.fir.taps().len() * self.cic.ratio();
        input_span.div_ceil(self.ratio()) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::sine_wave;

    #[test]
    fn paper_chain_has_ratio_128_and_1ksps_output() {
        let cfg = DecimatorConfig::paper_default();
        assert_eq!(cfg.output_rate(), 1000.0);
        let d = cfg.build().unwrap();
        assert_eq!(d.ratio(), 128);
        assert_eq!(d.quantizer().unwrap().bits(), 12);
    }

    #[test]
    fn dc_input_settles_to_dc_output() {
        let mut d = DecimatorConfig {
            output_bits: None,
            ..DecimatorConfig::paper_default()
        }
        .build()
        .unwrap();
        let out = d.process(&vec![0.25; 128 * 64]);
        let last = *out.last().unwrap();
        assert!((last - 0.25).abs() < 1e-9, "settled to {last}");
    }

    #[test]
    fn in_band_tone_passes_with_unity_gain() {
        let fs = 128_000.0;
        let f = 100.0;
        let n = 128 * 1024;
        let x = sine_wave(fs, f, 0.5, 0.0, n);
        let mut d = DecimatorConfig {
            output_bits: None,
            ..DecimatorConfig::paper_default()
        }
        .build()
        .unwrap();
        let out = d.process(&x);
        let settled = &out[d.settling_output_samples()..];
        let rms = (settled.iter().map(|v| v * v).sum::<f64>() / settled.len() as f64).sqrt();
        let expected = 0.5 / 2.0_f64.sqrt();
        assert!((rms - expected).abs() / expected < 0.02, "rms {rms}");
    }

    #[test]
    fn out_of_band_tone_is_rejected() {
        // 3 kHz is above the 500 Hz cutoff and the 1 kS/s Nyquist.
        let fs = 128_000.0;
        let x = sine_wave(fs, 3_000.0, 0.5, 0.0, 128 * 512);
        let mut d = DecimatorConfig {
            output_bits: None,
            ..DecimatorConfig::paper_default()
        }
        .build()
        .unwrap();
        let out = d.process(&x);
        let settled = &out[d.settling_output_samples()..];
        let rms = (settled.iter().map(|v| v * v).sum::<f64>() / settled.len() as f64).sqrt();
        assert!(rms < 0.01, "out-of-band rms {rms}");
    }

    #[test]
    fn quantizer_limits_resolution_to_12_bits() {
        let q = OutputQuantizer::new(12).unwrap();
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(1.0), 2047, "positive full scale saturates");
        assert_eq!(q.quantize(-1.0), -2048);
        assert!((q.lsb() - 1.0 / 2048.0).abs() < 1e-15);
        // Round trip error bounded by half an LSB inside the range.
        for &x in &[0.1, -0.37, 0.9995, -0.99999] {
            assert!((q.round_trip(x) - x).abs() <= q.lsb() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn quantizer_rejects_bad_widths() {
        assert!(OutputQuantizer::new(1).is_err());
        assert!(OutputQuantizer::new(32).is_err());
    }

    #[test]
    fn config_validation_catches_bad_parameters() {
        let bad_osr = DecimatorConfig {
            osr: 6,
            ..DecimatorConfig::paper_default()
        };
        assert!(bad_osr.build().is_err());
        let bad_osr = DecimatorConfig {
            osr: 126,
            ..DecimatorConfig::paper_default()
        };
        assert!(bad_osr.build().is_err());
        let bad_rate = DecimatorConfig {
            input_rate: 0.0,
            ..DecimatorConfig::paper_default()
        };
        assert!(bad_rate.build().is_err());
        let bad_cutoff = DecimatorConfig {
            cutoff_hz: 10_000.0,
            ..DecimatorConfig::paper_default()
        };
        assert!(bad_cutoff.build().is_err());
    }

    #[test]
    fn bitstream_and_float_entry_points_agree() {
        let bits: Vec<bool> = (0..128 * 8).map(|i| i % 3 == 0).collect();
        let floats: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let mut d1 = TwoStageDecimator::paper_default();
        let mut d2 = TwoStageDecimator::paper_default();
        assert_eq!(d1.process_bits(&bits), d2.process(&floats));
    }

    #[test]
    fn packed_entry_point_is_bit_identical() {
        // The packed path must match the f64 path sample for sample —
        // not approximately: the decimator output is a deterministic
        // function of the bit sequence in both representations.
        let bools: Vec<bool> = (0..128 * 9 + 37).map(|i| (i * i + 3 * i) % 5 < 2).collect();
        let packed: PackedBits = bools.iter().copied().collect();
        let floats: Vec<f64> = bools.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let mut d1 = TwoStageDecimator::paper_default();
        let mut d2 = TwoStageDecimator::paper_default();
        let via_packed = d1.process_packed(&packed);
        let via_floats = d2.process(&floats);
        assert_eq!(via_packed, via_floats);
        // Same throughput accounting on both paths.
        assert_eq!(d1.samples_in(), d2.samples_in());
        assert_eq!(d1.samples_out(), d2.samples_out());
    }

    #[test]
    fn settling_estimate_is_sufficient() {
        // After a hard step, the output must be within 1 LSB of final value
        // once the advertised settling time has elapsed.
        let mut d = TwoStageDecimator::paper_default();
        // Drive -0.5 until fully settled.
        let _ = d.process(&vec![-0.5; 128 * 100]);
        // Step to +0.5 and observe.
        let out = d.process(&vec![0.5; 128 * 100]);
        let k = d.settling_output_samples();
        let lsb = d.quantizer().unwrap().lsb();
        for (i, &v) in out.iter().enumerate().skip(k) {
            assert!(
                (v - 0.5).abs() <= 2.0 * lsb,
                "sample {i} = {v} not settled (k = {k})"
            );
        }
        // And the first post-switch samples are visibly wrong (why the
        // scan controller must discard them).
        assert!(
            (out[0] + 0.5).abs() < 0.2,
            "first sample still near old value"
        );
    }

    #[test]
    fn quantized_coefficients_still_give_unity_dc() {
        let cfg = DecimatorConfig {
            coefficient_bits: Some(10),
            output_bits: None,
            ..DecimatorConfig::paper_default()
        };
        let mut d = cfg.build().unwrap();
        let out = d.process(&vec![0.3; 128 * 64]);
        // Tolerance: the Q20 CIC input quantization bounds DC error at
        // 2^-21 ≈ 4.8e-7.
        assert!((out.last().unwrap() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn long_dc_biased_records_do_not_lose_precision() {
        // Regression: a floating-point CIC silently degrades after
        // millions of DC-biased samples (integrator-state growth eats the
        // f64 mantissa). The integer CIC must hold the output to within
        // one LSB indefinitely.
        let mut d = TwoStageDecimator::paper_default();
        let lsb = d.quantizer().unwrap().lsb();
        let bias = 0.0553;
        let mut worst = 0.0_f64;
        let chunk = vec![bias; 128 * 1000];
        for block in 0..60 {
            let out = d.process(&chunk);
            if block > 0 {
                for &v in &out {
                    worst = worst.max((v - bias).abs());
                }
            }
        }
        assert!(
            worst <= lsb,
            "drifted to {worst} (= {} LSB) after 7.7M samples",
            worst / lsb
        );
    }

    #[test]
    fn throughput_counters_track_the_stream() {
        let mut d = TwoStageDecimator::paper_default();
        assert_eq!((d.samples_in(), d.samples_out(), d.flushes()), (0, 0, 0));
        let out = d.process(&vec![0.1; 128 * 5]);
        assert_eq!(out.len(), 5);
        assert_eq!(d.samples_in(), 128 * 5);
        assert_eq!(d.samples_out(), 5);
        d.reset();
        assert_eq!(d.flushes(), 1);
        // Counters describe the lifetime, not one segment.
        let _ = d.process(&vec![0.1; 128]);
        assert_eq!(d.samples_in(), 128 * 6);
        assert_eq!(d.samples_out(), 6);
    }

    #[test]
    fn clip_events_count_full_scale_saturation() {
        // A DC input beyond +1.0 full scale must pin the 12-bit output at
        // the top code and count clips once the chain has settled.
        let mut d = TwoStageDecimator::paper_default();
        let _ = d.process(&vec![1.5; 128 * 100]);
        assert!(d.clip_events() > 0, "expected saturations, got none");
        // An in-range signal adds no further clips.
        let mut clean = TwoStageDecimator::paper_default();
        let _ = clean.process(&vec![0.25; 128 * 100]);
        assert_eq!(clean.clip_events(), 0);
        // The quantizer predicate itself.
        let q = OutputQuantizer::new(12).unwrap();
        assert!(q.clips(1.0));
        assert!(q.clips(-1.001));
        assert!(!q.clips(0.999));
        assert!(!q.clips(-1.0));
    }

    #[test]
    fn osr_variants_build_and_decimate() {
        for osr in [8, 16, 64, 256, 512] {
            let cfg = DecimatorConfig {
                osr,
                cutoff_hz: (128_000.0 / osr as f64) / 2.2,
                ..DecimatorConfig::paper_default()
            };
            let mut d = cfg.build().unwrap();
            assert_eq!(d.ratio(), osr);
            let out = d.process(&vec![1.0; osr * 10]);
            assert_eq!(out.len(), 10);
        }
    }
}

//! # tonos-dsp — decimation filters and spectral analysis substrate
//!
//! Digital back end of the DATE'05 tactile blood-pressure sensor: the
//! external FPGA decimation filter and the spectral toolchain used to
//! characterize the ΣΔ-ADC (paper §2.2 and §3.1).
//!
//! The paper specifies the decimation chain exactly:
//!
//! > "The decimation filter was implemented as a two stage filter
//! >  architecture, comprising a 3rd order SINC-filter as first stage and a
//! >  32 tap FIR-filter as second stage. The cutoff frequency of the filter
//! >  is 500 Hz and the output resolution is 12 bit."
//!
//! with the modulator running at 128 kHz and an oversampling ratio of 128,
//! so the output rate is 1 kS/s.
//!
//! Modules:
//!
//! * [`fft`] — from-scratch radix-2 complex FFT (no external DSP crates)
//! * [`window`] — analysis windows and coherent-sampling helpers
//! * [`spectrum`] — periodograms in dBFS (the plot of paper Fig. 7)
//! * [`metrics`] — SNR / SNDR / THD / SFDR / ENOB extraction
//! * [`bits`] — packed single-bit ΣΔ streams (`u64` words, bit-exact
//!   against the ±1.0 `f64` representation)
//! * [`cic`] — SINC^N (CIC) decimators, float and bit-exact integer
//! * [`fir`] — windowed-sinc FIR design and streaming decimation
//! * [`decimator`] — the paper's two-stage chain with 12-bit output
//! * [`bank`] — K decimation chains in lockstep for the lane-banked
//!   readout (thin wrappers; bit-identical to scalar by construction)
//! * [`fixed`] — Q-format fixed-point helpers (FPGA word-length modeling)
//! * [`fpga`] — fully integer, bit-exact model of the FPGA datapath
//! * [`welch`] — Welch-averaged PSD estimation for noise-floor work
//! * [`goertzel`] — O(1)-memory single-bin tone detection
//! * [`iir`] — RBJ biquad sections for host-side post-processing
//! * [`signal`] — deterministic test-signal generation
//!
//! ## Example: measure the SNR of a quantized sine
//!
//! ```
//! use tonos_dsp::metrics::DynamicMetrics;
//! use tonos_dsp::signal::sine_wave;
//! use tonos_dsp::spectrum::Spectrum;
//! use tonos_dsp::window::Window;
//!
//! # fn main() -> Result<(), tonos_dsp::DspError> {
//! let fs = 1000.0;
//! let n = 4096;
//! let f = Window::coherent_frequency(fs, n, 15.625);
//! let x = sine_wave(fs, f, 0.9, 0.0, n);
//! let spectrum = Spectrum::from_signal(&x, fs, Window::Hann)?;
//! let m = DynamicMetrics::from_spectrum(&spectrum)?;
//! assert!(m.snr_db > 100.0, "a clean f64 sine is nearly noiseless");
//! # Ok(())
//! # }
//! ```

pub mod bank;
pub mod bits;
pub mod cic;
pub mod decimator;
pub mod fft;
pub mod fir;
pub mod fixed;
pub mod fpga;
pub mod frame;
pub mod goertzel;
pub mod iir;
pub mod metrics;
pub mod signal;
pub mod spectrum;
pub mod welch;
pub mod window;

mod error;

pub use error::DspError;
